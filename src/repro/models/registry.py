"""Model registry: name → builder.

Central lookup used by configs, presets, examples and benchmark harnesses,
so that a model is always referred to by the same string the paper uses
(e.g. ``"resnet50"``, ``"inception_v3"``).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.models.alexnet import build_alexnet
from repro.models.inception import build_inception_v3
from repro.models.layers import ModelSpec
from repro.models.resnet import build_resnet
from repro.models.vgg import build_vgg

__all__ = ["get_model", "available_models", "register_model"]

_REGISTRY: dict[str, Callable[[], ModelSpec]] = {
    "resnet18": lambda: build_resnet(18),
    "resnet34": lambda: build_resnet(34),
    "resnet50": lambda: build_resnet(50),
    "resnet101": lambda: build_resnet(101),
    "resnet152": lambda: build_resnet(152),
    "vgg11": lambda: build_vgg(11),
    "vgg16": lambda: build_vgg(16),
    "vgg19": lambda: build_vgg(19),
    "inception_v3": build_inception_v3,
    "alexnet": build_alexnet,
}

_CACHE: dict[str, ModelSpec] = {}


def get_model(name: str) -> ModelSpec:
    """Build (and memoize) the named model.

    ModelSpecs are immutable, so sharing one instance across experiments is
    safe and avoids re-deriving several hundred layer specs per run.
    """
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown model {name!r}; available: {', '.join(available_models())}"
        ) from None
    if name not in _CACHE:
        _CACHE[name] = builder()
    return _CACHE[name]


def available_models() -> list[str]:
    """Sorted names of all registered models."""
    return sorted(_REGISTRY)


def register_model(name: str, builder: Callable[[], ModelSpec]) -> None:
    """Register a custom model builder (overwriting is an error)."""
    if name in _REGISTRY:
        raise ConfigurationError(f"model {name!r} is already registered")
    _REGISTRY[name] = builder
