"""Layer-accurate DNN model zoo.

The communication scheduler's entire view of a DNN is: the list of
parameter tensors (sizes and priorities), and the per-layer forward/backward
compute times.  This package derives both analytically from real
architecture definitions — ResNet-18/50/152, VGG-16/19, Inception-v3,
AlexNet — at their canonical input resolutions, so tensor counts and size
distributions match the models the paper trains (e.g. ResNet-50 has ~161
parameter tensors totalling ~25.6 M parameters ≈ 102 MB in fp32; VGG-19 has
38 tensors, matching the 0–37 gradient indices in the paper's Fig. 4).
"""

from repro.models.layers import ParamTensor, LayerSpec, ModelSpec
from repro.models.device import DeviceSpec, TESLA_M60
from repro.models.compute import ComputeProfile, build_compute_profile
from repro.models.gradients import GradientSpec, gradient_table
from repro.models.registry import get_model, available_models

__all__ = [
    "ParamTensor",
    "LayerSpec",
    "ModelSpec",
    "DeviceSpec",
    "TESLA_M60",
    "ComputeProfile",
    "build_compute_profile",
    "GradientSpec",
    "gradient_table",
    "get_model",
    "available_models",
]
