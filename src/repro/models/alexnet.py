"""AlexNet architecture builder (Krizhevsky et al., 2012), torchvision layout.

A small-tensor-count model (16 tensors, ~61 M parameters, heavily dominated
by the first FC layer) — useful as a stress case where a single huge
gradient blocks everything behind it, the exact failure mode that motivates
priority-based scheduling.
"""

from __future__ import annotations

from repro.models.layers import LayerSpec, ModelSpec, conv2d, linear

__all__ = ["build_alexnet"]


def build_alexnet(num_classes: int = 1000) -> ModelSpec:
    """AlexNet at 224x224 (torchvision single-tower variant)."""
    layers: list[LayerSpec] = []
    conv, size = conv2d("features.0", 3, 64, 11, 224, stride=4, padding=2, bias=True)
    layers.append(conv)
    size = (size - 3) // 2 + 1
    layers.append(LayerSpec("features.pool0", "pool"))
    conv, size = conv2d("features.3", 64, 192, 5, size, padding=2, bias=True)
    layers.append(conv)
    size = (size - 3) // 2 + 1
    layers.append(LayerSpec("features.pool1", "pool"))
    conv, size = conv2d("features.6", 192, 384, 3, size, padding=1, bias=True)
    layers.append(conv)
    conv, size = conv2d("features.8", 384, 256, 3, size, padding=1, bias=True)
    layers.append(conv)
    conv, size = conv2d("features.10", 256, 256, 3, size, padding=1, bias=True)
    layers.append(conv)
    size = (size - 3) // 2 + 1
    layers.append(LayerSpec("features.pool2", "pool"))
    layers.append(linear("classifier.1", 256 * size * size, 4096))
    layers.append(linear("classifier.4", 4096, 4096))
    layers.append(linear("classifier.6", 4096, num_classes))
    return ModelSpec(name="alexnet", input_size=224, layers=tuple(layers))
