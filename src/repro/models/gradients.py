"""Gradient table: the scheduler-facing view of a model.

Each trainable tensor is one *gradient* (one key in the PS key-value
store).  Gradients are indexed in **forward order**: index 0 is the first
tensor of the first layer.  Because backward propagation walks layers in
reverse, gradient 0 is generated *last* — and it is the gradient the next
iteration's forward propagation needs *first*.  Index therefore doubles as
priority, smaller = more urgent, exactly the paper's convention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.layers import ModelSpec

__all__ = ["GradientSpec", "gradient_table", "gradient_sizes"]


@dataclass(frozen=True)
class GradientSpec:
    """One gradient tensor as the communication layer sees it.

    Attributes
    ----------
    index:
        Priority index (0 = highest priority, transferred last-generated).
    name:
        Fully-qualified tensor name, e.g. ``"layer1.0.conv1.weight"``.
    nbytes:
        Gradient size in bytes.
    layer_index:
        Index into ``model.layers`` of the owning layer.
    """

    index: int
    name: str
    nbytes: int
    layer_index: int


def gradient_table(model: ModelSpec, dtype_bytes: int = 4) -> list[GradientSpec]:
    """Enumerate the model's gradients in priority (forward) order."""
    table: list[GradientSpec] = []
    for layer_idx, layer in enumerate(model.layers):
        for tensor in layer.params:
            table.append(
                GradientSpec(
                    index=len(table),
                    name=tensor.name,
                    nbytes=tensor.nbytes(dtype_bytes),
                    layer_index=layer_idx,
                )
            )
    return table


def gradient_sizes(model: ModelSpec, dtype_bytes: int = 4) -> np.ndarray:
    """Gradient sizes (bytes) as a float array indexed by priority."""
    return np.array(
        [g.nbytes for g in gradient_table(model, dtype_bytes)], dtype=float
    )
