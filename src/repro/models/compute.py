"""Per-layer compute-time profiles.

Combines a :class:`~repro.models.layers.ModelSpec` with a
:class:`~repro.models.device.DeviceSpec` and a batch size to produce the
forward and backward time of every layer — the ``T_fp`` / ``T_bp`` terms of
the paper's performance model (Table 1).  Times are deterministic here;
per-iteration jitter is applied by the worker simulation so that the same
profile can be shared across schedulers (paired comparisons).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import ConfigurationError
from repro.models.device import DeviceSpec
from repro.models.layers import ModelSpec

__all__ = ["ComputeProfile", "build_compute_profile"]


@dataclass(frozen=True)
class ComputeProfile:
    """Forward/backward seconds per layer for one (model, device, batch).

    ``fwd_times[i]`` / ``bwd_times[i]`` correspond to ``model.layers[i]``.
    Backward order is the reverse of layer order.
    """

    model: ModelSpec
    device: DeviceSpec
    batch_size: int
    fwd_times: np.ndarray
    bwd_times: np.ndarray

    @cached_property
    def total_fwd(self) -> float:
        """One full forward pass (paper's Σ T_fp)."""
        return float(self.fwd_times.sum())

    @cached_property
    def total_bwd(self) -> float:
        """One full backward pass (paper's Σ T_bp)."""
        return float(self.bwd_times.sum())

    @cached_property
    def compute_time(self) -> float:
        """Σ T_bp + Σ T_fp — the GPU-busy floor of one iteration (Eq. 1)."""
        return self.total_fwd + self.total_bwd

    def bwd_completion_times(self) -> np.ndarray:
        """Raw backward completion time of each layer, measured from the
        start of backward propagation.

        Entry ``i`` is when layer ``i``'s gradients exist on the GPU (before
        any aggregation delay).  Backward runs from the last layer to the
        first, so completion times *decrease* with layer index.
        """
        # Cumulative sum over reversed layer order, mapped back.
        reversed_cum = np.cumsum(self.bwd_times[::-1])
        return reversed_cum[::-1].copy()


def build_compute_profile(
    model: ModelSpec, device: DeviceSpec, batch_size: int
) -> ComputeProfile:
    """Roofline-style compute profile (see :mod:`repro.models.device`)."""
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    flops = np.array([layer.fwd_flops for layer in model.layers], dtype=float)
    fwd = batch_size * flops / device.effective_flops + device.layer_overhead
    bwd = (
        batch_size * flops * device.bwd_fwd_ratio / device.effective_flops
        + device.layer_overhead
    )
    # Parameter-free layers (pool/act) still cost their (tiny) overhead.
    return ComputeProfile(
        model=model,
        device=device,
        batch_size=batch_size,
        fwd_times=fwd,
        bwd_times=bwd,
    )
