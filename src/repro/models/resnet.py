"""ResNet architecture builders (He et al., CVPR 2016), torchvision layout.

Parameter-tensor counts and totals match the reference implementations:

* ResNet-18 — 62 tensors, 11.69 M parameters
* ResNet-50 — 161 tensors, 25.56 M parameters
* ResNet-152 — 467 tensors, 60.19 M parameters

ResNet-50's ~161 tensors are what make the paper's Fig. 4 staircase run
from gradient 0 up to gradient ~156 (BN statistics excluded there).
"""

from __future__ import annotations

from repro.models.layers import LayerSpec, ModelSpec, batchnorm, conv2d, linear

__all__ = ["build_resnet", "build_resnet18", "build_resnet50", "build_resnet152"]

_STAGE_CHANNELS = (64, 128, 256, 512)


def _basic_block(
    layers: list[LayerSpec], prefix: str, in_ch: int, out_ch: int, stride: int, size: int
) -> tuple[int, int]:
    """Append a BasicBlock (two 3x3 convs); returns (out_ch, out_size)."""
    conv, size = conv2d(f"{prefix}.conv1", in_ch, out_ch, 3, size, stride, padding=1)
    layers.append(conv)
    layers.append(batchnorm(f"{prefix}.bn1", out_ch, size))
    conv, size = conv2d(f"{prefix}.conv2", out_ch, out_ch, 3, size, 1, padding=1)
    layers.append(conv)
    layers.append(batchnorm(f"{prefix}.bn2", out_ch, size))
    if stride != 1 or in_ch != out_ch:
        ds, _ = conv2d(f"{prefix}.downsample.0", in_ch, out_ch, 1, size * stride, stride)
        layers.append(ds)
        layers.append(batchnorm(f"{prefix}.downsample.1", out_ch, size))
    return out_ch, size


def _bottleneck_block(
    layers: list[LayerSpec], prefix: str, in_ch: int, width: int, stride: int, size: int
) -> tuple[int, int]:
    """Append a Bottleneck (1x1 -> 3x3 -> 1x1 x4); returns (out_ch, out_size)."""
    out_ch = width * 4
    conv, s = conv2d(f"{prefix}.conv1", in_ch, width, 1, size, 1)
    layers.append(conv)
    layers.append(batchnorm(f"{prefix}.bn1", width, s))
    conv, s = conv2d(f"{prefix}.conv2", width, width, 3, s, stride, padding=1)
    layers.append(conv)
    layers.append(batchnorm(f"{prefix}.bn2", width, s))
    conv, s = conv2d(f"{prefix}.conv3", width, out_ch, 1, s, 1)
    layers.append(conv)
    layers.append(batchnorm(f"{prefix}.bn3", out_ch, s))
    if stride != 1 or in_ch != out_ch:
        ds, _ = conv2d(f"{prefix}.downsample.0", in_ch, out_ch, 1, size, stride)
        layers.append(ds)
        layers.append(batchnorm(f"{prefix}.downsample.1", out_ch, s))
    return out_ch, s


def build_resnet(depth: int, num_classes: int = 1000) -> ModelSpec:
    """Build a ResNet of the given depth (18, 34, 50, 101, or 152)."""
    configs: dict[int, tuple[str, tuple[int, int, int, int]]] = {
        18: ("basic", (2, 2, 2, 2)),
        34: ("basic", (3, 4, 6, 3)),
        50: ("bottleneck", (3, 4, 6, 3)),
        101: ("bottleneck", (3, 4, 23, 3)),
        152: ("bottleneck", (3, 8, 36, 3)),
    }
    if depth not in configs:
        raise ValueError(f"unsupported ResNet depth {depth}; choose from {sorted(configs)}")
    block_kind, repeats = configs[depth]

    layers: list[LayerSpec] = []
    conv, size = conv2d("conv1", 3, 64, 7, 224, stride=2, padding=3)
    layers.append(conv)
    layers.append(batchnorm("bn1", 64, size))
    size = (size - 1) // 2 + 1  # 3x3/2 max-pool with padding 1: 112 -> 56
    layers.append(LayerSpec("maxpool", "pool"))

    in_ch = 64
    for stage, (channels, blocks) in enumerate(zip(_STAGE_CHANNELS, repeats), start=1):
        for b in range(blocks):
            stride = 2 if (stage > 1 and b == 0) else 1
            prefix = f"layer{stage}.{b}"
            if block_kind == "basic":
                in_ch, size = _basic_block(layers, prefix, in_ch, channels, stride, size)
            else:
                in_ch, size = _bottleneck_block(layers, prefix, in_ch, channels, stride, size)

    layers.append(LayerSpec("avgpool", "pool"))
    layers.append(linear("fc", in_ch, num_classes))
    return ModelSpec(name=f"resnet{depth}", input_size=224, layers=tuple(layers))


def build_resnet18(num_classes: int = 1000) -> ModelSpec:
    """ResNet-18 at 224x224."""
    return build_resnet(18, num_classes)


def build_resnet50(num_classes: int = 1000) -> ModelSpec:
    """ResNet-50 at 224x224."""
    return build_resnet(50, num_classes)


def build_resnet152(num_classes: int = 1000) -> ModelSpec:
    """ResNet-152 at 224x224."""
    return build_resnet(152, num_classes)
