"""Inception-v3 architecture builder (Szegedy et al., CVPR 2016).

Follows the torchvision module layout (aux classifier omitted — it is
disabled for the fine-tuning/throughput workloads the paper runs): a
5-conv stem, 3x InceptionA at 35x35, InceptionB, 4x InceptionC at 17x17
with the 7x1/1x7 factorized convolutions, InceptionD, 2x InceptionE at 8x8,
and the final fully-connected classifier.  Every convolution is a
``BasicConv2d`` — bias-free conv followed by an affine BatchNorm — so each
contributes three parameter tensors.
"""

from __future__ import annotations

from repro.models.layers import LayerSpec, ModelSpec, batchnorm, conv2d

__all__ = ["build_inception_v3"]


def _cbn(
    layers: list[LayerSpec],
    name: str,
    in_ch: int,
    out_ch: int,
    kernel: int | tuple[int, int],
    size: int,
    stride: int = 1,
    padding: int = 0,
) -> int:
    """Append a BasicConv2d (conv + affine BN); returns output spatial size."""
    conv, out_size = conv2d(f"{name}.conv", in_ch, out_ch, kernel, size, stride, padding)
    layers.append(conv)
    layers.append(batchnorm(f"{name}.bn", out_ch, out_size))
    return out_size


def _inception_a(layers: list[LayerSpec], name: str, in_ch: int, pool_ch: int, size: int) -> int:
    """35x35 module; returns output channels (spatial size unchanged)."""
    _cbn(layers, f"{name}.branch1x1", in_ch, 64, 1, size)
    _cbn(layers, f"{name}.branch5x5_1", in_ch, 48, 1, size)
    _cbn(layers, f"{name}.branch5x5_2", 48, 64, 5, size, padding=2)
    _cbn(layers, f"{name}.branch3x3dbl_1", in_ch, 64, 1, size)
    _cbn(layers, f"{name}.branch3x3dbl_2", 64, 96, 3, size, padding=1)
    _cbn(layers, f"{name}.branch3x3dbl_3", 96, 96, 3, size, padding=1)
    _cbn(layers, f"{name}.branch_pool", in_ch, pool_ch, 1, size)
    return 64 + 64 + 96 + pool_ch


def _inception_b(layers: list[LayerSpec], name: str, in_ch: int, size: int) -> tuple[int, int]:
    """Grid reduction 35 -> 17; returns (out_channels, out_size)."""
    out_size = _cbn(layers, f"{name}.branch3x3", in_ch, 384, 3, size, stride=2)
    _cbn(layers, f"{name}.branch3x3dbl_1", in_ch, 64, 1, size)
    _cbn(layers, f"{name}.branch3x3dbl_2", 64, 96, 3, size, padding=1)
    _cbn(layers, f"{name}.branch3x3dbl_3", 96, 96, 3, size, stride=2)
    return 384 + 96 + in_ch, out_size


def _inception_c(layers: list[LayerSpec], name: str, in_ch: int, c7: int, size: int) -> int:
    """17x17 module with factorized 7x7 convolutions; returns out channels."""
    _cbn(layers, f"{name}.branch1x1", in_ch, 192, 1, size)
    _cbn(layers, f"{name}.branch7x7_1", in_ch, c7, 1, size)
    _cbn(layers, f"{name}.branch7x7_2", c7, c7, (1, 7), size, padding=3)
    _cbn(layers, f"{name}.branch7x7_3", c7, 192, (7, 1), size, padding=3)
    _cbn(layers, f"{name}.branch7x7dbl_1", in_ch, c7, 1, size)
    _cbn(layers, f"{name}.branch7x7dbl_2", c7, c7, (7, 1), size, padding=3)
    _cbn(layers, f"{name}.branch7x7dbl_3", c7, c7, (1, 7), size, padding=3)
    _cbn(layers, f"{name}.branch7x7dbl_4", c7, c7, (7, 1), size, padding=3)
    _cbn(layers, f"{name}.branch7x7dbl_5", c7, 192, (1, 7), size, padding=3)
    _cbn(layers, f"{name}.branch_pool", in_ch, 192, 1, size)
    return 192 * 4


def _inception_d(layers: list[LayerSpec], name: str, in_ch: int, size: int) -> tuple[int, int]:
    """Grid reduction 17 -> 8; returns (out_channels, out_size)."""
    _cbn(layers, f"{name}.branch3x3_1", in_ch, 192, 1, size)
    out_size = _cbn(layers, f"{name}.branch3x3_2", 192, 320, 3, size, stride=2)
    _cbn(layers, f"{name}.branch7x7x3_1", in_ch, 192, 1, size)
    _cbn(layers, f"{name}.branch7x7x3_2", 192, 192, (1, 7), size, padding=3)
    _cbn(layers, f"{name}.branch7x7x3_3", 192, 192, (7, 1), size, padding=3)
    _cbn(layers, f"{name}.branch7x7x3_4", 192, 192, 3, size, stride=2)
    return 320 + 192 + in_ch, out_size


def _inception_e(layers: list[LayerSpec], name: str, in_ch: int, size: int) -> int:
    """8x8 module with split 1x3/3x1 branches; returns out channels."""
    _cbn(layers, f"{name}.branch1x1", in_ch, 320, 1, size)
    _cbn(layers, f"{name}.branch3x3_1", in_ch, 384, 1, size)
    _cbn(layers, f"{name}.branch3x3_2a", 384, 384, (1, 3), size, padding=1)
    _cbn(layers, f"{name}.branch3x3_2b", 384, 384, (3, 1), size, padding=1)
    _cbn(layers, f"{name}.branch3x3dbl_1", in_ch, 448, 1, size)
    _cbn(layers, f"{name}.branch3x3dbl_2", 448, 384, 3, size, padding=1)
    _cbn(layers, f"{name}.branch3x3dbl_3a", 384, 384, (1, 3), size, padding=1)
    _cbn(layers, f"{name}.branch3x3dbl_3b", 384, 384, (3, 1), size, padding=1)
    _cbn(layers, f"{name}.branch_pool", in_ch, 192, 1, size)
    return 320 + 768 + 768 + 192


def build_inception_v3(num_classes: int = 1000) -> ModelSpec:
    """Inception-v3 at 299x299: 94 conv/bn pairs + fc, ~25 M parameters."""
    from repro.models.layers import linear

    layers: list[LayerSpec] = []
    size = _cbn(layers, "Conv2d_1a_3x3", 3, 32, 3, 299, stride=2)        # 149
    size = _cbn(layers, "Conv2d_2a_3x3", 32, 32, 3, size)                # 147
    size = _cbn(layers, "Conv2d_2b_3x3", 32, 64, 3, size, padding=1)     # 147
    size = (size - 3) // 2 + 1                                           # 73
    layers.append(LayerSpec("maxpool1", "pool"))
    size = _cbn(layers, "Conv2d_3b_1x1", 64, 80, 1, size)                # 73
    size = _cbn(layers, "Conv2d_4a_3x3", 80, 192, 3, size)               # 71
    size = (size - 3) // 2 + 1                                           # 35
    layers.append(LayerSpec("maxpool2", "pool"))

    ch = _inception_a(layers, "Mixed_5b", 192, 32, size)                 # 256
    ch = _inception_a(layers, "Mixed_5c", ch, 64, size)                  # 288
    ch = _inception_a(layers, "Mixed_5d", ch, 64, size)                  # 288
    ch, size = _inception_b(layers, "Mixed_6a", ch, size)                # 768 @ 17
    for suffix, c7 in zip("bcde", (128, 160, 160, 192)):
        ch = _inception_c(layers, f"Mixed_6{suffix}", ch, c7, size)      # 768
    ch, size = _inception_d(layers, "Mixed_7a", ch, size)                # 1280 @ 8
    ch = _inception_e(layers, "Mixed_7b", ch, size)                      # 2048
    ch = _inception_e(layers, "Mixed_7c", ch, size)                      # 2048

    layers.append(LayerSpec("avgpool", "pool"))
    layers.append(linear("fc", ch, num_classes))
    return ModelSpec(name="inception_v3", input_size=299, layers=tuple(layers))
