"""VGG architecture builders (Simonyan & Zisserman, 2014), torchvision layout.

VGG-19 has exactly 19 weight layers (16 conv + 3 fc), each with weight and
bias, i.e. **38 parameter tensors** — the paper's Fig. 4 observes the
stepwise pattern on VGG-19 with gradients indexed 0–37, grouped into four
blocks {28–37}, {14–27}, {2–13}, {0–1}.  The tensor indexing produced by
this builder reproduces that space.
"""

from __future__ import annotations

from repro.models.layers import LayerSpec, ModelSpec, conv2d, linear

__all__ = ["build_vgg", "build_vgg16", "build_vgg19"]

# 'M' = 2x2/2 max-pool; numbers are conv output channels (all 3x3, pad 1).
_CONFIGS: dict[int, tuple[object, ...]] = {
    11: (64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"),
    16: (64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
         512, 512, 512, "M", 512, 512, 512, "M"),
    19: (64, 64, "M", 128, 128, "M", 256, 256, 256, 256, "M",
         512, 512, 512, 512, "M", 512, 512, 512, 512, "M"),
}


def build_vgg(depth: int, num_classes: int = 1000) -> ModelSpec:
    """Build VGG-11/16/19 at 224x224 (with conv biases, no BN)."""
    if depth not in _CONFIGS:
        raise ValueError(f"unsupported VGG depth {depth}; choose from {sorted(_CONFIGS)}")
    layers: list[LayerSpec] = []
    size, in_ch = 224, 3
    conv_idx = 0
    for item in _CONFIGS[depth]:
        if item == "M":
            size //= 2
            layers.append(LayerSpec(f"features.pool{conv_idx}", "pool"))
        else:
            out_ch = int(item)  # type: ignore[arg-type]
            conv, size = conv2d(
                f"features.conv{conv_idx}", in_ch, out_ch, 3, size, padding=1, bias=True
            )
            layers.append(conv)
            in_ch = out_ch
            conv_idx += 1
    layers.append(linear("classifier.0", in_ch * size * size, 4096))
    layers.append(linear("classifier.3", 4096, 4096))
    layers.append(linear("classifier.6", 4096, num_classes))
    return ModelSpec(name=f"vgg{depth}", input_size=224, layers=tuple(layers))


def build_vgg16(num_classes: int = 1000) -> ModelSpec:
    """VGG-16: 13 conv + 3 fc = 32 parameter tensors, ~138 M parameters."""
    return build_vgg(16, num_classes)


def build_vgg19(num_classes: int = 1000) -> ModelSpec:
    """VGG-19: 16 conv + 3 fc = 38 parameter tensors, ~144 M parameters."""
    return build_vgg(19, num_classes)
