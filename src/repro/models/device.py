"""GPU device model.

Compute times in the simulator come from a simple roofline-style model:

``layer_time = batch * layer_flops / (peak_flops * efficiency) + overhead``

where ``efficiency`` is the achieved fraction of peak (old fp32 GPUs running
framework kernels land well below peak — the paper's Tesla M60 era sees
15–30 % depending on the model), and ``overhead`` is a fixed per-layer,
per-pass cost covering kernel launch, engine dispatch, and D2H staging.

Backward propagation costs ``bwd_fwd_ratio`` times forward FLOPs (the
canonical factor is 2: one pass for input gradients, one for weight
gradients).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = ["DeviceSpec", "TESLA_M60"]


@dataclass(frozen=True)
class DeviceSpec:
    """Compute characteristics of one worker's GPU complement.

    Attributes
    ----------
    name:
        Human-readable device name.
    peak_flops:
        Peak fp32 FLOP/s of the worker's GPUs combined.
    efficiency:
        Achieved fraction of peak (0, 1].
    layer_overhead:
        Fixed seconds added to each layer's forward pass and to each
        layer's backward pass (kernel launches, dispatch).
    bwd_fwd_ratio:
        Backward FLOPs as a multiple of forward FLOPs.
    """

    name: str
    peak_flops: float
    efficiency: float = 0.20
    layer_overhead: float = 40e-6
    bwd_fwd_ratio: float = 2.0

    def __post_init__(self) -> None:
        if self.peak_flops <= 0:
            raise ConfigurationError(f"peak_flops must be positive, got {self.peak_flops}")
        if not 0 < self.efficiency <= 1:
            raise ConfigurationError(
                f"efficiency must be in (0, 1], got {self.efficiency}"
            )
        if self.layer_overhead < 0:
            raise ConfigurationError(
                f"layer_overhead must be >= 0, got {self.layer_overhead}"
            )
        if self.bwd_fwd_ratio <= 0:
            raise ConfigurationError(
                f"bwd_fwd_ratio must be positive, got {self.bwd_fwd_ratio}"
            )

    @property
    def effective_flops(self) -> float:
        """Sustained FLOP/s the device actually delivers."""
        return self.peak_flops * self.efficiency

    def with_efficiency(self, efficiency: float) -> "DeviceSpec":
        """A copy with a different achieved-efficiency calibration."""
        return replace(self, efficiency=efficiency)


#: The paper's testbed GPU complement: one EC2 g3.8xlarge = 2x NVIDIA Tesla
#: M60 (4.8 TFLOPS fp32 each → 9.6 TFLOPS per node).  Data parallelism
#: inside the node lets the pair act as one device; at ~20 % achieved
#: efficiency (fp32 framework kernels of that era) the node sustains
#: ~1.9 TFLOPS, which reproduces the paper's per-worker sample rates
#: (ResNet-50 bs64 ≈ 70 samples/s at unconstrained bandwidth).  Per-model
#: efficiency calibrations live in :mod:`repro.workloads.presets`.
TESLA_M60 = DeviceSpec(name="Tesla-M60-node", peak_flops=9.6e12, efficiency=0.20)

#: A p3.8xlarge-class node (4x V100, 15.7 TFLOPS fp32 each) — the paper's
#: future-work item 2 ("examining the effectiveness of Prophet on more
#: types of cloud instances and GPU hardwares (e.g., p3 and p4 EC2
#: instances)").  Much faster compute shrinks the backward pass and with
#: it the stepwise intervals Prophet packs against.
TESLA_V100 = DeviceSpec(
    name="Tesla-V100-node", peak_flops=62.8e12, efficiency=0.30, layer_overhead=25e-6
)

#: A p4d-class node (8x A100, 19.5 TFLOPS fp32 each).
A100 = DeviceSpec(
    name="A100-node", peak_flops=156e12, efficiency=0.35, layer_overhead=20e-6
)
