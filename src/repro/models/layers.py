"""Core model-description data structures.

A :class:`ModelSpec` is an ordered list of :class:`LayerSpec`, each carrying
its trainable :class:`ParamTensor` list and its per-sample forward FLOPs.
Order is *forward* order; gradient priorities derive from it (tensor 0 =
first tensor of the first layer = the last gradient produced by backward
propagation = the paper's highest-priority "gradient 0").

Helper constructors (:func:`conv2d`, :func:`batchnorm`, :func:`linear`)
compute parameter counts and FLOPs from shapes, so architecture builders
read like the architectures themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.errors import ConfigurationError

__all__ = [
    "ParamTensor",
    "LayerSpec",
    "ModelSpec",
    "conv2d",
    "batchnorm",
    "linear",
    "conv_out_size",
]


@dataclass(frozen=True)
class ParamTensor:
    """One trainable tensor — the unit of gradient communication.

    ``shape`` is kept for documentation/debugging; only ``num_params``
    matters to the scheduler.
    """

    name: str
    shape: tuple[int, ...]

    @property
    def num_params(self) -> int:
        n = 1
        for dim in self.shape:
            n *= dim
        return n

    def nbytes(self, dtype_bytes: int = 4) -> int:
        """Size of the tensor (and of its gradient) in bytes."""
        return self.num_params * dtype_bytes


@dataclass(frozen=True)
class LayerSpec:
    """One layer in forward order.

    Attributes
    ----------
    name:
        Unique layer name, e.g. ``"layer3.4.conv2"``.
    kind:
        ``"conv" | "bn" | "fc" | "pool" | "act"`` — informational.
    params:
        Trainable tensors owned by this layer (may be empty, e.g. pooling).
    fwd_flops:
        Forward FLOPs per sample (multiply-accumulate counted as 2 FLOPs).
    """

    name: str
    kind: str
    params: tuple[ParamTensor, ...] = ()
    fwd_flops: float = 0.0

    @property
    def num_params(self) -> int:
        return sum(p.num_params for p in self.params)


@dataclass(frozen=True)
class ModelSpec:
    """A complete model: named, ordered layers plus the input resolution."""

    name: str
    input_size: int
    layers: tuple[LayerSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate layer names in model {self.name!r}")

    @cached_property
    def num_params(self) -> int:
        """Total trainable parameters."""
        return sum(layer.num_params for layer in self.layers)

    @cached_property
    def num_tensors(self) -> int:
        """Total parameter tensors — the number of gradients per iteration."""
        return sum(len(layer.params) for layer in self.layers)

    def param_bytes(self, dtype_bytes: int = 4) -> int:
        """Total model size in bytes (== gradient bytes per iteration)."""
        return self.num_params * dtype_bytes

    @cached_property
    def fwd_flops(self) -> float:
        """Total forward FLOPs per sample."""
        return sum(layer.fwd_flops for layer in self.layers)

    def parameterized_layers(self) -> list[int]:
        """Indices of layers that own at least one parameter tensor."""
        return [i for i, layer in enumerate(self.layers) if layer.params]


# ----------------------------------------------------------------------
# Layer constructors
# ----------------------------------------------------------------------
def conv_out_size(in_size: int, kernel: int, stride: int = 1, padding: int = 0) -> int:
    """Output spatial size of a square convolution / pooling window."""
    return (in_size + 2 * padding - kernel) // stride + 1


def conv2d(
    name: str,
    in_ch: int,
    out_ch: int,
    kernel: int | tuple[int, int],
    in_size: int,
    stride: int = 1,
    padding: int = 0,
    bias: bool = False,
) -> tuple[LayerSpec, int]:
    """Build a conv layer spec; returns ``(layer, out_spatial_size)``.

    Rectangular kernels (Inception's 1x7 / 7x1 factorizations) are given as
    ``(kh, kw)``; padding is applied symmetrically per the larger dimension,
    which matches the 'same'-style padding those blocks use.
    """
    if isinstance(kernel, int):
        kh = kw = kernel
    else:
        kh, kw = kernel
    out_size = conv_out_size(in_size, max(kh, kw), stride, padding)
    params: list[ParamTensor] = [ParamTensor(f"{name}.weight", (out_ch, in_ch, kh, kw))]
    if bias:
        params.append(ParamTensor(f"{name}.bias", (out_ch,)))
    flops = 2.0 * kh * kw * in_ch * out_ch * out_size * out_size
    return LayerSpec(name, "conv", tuple(params), flops), out_size


def batchnorm(name: str, channels: int, spatial_size: int) -> LayerSpec:
    """BatchNorm layer: affine weight+bias tensors, ~4 FLOPs per element."""
    params = (
        ParamTensor(f"{name}.weight", (channels,)),
        ParamTensor(f"{name}.bias", (channels,)),
    )
    flops = 4.0 * channels * spatial_size * spatial_size
    return LayerSpec(name, "bn", params, flops)


def linear(name: str, in_features: int, out_features: int, bias: bool = True) -> LayerSpec:
    """Fully-connected layer."""
    params: list[ParamTensor] = [
        ParamTensor(f"{name}.weight", (out_features, in_features))
    ]
    if bias:
        params.append(ParamTensor(f"{name}.bias", (out_features,)))
    return LayerSpec(name, "fc", tuple(params), 2.0 * in_features * out_features)
