"""Trace exporters: Chrome trace-event JSON, JSONL, and summaries.

The Chrome trace-event format (the JSON flavour understood by Perfetto and
``chrome://tracing``) wants timestamps in microseconds and rows addressed
by ``(pid, tid)``.  This module maps the recorder's free-form
``"process/thread"`` track names onto stable pid/tid pairs (lexicographic
order, so two runs of the same workload produce byte-identical files) and
emits the matching ``process_name``/``thread_name`` metadata records.

:func:`read_chrome_trace` inverts the export back into
:class:`~repro.trace.events.TraceEvent` records — the round-trip the trace
tests pin down — and :func:`summarize_trace` reduces any event list to the
aggregate dict reused by :mod:`repro.metrics` reports and the CLI.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping

from repro.errors import TracingError
from repro.trace.events import COUNTER, INSTANT, SPAN, TraceEvent

__all__ = [
    "chrome_trace_dict",
    "write_chrome_trace",
    "write_trace_jsonl",
    "read_chrome_trace",
    "summarize_trace",
]

#: Simulation seconds → Chrome microseconds.
_US = 1e6


def _events_of(trace) -> list[TraceEvent]:
    """Accept a recorder or a plain event iterable; deterministic order."""
    if hasattr(trace, "sorted_events"):
        return trace.sorted_events()
    return sorted(trace, key=TraceEvent.sort_key)


def _split_track(track: str) -> tuple[str, str]:
    """``"worker0/gpu"`` → ``("worker0", "gpu")``; bare names own a row."""
    process, sep, thread = track.partition("/")
    return (process, thread) if sep else (track, track)


def _track_ids(events: Iterable[TraceEvent]) -> dict[str, tuple[int, int]]:
    """Stable ``track -> (pid, tid)`` assignment (lexicographic)."""
    processes: dict[str, list[str]] = {}
    for ev in events:
        process, _ = _split_track(ev.track)
        processes.setdefault(process, [])
    for ev in events:
        process, _ = _split_track(ev.track)
        if ev.track not in processes[process]:
            processes[process].append(ev.track)
    ids: dict[str, tuple[int, int]] = {}
    for pid, process in enumerate(sorted(processes), start=1):
        for tid, track in enumerate(sorted(processes[process]), start=1):
            ids[track] = (pid, tid)
    return ids


def chrome_trace_dict(
    trace, metadata: Mapping[str, object] | None = None
) -> dict[str, object]:
    """The full Chrome trace-event JSON object for a recorder/event list."""
    events = _events_of(trace)
    ids = _track_ids(events)
    out: list[dict[str, object]] = []
    for track, (pid, tid) in sorted(ids.items(), key=lambda kv: kv[1]):
        process, thread = _split_track(track)
        if tid == 1:
            out.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": process},
                }
            )
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread},
            }
        )
        out.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    for ev in events:
        pid, tid = ids[ev.track]
        record: dict[str, object] = {
            "name": ev.name,
            "cat": ev.cat,
            "ph": ev.ph,
            "ts": ev.ts * _US,
            "pid": pid,
            "tid": tid,
            "args": dict(ev.args),
        }
        if ev.ph == SPAN:
            record["dur"] = ev.dur * _US
        elif ev.ph == INSTANT:
            record["s"] = "t"  # thread-scoped instant
        out.append(record)
    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": dict(metadata) if metadata is not None else {},
    }


def write_chrome_trace(
    trace, path: str | Path, metadata: Mapping[str, object] | None = None
) -> Path:
    """Write the Chrome trace-event JSON file; returns the path."""
    path = Path(path)
    with path.open("w") as fh:
        json.dump(chrome_trace_dict(trace, metadata), fh, indent=1)
        fh.write("\n")
    return path


def write_trace_jsonl(trace, path: str | Path) -> Path:
    """Write one compact JSON object per event (streaming-friendly)."""
    path = Path(path)
    with path.open("w") as fh:
        for ev in _events_of(trace):
            fh.write(
                json.dumps(
                    {
                        "name": ev.name,
                        "cat": ev.cat,
                        "ph": ev.ph,
                        "ts": ev.ts,
                        "dur": ev.dur,
                        "track": ev.track,
                        "seq": ev.seq,
                        "args": dict(ev.args),
                    },
                    separators=(",", ":"),
                )
            )
            fh.write("\n")
    return path


def read_chrome_trace(path: str | Path) -> list[TraceEvent]:
    """Load a Chrome trace-event JSON file back into trace events.

    Track names are rebuilt from the ``process_name``/``thread_name``
    metadata the exporter wrote; timestamps come back in seconds.  Only the
    phases this package emits are reconstructed (metadata is consumed, any
    foreign phase raises).
    """
    with Path(path).open() as fh:
        data = json.load(fh)
    records = data["traceEvents"] if isinstance(data, dict) else data
    process_names: dict[int, str] = {}
    thread_names: dict[tuple[int, int], str] = {}
    payload = []
    for rec in records:
        if rec["ph"] == "M":
            if rec["name"] == "process_name":
                process_names[rec["pid"]] = rec["args"]["name"]
            elif rec["name"] == "thread_name":
                thread_names[(rec["pid"], rec["tid"])] = rec["args"]["name"]
            continue
        if rec["ph"] not in (SPAN, INSTANT, COUNTER):
            raise TracingError(f"unsupported trace phase {rec['ph']!r}")
        payload.append(rec)
    events = []
    for seq, rec in enumerate(payload):
        process = process_names.get(rec["pid"], str(rec["pid"]))
        thread = thread_names.get((rec["pid"], rec["tid"]), str(rec["tid"]))
        track = process if thread == process else f"{process}/{thread}"
        events.append(
            TraceEvent(
                name=rec["name"],
                cat=rec.get("cat", ""),
                ph=rec["ph"],
                ts=rec["ts"] / _US,
                dur=rec.get("dur", 0.0) / _US,
                track=track,
                seq=seq,
                args=rec.get("args", {}),
            )
        )
    return events


def summarize_trace(trace) -> dict[str, object]:
    """Aggregate an event list into the headline numbers reports reuse.

    Per span category: event count and summed duration.  Per counter name:
    sample count and the final sample's values.  Deterministic (sorted
    keys) so summaries can be asserted against and diffed.
    """
    events = _events_of(trace)
    spans: dict[str, dict[str, float]] = {}
    instants: dict[str, int] = {}
    counters: dict[str, dict[str, object]] = {}
    for ev in events:
        if ev.ph == SPAN:
            agg = spans.setdefault(ev.cat, {"count": 0, "total_s": 0.0})
            agg["count"] += 1
            agg["total_s"] += ev.dur
        elif ev.ph == INSTANT:
            instants[ev.cat] = instants.get(ev.cat, 0) + 1
        elif ev.ph == COUNTER:
            counters[ev.name] = {
                "samples": counters.get(ev.name, {}).get("samples", 0) + 1,
                "last": dict(ev.args),
            }
    tracks: dict[str, None] = {}
    for ev in events:
        tracks.setdefault(ev.track, None)
    return {
        "n_events": len(events),
        "time_span_s": (
            max(ev.end for ev in events) - events[0].ts if events else 0.0
        ),
        "spans": {cat: spans[cat] for cat in sorted(spans)},
        "instants": {cat: instants[cat] for cat in sorted(instants)},
        "counters": {name: counters[name] for name in sorted(counters)},
        "tracks": sorted(tracks),
    }
