"""Trace recorders: the live one and the free one.

:class:`TraceRecorder` appends :class:`~repro.trace.events.TraceEvent`
records; :class:`NullRecorder` implements the same surface as no-ops.
Every emission site in the simulator holds one of the two (defaulting to
the shared :data:`NULL_RECORDER`), so enabling tracing is swapping an
attribute, not threading a flag through the call graph.

Hot paths guard event construction with the ``enabled`` class attribute::

    tr = self.engine.trace
    if tr.enabled:
        tr.complete("push", "comm", start, end, track, {"grads": grads})

With the null recorder the guard is a single attribute load and branch —
``benchmarks/bench_trace.py`` pins this down — and even an unguarded call
is one no-op method dispatch.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, Mapping

from repro.errors import TracingError
from repro.trace.events import COUNTER, INSTANT, SPAN, TraceEvent

__all__ = ["TraceRecorder", "NullRecorder", "NULL_RECORDER"]

_EMPTY_ARGS: Mapping[str, Any] = {}


class TraceRecorder:
    """Append-only trace event sink.

    ``clock`` supplies "now" for the convenience :meth:`span` context
    manager and for emission sites that omit an explicit timestamp; wire it
    to the simulation engine (``clock=lambda: engine.now``) so all events
    share the simulated clock.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock
        self._seq = 0
        self.events: list[TraceEvent] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        """Drop all recorded events (sequence numbers keep increasing)."""
        self.events.clear()

    def now(self) -> float:
        """The recorder's clock reading (0.0 when no clock is wired)."""
        return self._clock() if self._clock is not None else 0.0

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def complete(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        track: str,
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """Record a finished span ``[start, end]`` on ``track``."""
        if end < start:
            raise TracingError(
                f"span {name!r} ends at {end} before it starts at {start}"
            )
        self.events.append(
            TraceEvent(
                name=name,
                cat=cat,
                ph=SPAN,
                ts=start,
                dur=end - start,
                track=track,
                seq=self._next_seq(),
                args=args if args is not None else _EMPTY_ARGS,
            )
        )

    def instant(
        self,
        name: str,
        cat: str,
        ts: float,
        track: str,
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """Record a zero-duration marker at ``ts``."""
        self.events.append(
            TraceEvent(
                name=name,
                cat=cat,
                ph=INSTANT,
                ts=ts,
                track=track,
                seq=self._next_seq(),
                args=args if args is not None else _EMPTY_ARGS,
            )
        )

    def counter(
        self,
        name: str,
        cat: str,
        ts: float,
        track: str,
        values: Mapping[str, float],
    ) -> None:
        """Record a counter sample (one or more named series)."""
        self.events.append(
            TraceEvent(
                name=name,
                cat=cat,
                ph=COUNTER,
                ts=ts,
                track=track,
                seq=self._next_seq(),
                args=dict(values),
            )
        )

    @contextmanager
    def span(
        self,
        name: str,
        cat: str,
        track: str,
        args: Mapping[str, Any] | None = None,
    ) -> Iterator[None]:
        """Record the enclosed block as a span on the recorder's clock.

        Spans nest naturally: an inner ``span`` started while an outer one
        is open lands inside the outer interval on the same track, which
        Chrome/Perfetto renders as stacked slices.
        """
        if self._clock is None:
            raise TracingError("span() context manager requires a clock")
        start = self._clock()
        try:
            yield
        finally:
            self.complete(name, cat, start, self._clock(), track, args)

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def sorted_events(self) -> list[TraceEvent]:
        """Events in deterministic order (time, span length, emission)."""
        return sorted(self.events, key=TraceEvent.sort_key)

    def by_category(self, cat: str) -> list[TraceEvent]:
        """All events of one category, deterministically ordered."""
        return sorted(
            (ev for ev in self.events if ev.cat == cat), key=TraceEvent.sort_key
        )

    def tracks(self) -> list[str]:
        """Distinct track names in first-appearance order."""
        seen: dict[str, None] = {}
        for ev in self.events:
            if ev.track not in seen:
                seen[ev.track] = None
        return list(seen)

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq = seq + 1
        return seq


class _NullSpan:
    """Reusable no-op context manager (no allocation per use)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """No-op recorder: the disabled-tracing fast path.

    Mirrors :class:`TraceRecorder`'s surface so emission sites never need
    an ``is None`` check; every method is a constant-time no-op and the
    event list is always empty.
    """

    enabled = False

    __slots__ = ()

    def __len__(self) -> int:
        return 0

    @property
    def events(self) -> list[TraceEvent]:
        return []

    def clear(self) -> None:
        pass

    def now(self) -> float:
        return 0.0

    def complete(self, *args: object, **kwargs: object) -> None:
        pass

    def instant(self, *args: object, **kwargs: object) -> None:
        pass

    def counter(self, *args: object, **kwargs: object) -> None:
        pass

    def span(self, *args: object, **kwargs: object) -> _NullSpan:
        return _NULL_SPAN

    def sorted_events(self) -> list[TraceEvent]:
        return []

    def by_category(self, cat: str) -> list[TraceEvent]:
        return []

    def tracks(self) -> list[str]:
        return []


#: Shared no-op recorder — the default value of every ``trace`` attribute.
NULL_RECORDER = NullRecorder()
