"""The trace event model.

One flat record type covers all three Chrome trace-event phases the
simulator uses.  Times are simulation seconds (the exporter converts to
the microseconds Chrome expects).  ``track`` is a free-form
``"process/thread"`` path — e.g. ``"worker0/gpu"`` or ``"net/uplink0"`` —
that the exporter maps onto Chrome's pid/tid rows.

Events carry a monotone ``seq`` assigned by the recorder; sorting by
``(ts, -dur, seq)`` reproduces the exact deterministic interleaving of the
simulation (parents before their zero-gap children, ties in emission
order), which is what makes trace diffs meaningful across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["SPAN", "INSTANT", "COUNTER", "TraceEvent"]

#: Chrome trace-event phase codes (the subset this simulator emits).
SPAN = "X"
INSTANT = "i"
COUNTER = "C"


@dataclass(frozen=True)
class TraceEvent:
    """One span, instant, or counter sample.

    ``dur`` is meaningful only for spans (0 otherwise); ``args`` holds the
    phase-specific payload — span/instant metadata, or the series values of
    a counter sample.
    """

    name: str
    cat: str
    ph: str
    ts: float
    track: str
    seq: int
    dur: float = 0.0
    args: Mapping[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        """Span end time (``ts`` itself for instants and counters)."""
        return self.ts + self.dur

    def sort_key(self) -> tuple[float, float, int]:
        """Deterministic ordering: time, longest-span-first, emission order."""
        return (self.ts, -self.dur, self.seq)
