"""Structured tracing: spans, instants, and counters with Chrome export.

This package is the simulator's flight recorder.  Every layer that does
timed work — the event engine, the network links, the parameter server,
the workers, and the communication schedulers — emits *trace events* into
one :class:`TraceRecorder`:

* **spans** (Chrome phase ``X``): forward/backward compute chunks,
  gradient-block assembly windows, per-gradient queue waits, and every
  push/pull transfer on every link;
* **instants** (phase ``i``): KV-store bucket flushes, scheduler
  decisions, stall probes;
* **counters** (phase ``C``): link utilization, PS pull-queue depth,
  monitored bandwidth.

The recorder is deliberately dumb — an append-only list of
:class:`~repro.trace.events.TraceEvent` ordered by a monotone sequence
number — so recording costs one object append per event.  When tracing is
off, every emission site holds the module-level :data:`NULL_RECORDER`,
whose ``enabled`` flag lets hot paths skip argument construction entirely
(``benchmarks/bench_trace.py`` guards this stays free).

Exporters (:mod:`repro.trace.export`) turn the event list into the Chrome
trace-event JSON format (open in Perfetto / ``chrome://tracing``), a
compact JSONL stream, or an aggregate summary dict reused by
:mod:`repro.metrics` and the CLI.
"""

from repro.trace.events import COUNTER, INSTANT, SPAN, TraceEvent
from repro.trace.export import (
    chrome_trace_dict,
    read_chrome_trace,
    summarize_trace,
    write_chrome_trace,
    write_trace_jsonl,
)
from repro.trace.recorder import NULL_RECORDER, NullRecorder, TraceRecorder

__all__ = [
    "TraceEvent",
    "SPAN",
    "INSTANT",
    "COUNTER",
    "TraceRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "chrome_trace_dict",
    "write_chrome_trace",
    "write_trace_jsonl",
    "read_chrome_trace",
    "summarize_trace",
]
