"""Abstract transport: the boundary between schedulers and the network.

A :class:`~repro.sched.base.CommScheduler` decides *what* to send and
*when* (the ordering policy); a :class:`Transport` decides *how* the bytes
move (the topology mechanics).  The worker tiers sit between the two: they
drive the scheduler's propose/commit protocol and hand each committed
:class:`~repro.sched.base.TransferUnit` to a transport as one opaque
message.  This is the split P3 (arXiv:1905.03960) argues for — priority
and slicing decisions are orthogonal to the transfer mechanism — and it is
what lets every scheduler strategy drive either the parameter-server star
or the allreduce collectives unchanged.

Two families implement the interface:

* :class:`LinkTransport` — the PS path: one serialized
  :class:`~repro.net.link.Link` carries the unit as a single message
  (push towards the PS).  A pure pass-through: wrapping a link changes
  neither timing nor event order, so the PS event sequence is
  bit-identical to the pre-abstraction worker.
* The collective executors in :mod:`repro.net.collective` — the unit is
  transferred as a barrier-synchronized sequence of ring chunk steps
  across every worker's link at once.

The contract mirrors :meth:`Link.send`: at most one unit may be in flight
(``busy``), completion is signalled through ``on_complete`` and then the
transport-level ``on_idle`` callback, and ``extra_time`` charges
strategy-level blocking synchronization (P3's stop-and-wait) while the
transport is occupied.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from repro.net.link import Link
from repro.net.tcp import TCPParams

__all__ = ["Transport", "LinkTransport"]


class Transport(ABC):
    """One-message-at-a-time conduit for committed transfer units."""

    #: TCP path parameters of the underlying channel (schedulers use the
    #: RTT for their per-message synchronization charges).
    tcp: TCPParams

    @property
    @abstractmethod
    def busy(self) -> bool:
        """Whether a unit is currently in flight."""

    @abstractmethod
    def send_unit(
        self,
        nbytes: float,
        tag: object = None,
        on_complete: Callable[[], None] | None = None,
        extra_time: float = 0.0,
    ) -> float | None:
        """Start transferring one unit of ``nbytes``.

        Returns the completion time when it is known upfront (a single
        link message), or ``None`` when it is not (a multi-step collective
        whose barrier times depend on in-flight dynamics).  Callers must
        not send while ``busy``.
        """


class LinkTransport(Transport):
    """PS-path transport: the unit is one message on one serialized link.

    Delegation only — the link computes the duration, records the
    transfer, and fires ``on_complete``/``on_idle`` exactly as it did when
    the worker called :meth:`Link.send` directly, so a run through this
    wrapper is bit-identical to one without it.
    """

    def __init__(self, link: Link):
        self.link = link
        self.tcp = link.tcp

    @property
    def busy(self) -> bool:
        return self.link.busy

    def send_unit(
        self,
        nbytes: float,
        tag: object = None,
        on_complete: Callable[[], None] | None = None,
        extra_time: float = 0.0,
    ) -> float | None:
        return self.link.send(
            nbytes, tag=tag, on_complete=on_complete, extra_time=extra_time
        )
