"""Analytic TCP transfer-time model.

This module realizes the paper's Eq. (10): the effective bandwidth
``B(i) = f(s(i), B)`` obtained when pushing a tensor of ``s(i)`` bytes over
a path whose available bandwidth is ``B``.  The paper only constrains the
*shape* of ``f`` ("approaches 0 when s is small, gradually increases to B as
s gets large") and names the mechanisms — TCP connection overhead, TCP slow
start, and inter-node synchronization.  We model those mechanisms directly:

* **per-transfer setup** — a fixed CPU/protocol overhead plus a configurable
  number of RTTs for the request/response synchronization that BytePS
  performs per network message (``handshake_rtts``);
* **slow start** — the congestion window starts at ``init_cwnd_segments``
  MSS-sized segments and doubles every RTT until it covers the
  bandwidth-delay product, after which the flow sends at line rate;
* **line-rate tail** — remaining bytes at bandwidth ``B``.

The resulting transfer time is

``T(s) = overhead + handshake + (#slow-start rounds) * RTT + tail / B``

and ``f(s, B) = s / T(s)``, which has exactly the limiting behaviour the
paper requires.  Small partitions (P3 with sub-MB slices) pay the per-round
RTTs over and over; multi-MB blocks amortize them — this single model drives
the Fig. 3(a) result.

All functions accept scalars or NumPy arrays for ``nbytes``.  Arrays go
through the vectorized numpy path (how the partition-sweep benchmark calls
them); scalars take a pure-Python fast path backed by a memoized
per-``(bandwidth, params)`` slow-start table, which is how the simulator's
per-message hot loop calls them.  Both paths replay the identical IEEE-754
operation sequence, so scalar and vectorized results are bit-equal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "TCPParams",
    "transfer_time",
    "effective_bandwidth",
    "half_rate_size",
    "is_warm",
]

# Slow start doubles the window every round; 64 doublings cover any
# physically plausible bandwidth-delay product.
_MAX_SLOW_START_ROUNDS = 64

#: Memoized slow-start tables, keyed ``(bandwidth, params)``.  Bounded
#: because bandwidth noise makes every send see a unique bandwidth — the
#: cache must not grow with the transfer count.  FIFO eviction (dict
#: preserves insertion order) is fine: a noisy run misses every time and
#: just pays the cheap table build, while the common fixed-bandwidth run
#: hits the same handful of entries forever.
_TABLE_CACHE: dict[tuple[float, "TCPParams"], "_SlowStartTable"] = {}
_TABLE_CACHE_MAX = 256


@dataclass(frozen=True)
class TCPParams:
    """Parameters of the TCP path model.

    Attributes
    ----------
    rtt:
        Round-trip time in seconds.  EC2 same-AZ instances see 0.2-1 ms.
    mss:
        Maximum segment size in bytes (1448 for standard Ethernet, ~8900
        with jumbo frames).
    init_cwnd_segments:
        Initial congestion window in segments (Linux default 10).
    handshake_rtts:
        RTTs charged per transfer for connection setup / BytePS push-pull
        synchronization.  With persistent connections this is the
        request/ACK exchange, ~1 RTT; 0 disables it.
    fixed_overhead:
        Fixed per-transfer CPU cost in seconds (serialization, memcpy,
        engine dispatch).
    warm_threshold:
        Idle-gap threshold (seconds) above which a link charges the cold
        path (slow-start restart after idle); back-to-back messages within
        the threshold use the warm path.
    goodput:
        Fraction of the nominal available bandwidth an application-level
        PS stream actually sustains (single-flow TCP over virtualized EC2
        NICs plus PS-side (de)serialization; well below 1 in the paper's
        era).  Applied to ``bandwidth`` before all other effects.
    """

    rtt: float = 0.8e-3
    mss: float = 1448.0
    init_cwnd_segments: float = 10.0
    handshake_rtts: float = 1.0
    fixed_overhead: float = 150e-6
    warm_threshold: float = 5e-3
    goodput: float = 1.0

    def __post_init__(self) -> None:
        if self.rtt <= 0:
            raise ConfigurationError(f"rtt must be positive, got {self.rtt}")
        if self.mss <= 0:
            raise ConfigurationError(f"mss must be positive, got {self.mss}")
        if self.init_cwnd_segments <= 0:
            raise ConfigurationError(
                f"init_cwnd_segments must be positive, got {self.init_cwnd_segments}"
            )
        if self.handshake_rtts < 0:
            raise ConfigurationError(
                f"handshake_rtts must be >= 0, got {self.handshake_rtts}"
            )
        if self.fixed_overhead < 0:
            raise ConfigurationError(
                f"fixed_overhead must be >= 0, got {self.fixed_overhead}"
            )
        if self.warm_threshold < 0:
            raise ConfigurationError(
                f"warm_threshold must be >= 0, got {self.warm_threshold}"
            )
        if not 0 < self.goodput <= 1:
            raise ConfigurationError(
                f"goodput must be in (0, 1], got {self.goodput}"
            )


class _SlowStartTable:
    """Precomputed slow-start schedule for one ``(bandwidth, params)`` pair.

    Stores the congestion window and the *exact* full-round time
    (``rtt * cwnd / cwnd``, which is not bit-equal to ``rtt`` in general)
    for every doubling round below the bandwidth-delay product, plus the
    cumulative bytes delivered after each round.  A scalar
    :func:`transfer_time` then replays the same float64 operation sequence
    as the vectorized loop — a handful of adds and one divide — instead of
    allocating numpy temporaries per round.
    """

    __slots__ = ("line_rate", "setup", "rtt", "cwnds", "full_times", "cum_bytes")

    def __init__(self, bandwidth: float, params: TCPParams) -> None:
        line_rate = bandwidth * params.goodput
        rtt = params.rtt
        self.line_rate = line_rate
        self.rtt = rtt
        self.setup = params.fixed_overhead + params.handshake_rtts * rtt
        bdp = line_rate * rtt
        cwnds: list[float] = []
        full_times: list[float] = []
        cum_bytes: list[float] = []
        total = 0.0
        cwnd = params.init_cwnd_segments * params.mss
        while cwnd < bdp and len(cwnds) < _MAX_SLOW_START_ROUNDS:
            cwnds.append(cwnd)
            full_times.append(rtt * cwnd / cwnd)
            total += cwnd
            cum_bytes.append(total)
            cwnd *= 2.0
        self.cwnds = cwnds
        self.full_times = full_times
        self.cum_bytes = cum_bytes

    def transfer_time(self, nbytes: float, warm: bool) -> float:
        """Bit-identical scalar replay of the vectorized slow-start loop."""
        if nbytes <= 0.0:
            return 0.0
        time = self.setup
        remaining = nbytes
        if not warm:
            rtt = self.rtt
            for cwnd, full_time in zip(self.cwnds, self.full_times):
                if cwnd < remaining:
                    # Full round: one RTT's worth at window ``cwnd``.  The
                    # round time is precomputed with the same divide the
                    # vectorized path performs.
                    time += full_time
                    remaining -= cwnd
                else:
                    # Final partial round, prorated; drains the transfer.
                    time += rtt * remaining / cwnd
                    remaining = 0.0
                    break
        return time + remaining / self.line_rate


def _slow_start_table(bandwidth: float, params: TCPParams) -> _SlowStartTable:
    """Fetch (or build and memoize) the table for this path."""
    key = (bandwidth, params)
    table = _TABLE_CACHE.get(key)
    if table is None:
        if len(_TABLE_CACHE) >= _TABLE_CACHE_MAX:
            del _TABLE_CACHE[next(iter(_TABLE_CACHE))]
        table = _SlowStartTable(bandwidth, params)
        _TABLE_CACHE[key] = table
    return table


def is_warm(gap: float | None, params: TCPParams) -> bool:
    """Whether a send after ``gap`` idle seconds rides an open window.

    ``gap`` is the idle time since the previous transfer finished on the
    same connection (``None`` — never used — is always cold).  This is
    the single warm/cold decision point shared by the link hot path and
    the fast-forward state snapshot: the warm state of a connection is
    fully determined by that relative gap, never by absolute time.
    """
    return gap is not None and gap <= params.warm_threshold


def transfer_time(
    nbytes: float | np.ndarray,
    bandwidth: float,
    params: TCPParams,
    warm: bool = False,
) -> float | np.ndarray:
    """Seconds to deliver ``nbytes`` over a path of ``bandwidth`` bytes/s.

    ``warm=True`` models a connection whose congestion window is already
    open (back-to-back messages on a busy connection): the slow-start
    rounds are skipped and only the per-message synchronization
    (``handshake_rtts`` + ``fixed_overhead``) and the line-rate payload
    remain.  Links charge the cold path only after an idle gap (Linux
    restarts slow start after an RTO of idleness) — see
    :class:`repro.net.link.Link`.

    Zero-byte transfers take zero time (they never touch the network).
    ``bandwidth`` must be positive.
    """
    if bandwidth <= 0:
        raise ConfigurationError(f"bandwidth must be positive, got {bandwidth}")
    if isinstance(nbytes, (int, float)):  # np.float64 subclasses float
        if nbytes < 0:
            raise ConfigurationError("transfer size must be non-negative")
        return _slow_start_table(bandwidth, params).transfer_time(
            float(nbytes), warm
        )
    bandwidth = bandwidth * params.goodput
    arr = np.asarray(nbytes, dtype=float)
    if np.any(arr < 0):
        raise ConfigurationError("transfer size must be non-negative")
    scalar = arr.ndim == 0
    sizes = np.atleast_1d(arr)

    setup = params.fixed_overhead + params.handshake_rtts * params.rtt
    bdp = bandwidth * params.rtt

    remaining = sizes.copy()
    time = np.where(sizes > 0, setup, 0.0)

    if not warm:
        cwnd = params.init_cwnd_segments * params.mss
        rounds = 0
        # Slow-start phase: each round delivers one congestion window and
        # costs one RTT, until the window covers the bandwidth-delay
        # product.  A final partial round (transfer ends mid-window) is
        # prorated — charging the full RTT would make small transfers
        # non-monotone in bandwidth.
        while cwnd < bdp and rounds < _MAX_SLOW_START_ROUNDS:
            active = remaining > 0
            if not np.any(active):
                break
            sent = np.minimum(cwnd, remaining)
            round_time = params.rtt * sent / cwnd
            time = np.where(active, time + round_time, time)
            remaining = remaining - np.where(active, sent, 0.0)
            cwnd *= 2.0
            rounds += 1

    # Line-rate tail for whatever slow start did not cover.
    time = time + np.maximum(remaining, 0.0) / bandwidth

    if scalar:
        return float(time[0])
    return time


def effective_bandwidth(
    nbytes: float | np.ndarray,
    bandwidth: float,
    params: TCPParams,
) -> float | np.ndarray:
    """The paper's ``f(s, B)``: achieved throughput for an ``s``-byte transfer.

    Satisfies ``f(s, B) -> 0`` as ``s -> 0`` and ``f(s, B) -> B`` as
    ``s -> inf`` (Eq. (10) of the paper).  Defined as 0 for ``s == 0``.
    """
    if isinstance(nbytes, (int, float)):
        size = float(nbytes)
        t = transfer_time(size, bandwidth, params)
        if size > 0.0 and t > 0.0:
            return size / t
        return 0.0
    arr = np.asarray(nbytes, dtype=float)
    t = np.asarray(transfer_time(arr, bandwidth, params), dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        eff = np.where(arr > 0, arr / np.where(t > 0, t, np.inf), 0.0)
    if arr.ndim == 0:
        return float(eff)
    return eff


def half_rate_size(bandwidth: float, params: TCPParams) -> float:
    """Transfer size at which ``f(s, B)`` first reaches ``B / 2``.

    A useful summary statistic for calibrating partition/credit sizes:
    partitions below this size waste more than half the link.  Found by
    bisection on the monotone ``effective_bandwidth``.
    """
    lo, hi = 1.0, 1.0
    while effective_bandwidth(hi, bandwidth, params) < bandwidth / 2.0:
        hi *= 2.0
        if hi > 1e15:  # pragma: no cover - pathological parameters
            return np.inf
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if effective_bandwidth(mid, bandwidth, params) < bandwidth / 2.0:
            lo = mid
        else:
            hi = mid
    return hi
