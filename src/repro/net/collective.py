"""Allreduce collective topologies and their transport executors.

The PS star moves a gradient twice over one worker NIC (push up, pull
down).  A ring allreduce instead moves it as ``2(N-1)`` pipelined chunk
steps of ``S/N`` bytes around a ring of worker-to-neighbor links — the
reduce-scatter then all-gather decomposition — so each worker NIC carries
``2(N-1)/N · S`` bytes per operation regardless of cluster size.  The
hierarchical variant splits the ring into ``m`` groups of ``g`` workers
(``N = m·g``): an intra-group reduce-scatter (``g-1`` steps of ``S/g``),
an inter-group ring allreduce among the group leaders (``2(m-1)`` steps of
``S/(g·m)``), and an intra-group all-gather (``g-1`` steps of ``S/g``) —
fewer inter-node steps at the cost of extra intra-group traffic, the
classic two-level NCCL/Horovod shape.

Every chunk step is a real message on a real :class:`~repro.net.link.Link`
through the same TCP model as the PS path: it pays the Eq. 10 handshake +
slow-start setup unless it rides a warm window (back-to-back steps within
``warm_threshold`` keep the connection warm, exactly like consecutive PS
pushes).  Small transfer units therefore suffer the paper's small-message
penalty **per step**, which makes the tensor-fusion tradeoff the
MG-WFBP policy optimizes genuinely present in the collective backend.

The executors implement the :class:`~repro.net.transport.Transport`
interface, so the worker tier hands them scheduler-committed
:class:`~repro.sched.base.TransferUnit`s exactly as it hands them to a PS
uplink.  Steps are barrier-synchronized: a step completes when its
slowest link finishes (synchronous ring semantics), which is how a
heterogeneous or noisy link slows the whole collective.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.net.link import BandwidthSchedule, Link
from repro.net.tcp import TCPParams
from repro.sim.engine import Engine
from repro.sim.rng import spawn_rng
from repro.net.transport import Transport

__all__ = [
    "RingTopology",
    "HierarchicalTopology",
    "RingExecutor",
    "HierarchicalExecutor",
]


def _worker_schedules(
    n_workers: int,
    bandwidth: float | BandwidthSchedule,
    overrides: Mapping[int, float | BandwidthSchedule],
) -> list[BandwidthSchedule]:
    out: list[BandwidthSchedule] = []
    for w in range(n_workers):
        b = overrides.get(w, bandwidth)
        out.append(
            b if isinstance(b, BandwidthSchedule) else BandwidthSchedule.constant(float(b))
        )
    return out


class RingTopology:
    """``n_workers`` in a ring; one next-neighbor link per worker.

    ``links[w]`` is worker ``w``'s transmit link towards worker
    ``(w+1) % n_workers``.  Chunk steps occupy every ring link at once, so
    the slowest link paces the collective — the ring analogue of the
    star's "slowest worker gates BSP".
    """

    def __init__(
        self,
        engine: Engine,
        n_workers: int,
        bandwidth: float | BandwidthSchedule,
        tcp: TCPParams | None = None,
        worker_bandwidth: Mapping[int, float | BandwidthSchedule] | None = None,
        seed: int | None = 0,
        noise_std: float = 0.0,
    ):
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        overrides = dict(worker_bandwidth or {})
        for idx in overrides:
            if not 0 <= idx < n_workers:
                raise ConfigurationError(
                    f"worker_bandwidth override for unknown worker {idx}"
                )
        self.engine = engine
        self.n_workers = n_workers
        self.tcp = tcp if tcp is not None else TCPParams()
        self.links: list[Link] = []
        for w, sched in enumerate(
            _worker_schedules(n_workers, bandwidth, overrides)
        ):
            rng: np.random.Generator | None = None
            if noise_std > 0:
                rng = spawn_rng(seed, "link", w, "ring")
            self.links.append(
                Link(
                    engine,
                    sched,
                    self.tcp,
                    name=f"worker{w}-ring",
                    noise_rng=rng,
                    noise_std=noise_std,
                )
            )

    # ------------------------------------------------------------------
    def ring_link(self, worker: int) -> Link:
        """Worker ``worker``'s transmit link to its next ring neighbor."""
        return self.links[worker]

    def worker_uplinks(self, worker: int) -> list[Link]:
        """All transmit links of ``worker`` (topology-generic accessor)."""
        return [self.links[worker]]

    def worker_downlinks(self, worker: int) -> list[Link]:
        """Receive side: ring traffic is accounted on the transmit links
        (every byte sent is a byte received by the neighbor), so this is
        empty — mirroring the half-duplex PS accounting."""
        return []

    def min_bandwidth(self) -> float:
        """Lowest configured bandwidth on the ring right now (the pace of
        every barrier-synchronized chunk step)."""
        return min(link.current_bandwidth() for link in self.links)


class HierarchicalTopology:
    """Two-level ring: ``m`` groups of ``group_size`` workers each.

    Groups are contiguous blocks (group ``i`` holds workers
    ``[i·g, (i+1)·g)``); worker ``i·g`` is group ``i``'s leader.  Every
    worker gets a *local* link for the intra-group phases; every leader
    additionally gets a *global* link for the inter-group ring.
    """

    def __init__(
        self,
        engine: Engine,
        n_workers: int,
        group_size: int,
        bandwidth: float | BandwidthSchedule,
        tcp: TCPParams | None = None,
        worker_bandwidth: Mapping[int, float | BandwidthSchedule] | None = None,
        seed: int | None = 0,
        noise_std: float = 0.0,
    ):
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        if group_size < 1:
            raise ConfigurationError(f"group_size must be >= 1, got {group_size}")
        if n_workers % group_size != 0:
            raise ConfigurationError(
                f"group_size {group_size} does not divide n_workers {n_workers}"
            )
        overrides = dict(worker_bandwidth or {})
        for idx in overrides:
            if not 0 <= idx < n_workers:
                raise ConfigurationError(
                    f"worker_bandwidth override for unknown worker {idx}"
                )
        self.engine = engine
        self.n_workers = n_workers
        self.group_size = group_size
        self.n_groups = n_workers // group_size
        self.tcp = tcp if tcp is not None else TCPParams()
        schedules = _worker_schedules(n_workers, bandwidth, overrides)

        def _mk(w: int, kind: str) -> Link:
            rng: np.random.Generator | None = None
            if noise_std > 0:
                rng = spawn_rng(seed, "link", w, kind)
            return Link(
                engine,
                schedules[w],
                self.tcp,
                name=f"worker{w}-{kind}",
                noise_rng=rng,
                noise_std=noise_std,
            )

        #: Intra-group transmit link of every worker.
        self.local_links: list[Link] = [_mk(w, "local") for w in range(n_workers)]
        #: Inter-group transmit link of each group leader, group order.
        self.global_links: list[Link] = [
            _mk(i * group_size, "global") for i in range(self.n_groups)
        ]

    # ------------------------------------------------------------------
    def group_of(self, worker: int) -> int:
        return worker // self.group_size

    def leader_of(self, group: int) -> int:
        return group * self.group_size

    def worker_uplinks(self, worker: int) -> list[Link]:
        """All transmit links of ``worker`` (local; plus global for a
        group leader)."""
        links = [self.local_links[worker]]
        if worker % self.group_size == 0:
            links.append(self.global_links[worker // self.group_size])
        return links

    def worker_downlinks(self, worker: int) -> list[Link]:
        """Receive side — empty, as for :class:`RingTopology`."""
        return []

    def min_bandwidth(self) -> float:
        """Lowest configured bandwidth across every collective link."""
        return min(
            link.current_bandwidth()
            for link in (*self.local_links, *self.global_links)
        )


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
class _StepExecutor(Transport):
    """Shared machinery: run a unit as barrier-synchronized link steps.

    Subclasses provide :meth:`_plan`, the list of ``(links, chunk_bytes)``
    steps for one operation of ``nbytes``.  Each step launches one chunk
    send on every participating link; the step's barrier releases when the
    slowest send finishes, and the next step starts inside that completion
    callback — so back-to-back steps on the same link are gap-free and the
    TCP window stays warm, while idle gaps (a busy scheduler, a slow peer
    phase) cool it down exactly as on the PS path.
    """

    def __init__(self, engine: Engine, tcp: TCPParams):
        self.engine = engine
        self.tcp = tcp
        self._inflight_tag: object | None = None
        self._steps: list[tuple[Sequence[Link], float]] = []
        self._step_idx = 0
        self._step_pending = 0
        self._extra_time = 0.0
        self._on_complete: Callable[[], None] | None = None
        #: Completed chunk steps across the executor's lifetime (the
        #: micro-benchmark counts these per wall second).
        self.steps_completed = 0
        self.ops_completed = 0

    # -- Transport interface -------------------------------------------
    @property
    def busy(self) -> bool:
        return self._inflight_tag is not None or self._on_complete is not None

    def send_unit(
        self,
        nbytes: float,
        tag: object = None,
        on_complete: Callable[[], None] | None = None,
        extra_time: float = 0.0,
    ) -> float | None:
        if self.busy:
            raise SimulationError("collective executor is busy")
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes!r}")
        self._steps = self._plan(float(nbytes))
        self._step_idx = 0
        self._extra_time = extra_time
        self._on_complete = on_complete
        self._inflight_tag = tag
        if not self._steps:
            # Single-worker degenerate ring: the allreduce is the identity
            # and moves no bytes.  Completion still goes through the event
            # loop (zero simulated time) so callback ordering matches the
            # multi-worker path.
            self.engine.schedule(self.engine.now, self._op_done)
            return self.engine.now
        self._launch_step()
        return None

    # -- step machinery -------------------------------------------------
    def _plan(self, nbytes: float) -> list[tuple[Sequence[Link], float]]:
        raise NotImplementedError

    def _launch_step(self) -> None:
        links, chunk = self._steps[self._step_idx]
        self._step_pending = len(links)
        tag = self._inflight_tag
        for link in links:
            link.send(
                chunk,
                tag=tag,
                on_complete=self._chunk_done,
                extra_time=self._extra_time,
            )

    def _chunk_done(self) -> None:
        self._step_pending -= 1
        if self._step_pending > 0:
            return
        self.steps_completed += 1
        self._step_idx += 1
        if self._step_idx < len(self._steps):
            self._launch_step()
        else:
            self._op_done()

    def _op_done(self) -> None:
        on_complete = self._on_complete
        self._on_complete = None
        self._inflight_tag = None
        self._steps = []
        self.ops_completed += 1
        if on_complete is not None:
            on_complete()


class RingExecutor(_StepExecutor):
    """Flat ring allreduce: ``2(N-1)`` steps of ``S/N`` bytes each."""

    def __init__(self, topology: RingTopology):
        super().__init__(topology.engine, topology.tcp)
        self.topology = topology

    @property
    def efficiency_factor(self) -> float:
        """Serialized bytes per payload byte on one link: ``2(N-1)/N``.

        Schedulers that plan transfer times from a bandwidth estimate
        (Prophet) divide the link bandwidth by this factor to get the
        collective's *effective* per-byte rate.
        """
        n = self.topology.n_workers
        if n == 1:
            return 0.0
        return 2.0 * (n - 1) / n

    def _plan(self, nbytes: float) -> list[tuple[Sequence[Link], float]]:
        n = self.topology.n_workers
        if n == 1 or nbytes <= 0.0:
            return []
        chunk = nbytes / n
        links = self.topology.links
        return [(links, chunk)] * (2 * (n - 1))


class HierarchicalExecutor(_StepExecutor):
    """Two-level allreduce: intra reduce-scatter, inter ring, intra
    all-gather (``2(g-1) + 2(m-1)`` steps total)."""

    def __init__(self, topology: HierarchicalTopology):
        super().__init__(topology.engine, topology.tcp)
        self.topology = topology

    @property
    def efficiency_factor(self) -> float:
        """Critical-path bytes per payload byte: intra phases move
        ``2(g-1)/g``, the inter-group ring ``2(m-1)/(g·m)``."""
        topo = self.topology
        if topo.n_workers == 1:
            return 0.0
        g = topo.group_size
        m = topo.n_groups
        return 2.0 * (g - 1) / g + 2.0 * (m - 1) / (g * m)

    def _plan(self, nbytes: float) -> list[tuple[Sequence[Link], float]]:
        topo = self.topology
        g = topo.group_size
        m = topo.n_groups
        if topo.n_workers == 1 or nbytes <= 0.0:
            return []
        steps: list[tuple[Sequence[Link], float]] = []
        intra = [(topo.local_links, nbytes / g)] * (g - 1)
        steps.extend(intra)  # reduce-scatter within every group
        if m > 1:
            steps.extend(
                [(topo.global_links, nbytes / (g * m))] * (2 * (m - 1))
            )
        steps.extend(intra)  # all-gather within every group
        return steps
