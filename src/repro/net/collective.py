"""Allreduce collective topologies and their transport executors.

The PS star moves a gradient twice over one worker NIC (push up, pull
down).  A ring allreduce instead moves it as ``2(N-1)`` pipelined chunk
steps of ``S/N`` bytes around a ring of worker-to-neighbor links — the
reduce-scatter then all-gather decomposition — so each worker NIC carries
``2(N-1)/N · S`` bytes per operation regardless of cluster size.  The
hierarchical variant splits the ring into ``m`` groups of ``g`` workers
(``N = m·g``): an intra-group reduce-scatter (``g-1`` steps of ``S/g``),
an inter-group ring allreduce among the group leaders (``2(m-1)`` steps of
``S/(g·m)``), and an intra-group all-gather (``g-1`` steps of ``S/g``) —
fewer inter-node steps at the cost of extra intra-group traffic, the
classic two-level NCCL/Horovod shape.

Every chunk step is a real message on a real :class:`~repro.net.link.Link`
through the same TCP model as the PS path: it pays the Eq. 10 handshake +
slow-start setup unless it rides a warm window (back-to-back steps within
``warm_threshold`` keep the connection warm, exactly like consecutive PS
pushes).  Small transfer units therefore suffer the paper's small-message
penalty **per step**, which makes the tensor-fusion tradeoff the
MG-WFBP policy optimizes genuinely present in the collective backend.

The executors implement the :class:`~repro.net.transport.Transport`
interface, so the worker tier hands them scheduler-committed
:class:`~repro.sched.base.TransferUnit`s exactly as it hands them to a PS
uplink.  Steps are barrier-synchronized: a step completes when its
slowest link finishes (synchronous ring semantics), which is how a
heterogeneous or noisy link slows the whole collective.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.net.link import BandwidthSchedule, Link, send_batch
from repro.net.tcp import TCPParams
from repro.sim.engine import Engine
from repro.sim.rng import spawn_rng
from repro.net.transport import Transport

__all__ = [
    "RingTopology",
    "HierarchicalTopology",
    "RingExecutor",
    "HierarchicalExecutor",
]


def _worker_schedules(
    n_workers: int,
    bandwidth: float | BandwidthSchedule,
    overrides: Mapping[int, float | BandwidthSchedule],
) -> list[BandwidthSchedule]:
    out: list[BandwidthSchedule] = []
    for w in range(n_workers):
        b = overrides.get(w, bandwidth)
        out.append(
            b if isinstance(b, BandwidthSchedule) else BandwidthSchedule.constant(float(b))
        )
    return out


class RingTopology:
    """``n_workers`` in a ring; one next-neighbor link per worker.

    ``links[w]`` is worker ``w``'s transmit link towards worker
    ``(w+1) % n_workers``.  Chunk steps occupy every ring link at once, so
    the slowest link paces the collective — the ring analogue of the
    star's "slowest worker gates BSP".
    """

    def __init__(
        self,
        engine: Engine,
        n_workers: int,
        bandwidth: float | BandwidthSchedule,
        tcp: TCPParams | None = None,
        worker_bandwidth: Mapping[int, float | BandwidthSchedule] | None = None,
        seed: int | None = 0,
        noise_std: float = 0.0,
    ):
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        overrides = dict(worker_bandwidth or {})
        for idx in overrides:
            if not 0 <= idx < n_workers:
                raise ConfigurationError(
                    f"worker_bandwidth override for unknown worker {idx}"
                )
        self.engine = engine
        self.n_workers = n_workers
        self.tcp = tcp if tcp is not None else TCPParams()
        self.links: list[Link] = []
        for w, sched in enumerate(
            _worker_schedules(n_workers, bandwidth, overrides)
        ):
            rng: np.random.Generator | None = None
            if noise_std > 0:
                rng = spawn_rng(seed, "link", w, "ring")
            self.links.append(
                Link(
                    engine,
                    sched,
                    self.tcp,
                    name=f"worker{w}-ring",
                    noise_rng=rng,
                    noise_std=noise_std,
                )
            )

    # ------------------------------------------------------------------
    def ring_link(self, worker: int) -> Link:
        """Worker ``worker``'s transmit link to its next ring neighbor."""
        return self.links[worker]

    def worker_uplinks(self, worker: int) -> list[Link]:
        """All transmit links of ``worker`` (topology-generic accessor)."""
        return [self.links[worker]]

    def worker_downlinks(self, worker: int) -> list[Link]:
        """Receive side: ring traffic is accounted on the transmit links
        (every byte sent is a byte received by the neighbor), so this is
        empty — mirroring the half-duplex PS accounting."""
        return []

    def min_bandwidth(self) -> float:
        """Lowest configured bandwidth on the ring right now (the pace of
        every barrier-synchronized chunk step)."""
        return min(link.current_bandwidth() for link in self.links)


class HierarchicalTopology:
    """Two-level ring: ``m`` groups of ``group_size`` workers each.

    Groups are contiguous blocks (group ``i`` holds workers
    ``[i·g, (i+1)·g)``); worker ``i·g`` is group ``i``'s leader.  Every
    worker gets a *local* link for the intra-group phases; every leader
    additionally gets a *global* link for the inter-group ring.
    """

    def __init__(
        self,
        engine: Engine,
        n_workers: int,
        group_size: int,
        bandwidth: float | BandwidthSchedule,
        tcp: TCPParams | None = None,
        worker_bandwidth: Mapping[int, float | BandwidthSchedule] | None = None,
        seed: int | None = 0,
        noise_std: float = 0.0,
    ):
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        if group_size < 1:
            raise ConfigurationError(f"group_size must be >= 1, got {group_size}")
        if n_workers % group_size != 0:
            raise ConfigurationError(
                f"group_size {group_size} does not divide n_workers {n_workers}"
            )
        overrides = dict(worker_bandwidth or {})
        for idx in overrides:
            if not 0 <= idx < n_workers:
                raise ConfigurationError(
                    f"worker_bandwidth override for unknown worker {idx}"
                )
        self.engine = engine
        self.n_workers = n_workers
        self.group_size = group_size
        self.n_groups = n_workers // group_size
        self.tcp = tcp if tcp is not None else TCPParams()
        schedules = _worker_schedules(n_workers, bandwidth, overrides)

        def _mk(w: int, kind: str) -> Link:
            rng: np.random.Generator | None = None
            if noise_std > 0:
                rng = spawn_rng(seed, "link", w, kind)
            return Link(
                engine,
                schedules[w],
                self.tcp,
                name=f"worker{w}-{kind}",
                noise_rng=rng,
                noise_std=noise_std,
            )

        #: Intra-group transmit link of every worker.
        self.local_links: list[Link] = [_mk(w, "local") for w in range(n_workers)]
        #: Inter-group transmit link of each group leader, group order.
        self.global_links: list[Link] = [
            _mk(i * group_size, "global") for i in range(self.n_groups)
        ]

    # ------------------------------------------------------------------
    def group_of(self, worker: int) -> int:
        return worker // self.group_size

    def leader_of(self, group: int) -> int:
        return group * self.group_size

    def worker_uplinks(self, worker: int) -> list[Link]:
        """All transmit links of ``worker`` (local; plus global for a
        group leader)."""
        links = [self.local_links[worker]]
        if worker % self.group_size == 0:
            links.append(self.global_links[worker // self.group_size])
        return links

    def worker_downlinks(self, worker: int) -> list[Link]:
        """Receive side — empty, as for :class:`RingTopology`."""
        return []

    def min_bandwidth(self) -> float:
        """Lowest configured bandwidth across every collective link."""
        return min(
            link.current_bandwidth()
            for link in (*self.local_links, *self.global_links)
        )


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------

#: Step watchdog: a chunk step is declared stalled once it has run for
#: this multiple of its expected time (slowest participating link's
#: estimate at launch).  A flap that bites mid-step, or a dropped chunk
#: awaiting its retransmit backoff, pushes the step past this bound.
_STEP_TIMEOUT_FACTOR = 3.0
#: Straggler mitigation cap: after this many abort-and-resend rounds the
#: watchdog stops interfering and lets the step drain at link speed.
_MAX_STEP_RETRIES = 2


class _StepExecutor(Transport):
    """Shared machinery: run a unit as barrier-synchronized link steps.

    Subclasses provide :meth:`_plan`, the list of ``(links, chunk_bytes)``
    steps for one operation of ``nbytes``.  Each step launches one chunk
    send on every participating link; the step's barrier releases when the
    slowest send finishes, and the next step starts inside that completion
    callback — so back-to-back steps on the same link are gap-free and the
    TCP window stays warm, while idle gaps (a busy scheduler, a slow peer
    phase) cool it down exactly as on the PS path.

    **Fault mode** (:meth:`set_faults`) adds three behaviours, all behind
    ``self._faults is None`` checks so the fault-free event sequence is
    untouched:

    * every chunk completion rolls the plan's ``push`` drop probability
      (the ``chunk`` leg); a lost chunk retransmits on the same link after
      the :class:`~repro.cluster.messages.RetryPolicy` backoff, without
      releasing the step barrier;
    * a per-step watchdog detects stragglers — steps exceeding
      ``_STEP_TIMEOUT_FACTOR ×`` their launch-time estimate — and
      mitigates with bounded abort-and-resend rounds on the lagging links;
    * :meth:`remove_worker` (subclasses) shrinks the membership after a
      rank crash, rebuilding the step plan over the survivors; the
      in-flight operation must be :meth:`abort`-ed first.
    """

    def __init__(self, engine: Engine, tcp: TCPParams):
        self.engine = engine
        self.tcp = tcp
        self._inflight_tag: object | None = None
        self._steps: list[tuple[Sequence[Link], float]] = []
        self._step_idx = 0
        self._step_pending = 0
        self._extra_time = 0.0
        self._on_complete: Callable[[], None] | None = None
        #: Completed chunk steps across the executor's lifetime (the
        #: micro-benchmark counts these per wall second).
        self.steps_completed = 0
        self.ops_completed = 0
        # Step plans keyed by operation size: the plan is a pure function
        # of (nbytes, membership) and the steps list is never mutated in
        # place (abort/op-done rebind it), so repeat operations of the
        # same size — every iteration of a training run — reuse it.
        # Cleared on membership changes; bounded like the TCP table memo.
        self._plan_cache: dict[float, list[tuple[Sequence[Link], float]]] = {}
        # Fault mode (inert in fault-free builds).
        self._faults = None
        self._owner_of: dict[Link, int] = {}
        #: Ranks removed by elastic shrink (never rejoin).
        self.removed: set[int] = set()
        self._watchdog = None
        self._step_retries = 0
        self._chunk_attempts: dict[Link, int] = {}
        self._resend_timers: dict[Link, object] = {}
        self._zero_event = None

    def set_faults(self, faults) -> None:
        """Attach a :class:`~repro.faults.injector.FaultInjector` and build
        the link→owner map that attributes chunk drops to workers."""
        self._faults = faults
        self._owner_of = self._link_owners()

    def _link_owners(self) -> dict[Link, int]:
        raise NotImplementedError

    def remove_worker(self, worker_id: int) -> None:
        """Elastic shrink: permanently drop ``worker_id`` from the
        membership and rebuild future step plans over the survivors.  The
        executor must be idle (:meth:`abort` any in-flight operation
        first)."""
        if self.busy:
            raise SimulationError(
                "remove_worker() while an operation is in flight; abort() first"
            )
        if worker_id not in self._members:
            raise SimulationError(
                f"worker {worker_id} is not an active collective member"
            )
        self._members.remove(worker_id)
        self.removed.add(worker_id)
        self._plan_cache.clear()
        self._shrunk()
        if self._faults is not None:
            self._owner_of = self._link_owners()

    def _shrunk(self) -> None:
        """Subclass hook run after a membership change."""

    # -- Transport interface -------------------------------------------
    @property
    def busy(self) -> bool:
        return self._inflight_tag is not None or self._on_complete is not None

    def send_unit(
        self,
        nbytes: float,
        tag: object = None,
        on_complete: Callable[[], None] | None = None,
        extra_time: float = 0.0,
    ) -> float | None:
        if self.busy:
            raise SimulationError("collective executor is busy")
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes!r}")
        size = float(nbytes)
        steps = self._plan_cache.get(size)
        if steps is None:
            if len(self._plan_cache) >= 64:
                del self._plan_cache[next(iter(self._plan_cache))]
            steps = self._plan(size)
            self._plan_cache[size] = steps
        self._steps = steps
        self._step_idx = 0
        self._extra_time = extra_time
        self._on_complete = on_complete
        self._inflight_tag = tag
        if not self._steps:
            # Single-worker degenerate ring: the allreduce is the identity
            # and moves no bytes.  Completion still goes through the event
            # loop (zero simulated time) so callback ordering matches the
            # multi-worker path.
            self._zero_event = self.engine.schedule(self.engine.now, self._op_done)
            return self.engine.now
        self._launch_step()
        return None

    def abort(self) -> None:
        """Abort the in-flight operation (a rank crashed mid-collective).

        Every busy participating link drops its chunk (the bytes are lost,
        no completion fires), pending chunk retransmits are cancelled, and
        the executor returns to idle without invoking ``on_complete`` —
        the caller owns resending the operation over the shrunk ring.
        """
        if self._inflight_tag is None and self._on_complete is None:
            return
        self._cancel_watchdog()
        for timer in self._resend_timers.values():
            timer.cancel()
        self._resend_timers.clear()
        self._chunk_attempts.clear()
        if self._zero_event is not None:
            self._zero_event.cancel()
            self._zero_event = None
        if self._steps:
            links, _ = self._steps[self._step_idx]
            for link in links:
                if link.busy:
                    link.abort()
        self._steps = []
        self._step_idx = 0
        self._step_pending = 0
        self._inflight_tag = None
        self._on_complete = None

    # -- steady-state fast-forward protocol (repro.sim.fastforward) -----
    #: Monotone counters extrapolated linearly at engagement.
    ff_counters = ("steps_completed", "ops_completed")

    def ff_state(self, ctx) -> tuple:
        """Canonical snapshot of the in-flight operation's step machinery.

        ``steps_completed``/``ops_completed`` are monotone counters —
        excluded here and extrapolated linearly at engagement.  The step
        plan itself is a pure function of (size, membership), so its
        shape (per-step fan-out and chunk bytes) is all that matters.
        """
        return (
            ctx.tag(self._inflight_tag),
            tuple((len(links), chunk) for links, chunk in self._steps),
            self._step_idx,
            self._step_pending,
            self._extra_time,
            ctx.callback(self._on_complete),
        )

    def ff_shift(self, shift) -> None:
        self._inflight_tag = shift.tag(self._inflight_tag)
        if self._on_complete is not None:
            self._on_complete = shift.callback(self._on_complete)

    # -- step machinery -------------------------------------------------
    def _plan(self, nbytes: float) -> list[tuple[Sequence[Link], float]]:
        raise NotImplementedError

    def _launch_step(self) -> None:
        links, chunk = self._steps[self._step_idx]
        self._step_pending = len(links)
        tag = self._inflight_tag
        if self._faults is None:
            # Barrier step: all chunk sends start this instant, and on a
            # homogeneous quiet ring they finish at the same instant too —
            # send_batch coalesces those N completion wakeups into one
            # engine event (bit-identical; see its docstring).
            send_batch(
                links,
                chunk,
                tag=tag,
                on_complete=self._chunk_done,
                extra_time=self._extra_time,
            )
            return
        self._step_retries = 0
        self._chunk_attempts.clear()
        for link in links:
            link.send(
                chunk,
                tag=tag,
                on_complete=partial(self._chunk_done_reliable, link, chunk),
                extra_time=self._extra_time,
            )
        self._arm_watchdog(links, chunk)

    def _chunk_done(self) -> None:
        self._step_pending -= 1
        if self._step_pending > 0:
            return
        self.steps_completed += 1
        self._step_idx += 1
        if self._step_idx < len(self._steps):
            self._launch_step()
        else:
            self._op_done()

    def _op_done(self) -> None:
        on_complete = self._on_complete
        self._on_complete = None
        self._inflight_tag = None
        self._steps = []
        self._zero_event = None
        self.ops_completed += 1
        if on_complete is not None:
            on_complete()

    # -- fault-mode step machinery --------------------------------------
    def _chunk_done_reliable(self, link: Link, chunk: float) -> None:
        """Fault-mode chunk completion: roll the drop leg, retransmit a
        lost chunk on the same link after backoff, else count towards the
        step barrier."""
        faults = self._faults
        assert faults is not None
        if faults.roll_drop("chunk", self._owner_of.get(link, -1)):
            attempt = self._chunk_attempts.get(link, 0)
            self._chunk_attempts[link] = attempt + 1
            faults.count("chunk_retries")
            self._resend_timers[link] = self.engine.schedule_after(
                faults.retry.timeout_for(attempt), self._resend_chunk, link, chunk
            )
            return
        self._chunk_attempts.pop(link, None)
        self._step_pending -= 1
        if self._step_pending > 0:
            return
        self._cancel_watchdog()
        faults.count("ring_steps")
        self.steps_completed += 1
        self._step_idx += 1
        if self._step_idx < len(self._steps):
            self._launch_step()
        else:
            self._op_done()

    def _resend_chunk(self, link: Link, chunk: float) -> None:
        self._resend_timers.pop(link, None)
        if self._inflight_tag is None:
            return  # operation aborted while the backoff timer was armed
        link.send(
            chunk,
            tag=self._inflight_tag,
            on_complete=partial(self._chunk_done_reliable, link, chunk),
            extra_time=0.0,
        )

    def _arm_watchdog(self, links: Sequence[Link], chunk: float) -> None:
        """Arm the straggler timeout for the step just launched: the
        slowest link's estimate now, scaled by the timeout factor, plus
        the retry policy's backoff for this mitigation round.  A flap that
        starts mid-step slows the transfer below the launch-time estimate
        and trips the timeout — exactly the observable a real straggler
        detector keys on."""
        assert self._faults is not None
        expected = max(link.estimate_time(chunk) for link in links)
        timeout = (
            _STEP_TIMEOUT_FACTOR * (expected + self._extra_time)
            + self._faults.retry.timeout_for(self._step_retries)
        )
        self._watchdog = self.engine.schedule_after(
            timeout, self._step_timeout, self._step_idx
        )

    def _cancel_watchdog(self) -> None:
        if self._watchdog is not None:
            self._watchdog.cancel()
            self._watchdog = None

    def _step_timeout(self, step_idx: int) -> None:
        self._watchdog = None
        if self._inflight_tag is None or step_idx != self._step_idx:
            return  # stale timer: the op was aborted or the step advanced
        faults = self._faults
        assert faults is not None
        faults.count("stalled_steps")
        links, chunk = self._steps[self._step_idx]
        lagging = [link for link in links if link.busy]
        faults.record(
            "collective.straggler",
            "collective/faults",
            {
                "step": step_idx,
                "lagging": sorted(self._owner_of.get(l, -1) for l in lagging),
                "retries": self._step_retries,
            },
        )
        if self._step_retries >= _MAX_STEP_RETRIES or not lagging:
            # Mitigation exhausted (or the step is only waiting out a
            # chunk-retransmit backoff): stop interfering and let the
            # barrier drain at whatever pace the links manage.
            return
        self._step_retries += 1
        for link in lagging:
            link.abort()
            faults.count("chunk_retries")
            link.send(
                chunk,
                tag=self._inflight_tag,
                on_complete=partial(self._chunk_done_reliable, link, chunk),
                extra_time=0.0,
            )
        self._arm_watchdog(links, chunk)


class RingExecutor(_StepExecutor):
    """Flat ring allreduce: ``2(N-1)`` steps of ``S/N`` bytes each.

    ``N`` is the *active* membership: after an elastic shrink
    (:meth:`remove_worker`) the ring rebuilds over the ``k`` survivors —
    ``2(k-1)`` steps of ``S/k`` on the survivors' links, and the
    efficiency factor rescales to ``2(k-1)/k``.
    """

    def __init__(self, topology: RingTopology):
        super().__init__(topology.engine, topology.tcp)
        self.topology = topology
        #: Active ring members, ascending rank order.
        self._members = list(range(topology.n_workers))

    @property
    def members(self) -> list[int]:
        return list(self._members)

    def _link_owners(self) -> dict[Link, int]:
        return {self.topology.links[w]: w for w in self._members}

    @property
    def efficiency_factor(self) -> float:
        """Serialized bytes per payload byte on one link: ``2(N-1)/N``.

        Schedulers that plan transfer times from a bandwidth estimate
        (Prophet) divide the link bandwidth by this factor to get the
        collective's *effective* per-byte rate.
        """
        n = len(self._members)
        if n == 1:
            return 0.0
        return 2.0 * (n - 1) / n

    def _plan(self, nbytes: float) -> list[tuple[Sequence[Link], float]]:
        members = self._members
        n = len(members)
        if n == 1 or nbytes <= 0.0:
            return []
        chunk = nbytes / n
        links = [self.topology.links[w] for w in members]
        return [(links, chunk)] * (2 * (n - 1))


class HierarchicalExecutor(_StepExecutor):
    """Two-level allreduce: intra reduce-scatter, inter ring, intra
    all-gather (``2(g-1) + 2(m-1)`` steps total).

    The two-level shape assumes full groups; a crashed rank punches a
    hole in its group, so an elastic shrink degrades the executor to a
    **flat ring over the survivors' local links** — the simple shape that
    tolerates arbitrary membership, at flat-ring cost ``2(k-1)/k``.
    """

    def __init__(self, topology: HierarchicalTopology):
        super().__init__(topology.engine, topology.tcp)
        self.topology = topology
        self._members = list(range(topology.n_workers))
        # Set by the first removal: plan as a flat ring over survivors.
        self._flat = False

    @property
    def members(self) -> list[int]:
        return list(self._members)

    @property
    def degraded_flat(self) -> bool:
        """Whether a shrink degraded the two-level shape to a flat ring."""
        return self._flat

    def _shrunk(self) -> None:
        self._flat = True

    def _link_owners(self) -> dict[Link, int]:
        topo = self.topology
        owners = {topo.local_links[w]: w for w in self._members}
        for i, link in enumerate(topo.global_links):
            owners[link] = topo.leader_of(i)
        return owners

    @property
    def efficiency_factor(self) -> float:
        """Critical-path bytes per payload byte: intra phases move
        ``2(g-1)/g``, the inter-group ring ``2(m-1)/(g·m)`` (flat-ring
        ``2(k-1)/k`` after an elastic shrink)."""
        topo = self.topology
        n = len(self._members)
        if n == 1:
            return 0.0
        if self._flat:
            return 2.0 * (n - 1) / n
        g = topo.group_size
        m = topo.n_groups
        return 2.0 * (g - 1) / g + 2.0 * (m - 1) / (g * m)

    def _plan(self, nbytes: float) -> list[tuple[Sequence[Link], float]]:
        topo = self.topology
        n = len(self._members)
        if n == 1 or nbytes <= 0.0:
            return []
        if self._flat:
            chunk = nbytes / n
            links = [topo.local_links[w] for w in self._members]
            return [(links, chunk)] * (2 * (n - 1))
        g = topo.group_size
        m = topo.n_groups
        steps: list[tuple[Sequence[Link], float]] = []
        intra = [(topo.local_links, nbytes / g)] * (g - 1)
        steps.extend(intra)  # reduce-scatter within every group
        if m > 1:
            steps.extend(
                [(topo.global_links, nbytes / (g * m))] * (2 * (m - 1))
            )
        steps.extend(intra)  # all-gather within every group
        return steps
