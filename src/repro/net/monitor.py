"""Periodic network-bandwidth monitor.

Prophet's prototype "periodically (e.g., every 5 seconds) acquires the
available network bandwidth B of workers" (paper Sec. 4.2).  This module
reproduces that component: every ``interval`` simulated seconds it samples a
link's available bandwidth (optionally with multiplicative measurement
noise) and retains the latest sample.  Consumers (the Prophet scheduler)
read :meth:`BandwidthMonitor.bandwidth`, seeing a *stale* value between
samples — exactly the information lag a real monitor has under dynamic
network conditions.  :meth:`BandwidthMonitor.sample_age` exposes that lag
so degradation logic can reason about how old its bandwidth estimate is.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.net.link import Link
from repro.sim.engine import Engine

__all__ = ["BandwidthMonitor"]


class BandwidthMonitor:
    """Samples a link's available bandwidth every ``interval`` seconds.

    The first sample is taken at construction time, so a freshly created
    monitor is immediately usable.  ``history`` keeps ``(time, bandwidth)``
    pairs for post-hoc analysis; ``max_history`` bounds its growth (the
    default ``None`` keeps everything, which is fine for short runs — a
    long-lived monitor should set a bound so memory stays constant).
    """

    def __init__(
        self,
        engine: Engine,
        link: Link,
        interval: float = 5.0,
        noise_std: float = 0.0,
        rng: np.random.Generator | None = None,
        max_history: int | None = None,
    ):
        if interval <= 0:
            raise ConfigurationError(f"interval must be positive, got {interval}")
        if noise_std < 0 or noise_std >= 1:
            raise ConfigurationError(f"noise_std must be in [0, 1), got {noise_std}")
        if noise_std > 0 and rng is None:
            raise ConfigurationError("noise_std > 0 requires an rng")
        if max_history is not None and max_history < 1:
            raise ConfigurationError(
                f"max_history must be >= 1 when set, got {max_history}"
            )
        self.engine = engine
        self.link = link
        self.interval = interval
        self._noise_std = noise_std
        self._rng = rng
        self.history: deque[tuple[float, float]] = deque(maxlen=max_history)
        self._last: tuple[float, float] | None = None
        self._stopped = False
        self._sample_event = None
        self._sample()

    def _sample(self) -> None:
        self._sample_event = None
        if self._stopped:
            return
        value = self.link.current_bandwidth()
        if self._noise_std > 0 and self._rng is not None:
            factor = 1.0 + self._noise_std * float(self._rng.standard_normal())
            value *= min(max(factor, 0.5), 1.5)
        self._last = (self.engine.now, value)
        self.history.append(self._last)
        trace = self.engine.trace
        if trace.enabled:
            trace.counter(
                "bandwidth.monitored",
                "net",
                self.engine.now,
                f"net/{self.link.name}",
                {"bytes_per_s": value},
            )
        self._sample_event = self.engine.schedule_after(self.interval, self._sample)

    def _latest(self) -> tuple[float, float]:
        """The most recent sample, surviving an emptied history window.

        ``history`` can legitimately empty mid-run: a consumer may clear it
        to reset post-hoc analysis after a link flap, or a bounded deque
        may be resized underneath a stopped monitor.  The monitor keeps the
        last sample separately so its *estimate* degrades to the last known
        value instead of raising mid-run; only a monitor that somehow never
        sampled at all (impossible through the constructor) raises.
        """
        if self._last is None:
            raise SimulationError(
                f"bandwidth monitor for link {self.link.name!r} has no "
                "samples (the monitor always records one at construction)"
            )
        if self.history:
            return self.history[-1]
        return self._last

    @property
    def bandwidth(self) -> float:
        """Most recent bandwidth sample (bytes/s)."""
        return self._latest()[1]

    @property
    def last_sample_time(self) -> float:
        """Simulation time of the most recent sample."""
        return self._latest()[0]

    def sample_age(self) -> float:
        """How stale the current :attr:`bandwidth` estimate is (seconds)."""
        return self.engine.now - self.last_sample_time

    def stop(self) -> None:
        """Stop sampling and cancel the pending sample event, so a bounded
        run's event queue drains instead of ticking forever."""
        self._stopped = True
        if self._sample_event is not None:
            self._sample_event.cancel()
            self._sample_event = None
