"""Cluster network topology.

The paper's testbed is a star: one parameter server, N workers, each worker
connected by its own (EC2 instance) NIC.  The binding resource in every
experiment is the *worker* NIC — the paper caps "worker bandwidth limit" in
Table 2 and caps a single worker to 500 Mbps in the heterogeneity
experiment — so the topology materializes one uplink (worker→PS, used by
push) and one downlink (PS→worker, used by pull) per worker.

An optional ``ps_bandwidth`` models a PS-side NIC cap by statically dividing
it among workers (the regime where the PS becomes the bottleneck; used by
the scalability ablation).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.net.link import BandwidthSchedule, Link
from repro.net.tcp import TCPParams
from repro.sim.engine import Engine
from repro.sim.rng import spawn_rng

__all__ = ["StarTopology"]


class StarTopology:
    """Star of ``n_workers`` around one PS, with per-worker duplex links.

    Parameters
    ----------
    engine:
        The simulation engine all links schedule on.
    n_workers:
        Number of worker nodes (>= 1).
    bandwidth:
        Default per-worker available bandwidth in bytes/s, or a
        :class:`BandwidthSchedule` for dynamic environments.
    tcp:
        TCP path parameters shared by all links.
    worker_bandwidth:
        Optional per-worker overrides, mapping worker index to a bandwidth
        (bytes/s) or schedule.  Used by the heterogeneous-cluster
        experiments (e.g. worker 0 capped to 500 Mbps).
    ps_bandwidth:
        Optional PS NIC capacity in bytes/s; when set, each worker's
        effective bandwidth is capped at ``ps_bandwidth / n_workers``.
    seed / noise_std:
        Optional multiplicative bandwidth noise per transfer, independent
        per link.
    """

    def __init__(
        self,
        engine: Engine,
        n_workers: int,
        bandwidth: float | BandwidthSchedule,
        tcp: TCPParams | None = None,
        worker_bandwidth: Mapping[int, float | BandwidthSchedule] | None = None,
        ps_bandwidth: float | None = None,
        seed: int | None = 0,
        noise_std: float = 0.0,
    ):
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        if ps_bandwidth is not None and ps_bandwidth <= 0:
            raise ConfigurationError(f"ps_bandwidth must be positive, got {ps_bandwidth}")
        overrides = dict(worker_bandwidth or {})
        for idx in overrides:
            if not 0 <= idx < n_workers:
                raise ConfigurationError(
                    f"worker_bandwidth override for unknown worker {idx}"
                )

        self.engine = engine
        self.n_workers = n_workers
        self.tcp = tcp if tcp is not None else TCPParams()
        self.uplinks: list[Link] = []
        self.downlinks: list[Link] = []

        ps_share = None if ps_bandwidth is None else ps_bandwidth / n_workers
        for w in range(n_workers):
            sched = self._as_schedule(overrides.get(w, bandwidth), ps_share)
            for direction, bucket in (("up", self.uplinks), ("down", self.downlinks)):
                rng: np.random.Generator | None = None
                if noise_std > 0:
                    rng = spawn_rng(seed, "link", w, direction)
                bucket.append(
                    Link(
                        engine,
                        sched,
                        self.tcp,
                        name=f"worker{w}-{direction}",
                        noise_rng=rng,
                        noise_std=noise_std,
                    )
                )

    @staticmethod
    def _as_schedule(
        bandwidth: float | BandwidthSchedule, ps_share: float | None
    ) -> BandwidthSchedule:
        if isinstance(bandwidth, BandwidthSchedule):
            if ps_share is None:
                return bandwidth
            capped = [
                (float(t), min(float(b), ps_share))
                for t, b in zip(bandwidth._times, bandwidth._values)
            ]
            return BandwidthSchedule(capped)
        value = float(bandwidth)
        if ps_share is not None:
            value = min(value, ps_share)
        return BandwidthSchedule.constant(value)

    # ------------------------------------------------------------------
    def uplink(self, worker: int) -> Link:
        """The push link of ``worker`` (worker → PS)."""
        return self.uplinks[worker]

    def downlink(self, worker: int) -> Link:
        """The pull link of ``worker`` (PS → worker)."""
        return self.downlinks[worker]

    def min_bandwidth(self) -> float:
        """Lowest configured bandwidth across workers right now.

        In BSP the slowest worker gates every parameter update; schedulers
        that need a single cluster-level bandwidth estimate use this.
        """
        return min(link.current_bandwidth() for link in self.uplinks)
