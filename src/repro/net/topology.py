"""Cluster network topology.

The paper's testbed is a star: one parameter server, N workers, each worker
connected by its own (EC2 instance) NIC.  The binding resource in every
experiment is the *worker* NIC — the paper caps "worker bandwidth limit" in
Table 2 and caps a single worker to 500 Mbps in the heterogeneity
experiment — so the topology materializes one uplink (worker→PS, used by
push) and one downlink (PS→worker, used by pull) per worker.

An optional ``ps_bandwidth`` models a PS-side NIC cap (the regime where the
PS becomes the bottleneck; used by the scalability ablation).  The cap is
divided among workers with **water-filling** (max-min fair) semantics: a
worker whose own NIC is already slower than the fair share keeps its NIC
rate, and the share it cannot use is redistributed to the faster workers —
the steady state competing TCP flows converge to.  A static
``ps_bandwidth / n_workers`` split would instead strand the slow worker's
unused share (over-capping heterogeneous clusters).

:class:`ShardedTopology` generalizes the star to a BytePS-style sharded PS
tier: ``n_servers`` key-sharded parameter servers, each with its own
``ps_bandwidth`` NIC, and per-``(worker, shard)`` duplex links so a worker
pushes to (and pulls from) every shard concurrently.  Each shard's NIC is
water-filled across the workers independently.  In this model the worker
NIC caps each individual shard flow but not their sum — the sharded regime
of interest is the one where the PS tier, not the worker NIC, is the
bottleneck (see DESIGN.md).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.net.link import BandwidthSchedule, Link
from repro.net.tcp import TCPParams
from repro.sim.engine import Engine
from repro.sim.rng import spawn_rng

__all__ = [
    "StarTopology",
    "ShardedTopology",
    "ClusterFabric",
    "water_fill_level",
    "water_fill_shares",
]


def water_fill_level(demands: Sequence[float], capacity: float) -> float:
    """Max-min fair water level ``L`` for ``demands`` sharing ``capacity``.

    ``L`` solves ``sum(min(d, L)) == capacity``; each flow's fair share is
    ``min(d, L)``.  Returns ``inf`` when the demands fit entirely
    (``sum(demands) <= capacity`` — nobody needs capping).
    """
    if capacity <= 0:
        raise ConfigurationError(f"capacity must be positive, got {capacity}")
    if any(d <= 0 for d in demands):
        raise ConfigurationError("demands must be positive")
    ordered = sorted(demands)
    if sum(ordered) <= capacity:
        return math.inf
    remaining = capacity
    for i, d in enumerate(ordered):
        level = remaining / (len(ordered) - i)
        if d >= level:
            return level
        remaining -= d
    # Unreachable: sum(demands) > capacity guarantees some demand >= level.
    return remaining  # pragma: no cover - defensive


def water_fill_shares(demands: Sequence[float], capacity: float) -> list[float]:
    """Per-flow max-min fair shares of ``capacity`` (``min(d, L)`` each)."""
    level = water_fill_level(demands, capacity)
    return [min(float(d), level) for d in demands]


def _merged_times(schedules: Sequence[BandwidthSchedule]) -> list[float]:
    """Union of all breakpoint times across ``schedules``, sorted."""
    times: set[float] = set()
    for sched in schedules:
        times.update(sched.times)
    times.add(0.0)
    return sorted(times)


def _ps_capped_schedules(
    schedules: Sequence[BandwidthSchedule], ps_bandwidth: float
) -> list[BandwidthSchedule]:
    """Water-fill ``ps_bandwidth`` across per-worker bandwidth schedules.

    Piecewise: at every union breakpoint the water level is recomputed from
    the workers' instantaneous demands, and each worker's capped schedule
    takes ``min(demand, level)`` there.  For a homogeneous cluster this
    reduces exactly to the classic ``min(b, ps_bandwidth / n)`` split.

    The evaluation is incremental: only schedules that actually break at
    ``t`` update their demand (everyone else's value cannot have changed),
    and the shares are memoized on the demand vector — a repeated vector
    replays the cached result of the same sorted-order,
    sequential-subtraction arithmetic, so every share is bit-identical to
    the full per-breakpoint recomputation.  Fleet-scale dynamic
    environments (many links, few of which flap at any instant) drop from
    O(breakpoints x n log n) to O(breakpoints + distinct vectors x
    n log n).  Breakpoints where a worker's share repeats its previous
    segment are elided from that worker's capped schedule — transparent to
    ``value()``, which is piecewise-constant either way.
    """
    merged = _merged_times(schedules)
    start = merged[0]
    breaks_at: dict[float, list[int]] = {t: [] for t in merged}
    for i, sched in enumerate(schedules):
        for t in sched.times:
            if t != start:
                breaks_at[t].append(i)
    demands = [sched.value(start) for sched in schedules]
    share_cache: dict[tuple[float, ...], list[float]] = {}
    capped_points: list[list[tuple[float, float]]] = [[] for _ in schedules]
    for t in merged:
        for i in breaks_at[t]:
            demands[i] = schedules[i].value(t)
        key = tuple(demands)
        shares = share_cache.get(key)
        if shares is None:
            shares = water_fill_shares(demands, ps_bandwidth)
            share_cache[key] = shares
        for points, share in zip(capped_points, shares):
            if not points or points[-1][1] != share:
                points.append((t, share))
    return [BandwidthSchedule(points) for points in capped_points]


class ClusterFabric:
    """Shared datacenter fabric: per-host NICs feeding an oversubscribed core.

    The multi-tenant counterpart of the PS-side water-filling above.  Each
    *tenant* (one training job of the fleet simulator) brings ``n_links``
    worker NICs of ``nic_bandwidth`` bytes/s each; the core carries
    ``core_bandwidth`` bytes/s in aggregate, typically less than the sum
    of all NICs (oversubscription).  Core capacity is divided across the
    currently *active* tenants by water-filling over their aggregate NIC
    demand (``n_links x nic_bandwidth``) — max-min fairness at tenant
    granularity, the steady state of per-tenant congestion control — and
    each tenant's per-link bandwidth is its core share divided evenly
    over its links, never above its own NIC rate.

    :meth:`admit` hands back a **live** :class:`BandwidthSchedule`: the
    tenant builds its job topology on it, and on every membership change
    the fabric re-levels it in place via
    :meth:`BandwidthSchedule.set_level`.  While the fleet is uncontended
    (or has a single tenant) every schedule keeps its single breakpoint,
    so the links' constant-schedule fast path — and hence bit-identity
    with a directly built single job — is preserved.
    """

    def __init__(self, core_bandwidth: float):
        if core_bandwidth <= 0:
            raise ConfigurationError(
                f"core_bandwidth must be positive, got {core_bandwidth}"
            )
        self.core_bandwidth = float(core_bandwidth)
        # name -> (n_links, nic_bandwidth, live schedule); insertion order
        # is the (deterministic) water-filling evaluation order.
        self._tenants: dict[str, tuple[int, float, BandwidthSchedule]] = {}

    # ------------------------------------------------------------------
    @property
    def tenants(self) -> tuple[str, ...]:
        """Names of the currently admitted tenants, admission order."""
        return tuple(self._tenants)

    def demand(self) -> float:
        """Aggregate NIC demand of the active tenants (bytes/s)."""
        return sum(n * nic for n, nic, _ in self._tenants.values())

    def oversubscription(self) -> float:
        """Current demand-to-core ratio (> 1 means contended)."""
        return self.demand() / self.core_bandwidth

    def share(self, name: str) -> float:
        """The per-link bandwidth ``name`` currently gets (bytes/s)."""
        n_links, nic, sched = self._tenants[name]
        return sched._values[-1]

    # ------------------------------------------------------------------
    def admit(
        self, name: str, n_links: int, nic_bandwidth: float, now: float = 0.0
    ) -> BandwidthSchedule:
        """Add a tenant; returns its live per-link bandwidth schedule.

        The schedule starts at the tenant's fair share as of ``now`` and
        is re-levelled in place on every later membership change.  Every
        already-admitted tenant's schedule is re-levelled too.
        """
        if name in self._tenants:
            raise ConfigurationError(f"tenant {name!r} already admitted")
        if n_links < 1:
            raise ConfigurationError(f"n_links must be >= 1, got {n_links}")
        if nic_bandwidth <= 0:
            raise ConfigurationError(
                f"nic_bandwidth must be positive, got {nic_bandwidth}"
            )
        sched = BandwidthSchedule.constant(float(nic_bandwidth))
        self._tenants[name] = (n_links, float(nic_bandwidth), sched)
        self._relevel(now)
        return sched

    def release(self, name: str, now: float = 0.0) -> None:
        """Remove a tenant and redistribute its core share."""
        if name not in self._tenants:
            raise ConfigurationError(f"unknown tenant {name!r}")
        del self._tenants[name]
        self._relevel(now)

    def _relevel(self, now: float) -> None:
        """Water-fill the core over the active tenants' NIC demands.

        An unconstrained tenant (its whole demand fits under the water
        level) keeps its exact NIC rate — not ``demand / n_links``, whose
        float division could differ in the last ulp — so an uncontended
        fleet stays bit-identical to dedicated links.
        """
        tenants = self._tenants.values()
        if not tenants:
            return
        demands = [n * nic for n, nic, _ in tenants]
        level = water_fill_level(demands, self.core_bandwidth)
        for (n_links, nic, sched), demand in zip(tenants, demands):
            if demand <= level:
                per_link = nic
            else:
                per_link = min(nic, level / n_links)
            sched.set_level(now, per_link)


def _as_schedule(bandwidth: float | BandwidthSchedule) -> BandwidthSchedule:
    if isinstance(bandwidth, BandwidthSchedule):
        return bandwidth
    return BandwidthSchedule.constant(float(bandwidth))


def _effective_schedules(
    n_workers: int,
    bandwidth: float | BandwidthSchedule,
    overrides: Mapping[int, float | BandwidthSchedule],
    ps_bandwidth: float | None,
) -> list[BandwidthSchedule]:
    """Per-worker effective bandwidth schedules under the PS-side cap."""
    raw = [_as_schedule(overrides.get(w, bandwidth)) for w in range(n_workers)]
    if ps_bandwidth is None:
        return raw
    return _ps_capped_schedules(raw, ps_bandwidth)


class StarTopology:
    """Star of ``n_workers`` around one PS, with per-worker duplex links.

    Parameters
    ----------
    engine:
        The simulation engine all links schedule on.
    n_workers:
        Number of worker nodes (>= 1).
    bandwidth:
        Default per-worker available bandwidth in bytes/s, or a
        :class:`BandwidthSchedule` for dynamic environments.
    tcp:
        TCP path parameters shared by all links.
    worker_bandwidth:
        Optional per-worker overrides, mapping worker index to a bandwidth
        (bytes/s) or schedule.  Used by the heterogeneous-cluster
        experiments (e.g. worker 0 capped to 500 Mbps).
    ps_bandwidth:
        Optional PS NIC capacity in bytes/s; when set, it is divided among
        the workers with water-filling (max-min fair) semantics — see the
        module docstring.
    seed / noise_std:
        Optional multiplicative bandwidth noise per transfer, independent
        per link.
    """

    def __init__(
        self,
        engine: Engine,
        n_workers: int,
        bandwidth: float | BandwidthSchedule,
        tcp: TCPParams | None = None,
        worker_bandwidth: Mapping[int, float | BandwidthSchedule] | None = None,
        ps_bandwidth: float | None = None,
        seed: int | None = 0,
        noise_std: float = 0.0,
    ):
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        if ps_bandwidth is not None and ps_bandwidth <= 0:
            raise ConfigurationError(f"ps_bandwidth must be positive, got {ps_bandwidth}")
        overrides = dict(worker_bandwidth or {})
        for idx in overrides:
            if not 0 <= idx < n_workers:
                raise ConfigurationError(
                    f"worker_bandwidth override for unknown worker {idx}"
                )

        self.engine = engine
        self.n_workers = n_workers
        self.tcp = tcp if tcp is not None else TCPParams()
        self.uplinks: list[Link] = []
        self.downlinks: list[Link] = []

        schedules = _effective_schedules(n_workers, bandwidth, overrides, ps_bandwidth)
        for w, sched in enumerate(schedules):
            for direction, bucket in (("up", self.uplinks), ("down", self.downlinks)):
                rng: np.random.Generator | None = None
                if noise_std > 0:
                    rng = spawn_rng(seed, "link", w, direction)
                bucket.append(
                    Link(
                        engine,
                        sched,
                        self.tcp,
                        name=f"worker{w}-{direction}",
                        noise_rng=rng,
                        noise_std=noise_std,
                    )
                )

    # ------------------------------------------------------------------
    def uplink(self, worker: int) -> Link:
        """The push link of ``worker`` (worker → PS)."""
        return self.uplinks[worker]

    def downlink(self, worker: int) -> Link:
        """The pull link of ``worker`` (PS → worker)."""
        return self.downlinks[worker]

    def worker_uplinks(self, worker: int) -> list[Link]:
        """All push links of ``worker`` (one; topology-generic accessor)."""
        return [self.uplinks[worker]]

    def worker_downlinks(self, worker: int) -> list[Link]:
        """All pull links of ``worker`` (one; topology-generic accessor)."""
        return [self.downlinks[worker]]

    def min_bandwidth(self) -> float:
        """Lowest configured bandwidth across workers right now.

        In BSP the slowest worker gates every parameter update; schedulers
        that need a single cluster-level bandwidth estimate use this.
        """
        return min(link.current_bandwidth() for link in self.uplinks)


class ShardedTopology:
    """Key-sharded PS tier: ``n_servers`` servers, per-shard duplex links.

    Every worker gets one uplink and one downlink **per shard**, so pushes
    to different shards proceed concurrently (no head-of-line blocking
    between shards — the BytePS deployment model).  Each server has its own
    ``ps_bandwidth`` NIC, water-filled across the workers; each
    ``(worker, shard)`` link is additionally capped by the worker's own
    configured bandwidth.

    The worker NIC caps each shard flow individually but not their sum —
    an accepted simplification for the PS-bound regime this topology
    targets (see DESIGN.md, "Sharded PS tier").
    """

    def __init__(
        self,
        engine: Engine,
        n_workers: int,
        n_servers: int,
        bandwidth: float | BandwidthSchedule,
        tcp: TCPParams | None = None,
        worker_bandwidth: Mapping[int, float | BandwidthSchedule] | None = None,
        ps_bandwidth: float | None = None,
        seed: int | None = 0,
        noise_std: float = 0.0,
    ):
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        if n_servers < 1:
            raise ConfigurationError(f"n_servers must be >= 1, got {n_servers}")
        if ps_bandwidth is not None and ps_bandwidth <= 0:
            raise ConfigurationError(f"ps_bandwidth must be positive, got {ps_bandwidth}")
        overrides = dict(worker_bandwidth or {})
        for idx in overrides:
            if not 0 <= idx < n_workers:
                raise ConfigurationError(
                    f"worker_bandwidth override for unknown worker {idx}"
                )

        self.engine = engine
        self.n_workers = n_workers
        self.n_servers = n_servers
        self.tcp = tcp if tcp is not None else TCPParams()
        # uplinks[worker][shard] / downlinks[worker][shard]
        self.uplinks: list[list[Link]] = []
        self.downlinks: list[list[Link]] = []

        # Every shard serves all workers, so the per-shard water-filling is
        # identical across shards; compute it once.
        schedules = _effective_schedules(n_workers, bandwidth, overrides, ps_bandwidth)
        for w in range(n_workers):
            ups: list[Link] = []
            downs: list[Link] = []
            for s in range(n_servers):
                for direction, bucket in (("up", ups), ("down", downs)):
                    rng: np.random.Generator | None = None
                    if noise_std > 0:
                        rng = spawn_rng(seed, "link", w, s, direction)
                    bucket.append(
                        Link(
                            engine,
                            schedules[w],
                            self.tcp,
                            name=f"worker{w}-s{s}-{direction}",
                            noise_rng=rng,
                            noise_std=noise_std,
                        )
                    )
            self.uplinks.append(ups)
            self.downlinks.append(downs)

    # ------------------------------------------------------------------
    def uplink(self, worker: int, shard: int = 0) -> Link:
        """The push link of ``worker`` towards ``shard``."""
        return self.uplinks[worker][shard]

    def downlink(self, worker: int, shard: int = 0) -> Link:
        """The pull link of ``shard`` towards ``worker``."""
        return self.downlinks[worker][shard]

    def worker_uplinks(self, worker: int) -> list[Link]:
        """All push links of ``worker``, shard order."""
        return list(self.uplinks[worker])

    def worker_downlinks(self, worker: int) -> list[Link]:
        """All pull links of ``worker``, shard order."""
        return list(self.downlinks[worker])

    def min_bandwidth(self) -> float:
        """Lowest configured bandwidth across all worker/shard links."""
        return min(
            link.current_bandwidth() for links in self.uplinks for link in links
        )
