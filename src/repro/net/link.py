"""Serialized network links with time-varying available bandwidth.

A :class:`Link` is the unit resource that communication schedulers contend
for.  It enforces the paper's Constraint (8): at most one transfer occupies
a link at a time ("to ensure that each gradient is transferred with the full
available network bandwidth ... avoids the concurrent gradient transfer").
Preemption is therefore only possible at transfer boundaries, which is
exactly why partition / block sizing matters.

Bandwidth may vary over time via a piecewise-constant
:class:`BandwidthSchedule` — this is how the "dynamic network environments"
experiments (paper Sec. 5.3) are driven.  Each transfer's duration is
computed from the bandwidth available at its start time through the TCP
model of :mod:`repro.net.tcp`, optionally with multiplicative measurement
noise to represent cross-traffic.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.net.tcp import TCPParams, transfer_time
from repro.sim.engine import Engine

__all__ = ["BandwidthSchedule", "TransferRecord", "Link"]


class BandwidthSchedule:
    """Piecewise-constant available bandwidth (bytes/second) over time.

    ``points`` is a sequence of ``(start_time, bandwidth)`` pairs; the first
    segment is extended back to t=0 and the last forward to infinity.  A
    constant schedule is just ``BandwidthSchedule.constant(B)``.
    """

    def __init__(self, points: Sequence[tuple[float, float]]):
        if not points:
            raise ConfigurationError("BandwidthSchedule needs at least one point")
        times = [float(t) for t, _ in points]
        values = [float(b) for _, b in points]
        if any(b <= 0 for b in values):
            raise ConfigurationError("bandwidth values must be positive")
        if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
            raise ConfigurationError("schedule times must be strictly increasing")
        self._times = times
        self._values = values
        # Segment of the most recent lookup.  Simulation time only moves
        # forward, so nearly every ``value()`` call lands in the cached
        # segment (or the next one) and resolves without a bisect.
        self._cursor = 0

    @classmethod
    def constant(cls, bandwidth: float) -> "BandwidthSchedule":
        """A schedule that never changes."""
        return cls([(0.0, bandwidth)])

    @property
    def points(self) -> tuple[tuple[float, float], ...]:
        """The ``(start_time, bandwidth)`` breakpoints, in time order."""
        return tuple(zip(self._times, self._values))

    @property
    def times(self) -> tuple[float, ...]:
        """Breakpoint start times, strictly increasing."""
        return tuple(self._times)

    @property
    def values(self) -> tuple[float, ...]:
        """Bandwidth level of each breakpoint segment (bytes/s)."""
        return tuple(self._values)

    def capped(self, limit: float) -> "BandwidthSchedule":
        """A copy of this schedule with every level capped at ``limit``.

        Used to layer a shared-resource ceiling (e.g. a parameter server's
        NIC share) onto a worker's own bandwidth schedule.
        """
        if limit <= 0:
            raise ConfigurationError(f"cap limit must be positive, got {limit}")
        return BandwidthSchedule(
            [(t, min(v, float(limit))) for t, v in zip(self._times, self._values)]
        )

    def value(self, time: float) -> float:
        """Available bandwidth at ``time``."""
        times = self._times
        idx = self._cursor
        if times[idx] <= time:
            nxt = idx + 1
            if nxt == len(times) or time < times[nxt]:
                return self._values[idx]
            idx = bisect_right(times, time, lo=nxt) - 1
        else:
            # Query behind the cursor (replay, fault-injection probes):
            # fall back to a bisect over the prefix.
            idx = bisect_right(times, time, hi=idx) - 1
            if idx < 0:
                idx = 0
        self._cursor = idx
        return self._values[idx]

    @property
    def mean(self) -> float:
        """Unweighted mean of the schedule's levels (for summaries)."""
        return float(np.mean(self._values))


@dataclass(frozen=True, slots=True)
class TransferRecord:
    """One completed transfer on a link (for timelines and throughput)."""

    start: float
    end: float
    nbytes: float
    tag: object = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def throughput(self) -> float:
        """Achieved bytes/second (0 for an instantaneous record)."""
        return self.nbytes / self.duration if self.duration > 0 else 0.0


@dataclass(slots=True)
class _InFlight:
    nbytes: float
    tag: object
    start: float
    end: float
    on_complete: Callable[[], None] | None


class Link:
    """A serialized, unidirectional link driven by a simulation engine.

    The owner starts transfers with :meth:`send`; exactly one transfer may
    be in flight.  When it completes, the link records it, fires the
    transfer's ``on_complete`` callback, and then the link-level ``on_idle``
    callback (the scheduler's cue to pick the next transfer).
    """

    def __init__(
        self,
        engine: Engine,
        schedule: BandwidthSchedule,
        tcp: TCPParams,
        name: str = "link",
        noise_rng: np.random.Generator | None = None,
        noise_std: float = 0.0,
    ):
        if noise_std < 0 or noise_std >= 1:
            raise ConfigurationError(f"noise_std must be in [0, 1), got {noise_std}")
        self.engine = engine
        self.schedule = schedule
        self.tcp = tcp
        self.name = name
        self._noise_rng = noise_rng
        self._noise_std = noise_std
        self._inflight: _InFlight | None = None
        self._finish_event = None
        self.records: list[TransferRecord] = []
        self.total_bytes = 0.0
        #: Transfers cut short by :meth:`abort` (worker crashes) — the
        #: bytes never arrive and are not credited anywhere.
        self.aborted_transfers = 0
        self.on_idle: Callable[[], None] | None = None
        self._last_end: float | None = None
        # Running busy-time total: O(1) utilization for the trace counter.
        self._busy_accum = 0.0

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """Whether a transfer is currently in flight."""
        return self._inflight is not None

    @property
    def busy_until(self) -> float:
        """Completion time of the in-flight transfer (``now`` if idle)."""
        if self._inflight is None:
            return self.engine.now
        return self._inflight.end

    def current_bandwidth(self) -> float:
        """Available (configured) bandwidth right now, before TCP effects."""
        return self.schedule.value(self.engine.now)

    def estimate_time(self, nbytes: float) -> float:
        """Transfer time ``nbytes`` would take if started now (no noise)."""
        return float(
            transfer_time(
                nbytes, self.current_bandwidth(), self.tcp, warm=self._is_warm()
            )
        )

    def _is_warm(self) -> bool:
        """Whether a send starting now rides an already-open window."""
        if self._last_end is None:
            return False
        return (self.engine.now - self._last_end) <= self.tcp.warm_threshold

    # ------------------------------------------------------------------
    def send(
        self,
        nbytes: float,
        tag: object = None,
        on_complete: Callable[[], None] | None = None,
        extra_time: float = 0.0,
    ) -> float:
        """Start a transfer; returns its completion time.

        ``extra_time`` adds strategy-level blocking overhead (e.g. P3's
        per-partition stop-and-wait synchronization) during which the link
        stays occupied.  Raises :class:`SimulationError` if the link is
        busy — callers must serialize via the ``on_idle`` callback,
        mirroring Constraint (8).
        """
        if self._inflight is not None:
            raise SimulationError(
                f"link {self.name!r} is busy until t={self._inflight.end:.6f}"
            )
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes!r}")
        if extra_time < 0:
            raise SimulationError(f"negative extra_time {extra_time!r}")
        bandwidth = self.current_bandwidth()
        if self._noise_rng is not None and self._noise_std > 0:
            factor = 1.0 + self._noise_std * float(self._noise_rng.standard_normal())
            bandwidth *= min(max(factor, 0.1), 2.0)
        duration = (
            float(transfer_time(nbytes, bandwidth, self.tcp, warm=self._is_warm()))
            + extra_time
        )
        start = self.engine.now
        end = start + duration
        self._inflight = _InFlight(nbytes, tag, start, end, on_complete)
        self._finish_event = self.engine.schedule(end, self._finish)
        return end

    def abort(self) -> object | None:
        """Abort the in-flight transfer (the sender crashed mid-send).

        The bytes are lost: no record is appended, no ``on_complete`` or
        ``on_idle`` callback fires, and the completion event is cancelled.
        Returns the aborted transfer's tag, or ``None`` if the link was
        idle.  TCP state is reset (the next send pays a cold start).
        """
        inflight = self._inflight
        if inflight is None:
            return None
        if self._finish_event is not None:
            self._finish_event.cancel()
            self._finish_event = None
        self._inflight = None
        self._last_end = None
        self.aborted_transfers += 1
        trace = self.engine.trace
        if trace.enabled:
            trace.instant(
                "transfer.aborted",
                "fault",
                self.engine.now,
                f"net/{self.name}",
                {"nbytes": inflight.nbytes, "started": inflight.start},
            )
        return inflight.tag

    def _finish(self) -> None:
        inflight = self._inflight
        if inflight is None:  # pragma: no cover - defensive
            raise SimulationError(f"link {self.name!r} finished with no transfer")
        self._inflight = None
        self._finish_event = None
        self._last_end = inflight.end
        self.records.append(
            TransferRecord(inflight.start, inflight.end, inflight.nbytes, inflight.tag)
        )
        self.total_bytes += inflight.nbytes
        self._busy_accum += inflight.end - inflight.start
        trace = self.engine.trace
        if trace.enabled:
            tag = inflight.tag
            name = (
                f"{tag[0]} i{tag[1]}"
                if isinstance(tag, tuple) and len(tag) == 2
                else "transfer"
            )
            track = f"net/{self.name}"
            trace.complete(
                name,
                "transfer",
                inflight.start,
                inflight.end,
                track,
                {"nbytes": inflight.nbytes},
            )
            now = self.engine.now
            if now > 0:
                trace.counter(
                    "link.utilization",
                    "net",
                    now,
                    track,
                    {"busy_fraction": self._busy_accum / now},
                )
        if inflight.on_complete is not None:
            inflight.on_complete()
        if self.on_idle is not None:
            self.on_idle()

    # ------------------------------------------------------------------
    def busy_time(self, until: float | None = None) -> float:
        """Total time the link spent transferring, up to ``until``.

        O(1) for the common case: completed records all lie in the past,
        so the maintained ``_busy_accum`` already is their sum.  Only a
        horizon strictly before ``now`` (retrospective queries) needs the
        per-record clamp.
        """
        horizon = self.engine.now if until is None else until
        if horizon >= self.engine.now:
            total = self._busy_accum
        else:
            total = sum(
                max(0.0, min(r.end, horizon) - min(r.start, horizon))
                for r in self.records
            )
        if self._inflight is not None and self._inflight.start < horizon:
            total += min(self._inflight.end, horizon) - self._inflight.start
        return total
