"""Serialized network links with time-varying available bandwidth.

A :class:`Link` is the unit resource that communication schedulers contend
for.  It enforces the paper's Constraint (8): at most one transfer occupies
a link at a time ("to ensure that each gradient is transferred with the full
available network bandwidth ... avoids the concurrent gradient transfer").
Preemption is therefore only possible at transfer boundaries, which is
exactly why partition / block sizing matters.

Bandwidth may vary over time via a piecewise-constant
:class:`BandwidthSchedule` — this is how the "dynamic network environments"
experiments (paper Sec. 5.3) are driven.  Each transfer's duration is
computed from the bandwidth available at its start time through the TCP
model of :mod:`repro.net.tcp`, optionally with multiplicative measurement
noise to represent cross-traffic.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable, NamedTuple, Sequence

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.net.tcp import TCPParams, _slow_start_table, is_warm, transfer_time
from repro.sim.engine import Engine

__all__ = ["BandwidthSchedule", "TransferRecord", "Link", "send_batch"]


class BandwidthSchedule:
    """Piecewise-constant available bandwidth (bytes/second) over time.

    ``points`` is a sequence of ``(start_time, bandwidth)`` pairs; the first
    segment is extended back to t=0 and the last forward to infinity.  A
    constant schedule is just ``BandwidthSchedule.constant(B)``.
    """

    def __init__(self, points: Sequence[tuple[float, float]]):
        if not points:
            raise ConfigurationError("BandwidthSchedule needs at least one point")
        times = [float(t) for t, _ in points]
        values = [float(b) for _, b in points]
        if any(b <= 0 for b in values):
            raise ConfigurationError("bandwidth values must be positive")
        if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
            raise ConfigurationError("schedule times must be strictly increasing")
        self._times = times
        self._values = values
        # Segment of the most recent lookup.  Simulation time only moves
        # forward, so nearly every ``value()`` call lands in the cached
        # segment (or the next one) and resolves without a bisect.
        self._cursor = 0
        # Mutation counter, bumped by set_level().  Consumers that cache
        # derived state off the breakpoints (a Link's constant-schedule
        # shortcut) compare this to detect in-place mutation — rebinding
        # the schedule object is already caught by identity.
        self._version = 0

    @classmethod
    def constant(cls, bandwidth: float) -> "BandwidthSchedule":
        """A schedule that never changes."""
        return cls([(0.0, bandwidth)])

    @property
    def points(self) -> tuple[tuple[float, float], ...]:
        """The ``(start_time, bandwidth)`` breakpoints, in time order."""
        return tuple(zip(self._times, self._values))

    @property
    def times(self) -> tuple[float, ...]:
        """Breakpoint start times, strictly increasing."""
        return tuple(self._times)

    @property
    def values(self) -> tuple[float, ...]:
        """Bandwidth level of each breakpoint segment (bytes/s)."""
        return tuple(self._values)

    def capped(self, limit: float) -> "BandwidthSchedule":
        """A copy of this schedule with every level capped at ``limit``.

        Used to layer a shared-resource ceiling (e.g. a parameter server's
        NIC share) onto a worker's own bandwidth schedule.
        """
        if limit <= 0:
            raise ConfigurationError(f"cap limit must be positive, got {limit}")
        return BandwidthSchedule(
            [(t, min(v, float(limit))) for t, v in zip(self._times, self._values)]
        )

    def set_level(self, time: float, bandwidth: float) -> None:
        """Re-level the schedule from ``time`` onward to ``bandwidth``.

        Breakpoints at or after ``time`` are dropped and (unless the
        preceding segment already sits at ``bandwidth``) one breakpoint
        ``(time, bandwidth)`` is appended.  This is the mutation used by
        live bandwidth division — the fleet fabric re-levels every
        tenant's schedule whenever a job arrives or finishes — and it is
        why :meth:`value` clamps its cursor: a truncation can leave the
        cached segment index pointing past the end of the breakpoint
        list, and the behind-cursor prefix bisect would then scan (and
        index) beyond the freshly shortened list.
        """
        if bandwidth <= 0:
            raise ConfigurationError(
                f"bandwidth values must be positive, got {bandwidth}"
            )
        if not (time >= 0.0) or time != time or time == float("inf"):
            raise ConfigurationError(f"set_level time must be finite and >= 0, got {time}")
        times = self._times
        values = self._values
        bandwidth = float(bandwidth)
        idx = bisect_left(times, float(time))
        if idx == len(times) and values[-1] == bandwidth:
            return  # Tail already at this level: nothing changes.
        del times[idx:]
        del values[idx:]
        if not times or values[-1] != bandwidth:
            times.append(float(time))
            values.append(bandwidth)
        self._version += 1
        if self._cursor >= len(times):
            self._cursor = len(times) - 1

    def value(self, time: float) -> float:
        """Available bandwidth at ``time``."""
        times = self._times
        idx = self._cursor
        if idx >= len(times):
            # Stale cursor (set_level truncated the breakpoints since the
            # last lookup): clamp before indexing.
            idx = len(times) - 1
            self._cursor = idx
        if times[idx] <= time:
            nxt = idx + 1
            if nxt == len(times) or time < times[nxt]:
                return self._values[idx]
            idx = bisect_right(times, time, lo=nxt) - 1
        else:
            # Query behind the cursor (replay, fault-injection probes):
            # fall back to a bisect over the prefix.
            idx = bisect_right(times, time, hi=idx) - 1
            if idx < 0:
                idx = 0
        self._cursor = idx
        return self._values[idx]

    @property
    def mean(self) -> float:
        """Unweighted mean of the schedule's levels (for summaries)."""
        return float(np.mean(self._values))


class TransferRecord(NamedTuple):
    """One completed transfer on a link (for timelines and throughput).

    A named tuple rather than a dataclass: one is built per completed
    transfer, so C-speed construction matters in fleet-scale runs.
    """

    start: float
    end: float
    nbytes: float
    tag: object = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def throughput(self) -> float:
        """Achieved bytes/second (0 for an instantaneous record)."""
        return self.nbytes / self.duration if self.duration > 0 else 0.0


# In-flight transfer state, a plain ``(nbytes, tag, start, end,
# on_complete)`` tuple: link.py is the only reader, and tuple construction
# is several times cheaper than a dataclass __init__ on the send hot path.
_NBYTES, _TAG, _START, _END, _ON_COMPLETE = range(5)


class Link:
    """A serialized, unidirectional link driven by a simulation engine.

    The owner starts transfers with :meth:`send`; exactly one transfer may
    be in flight.  When it completes, the link records it, fires the
    transfer's ``on_complete`` callback, and then the link-level ``on_idle``
    callback (the scheduler's cue to pick the next transfer).
    """

    def __init__(
        self,
        engine: Engine,
        schedule: BandwidthSchedule,
        tcp: TCPParams,
        name: str = "link",
        noise_rng: np.random.Generator | None = None,
        noise_std: float = 0.0,
    ):
        if noise_std < 0 or noise_std >= 1:
            raise ConfigurationError(f"noise_std must be in [0, 1), got {noise_std}")
        self.engine = engine
        self.schedule = schedule
        self.tcp = tcp
        self.name = name
        self._noise_rng = noise_rng
        self._noise_std = noise_std
        self._inflight: tuple | None = None
        self._finish_event = None
        self.records: list[TransferRecord] = []
        self.total_bytes = 0.0
        #: Transfers cut short by :meth:`abort` (worker crashes) — the
        #: bytes never arrive and are not credited anywhere.
        self.aborted_transfers = 0
        self.on_idle: Callable[[], None] | None = None
        self._last_end: float | None = None
        # Running busy-time total: O(1) utilization for the trace counter.
        self._busy_accum = 0.0
        # Hot-path caches: the warm-gap threshold, the pre-bound completion
        # callback (building a bound method per send is measurable), and the
        # slow-start table for the bandwidth seen by the last send.  The
        # table only changes at schedule breakpoints (or every send, under
        # noise), so this skips the memo-dict lookup that hashes TCPParams.
        self._warm_threshold = tcp.warm_threshold
        self._finish_cb = self._finish
        self._tbl = None
        self._tbl_bw = -1.0
        # Delay grid (see Engine): transfer durations are snapped before
        # ``end = start + duration`` so completion times stay exact grid
        # multiples.  Cached off the engine once; None disables snapping.
        self._quantum = engine._quantum
        self._inv_quantum = engine._inv_quantum
        #: Fast-forward journal (repro.sim.fastforward); a list while one
        #: steady-state cycle is being recorded, else None.
        self._ff_journal: list | None = None
        # Constant-schedule hint: most links never change bandwidth, so
        # their sends can skip the segment lookup entirely.  Keyed by
        # identity so rebinding ``self.schedule`` (fault injection wraps
        # it in a FlappedSchedule) silently disables the shortcut, and by
        # the schedule's mutation version so an in-place ``set_level``
        # (the fleet fabric re-levelling a tenant share) disables it too.
        if len(schedule._times) == 1:
            self._const_sched = schedule
            self._const_bw = schedule._values[0]
            self._const_ver = schedule._version
        else:
            self._const_sched = None
            self._const_bw = 0.0
            self._const_ver = -1

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """Whether a transfer is currently in flight."""
        return self._inflight is not None

    @property
    def busy_until(self) -> float:
        """Completion time of the in-flight transfer (``now`` if idle)."""
        if self._inflight is None:
            return self.engine.now
        return self._inflight[_END]

    def current_bandwidth(self) -> float:
        """Available (configured) bandwidth right now, before TCP effects."""
        return self.schedule.value(self.engine.now)

    def estimate_time(self, nbytes: float) -> float:
        """Transfer time ``nbytes`` would take if started now (no noise)."""
        return float(
            transfer_time(
                nbytes, self.current_bandwidth(), self.tcp, warm=self._is_warm()
            )
        )

    def _is_warm(self) -> bool:
        """Whether a send starting now rides an already-open window."""
        if self._last_end is None:
            return False
        return is_warm(self.engine.now - self._last_end, self.tcp)

    # ------------------------------------------------------------------
    def send(
        self,
        nbytes: float,
        tag: object = None,
        on_complete: Callable[[], None] | None = None,
        extra_time: float = 0.0,
    ) -> float:
        """Start a transfer; returns its completion time.

        ``extra_time`` adds strategy-level blocking overhead (e.g. P3's
        per-partition stop-and-wait synchronization) during which the link
        stays occupied.  Raises :class:`SimulationError` if the link is
        busy — callers must serialize via the ``on_idle`` callback,
        mirroring Constraint (8).
        """
        if self._inflight is not None:
            raise SimulationError(
                f"link {self.name!r} is busy until t={self._inflight[_END]:.6f}"
            )
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes!r}")
        if extra_time < 0:
            raise SimulationError(f"negative extra_time {extra_time!r}")
        engine = self.engine
        start = engine._now
        sched = self.schedule
        bandwidth = (
            self._const_bw
            if sched is self._const_sched and sched._version == self._const_ver
            else sched.value(start)
        )
        if self._noise_rng is not None and self._noise_std > 0:
            factor = 1.0 + self._noise_std * float(self._noise_rng.standard_normal())
            bandwidth *= min(max(factor, 0.1), 2.0)
        # Inlined transfer_time(): schedule validation guarantees a positive
        # bandwidth, and nbytes was checked above, so the scalar fast path
        # reduces to one table replay.  Same IEEE-754 sequence as the
        # wrapper — durations are bit-identical.
        if bandwidth != self._tbl_bw:
            self._tbl = _slow_start_table(bandwidth, self.tcp)
            self._tbl_bw = bandwidth
        last_end = self._last_end
        warm = last_end is not None and (start - last_end) <= self._warm_threshold
        duration = self._tbl.transfer_time(nbytes, warm) + extra_time
        quantum = self._quantum
        if quantum is not None:
            duration = round(duration * self._inv_quantum) * quantum
        end = start + duration
        self._inflight = (nbytes, tag, start, end, on_complete)
        self._finish_event = engine.schedule(end, self._finish_cb)
        return end

    def _start(
        self,
        nbytes: float,
        tag: object,
        on_complete: Callable[[], None] | None,
        extra_time: float,
    ) -> float:
        """:meth:`send` minus the completion event — :func:`send_batch`
        defers scheduling so same-instant completions share one event."""
        if self._inflight is not None:
            raise SimulationError(
                f"link {self.name!r} is busy until t={self._inflight[_END]:.6f}"
            )
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes!r}")
        if extra_time < 0:
            raise SimulationError(f"negative extra_time {extra_time!r}")
        start = self.engine._now
        sched = self.schedule
        bandwidth = (
            self._const_bw
            if sched is self._const_sched and sched._version == self._const_ver
            else sched.value(start)
        )
        if self._noise_rng is not None and self._noise_std > 0:
            factor = 1.0 + self._noise_std * float(self._noise_rng.standard_normal())
            bandwidth *= min(max(factor, 0.1), 2.0)
        if bandwidth != self._tbl_bw:
            self._tbl = _slow_start_table(bandwidth, self.tcp)
            self._tbl_bw = bandwidth
        last_end = self._last_end
        warm = last_end is not None and (start - last_end) <= self._warm_threshold
        duration = self._tbl.transfer_time(nbytes, warm) + extra_time
        quantum = self._quantum
        if quantum is not None:
            duration = round(duration * self._inv_quantum) * quantum
        end = start + duration
        self._inflight = (nbytes, tag, start, end, on_complete)
        self._finish_event = None
        return end

    def abort(self) -> object | None:
        """Abort the in-flight transfer (the sender crashed mid-send).

        The bytes are lost: no record is appended, no ``on_complete`` or
        ``on_idle`` callback fires, and the completion event is cancelled.
        Returns the aborted transfer's tag, or ``None`` if the link was
        idle.  TCP state is reset (the next send pays a cold start).
        """
        inflight = self._inflight
        if inflight is None:
            return None
        if self._finish_event is not None:
            self._finish_event.cancel()
            self._finish_event = None
        self._inflight = None
        self._last_end = None
        self.aborted_transfers += 1
        trace = self.engine.trace
        if trace.enabled:
            trace.instant(
                "transfer.aborted",
                "fault",
                self.engine.now,
                f"net/{self.name}",
                {"nbytes": inflight[_NBYTES], "started": inflight[_START]},
            )
        return inflight[_TAG]

    def _finish(self) -> None:
        inflight = self._inflight
        if inflight is None:  # pragma: no cover - defensive
            raise SimulationError(f"link {self.name!r} finished with no transfer")
        nbytes, tag, start, end, on_complete = inflight
        self._inflight = None
        self._finish_event = None
        self._last_end = end
        self.records.append(TransferRecord(start, end, nbytes, tag))
        self.total_bytes += nbytes
        self._busy_accum += end - start
        journal = self._ff_journal
        if journal is not None:
            journal.append(("link", self, start, end, nbytes, tag))
        trace = self.engine.trace
        if trace.enabled:
            name = (
                f"{tag[0]} i{tag[1]}"
                if isinstance(tag, tuple) and len(tag) == 2
                else "transfer"
            )
            track = f"net/{self.name}"
            trace.complete(
                name,
                "transfer",
                start,
                end,
                track,
                {"nbytes": nbytes},
            )
            now = self.engine.now
            if now > 0:
                trace.counter(
                    "link.utilization",
                    "net",
                    now,
                    track,
                    {"busy_fraction": self._busy_accum / now},
                )
        if on_complete is not None:
            on_complete()
        if self.on_idle is not None:
            self.on_idle()

    # ------------------------------------------------------------------
    # Steady-state fast-forward protocol (repro.sim.fastforward)
    # ------------------------------------------------------------------
    def ff_state(self, ctx) -> tuple:
        """Canonical time-relative link state for the cycle fingerprint.

        The warm/cold TCP state is exactly the gap to the previous
        transfer's completion (see :func:`repro.net.tcp.is_warm`), so
        exposing ``_last_end`` relative to the boundary instant — plus
        the in-flight transfer, if any — captures everything a future
        send's duration can depend on under a constant schedule.
        """
        inflight = self._inflight
        return (
            ctx.rel_opt(self._last_end),
            None
            if inflight is None
            else (
                inflight[_NBYTES],
                ctx.tag(inflight[_TAG]),
                ctx.rel(inflight[_START]),
                ctx.rel(inflight[_END]),
                ctx.callback(inflight[_ON_COMPLETE]),
            ),
        )

    def ff_shift(self, shift) -> None:
        """Translate absolute times (and iteration tags) by the shift."""
        dt = shift.dt
        if self._last_end is not None:
            self._last_end += dt
        inflight = self._inflight
        if inflight is not None:
            nbytes, tag, start, end, on_complete = inflight
            self._inflight = (
                nbytes,
                shift.tag(tag),
                start + dt,
                end + dt,
                shift.callback(on_complete),
            )

    # ------------------------------------------------------------------
    def busy_time(self, until: float | None = None) -> float:
        """Total time the link spent transferring, up to ``until``.

        O(1) for the common case: completed records all lie in the past,
        so the maintained ``_busy_accum`` already is their sum.  Only a
        horizon strictly before ``now`` (retrospective queries) needs the
        per-record clamp.
        """
        horizon = self.engine.now if until is None else until
        if horizon >= self.engine.now:
            total = self._busy_accum
        else:
            total = sum(
                max(0.0, min(r.end, horizon) - min(r.start, horizon))
                for r in self.records
            )
        if self._inflight is not None and self._inflight[_START] < horizon:
            total += min(self._inflight[_END], horizon) - self._inflight[_START]
        return total


# ----------------------------------------------------------------------
def _drain_batch(links: tuple[Link, ...]) -> None:
    """Fire the batched completions in launch order.

    A link whose transfer was aborted after the batch launched has no
    in-flight state any more and is skipped — exactly what cancelling its
    individual completion event would have done.
    """
    for link in links:
        if link._inflight is not None:
            link._finish()


def send_batch(
    links: Sequence[Link],
    nbytes: float,
    tag: object = None,
    on_complete: Callable[[], None] | None = None,
    extra_time: float = 0.0,
) -> float:
    """Start the same ``nbytes`` transfer on every link at once.

    This is the barrier-step entry point (collective chunk steps): all
    ``links`` start at the current instant, and in the common case —
    identical bandwidth, no noise — they all compute the *same* completion
    time.  Their N completion wakeups then coalesce into ONE engine event
    that drains the per-link work list in launch order.  That is
    bit-identical to N individual :meth:`Link.send` calls: the N original
    completion events would sit at one timestamp with consecutive sequence
    numbers, so no other event can interleave them and their firing order
    is the launch order.  When completion times differ (noisy or
    heterogeneous links), each link falls back to its own event, again in
    launch order.  Returns the latest completion time.
    """
    first_end = links[0]._start(nbytes, tag, on_complete, extra_time)
    ends = [first_end]
    same = True
    for link in links[1:]:
        end = link._start(nbytes, tag, on_complete, extra_time)
        ends.append(end)
        if end != first_end:
            same = False
    engine = links[0].engine
    if same:
        engine.schedule(first_end, _drain_batch, tuple(links))
        return first_end
    for link, end in zip(links, ends):
        link._finish_event = engine.schedule(end, link._finish_cb)
    return max(ends)
