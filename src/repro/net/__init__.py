"""Network substrate: TCP transfer-time model, serialized links, topology.

The paper's Eq. (10) posits an effective-bandwidth function ``B(i) =
f(s(i), B)`` that vanishes for small transfer sizes and saturates at the
available bandwidth ``B`` for large ones, and attributes the loss to TCP
connection overhead and slow start.  :mod:`repro.net.tcp` implements exactly
that mechanism analytically; :mod:`repro.net.link` serializes transfers on a
link (the paper's Constraint (8)); :mod:`repro.net.topology` wires a star of
workers around one parameter server; :mod:`repro.net.monitor` is the
periodic bandwidth monitor that feeds Prophet.
"""

from repro.net.tcp import TCPParams, transfer_time, effective_bandwidth
from repro.net.link import Link, TransferRecord, BandwidthSchedule
from repro.net.topology import StarTopology
from repro.net.monitor import BandwidthMonitor

__all__ = [
    "TCPParams",
    "transfer_time",
    "effective_bandwidth",
    "Link",
    "TransferRecord",
    "BandwidthSchedule",
    "StarTopology",
    "BandwidthMonitor",
]
