"""Fleet job descriptions and their queued→placed→running→finished lifecycle.

A :class:`FleetJob` is the plain-data submission: which training config
and strategy to run, who submitted it, and when it arrives.  The mutable
:class:`JobHandle` tracks one submission through the scheduler's
lifecycle; :class:`JobRecord` is the frozen scalar projection kept after
the fleet run completes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.config import TrainingConfig
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.result import TrainingResult
    from repro.cluster.trainer import Trainer

__all__ = ["FleetJob", "JobHandle", "JobRecord", "QUEUED", "PLACED", "RUNNING", "FINISHED"]

#: Lifecycle states, in order.
QUEUED = "queued"
PLACED = "placed"
RUNNING = "running"
FINISHED = "finished"


@dataclass(frozen=True)
class FleetJob:
    """One submitted training job, described as plain data.

    ``strategy`` names an entry of the runner's strategy registry
    (resolved via :func:`repro.runner.registry.build_factory`).  ``user``
    is the submitting tenant for fair-share accounting; it defaults to
    the job name (every job its own tenant).
    """

    name: str
    config: TrainingConfig
    strategy: str
    arrival: float = 0.0
    user: str = ""
    strategy_kwargs: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("FleetJob.name must be non-empty")
        if not self.strategy:
            raise ConfigurationError("FleetJob.strategy must be non-empty")
        if self.arrival < 0:
            raise ConfigurationError(
                f"job {self.name!r}: arrival must be >= 0, got {self.arrival}"
            )

    @property
    def tenant(self) -> str:
        """The fair-share accounting identity (``user`` or the name)."""
        return self.user or self.name

    @property
    def n_slots(self) -> int:
        """GPU slots the job occupies while placed (one per worker)."""
        return self.config.n_workers


class JobHandle:
    """Mutable lifecycle state of one submitted job inside a fleet run."""

    __slots__ = (
        "job",
        "state",
        "placed_at",
        "finished_at",
        "allocation",
        "trainer",
        "result",
    )

    def __init__(self, job: FleetJob):
        self.job = job
        self.state = QUEUED
        self.placed_at: float | None = None
        self.finished_at: float | None = None
        self.allocation: dict[int, int] | None = None
        self.trainer: "Trainer | None" = None
        self.result: "TrainingResult | None" = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobHandle({self.job.name!r}, {self.state})"

    @property
    def queueing_delay(self) -> float:
        """Seconds spent queued before placement (requires placement)."""
        if self.placed_at is None:
            raise ConfigurationError(f"job {self.job.name!r} was never placed")
        return self.placed_at - self.job.arrival

    def record(self, skip: int) -> "JobRecord":
        """Freeze the finished job into its scalar projection."""
        if self.result is None or self.finished_at is None:
            raise ConfigurationError(f"job {self.job.name!r} did not finish")
        config = self.job.config
        # Clamp the warmup skip so short jobs still yield a measurement
        # (n iterations give n-1 spans, and skip must leave at least one).
        skip = max(0, min(skip, config.n_iterations - 2))
        spans: list[float] = []
        for w in range(config.n_workers):
            spans.extend(float(s) for s in self.result.iteration_spans(w, skip=skip))
        return JobRecord(
            name=self.job.name,
            user=self.job.tenant,
            strategy=self.job.strategy,
            n_workers=config.n_workers,
            arrival=self.job.arrival,
            placed_at=self.placed_at if self.placed_at is not None else 0.0,
            finished_at=self.finished_at,
            samples=float(
                config.batch_size * config.n_iterations * config.n_workers
            ),
            training_rate=self.result.training_rate(skip=skip),
            iteration_s=tuple(spans),
        )


@dataclass(frozen=True)
class JobRecord:
    """Scalar outcome of one fleet job (everything the metrics read)."""

    name: str
    user: str
    strategy: str
    n_workers: int
    arrival: float
    placed_at: float
    finished_at: float
    #: Samples the job processed in total (batch x iterations x workers).
    samples: float
    #: Mean per-worker training rate over the measured window, samples/s.
    training_rate: float
    #: Post-warmup iteration durations across all the job's workers.
    iteration_s: tuple[float, ...]

    @property
    def queueing_delay(self) -> float:
        return self.placed_at - self.arrival

    @property
    def runtime(self) -> float:
        return self.finished_at - self.placed_at
