"""Multi-tenant fleet simulation: N training jobs on one shared fabric.

The paper evaluates Prophet one job at a time; a datacenter runs hundreds
of concurrent jobs whose communication contends for an oversubscribed
core.  This package places many independent training jobs — each an
ordinary :class:`~repro.cluster.trainer.Trainer` on the star, sharded, or
collective backend — into **one** shared
:class:`~repro.sim.engine.Engine` run:

* :class:`~repro.net.topology.ClusterFabric` divides core bandwidth
  across the active tenants by water-filling over their NIC demands and
  re-levels each tenant's live bandwidth schedule in place as jobs come
  and go;
* :class:`~repro.fleet.cluster.HostPool` models the GPU hosts jobs are
  placed on (``n_hosts`` x ``slots_per_host``);
* :class:`~repro.fleet.scheduler.FleetScheduler` runs the job-lifecycle
  tick (housekeeping → evaluation → spawn) under a placement policy
  (FIFO, fair-share, or gang scheduling);
* :class:`~repro.fleet.simulator.FleetSimulator` wires it together and
  produces per-job records plus fleet-level metrics
  (:mod:`repro.metrics.fleet`).

A 1-job fleet is bit-identical to running the job directly: the single
tenant's fabric share equals its NIC rate exactly, its schedule keeps one
breakpoint (preserving the links' constant-schedule fast path), and the
scheduler's bookkeeping events carry no simulation side effects.
"""

from repro.fleet.cluster import HostPool
from repro.fleet.job import FleetJob, JobHandle, JobRecord
from repro.fleet.scheduler import POLICIES, FleetScheduler
from repro.fleet.simulator import FleetSimulator, build_fleet_jobs, run_fleet
from repro.fleet.spec import FleetResult, FleetRunResult, FleetSpec

__all__ = [
    "FleetJob",
    "JobHandle",
    "JobRecord",
    "HostPool",
    "FleetScheduler",
    "POLICIES",
    "FleetSimulator",
    "build_fleet_jobs",
    "run_fleet",
    "FleetSpec",
    "FleetResult",
    "FleetRunResult",
]
