"""Declarative fleet specifications and their results.

A :class:`FleetSpec` describes an entire multi-tenant run as plain data —
cluster shape, placement policy, the synthetic job mix — so fleets can be
fingerprinted for the on-disk result cache and shipped to spawn-started
worker processes exactly like single-run :class:`~repro.runner.RunSpec`.

:class:`FleetResult` is the full in-process outcome (per-job records);
:class:`FleetRunResult` is its JSON-able scalar projection that crosses
the process boundary and round-trips through the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.fleet.job import JobRecord
from repro.fleet.scheduler import POLICIES
from repro.metrics.fleet import summarize_fleet
from repro.quantities import Gbps

__all__ = ["FleetSpec", "FleetResult", "FleetRunResult"]


@dataclass(frozen=True)
class FleetSpec:
    """One multi-tenant fleet run, described as plain data.

    The job mix is synthetic but deterministic: ``n_jobs`` identical
    model/batch configs with seeds ``seed + j``, strategies assigned
    round-robin from ``strategies`` (which also act as the fair-share
    tenants), and Poisson arrivals with mean ``mean_interarrival_s``
    drawn from a :func:`~repro.sim.rng.spawn_rng` stream of ``seed``.
    """

    n_jobs: int = 8
    policy: str = "fifo"
    n_hosts: int = 4
    slots_per_host: int = 2
    core_bandwidth: float = 10 * Gbps
    nic_bandwidth: float = 3 * Gbps
    model: str = "resnet18"
    batch_size: int = 32
    n_workers: int = 2
    n_iterations: int = 4
    strategies: tuple[str, ...] = ("prophet",)
    mean_interarrival_s: float = 0.05
    seed: int = 0
    skip: int = 1

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ConfigurationError(f"n_jobs must be >= 1, got {self.n_jobs}")
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"unknown fleet policy {self.policy!r}; "
                f"available: {', '.join(sorted(POLICIES))}"
            )
        strategies = tuple(self.strategies)
        if not strategies:
            raise ConfigurationError("strategies must be non-empty")
        object.__setattr__(self, "strategies", strategies)
        if self.core_bandwidth <= 0 or self.nic_bandwidth <= 0:
            raise ConfigurationError("fleet bandwidths must be positive")
        if self.n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {self.n_workers}"
            )
        if self.n_workers > self.n_hosts * self.slots_per_host:
            raise ConfigurationError(
                f"a {self.n_workers}-worker job can never fit on "
                f"{self.n_hosts} hosts x {self.slots_per_host} slots"
            )
        if self.n_iterations < 2:
            raise ConfigurationError(
                f"n_iterations must be >= 2 to measure an iteration span, "
                f"got {self.n_iterations}"
            )
        if self.mean_interarrival_s < 0:
            raise ConfigurationError(
                f"mean_interarrival_s must be >= 0, got {self.mean_interarrival_s}"
            )
        if self.skip < 0:
            raise ConfigurationError(f"skip must be >= 0, got {self.skip}")


@dataclass(frozen=True)
class FleetResult:
    """Full in-process outcome of a fleet run."""

    policy: str
    n_hosts: int
    slots_per_host: int
    core_bandwidth: float
    records: tuple[JobRecord, ...]
    #: Events the shared engine processed over the whole fleet.
    events_processed: int

    def summary(self) -> dict[str, float]:
        """The headline scalar metrics (see :mod:`repro.metrics.fleet`)."""
        return summarize_fleet(self.records)


@dataclass(frozen=True)
class FleetRunResult:
    """Scalar outcome of one fleet run — the cacheable projection."""

    n_jobs: int
    makespan_s: float
    goodput_samples_per_s: float
    p50_iteration_s: float
    p99_iteration_s: float
    jain_fairness: float
    mean_queueing_delay_s: float
    max_queueing_delay_s: float
    #: Per-job mean training rate, in job-name order, samples/s.
    per_job_rate: tuple[float, ...]
    #: Per-job queueing delay, in job-name order, seconds.
    per_job_queueing_delay_s: tuple[float, ...]

    @classmethod
    def from_result(cls, result: FleetResult) -> "FleetRunResult":
        summary = result.summary()
        records = sorted(result.records, key=lambda r: r.name)
        return cls(
            n_jobs=len(records),
            makespan_s=summary["makespan_s"],
            goodput_samples_per_s=summary["goodput_samples_per_s"],
            p50_iteration_s=summary["p50_iteration_s"],
            p99_iteration_s=summary["p99_iteration_s"],
            jain_fairness=summary["jain_fairness"],
            mean_queueing_delay_s=summary["mean_queueing_delay_s"],
            max_queueing_delay_s=summary["max_queueing_delay_s"],
            per_job_rate=tuple(r.training_rate for r in records),
            per_job_queueing_delay_s=tuple(r.queueing_delay for r in records),
        )

    # ------------------------------------------------------------------
    # Cache (JSON) round-trip
    # ------------------------------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        """Plain-JSON representation for the on-disk result cache."""
        return {
            "n_jobs": self.n_jobs,
            "makespan_s": self.makespan_s,
            "goodput_samples_per_s": self.goodput_samples_per_s,
            "p50_iteration_s": self.p50_iteration_s,
            "p99_iteration_s": self.p99_iteration_s,
            "jain_fairness": self.jain_fairness,
            "mean_queueing_delay_s": self.mean_queueing_delay_s,
            "max_queueing_delay_s": self.max_queueing_delay_s,
            "per_job_rate": list(self.per_job_rate),
            "per_job_queueing_delay_s": list(self.per_job_queueing_delay_s),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "FleetRunResult":
        """Rebuild from :meth:`to_payload` output.

        Raises ``KeyError``/``TypeError`` on malformed payloads; the cache
        treats those as corruption and discards the entry.
        """
        return cls(
            n_jobs=int(payload["n_jobs"]),
            makespan_s=float(payload["makespan_s"]),
            goodput_samples_per_s=float(payload["goodput_samples_per_s"]),
            p50_iteration_s=float(payload["p50_iteration_s"]),
            p99_iteration_s=float(payload["p99_iteration_s"]),
            jain_fairness=float(payload["jain_fairness"]),
            mean_queueing_delay_s=float(payload["mean_queueing_delay_s"]),
            max_queueing_delay_s=float(payload["max_queueing_delay_s"]),
            per_job_rate=tuple(float(r) for r in payload["per_job_rate"]),
            per_job_queueing_delay_s=tuple(
                float(d) for d in payload["per_job_queueing_delay_s"]
            ),
        )
