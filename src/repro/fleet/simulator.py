"""The fleet simulator: N training jobs on one shared engine and fabric.

:class:`FleetSimulator` owns the shared :class:`~repro.sim.engine.Engine`,
the :class:`~repro.fleet.cluster.HostPool`, and the
:class:`~repro.net.topology.ClusterFabric`, and wires the
:class:`~repro.fleet.scheduler.FleetScheduler` tick to real
:class:`~repro.cluster.trainer.Trainer` instances: when the scheduler
places a job, the simulator admits the job's NIC demand to the fabric,
rebinds the job config's bandwidth to the live per-tenant schedule, builds
the trainer in external-engine mode, and starts its workers.  When the
last worker of a job finishes, the trainer's ``on_finished`` callback
finalizes the result and hands the job back to the scheduler for
reclamation — all inside the one event-driven simulation.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.cluster.trainer import Trainer
from repro.errors import ConfigurationError, SimulationError
from repro.fleet.cluster import HostPool
from repro.fleet.job import FINISHED, FleetJob, JobHandle
from repro.fleet.scheduler import FleetScheduler
from repro.fleet.spec import FleetResult, FleetSpec
from repro.net.link import BandwidthSchedule
from repro.net.topology import ClusterFabric
from repro.runner.registry import build_factory
from repro.sim.engine import Engine
from repro.sim.rng import spawn_rng
from repro.trace.recorder import NULL_RECORDER, NullRecorder, TraceRecorder
from repro.workloads.presets import paper_config

__all__ = ["FleetSimulator", "build_fleet_jobs", "run_fleet"]


class FleetSimulator:
    """Places and runs a batch of :class:`FleetJob` on one shared engine."""

    def __init__(
        self,
        jobs: Sequence[FleetJob],
        *,
        core_bandwidth: float,
        n_hosts: int,
        slots_per_host: int,
        policy: str = "fifo",
        trace: bool = False,
        skip: int = 1,
    ):
        jobs = list(jobs)
        if not jobs:
            raise ConfigurationError("a fleet needs at least one job")
        names = set()
        for job in jobs:
            if job.name in names:
                raise ConfigurationError(f"duplicate fleet job name {job.name!r}")
            names.add(job.name)
        quanta = {job.config.time_quantum for job in jobs}
        if len(quanta) > 1:
            raise ConfigurationError(
                f"fleet jobs disagree on time_quantum ({sorted(map(repr, quanta))}); "
                f"the shared engine can only honour one delay grid"
            )
        self.pool = HostPool(n_hosts, slots_per_host)
        for job in jobs:
            self._validate_job(job)
        self.skip = skip
        self.engine = Engine(time_quantum=quanta.pop())
        self.engine.multi_tenant = True
        if trace:
            self.trace: TraceRecorder | NullRecorder = TraceRecorder(
                clock=lambda: self.engine.now
            )
        else:
            self.trace = NULL_RECORDER
        self.engine.trace = self.trace
        self.fabric = ClusterFabric(core_bandwidth)
        self.scheduler = FleetScheduler(
            self.engine, self.pool, self.fabric, policy, spawn=self._spawn
        )
        # Stable submission order: (arrival, name).  Same-instant arrivals
        # enqueue in name order, which same-timestamp event FIFO preserves.
        self.handles = [
            JobHandle(job) for job in sorted(jobs, key=lambda j: (j.arrival, j.name))
        ]
        self._by_name = {h.job.name: h for h in self.handles}
        #: Event-budget floor for the scheduler's own bookkeeping; each
        #: placed job adds its trainer's budget on top.
        self._budget = 200_000
        for handle in self.handles:
            self.engine.schedule(handle.job.arrival, self.scheduler.submit, handle)

    # ------------------------------------------------------------------
    def _validate_job(self, job: FleetJob) -> None:
        config = job.config
        if isinstance(config.bandwidth, BandwidthSchedule):
            raise ConfigurationError(
                f"job {job.name!r}: fleet jobs declare a flat NIC bandwidth; "
                f"the cluster fabric supplies the live schedule"
            )
        if config.worker_bandwidth is not None or config.ps_bandwidth is not None:
            raise ConfigurationError(
                f"job {job.name!r}: per-endpoint bandwidth overrides are not "
                f"supported in a fleet (the shared fabric levels every NIC)"
            )
        if config.faults is not None and not config.faults.is_empty:
            raise ConfigurationError(
                f"job {job.name!r}: fault injection inside a fleet run is "
                f"not supported"
            )
        if job.n_slots > self.pool.total_slots:
            raise ConfigurationError(
                f"job {job.name!r} needs {job.n_slots} slots but the cluster "
                f"has only {self.pool.total_slots}"
            )

    # ------------------------------------------------------------------
    # Scheduler callbacks
    # ------------------------------------------------------------------
    def _spawn(self, handle: JobHandle, now: float) -> None:
        """Admit the job to the fabric and start its trainer (placed → running)."""
        job = handle.job
        tenant_schedule = self.fabric.admit(
            job.name,
            n_links=job.config.n_workers,
            nic_bandwidth=float(job.config.bandwidth),
            now=now,
        )
        config = replace(job.config, bandwidth=tenant_schedule)
        trainer = Trainer(
            config,
            build_factory(job.strategy, dict(job.strategy_kwargs)),
            engine=self.engine,
            name=job.name,
            on_finished=self._job_finished,
        )
        handle.trainer = trainer
        self._budget += trainer.event_budget()
        trainer.start()

    def _job_finished(self, trainer: Trainer) -> None:
        handle = self._by_name[trainer.name]
        handle.result = trainer.finalize()
        self.scheduler.job_finished(handle)

    # ------------------------------------------------------------------
    def run(self, max_events: int | None = None) -> FleetResult:
        """Pump the shared engine until every job finishes."""
        engine = self.engine
        n_jobs = len(self.handles)
        while True:
            done = sum(h.state == FINISHED for h in self.handles)
            if done == n_jobs:
                break
            if not engine.pending():
                raise SimulationError(
                    f"fleet stalled at t={engine.now:.3f}s with {done}/{n_jobs} "
                    f"jobs finished (a queued job that can never be placed?)"
                )
            budget = max_events if max_events is not None else self._budget
            limit = budget - engine.events_processed
            if limit <= 0:
                raise SimulationError(
                    f"fleet exceeded its event budget ({budget} events, "
                    f"{done}/{n_jobs} jobs finished) — likely livelock"
                )
            engine.run(max_events=limit)
        records = tuple(
            handle.record(self.skip)
            for handle in sorted(self.handles, key=lambda h: h.job.name)
        )
        return FleetResult(
            policy=self.scheduler.policy.name,
            n_hosts=self.pool.n_hosts,
            slots_per_host=self.pool.slots_per_host,
            core_bandwidth=self.fabric.core_bandwidth,
            records=records,
            events_processed=engine.events_processed,
        )


# ----------------------------------------------------------------------
# Spec-driven entry points
# ----------------------------------------------------------------------
def build_fleet_jobs(spec: FleetSpec) -> list[FleetJob]:
    """Materialize the spec's deterministic synthetic job mix.

    Strategies rotate round-robin over ``spec.strategies`` and double as
    the submitting tenants, so fair-share arbitrates between strategy
    families.  Arrivals are a Poisson process drawn from a dedicated
    :func:`~repro.sim.rng.spawn_rng` stream of the spec seed.
    """
    rng = spawn_rng(spec.seed, "fleet", "arrivals")
    width = max(3, len(str(spec.n_jobs - 1)))
    jobs: list[FleetJob] = []
    arrival = 0.0
    for j in range(spec.n_jobs):
        if j > 0 and spec.mean_interarrival_s > 0:
            arrival += float(rng.exponential(spec.mean_interarrival_s))
        strategy = spec.strategies[j % len(spec.strategies)]
        config = paper_config(
            model=spec.model,
            batch_size=spec.batch_size,
            bandwidth=spec.nic_bandwidth,
            n_workers=spec.n_workers,
            n_iterations=spec.n_iterations,
            seed=spec.seed + j,
        )
        jobs.append(
            FleetJob(
                name=f"job{j:0{width}d}",
                config=config,
                strategy=strategy,
                arrival=arrival,
                user=strategy,
            )
        )
    return jobs


def run_fleet(spec: FleetSpec, *, trace: bool = False) -> FleetResult:
    """Convenience one-shot: build the spec's jobs and run the fleet."""
    simulator = FleetSimulator(
        build_fleet_jobs(spec),
        core_bandwidth=spec.core_bandwidth,
        n_hosts=spec.n_hosts,
        slots_per_host=spec.slots_per_host,
        policy=spec.policy,
        trace=trace,
        skip=spec.skip,
    )
    return simulator.run()
