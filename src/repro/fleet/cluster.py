"""GPU host pool: the slot resource fleet jobs are placed on.

A cluster is ``n_hosts`` identical hosts of ``slots_per_host`` GPU slots;
a job occupies one slot per worker for its whole placed lifetime.  The
pool only does deterministic first-fit arithmetic — *which* queued job
gets to allocate is the scheduler policy's decision, not the pool's.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["HostPool"]


class HostPool:
    """Fixed pool of GPU slots grouped into hosts.

    Allocation is deterministic first-fit in host order, which keeps
    fleet runs reproducible under any policy.  ``whole_hosts=True``
    requests gang placement: the job gets exclusive, completely free
    hosts (no slot sharing with co-tenants), the strictest co-location
    guarantee — at the price of internal fragmentation.
    """

    def __init__(self, n_hosts: int, slots_per_host: int):
        if n_hosts < 1:
            raise ConfigurationError(f"n_hosts must be >= 1, got {n_hosts}")
        if slots_per_host < 1:
            raise ConfigurationError(
                f"slots_per_host must be >= 1, got {slots_per_host}"
            )
        self.n_hosts = n_hosts
        self.slots_per_host = slots_per_host
        self._free = [slots_per_host] * n_hosts

    # ------------------------------------------------------------------
    @property
    def total_slots(self) -> int:
        return self.n_hosts * self.slots_per_host

    @property
    def free_slots(self) -> int:
        return sum(self._free)

    def free_on(self, host: int) -> int:
        """Free slots on one host (for tests and reports)."""
        return self._free[host]

    # ------------------------------------------------------------------
    def fits(self, n_slots: int, whole_hosts: bool = False) -> bool:
        """Whether an ``alloc`` with these arguments would succeed now."""
        if whole_hosts:
            full = sum(1 for f in self._free if f == self.slots_per_host)
            hosts_needed = -(-n_slots // self.slots_per_host)
            return hosts_needed <= full
        return n_slots <= self.free_slots

    def alloc(
        self, n_slots: int, whole_hosts: bool = False
    ) -> dict[int, int] | None:
        """Allocate ``n_slots``; returns ``{host: slots}`` or ``None``.

        First-fit in host index order.  With ``whole_hosts`` only
        completely free hosts are eligible and each one is taken in full
        (exclusively), even if the job leaves some of its slots idle.
        """
        if n_slots < 1:
            raise ConfigurationError(f"n_slots must be >= 1, got {n_slots}")
        if not self.fits(n_slots, whole_hosts):
            return None
        allocation: dict[int, int] = {}
        if whole_hosts:
            hosts_needed = -(-n_slots // self.slots_per_host)
            for host, free in enumerate(self._free):
                if free == self.slots_per_host:
                    allocation[host] = self.slots_per_host
                    self._free[host] = 0
                    hosts_needed -= 1
                    if hosts_needed == 0:
                        return allocation
        remaining = n_slots
        for host, free in enumerate(self._free):
            if free == 0:
                continue
            take = min(free, remaining)
            allocation[host] = take
            self._free[host] = free - take
            remaining -= take
            if remaining == 0:
                return allocation
        raise AssertionError("fits() said yes but alloc ran out")  # pragma: no cover

    def release(self, allocation: dict[int, int]) -> None:
        """Return a previous :meth:`alloc` result to the pool."""
        for host, slots in allocation.items():
            self._free[host] += slots
            if self._free[host] > self.slots_per_host:
                raise ConfigurationError(
                    f"host {host} over-released ({self._free[host]} free slots "
                    f"of {self.slots_per_host})"
                )
