"""Job-lifecycle scheduler: the fleet's housekeeping/evaluation/spawn tick.

The tick is event-driven, not polled: one fires at every job arrival and
after every job completion (at the same engine timestamp, so resources
freed by a finishing job are re-placeable immediately and deterministically).
Each tick runs three phases in a fixed order:

1. **Housekeeping** — reclaim finished jobs' host slots and fabric share,
   then refresh the trace counters.  Each step is independent, mirroring
   a housekeeping checklist that must run even when nothing spawns.
2. **Evaluation** — filter the queue down to the jobs eligible *now*
   (arrived, still queued) and order them by the placement policy.
3. **Spawn** — walk the ordered candidates and place whatever fits,
   per-policy: FIFO stops at the first job that does not fit (strict
   arrival order, head-of-line blocking), fair-share backfills past
   oversized jobs after ordering tenants by how many jobs they already
   have running, and gang scheduling is FIFO over exclusive whole-host
   allocations (all-or-nothing co-location).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.fleet.cluster import HostPool
from repro.fleet.job import FINISHED, PLACED, QUEUED, RUNNING, JobHandle
from repro.net.topology import ClusterFabric
from repro.sim.engine import Engine

__all__ = ["PlacementPolicy", "POLICIES", "FleetScheduler"]


class PlacementPolicy:
    """Ordering + fit rules one fleet scheduling policy contributes.

    ``head_of_line`` stops the spawn walk at the first non-fitting job;
    ``whole_hosts`` requests exclusive-host (gang) allocations.
    """

    name = "base"
    head_of_line = True
    whole_hosts = False

    def order(
        self, candidates: Sequence[JobHandle], running_per_tenant: dict[str, int]
    ) -> list[JobHandle]:
        """Arrival order (FIFO) — subclasses override."""
        return sorted(candidates, key=lambda h: (h.job.arrival, h.job.name))


class FIFOPolicy(PlacementPolicy):
    """Strict submission order; an oversized head blocks the queue."""

    name = "fifo"


class FairSharePolicy(PlacementPolicy):
    """Tenants with the fewest running jobs place first, with backfill.

    Ordering key: (tenant's running-job count, arrival, name).  Because
    ``head_of_line`` is off, a job that does not fit is skipped and later
    (smaller) candidates may backfill the remaining slots.
    """

    name = "fair"
    head_of_line = False

    def order(
        self, candidates: Sequence[JobHandle], running_per_tenant: dict[str, int]
    ) -> list[JobHandle]:
        return sorted(
            candidates,
            key=lambda h: (
                running_per_tenant.get(h.job.tenant, 0),
                h.job.arrival,
                h.job.name,
            ),
        )


class GangPolicy(PlacementPolicy):
    """FIFO over exclusive whole-host allocations (all-or-nothing)."""

    name = "gang"
    whole_hosts = True


#: Registry of placement policies by CLI/spec name.
POLICIES: dict[str, type[PlacementPolicy]] = {
    "fifo": FIFOPolicy,
    "fair": FairSharePolicy,
    "gang": GangPolicy,
}


class FleetScheduler:
    """Runs the three-phase tick over a queue of :class:`JobHandle`.

    The scheduler owns the lifecycle bookkeeping (states, host slots,
    fabric tenancy); actually building and starting a job's trainer is
    delegated to ``spawn`` (the fleet simulator's callback), keeping this
    class free of any trainer wiring.
    """

    def __init__(
        self,
        engine: Engine,
        pool: HostPool,
        fabric: ClusterFabric,
        policy: str | PlacementPolicy,
        spawn: Callable[[JobHandle, float], None],
    ):
        if isinstance(policy, str):
            if policy not in POLICIES:
                raise ConfigurationError(
                    f"unknown fleet policy {policy!r}; "
                    f"available: {', '.join(sorted(POLICIES))}"
                )
            policy = POLICIES[policy]()
        self.engine = engine
        self.pool = pool
        self.fabric = fabric
        self.policy = policy
        self._spawn_job = spawn
        self.queued: list[JobHandle] = []
        self.running: list[JobHandle] = []
        self.finished: list[JobHandle] = []
        #: Finished handles whose resources housekeeping has not reclaimed.
        self._reclaim: list[JobHandle] = []
        self._tick_pending = False
        # Phase 1 checklist, fixed order: reclaim first so the evaluation
        # phase of the same tick sees the freed capacity.
        self._housekeeping = (self._reclaim_finished, self._refresh_counters)

    # ------------------------------------------------------------------
    # Inputs (arrival events and completion callbacks)
    # ------------------------------------------------------------------
    def submit(self, handle: JobHandle) -> None:
        """Enqueue an arrived job (called by the arrival event)."""
        self.queued.append(handle)
        trace = self.engine.trace
        if trace.enabled:
            trace.instant(
                "job.queued", "fleet", self.engine.now,
                f"fleet/{handle.job.name}", {"tenant": handle.job.tenant},
            )
        self.request_tick()

    def job_finished(self, handle: JobHandle) -> None:
        """Mark a running job finished (called from ``on_finished``)."""
        handle.state = FINISHED
        handle.finished_at = self.engine.now
        self._reclaim.append(handle)
        trace = self.engine.trace
        if trace.enabled:
            trace.instant(
                "job.finished", "fleet", self.engine.now,
                f"fleet/{handle.job.name}", {},
            )
        self.request_tick()

    def request_tick(self) -> None:
        """Schedule one tick at the current instant (coalesced).

        A tick scheduled at ``now`` always fires before the clock can
        advance, so a pending flag cleared at tick entry is enough to
        coalesce same-instant requests without ever missing a later one.
        """
        if not self._tick_pending:
            self._tick_pending = True
            self.engine.schedule(self.engine.now, self.tick)

    # ------------------------------------------------------------------
    # The tick
    # ------------------------------------------------------------------
    def tick(self) -> None:
        self._tick_pending = False
        now = self.engine.now
        for step in self._housekeeping:  # Phase 1: housekeeping
            step(now)
        candidates = self._evaluate(now)  # Phase 2: evaluation
        self._spawn(candidates, now)  # Phase 3: spawn

    # Phase 1 ----------------------------------------------------------
    def _reclaim_finished(self, now: float) -> None:
        for handle in self._reclaim:
            self.running.remove(handle)
            self.finished.append(handle)
            if handle.allocation is not None:
                self.pool.release(handle.allocation)
                handle.allocation = None
            self.fabric.release(handle.job.name, now)
        self._reclaim.clear()

    def _refresh_counters(self, now: float) -> None:
        trace = self.engine.trace
        if trace.enabled:
            trace.counter(
                "fleet.jobs", "fleet", now, "fleet/sched",
                {
                    "queued": len(self.queued),
                    "running": len(self.running),
                    "finished": len(self.finished),
                    "free_slots": self.pool.free_slots,
                },
            )

    # Phase 2 ----------------------------------------------------------
    def _evaluate(self, now: float) -> list[JobHandle]:
        arrived = [
            h for h in self.queued if h.state == QUEUED and h.job.arrival <= now
        ]
        running_per_tenant: dict[str, int] = {}
        for handle in self.running:
            tenant = handle.job.tenant
            running_per_tenant[tenant] = running_per_tenant.get(tenant, 0) + 1
        return self.policy.order(arrived, running_per_tenant)

    # Phase 3 ----------------------------------------------------------
    def _spawn(self, candidates: list[JobHandle], now: float) -> None:
        for handle in candidates:
            n_slots = handle.job.n_slots
            allocation = self.pool.alloc(n_slots, self.policy.whole_hosts)
            if allocation is None:
                if self.policy.head_of_line:
                    return
                continue
            handle.allocation = allocation
            handle.state = PLACED
            handle.placed_at = now
            self.queued.remove(handle)
            self.running.append(handle)
            trace = self.engine.trace
            if trace.enabled:
                trace.instant(
                    "job.placed", "fleet", now, f"fleet/{handle.job.name}",
                    {"hosts": sorted(allocation), "slots": n_slots},
                )
            self._spawn_job(handle, now)
            handle.state = RUNNING
