"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class.  Configuration mistakes raise
:class:`ConfigurationError` eagerly (at construction time, not inside the
simulation loop), scheduling contract violations raise
:class:`SchedulingError`, and simulator-internal inconsistencies raise
:class:`SimulationError` — the latter indicates a bug in this library, not a
user error.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SchedulingError",
    "SimulationError",
    "ProfileError",
    "TracingError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid configuration value was supplied by the caller."""


class SchedulingError(ReproError):
    """A communication scheduler violated its contract.

    Raised, for example, when a scheduler returns a transfer for a gradient
    that is not ready, re-sends bytes that were already sent, or produces a
    plan violating the priority constraints of the Prophet optimization
    problem (Constraints (7)-(9), (11) of the paper).
    """


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulation reached an inconsistent state."""


class ProfileError(ReproError):
    """A job profile is missing or insufficient for Prophet's Algorithm 1."""


class TracingError(ReproError):
    """A trace event was malformed (negative duration, unbalanced span)."""
