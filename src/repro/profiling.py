"""cProfile harness over experiment entry points (``repro profile``).

Wraps any :mod:`repro.experiments` module's ``main()`` in
:mod:`cProfile` and renders a top-N hotspot report via :mod:`pstats`.
Two defaults make the numbers honest:

* **serial execution** — cProfile observes only the calling process, so
  the runner's process fan-out is forced to one job; a parallel grid
  would do its simulation work in child processes the profiler never
  sees, leaving a report full of ``poll``/``recv``.
* **no result cache** — a cache hit replaces the simulation with a disk
  read, so the report would profile deserialization instead of the
  hot loop.  ``use_cache=True`` opts back in (useful for profiling the
  cache itself).
* **no fast-forward** — steady-state fast-forward
  (:mod:`repro.sim.fastforward`) replaces the simulated iterations with
  an O(1) replay, so an engaged run would profile the detector instead
  of the event loop being optimized.  Forced off unconditionally.

The raw stats can be dumped to a file for flame-graph viewers
(``snakeviz out.prof``, ``python -m pstats out.prof``).
"""

from __future__ import annotations

import cProfile
import importlib
import inspect
import io
import os
import pstats
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError

__all__ = ["SORT_KEYS", "ProfileReport", "profile_experiment"]

#: pstats sort keys exposed on the CLI (the full pstats set is larger,
#: but these are the ones that answer "where did the time go").
SORT_KEYS = ("cumulative", "tottime", "calls")


@dataclass(frozen=True)
class ProfileReport:
    """Result of one profiled experiment run."""

    experiment: str
    #: Total profiled CPU time (pstats' ``total_tt``), seconds.
    total_seconds: float
    #: Total function calls observed.
    total_calls: int
    #: Rendered top-N hotspot table (pstats ``print_stats`` output).
    text: str
    #: Where the raw stats were dumped, if requested.
    dump_path: str | None = None


def _accepted_overrides(
    main: Any, overrides: dict[str, Any]
) -> dict[str, Any]:
    """Filter ``overrides`` to what ``main`` can actually receive.

    An experiment opts into topology passthrough by naming the kwarg
    (``n_workers``/``n_servers``/``backend``) or taking ``**kwargs``
    (which forwards to its ``run()``).  Asking for an override the
    entry point cannot take is a hard error, not a silent no-op — a
    profile captured at the wrong fleet shape is worse than no profile.
    """
    params = inspect.signature(main).parameters
    takes_var_kw = any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )
    rejected = [
        name
        for name in overrides
        if not takes_var_kw and name not in params
    ]
    if rejected:
        raise ConfigurationError(
            f"experiment entry point does not accept "
            f"{', '.join(sorted(rejected))}; its main() takes "
            f"({', '.join(params) or 'no arguments'})"
        )
    return overrides


def profile_experiment(
    experiment: str,
    *,
    top: int = 25,
    sort: str = "cumulative",
    dump: str | None = None,
    use_cache: bool = False,
    overrides: dict[str, Any] | None = None,
) -> ProfileReport:
    """Run ``repro.experiments.<experiment>.main()`` under cProfile.

    The experiment's own stdout (tables, figures) is not captured — it
    prints as usual; the returned report holds only the profile.

    ``overrides`` (e.g. ``{"n_workers": 64, "backend": "allreduce"}``)
    are passed through to the experiment's ``main()`` so hotspots can be
    captured at fleet shape instead of the demo-sized default; the entry
    point's signature is inspected and an unsupported override raises
    :class:`ConfigurationError` up front.
    """
    if sort not in SORT_KEYS:
        raise ConfigurationError(
            f"unknown sort key {sort!r}; available: {', '.join(SORT_KEYS)}"
        )
    if top <= 0:
        raise ConfigurationError(f"top must be positive, got {top}")

    from repro.runner import JOBS_ENV, NO_CACHE_ENV
    from repro.sim.fastforward import NO_FASTFORWARD_ENV

    os.environ[JOBS_ENV] = "1"
    os.environ[NO_FASTFORWARD_ENV] = "1"
    if not use_cache:
        os.environ[NO_CACHE_ENV] = "1"

    module = importlib.import_module(f"repro.experiments.{experiment}")
    kwargs = _accepted_overrides(module.main, overrides or {})
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        module.main(**kwargs)
    finally:
        profiler.disable()

    if dump is not None:
        profiler.dump_stats(dump)

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(top)
    return ProfileReport(
        experiment=experiment,
        total_seconds=stats.total_tt,
        total_calls=stats.total_calls,
        text=buffer.getvalue(),
        dump_path=dump,
    )
