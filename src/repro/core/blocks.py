"""Gradient blocks and Prophet transfer plans.

A :class:`GradientBlock` is the paper's unit of transmission: a group of
whole gradients assembled by the Gradient Block Assembler and pushed as one
network message.  A :class:`ProphetPlan` is the output of Algorithm 1 — the
per-gradient transfer start times plus the block structure, ready for the
Scheduled Queue (or for analytic evaluation under the Sec. 3 performance
model).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import SchedulingError

__all__ = ["PlannedTransfer", "GradientBlock", "ProphetPlan"]


@dataclass(frozen=True)
class PlannedTransfer:
    """One gradient's planned transfer: start time and estimated duration."""

    grad: int
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class GradientBlock:
    """A group of gradients transmitted back-to-back as one message.

    ``phase`` records whether the block was assembled during backward
    propagation (interval-constrained) or during forward propagation
    (priority-ordered drain); gradient 0's solo block is phase
    ``"critical"``.
    """

    grads: tuple[int, ...]
    start: float
    duration: float
    nbytes: float
    phase: str

    def __post_init__(self) -> None:
        if not self.grads:
            raise SchedulingError("empty gradient block")
        if self.phase not in ("backward", "forward", "critical"):
            raise SchedulingError(f"unknown block phase {self.phase!r}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def priority(self) -> int:
        return min(self.grads)


@dataclass(frozen=True)
class ProphetPlan:
    """Algorithm 1's output for one iteration.

    Attributes
    ----------
    transfers:
        Per-gradient planned transfers, one entry per gradient, in
        transmission order.
    blocks:
        The block structure (groups transmitted as single messages).
    """

    transfers: tuple[PlannedTransfer, ...]
    blocks: tuple[GradientBlock, ...]

    def __post_init__(self) -> None:
        grads = [t.grad for t in self.transfers]
        if len(set(grads)) != len(grads):
            raise SchedulingError("plan schedules a gradient twice")
        block_grads = sorted(g for b in self.blocks for g in b.grads)
        if block_grads != sorted(grads):
            raise SchedulingError("plan blocks do not partition its transfers")

    @property
    def num_gradients(self) -> int:
        return len(self.transfers)

    @cached_property
    def start_times(self) -> np.ndarray:
        """``t[i]`` — the planned start time of gradient ``i``'s transfer."""
        t = np.empty(self.num_gradients)
        for tr in self.transfers:
            t[tr.grad] = tr.start
        return t

    @cached_property
    def durations(self) -> np.ndarray:
        """``E[i]`` — the estimated transfer duration of gradient ``i``."""
        e = np.empty(self.num_gradients)
        for tr in self.transfers:
            e[tr.grad] = tr.duration
        return e

    def backward_blocks(self) -> list[GradientBlock]:
        """Blocks assembled during backward propagation."""
        return [b for b in self.blocks if b.phase == "backward"]

    def forward_blocks(self) -> list[GradientBlock]:
        """Blocks drained during forward propagation (incl. gradient 0's)."""
        return [b for b in self.blocks if b.phase != "backward"]
