"""Algorithm 1: Prophet's communication-scheduling strategy.

Given the profiled generation times ``c(i)``, the gradient sizes ``s(i)``
and the monitored available bandwidth ``B``, compute the start time of each
gradient transfer such that

* every gradient is pushed after it is generated (Constraint 7),
* transfers never overlap on the link (Constraint 8),
* backward-phase transfers complete before any higher-priority gradient is
  generated (Constraint 11 — the block time interval ``A(i)`` budget),
* forward-phase transfers run in strict priority order (Constraint 9),
* gradient 0 starts the instant it is generated (line 17).

The planner walks the generation staircase block by block.  At each step it
greedily assembles the highest-priority ready gradients into one *gradient
block* as long as the block — including its single TCP setup cost —
still fits before the next generation event; packing stops at the first
gradient that does not fit (skipping it for a smaller, lower-priority one
would invert priorities).  After gradient 0 is generated the remaining
gradients drain in priority order, batched into blocks of at most
``forward_block_bytes`` (the Scheduled Queue transmits blocks in both
phases; gradient 0 always travels alone, immediately).

Transfer-time estimates use the same analytic TCP model as the network
substrate (:func:`repro.net.tcp.transfer_time`) — in the prototype these
estimates come from the profiling run; here they share the model, with the
*monitored* (possibly stale or noisy) bandwidth as input.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.agg.stepwise import detect_blocks
from repro.core.blocks import GradientBlock, PlannedTransfer, ProphetPlan
from repro.core.profiler import JobProfile
from repro.errors import ConfigurationError
from repro.net.tcp import TCPParams, transfer_time
from repro.quantities import MB

__all__ = ["plan_schedule"]

_FIT_TOL = 1e-12


def _emit_block(
    grads: list[int],
    sizes: np.ndarray,
    start: float,
    bandwidth: float,
    tcp: TCPParams,
    phase: str,
    transfers: list[PlannedTransfer],
    blocks: list[GradientBlock],
) -> float:
    """Record one block and its per-gradient transfers; return its end time.

    Per-gradient start/duration inside a block come from the cumulative
    transfer-time curve: gradient ``j``'s bytes go out between
    ``T(prefix_j)`` and ``T(prefix_{j+1})``; the first gradient absorbs the
    block's setup cost.
    """
    prefix = np.concatenate([[0.0], np.cumsum([sizes[g] for g in grads])])
    times = np.asarray(
        transfer_time(prefix[1:], bandwidth, tcp, warm=True), dtype=float
    )
    times = np.concatenate([[0.0], np.atleast_1d(times)])
    for j, g in enumerate(grads):
        transfers.append(
            PlannedTransfer(
                grad=g, start=start + times[j], duration=times[j + 1] - times[j]
            )
        )
    total = float(times[-1])
    blocks.append(
        GradientBlock(
            grads=tuple(grads),
            start=start,
            duration=total,
            nbytes=float(prefix[-1]),
            phase=phase,
        )
    )
    return start + total


def plan_schedule(
    profile: JobProfile,
    bandwidth: float,
    tcp: TCPParams | None = None,
    eps: float = 1e-6,
    forward_block_bytes: float = 4 * MB,
) -> ProphetPlan:
    """Run Algorithm 1 on a job profile; returns the transfer plan.

    Times in the plan are relative to the start of backward propagation
    (the reference frame of ``profile.c``).
    """
    if bandwidth <= 0:
        raise ConfigurationError(f"bandwidth must be positive, got {bandwidth}")
    if forward_block_bytes <= 0:
        raise ConfigurationError(
            f"forward_block_bytes must be positive, got {forward_block_bytes}"
        )
    tcp = tcp if tcp is not None else TCPParams()
    c = profile.c
    sizes = profile.sizes

    gen_blocks = detect_blocks(c, eps)
    gen_times = [float(c[b[0]]) for b in gen_blocks]

    transfers: list[PlannedTransfer] = []
    blocks: list[GradientBlock] = []
    ready: list[int] = []
    cursor = 0.0

    # --- backward phase: one interval-constrained block per staircase step.
    for k, gblock in enumerate(gen_blocks[:-1]):
        for g in gblock:
            heapq.heappush(ready, g)
        cursor = max(cursor, gen_times[k])
        boundary = gen_times[k + 1]
        members: list[int] = []
        block_bytes = 0.0
        while ready:
            q = ready[0]
            candidate = block_bytes + float(sizes[q])
            duration = float(transfer_time(candidate, bandwidth, tcp, warm=True))
            if cursor + duration <= boundary + _FIT_TOL:
                heapq.heappop(ready)
                members.append(q)
                block_bytes = candidate
            else:
                break  # next-priority gradient must not jump the queue
        if members:
            cursor = _emit_block(
                members, sizes, cursor, bandwidth, tcp, "backward", transfers, blocks
            )

    # --- gradient 0's burst: everything still unsent drains now.
    for g in gen_blocks[-1]:
        heapq.heappush(ready, g)
    cursor = max(cursor, float(c[0]))

    if ready and ready[0] == 0:
        heapq.heappop(ready)
        cursor = _emit_block(
            [0], sizes, cursor, bandwidth, tcp, "critical", transfers, blocks
        )

    # --- forward phase: strict priority order, bounded block size.
    members = []
    block_bytes = 0.0
    while ready:
        q = heapq.heappop(ready)
        if members and block_bytes + float(sizes[q]) > forward_block_bytes:
            cursor = _emit_block(
                members, sizes, cursor, bandwidth, tcp, "forward", transfers, blocks
            )
            members, block_bytes = [], 0.0
        members.append(q)
        block_bytes += float(sizes[q])
    if members:
        cursor = _emit_block(
            members, sizes, cursor, bandwidth, tcp, "forward", transfers, blocks
        )

    return ProphetPlan(transfers=tuple(transfers), blocks=tuple(blocks))
