"""Prophet's core: profiling, block intervals, Algorithm 1, Eq. (1)-(5).

This package is the paper's primary contribution, framework-independent:

* :mod:`repro.core.profiler` — the Training Job Profiler: observes
  per-gradient generation times over the first K iterations and distills
  the stepwise profile Algorithm 1 consumes.
* :mod:`repro.core.intervals` — the block time intervals ``A(i)``.
* :mod:`repro.core.blocks` — gradient blocks and the Prophet plan.
* :mod:`repro.core.algorithm` — Algorithm 1: the offline planner mapping
  (c, s, B) to gradient-transfer start times.
* :mod:`repro.core.perf_model` — the DDNN training performance model of
  Sec. 3 (Eqs. (1)-(5)) and the feasibility checks for Constraints
  (7)-(9), (11).

The *online* scheduler that runs inside the simulated worker and re-plans
against live bandwidth lives in :mod:`repro.sched.prophet_sched`; it is a
faithful event-driven restatement of the planner here.
"""

from repro.core.profiler import JobProfile, JobProfiler
from repro.core.intervals import block_intervals, next_generation_boundary
from repro.core.blocks import GradientBlock, PlannedTransfer, ProphetPlan
from repro.core.algorithm import plan_schedule
from repro.core.perf_model import (
    PerfModelInputs,
    evaluate_schedule,
    wait_time,
    check_constraints,
    per_gradient_fwd_times,
)

__all__ = [
    "JobProfile",
    "JobProfiler",
    "block_intervals",
    "next_generation_boundary",
    "GradientBlock",
    "PlannedTransfer",
    "ProphetPlan",
    "plan_schedule",
    "PerfModelInputs",
    "evaluate_schedule",
    "wait_time",
    "check_constraints",
    "per_gradient_fwd_times",
]
