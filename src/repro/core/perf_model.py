"""The Sec. 3 DDNN training performance model (Eqs. (1)-(5)).

Given a transfer schedule — start times ``t(i)`` and estimated durations
``E(i)`` — this module evaluates the paper's analytic recursion:

* ``u(i) = t(i) + 2 E(i)``                                  (Eq. 4)
* ``p(0) = u(0) + T_fp(0)``;
  ``p(i) = max(p(i-1), u(i)) + T_fp(i)``                     (Eq. 3)
* ``T_wait = Σ_{i≠0} (u(i) − p(i-1))⁺ + (u(0) − c(0))``      (Eq. 2)
* ``T_all = Σ T_bp + Σ T_fp + T_wait``                       (Eq. 1)

and verifies the optimization problem's Constraints (7), (8), (9) and (11).
It is the yardstick the tests use to show Prophet's plan dominates FIFO /
fixed-partition schedules, independent of the event-driven simulator.

Gradient-granularity forward times: a layer's forward pass can only run
once *all* of its tensors are updated, so the layer's ``T_fp`` is assigned
to its **last** tensor — in the ascending-``i`` recursion of Eq. (3), that
tensor's ``u`` is the final gate before the layer computes.  Parameter-free
layers' times accrue onto the next parameterized layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SchedulingError
from repro.models.compute import ComputeProfile
from repro.models.gradients import gradient_table

__all__ = [
    "PerfModelInputs",
    "ScheduleEvaluation",
    "wait_time",
    "evaluate_schedule",
    "check_constraints",
    "per_gradient_fwd_times",
]


@dataclass(frozen=True)
class PerfModelInputs:
    """Everything Eq. (1)-(5) needs, all indexed by gradient priority.

    Attributes
    ----------
    c:
        Generation times ``c(i)`` (seconds from backward start).
    t:
        Transfer start times ``t(i)``.
    e:
        Transfer durations ``E(i)`` (one direction; Eq. (4) doubles it).
    fp:
        Per-gradient forward compute times ``T_fp(i)``.
    total_bwd:
        ``Σ T_bp`` — backward compute total (constant w.r.t. scheduling).
    """

    c: np.ndarray
    t: np.ndarray
    e: np.ndarray
    fp: np.ndarray
    total_bwd: float

    def __post_init__(self) -> None:
        n = len(self.c)
        for name in ("t", "e", "fp"):
            if len(getattr(self, name)) != n:
                raise ConfigurationError(f"{name} must have length {n}")
        if n == 0:
            raise ConfigurationError("empty performance-model inputs")


@dataclass(frozen=True)
class ScheduleEvaluation:
    """Evaluated schedule: update times, forward completions, totals."""

    u: np.ndarray
    p: np.ndarray
    t_wait: float
    iteration_time: float


def _update_times(inputs: PerfModelInputs) -> np.ndarray:
    """Eq. (4): parameter-update completion ``u(i) = t(i) + 2 E(i)``."""
    return inputs.t + 2.0 * inputs.e


def _forward_completions(u: np.ndarray, fp: np.ndarray) -> np.ndarray:
    """Eq. (3) recursion (vector-length loop; n is a few hundred)."""
    p = np.empty_like(u)
    p[0] = u[0] + fp[0]
    for i in range(1, len(u)):
        p[i] = max(p[i - 1], u[i]) + fp[i]
    return p


def wait_time(inputs: PerfModelInputs) -> float:
    """Eq. (2): total GPU wait time of one iteration."""
    u = _update_times(inputs)
    p = _forward_completions(u, inputs.fp)
    gaps = np.maximum(u[1:] - p[:-1], 0.0)
    return float(gaps.sum() + (u[0] - inputs.c[0]))


def evaluate_schedule(inputs: PerfModelInputs) -> ScheduleEvaluation:
    """Full Eq. (1)-(5) evaluation of a transfer schedule."""
    u = _update_times(inputs)
    p = _forward_completions(u, inputs.fp)
    gaps = np.maximum(u[1:] - p[:-1], 0.0)
    t_wait = float(gaps.sum() + (u[0] - inputs.c[0]))
    iteration_time = inputs.total_bwd + float(inputs.fp.sum()) + t_wait
    return ScheduleEvaluation(u=u, p=p, t_wait=t_wait, iteration_time=iteration_time)


def check_constraints(inputs: PerfModelInputs, tol: float = 1e-9) -> None:
    """Verify Constraints (7), (8), (9), (11); raise SchedulingError if not.

    * (7)  ``t(i) >= c(i)`` — no pushing before generation.
    * (8)  transfers do not overlap on the link.
    * (9)  transfers starting after ``c(0)`` run in priority order.
    * (11) transfers starting before ``c(0)`` finish before any
      higher-priority gradient that has not been generated yet.
    """
    c, t, e = inputs.c, inputs.t, inputs.e
    n = len(c)

    late = np.nonzero(t < c - tol)[0]
    if late.size:
        i = int(late[0])
        raise SchedulingError(
            f"Constraint (7) violated: gradient {i} starts at {t[i]:.6f} "
            f"before its generation at {c[i]:.6f}"
        )

    order = np.argsort(t, kind="stable")
    ends = t[order] + e[order]
    overlap = np.nonzero(t[order][1:] < ends[:-1] - tol)[0]
    if overlap.size:
        j = int(overlap[0])
        a, b = int(order[j]), int(order[j + 1])
        raise SchedulingError(
            f"Constraint (8) violated: gradient {b} starts at {t[b]:.6f} "
            f"while gradient {a} is transferring until {ends[j]:.6f}"
        )

    c0 = float(c[0])
    fwd = [int(i) for i in order if t[i] > c0 + tol]
    for a, b in zip(fwd, fwd[1:]):
        if b < a:
            raise SchedulingError(
                f"Constraint (9) violated: gradient {a} transfers before "
                f"higher-priority gradient {b} in the forward phase"
            )

    for i in range(n):
        if t[i] > c0 + tol:
            continue
        higher = np.arange(i)
        pending = higher[c[higher] > t[i] + tol]
        if pending.size and t[i] + e[i] > float(c[pending].min()) + tol:
            k = int(pending[np.argmin(c[pending])])
            raise SchedulingError(
                f"Constraint (11) violated: gradient {i}'s transfer "
                f"[{t[i]:.6f}, {t[i] + e[i]:.6f}] overruns the generation of "
                f"higher-priority gradient {k} at {c[k]:.6f}"
            )


def per_gradient_fwd_times(profile: ComputeProfile) -> np.ndarray:
    """Distribute per-layer forward times onto gradients (see module doc)."""
    grads = gradient_table(profile.model)
    if not grads:
        raise ConfigurationError("model has no gradients")
    fp = np.zeros(len(grads))
    last_tensor_of_layer: dict[int, int] = {}
    for g in grads:
        last_tensor_of_layer[g.layer_index] = g.index

    pending = 0.0
    last_assigned = None
    for layer_idx, fwd in enumerate(profile.fwd_times):
        if layer_idx in last_tensor_of_layer:
            idx = last_tensor_of_layer[layer_idx]
            fp[idx] += pending + float(fwd)
            pending = 0.0
            last_assigned = idx
        else:
            pending += float(fwd)
    if pending and last_assigned is not None:
        fp[last_assigned] += pending
    return fp
