"""Block time intervals A(i).

Algorithm 1 initializes "the expected transfer time interval
``A(i) ← min |c(i) − c(j)|, j < i``" — the window gradient ``i`` has for
transmission "before the higher-priority gradients are generated".  Taken
literally the formula degenerates (gradients flushed in the same burst have
``|c(i) − c(j)| = 0``), so we implement the evidently intended quantity:

    ``A(i)`` = time from ``c(i)`` until the next *strictly later* generation
    event of a higher-priority gradient — i.e. the width of gradient ``i``'s
    step in the staircase.

Gradients in the final block (the one containing gradient 0) have no later
higher-priority generation; their interval is ``+inf`` (the backward-phase
packing constraint vanishes and the forward-phase rules take over).

See DESIGN.md ("A(i) definition") for the fidelity note.
"""

from __future__ import annotations

import numpy as np

from repro.agg.stepwise import detect_blocks

__all__ = ["block_intervals", "next_generation_boundary"]


def block_intervals(c: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Per-gradient block time interval ``A(i)``.

    Parameters
    ----------
    c:
        Generation times indexed by gradient (the paper's ``c(i)``).
    eps:
        Same-block tolerance: generation events within ``eps`` seconds
        belong to one burst.
    """
    c = np.asarray(c, dtype=float)
    blocks = detect_blocks(c, eps)
    a = np.full(len(c), np.inf)
    for this_block, next_block in zip(blocks, blocks[1:]):
        step = c[next_block[0]] - c[this_block[0]]
        a[this_block] = step
    return a


def next_generation_boundary(
    c: np.ndarray, pending: np.ndarray, now: float
) -> float:
    """Earliest future generation time among ``pending`` gradients.

    ``pending`` is a boolean mask of gradients that have *not* yet been
    generated.  Returns ``+inf`` when nothing is pending — the online
    scheduler then knows no higher-priority gradient can preempt.  Events
    whose predicted time is already past (``<= now``) are treated as
    imminent and returned as ``now`` (the conservative choice: protect the
    about-to-arrive gradient rather than start a transfer that would block
    it).
    """
    c = np.asarray(c, dtype=float)
    pending = np.asarray(pending, dtype=bool)
    if pending.shape != c.shape:
        raise ValueError("pending mask must match c's shape")
    if not pending.any():
        return np.inf
    earliest = float(c[pending].min())
    return max(earliest, now)
