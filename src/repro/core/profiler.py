"""Training Job Profiler.

The Prophet prototype "pre-trains the DNN model for a certain number of
iterations (e.g., 50), to obtain the gradient information (e.g., the set of
gradient data, the computation time and size of each gradient) required by
Alg. 1" (paper Sec. 4.2).  :class:`JobProfiler` is that component: it
ingests per-gradient generation times (relative to the start of each
backward pass) across iterations and produces a :class:`JobProfile` — the
mean generation times ``c(i)`` and gradient sizes ``s(i)``.

Profiles can also be built directly from a
:class:`~repro.agg.kvstore.GenerationSchedule` (the "oracle" profile —
equivalent to a converged profiling run with zero jitter), which the fast
benchmark presets use to skip simulated warmup.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.agg.kvstore import GenerationSchedule
from repro.errors import ProfileError

__all__ = ["JobProfile", "JobProfiler"]


@dataclass(frozen=True)
class JobProfile:
    """Distilled stepwise profile of one training job on one worker.

    Attributes
    ----------
    c:
        ``c[i]`` — expected generation time of gradient ``i`` in seconds
        from the start of backward propagation.
    sizes:
        ``sizes[i]`` — gradient size in bytes.
    iterations:
        Number of iterations the profile was averaged over (0 for an
        oracle profile derived analytically).
    """

    c: np.ndarray
    sizes: np.ndarray
    iterations: int

    def __post_init__(self) -> None:
        if len(self.c) != len(self.sizes):
            raise ProfileError("c and sizes must have equal length")
        if len(self.c) == 0:
            raise ProfileError("empty profile")

    @property
    def num_gradients(self) -> int:
        return len(self.c)

    @cached_property
    def backward_span(self) -> float:
        """Time from the first gradient's generation to gradient 0's."""
        return float(self.c.max() - self.c.min())

    @classmethod
    def from_generation_schedule(cls, schedule: GenerationSchedule) -> "JobProfile":
        """Oracle profile: exact expected times, no measurement noise."""
        return cls(c=schedule.c.copy(), sizes=schedule.sizes.copy(), iterations=0)

    # ------------------------------------------------------------------
    # Trace I/O: persist/load profiles measured outside this library
    # (e.g. a BytePS trace from a real cluster).
    # ------------------------------------------------------------------
    def to_csv(self, path) -> "Path":
        """Write the profile as ``grad,c_seconds,size_bytes`` rows."""
        from pathlib import Path

        path = Path(path)
        with path.open("w") as fh:
            fh.write(f"# iterations={self.iterations}\n")
            fh.write("grad,c_seconds,size_bytes\n")
            for i, (c, s) in enumerate(zip(self.c, self.sizes)):
                fh.write(f"{i},{float(c)!r},{float(s)!r}\n")
        return path

    @classmethod
    def from_csv(cls, path) -> "JobProfile":
        """Load a profile written by :meth:`to_csv` (or a measured trace
        in the same format).  Rows may be in any gradient order; indices
        must form a contiguous 0..n-1 range."""
        from pathlib import Path

        path = Path(path)
        iterations = 0
        entries: dict[int, tuple[float, float]] = {}
        with path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    if "iterations=" in line:
                        iterations = int(line.split("iterations=")[1])
                    continue
                if line.startswith("grad,"):
                    continue
                grad_s, c_s, size_s = line.split(",")
                entries[int(grad_s)] = (float(c_s), float(size_s))
        if not entries:
            raise ProfileError(f"no profile rows in {path}")
        if sorted(entries) != list(range(len(entries))):
            raise ProfileError(f"gradient indices in {path} are not contiguous")
        c = np.array([entries[i][0] for i in range(len(entries))])
        sizes = np.array([entries[i][1] for i in range(len(entries))])
        return cls(c=c, sizes=sizes, iterations=iterations)


class JobProfiler:
    """Accumulates generation-time observations over warmup iterations.

    Usage: call :meth:`observe` for every gradient of an iteration, then
    :meth:`end_iteration`; once ``iterations_observed >= min_iterations``,
    :meth:`ready` turns true and :meth:`build` returns the averaged
    :class:`JobProfile`.
    """

    def __init__(self, sizes: np.ndarray, min_iterations: int = 50):
        if min_iterations < 1:
            raise ProfileError(f"min_iterations must be >= 1, got {min_iterations}")
        self._sizes = np.asarray(sizes, dtype=float)
        if len(self._sizes) == 0:
            raise ProfileError("sizes must be non-empty")
        self.min_iterations = min_iterations
        self._sum = np.zeros(len(self._sizes))
        self._count = np.zeros(len(self._sizes), dtype=np.int64)
        self._current: dict[int, float] = {}
        self._iterations = 0

    @property
    def num_gradients(self) -> int:
        return len(self._sizes)

    @property
    def iterations_observed(self) -> int:
        return self._iterations

    @property
    def ready(self) -> bool:
        """Whether enough complete iterations were observed to build."""
        return self._iterations >= self.min_iterations

    def observe(self, grad: int, rel_time: float) -> None:
        """Record that ``grad`` was generated ``rel_time`` s into backward."""
        if not 0 <= grad < len(self._sizes):
            raise ProfileError(f"gradient index {grad} out of range")
        if rel_time < 0:
            raise ProfileError(f"negative relative time {rel_time} for gradient {grad}")
        if grad in self._current:
            raise ProfileError(f"gradient {grad} observed twice in one iteration")
        self._current[grad] = rel_time

    def end_iteration(self) -> None:
        """Fold the current iteration's observations into the running mean."""
        if len(self._current) != len(self._sizes):
            # Partial iteration (e.g. the very first one a scheduler joins
            # mid-flight) — discard rather than bias the means.
            self._current.clear()
            return
        for grad, rel in self._current.items():
            self._sum[grad] += rel
            self._count[grad] += 1
        self._current.clear()
        self._iterations += 1

    def build(self) -> JobProfile:
        """Averaged profile; requires :attr:`ready`."""
        if not self.ready:
            raise ProfileError(
                f"profiler has {self._iterations} iterations, "
                f"needs {self.min_iterations}"
            )
        c = self._sum / np.maximum(self._count, 1)
        return JobProfile(c=c, sizes=self._sizes.copy(), iterations=self._iterations)
