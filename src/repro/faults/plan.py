"""Declarative fault plans for the discrete-event simulator.

A :class:`FaultPlan` is a frozen, seed-independent description of *what
goes wrong and when* during a simulated training run: worker crashes with
restart-after-delay, link flap/degrade windows layered onto the links'
bandwidth schedules, per-message drop probabilities, and parameter-server
stall intervals.  The plan carries no randomness of its own — the
:class:`~repro.faults.injector.FaultInjector` draws per-message drop
decisions from a dedicated RNG stream spawned from the experiment seed, so
the same ``(config, plan)`` pair always replays the same failure sequence.

All validation is eager (:class:`~repro.errors.ConfigurationError` at
construction), matching the rest of the configuration layer.  An *empty*
plan — no discrete faults and every drop probability zero — is recognised
by :attr:`FaultPlan.is_empty`; the trainer then wires **no** injector at
all, which is what makes the injection layer provably inert when unused.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cluster.messages import RetryPolicy
from repro.errors import ConfigurationError

__all__ = [
    "WorkerCrash",
    "LinkFlap",
    "MessageDrops",
    "PSStall",
    "ServerCrash",
    "FaultPlan",
]


@dataclass(frozen=True)
class WorkerCrash:
    """Worker ``worker`` crashes at ``at`` and restarts ``restart_after``
    seconds later.

    The crash aborts the worker's in-flight transfer (those bytes are lost
    and must be retransmitted by the reliable-delivery layer), freezes its
    compute, and suspends its communication agent.  On restart the worker
    resumes from recovered state: deferred compute completions replay, and
    any unacknowledged pushes re-enter the retry queue.
    """

    worker: int
    at: float
    restart_after: float

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ConfigurationError(f"crash worker must be >= 0, got {self.worker}")
        if self.at < 0:
            raise ConfigurationError(f"crash time must be >= 0, got {self.at}")
        if self.restart_after <= 0:
            raise ConfigurationError(
                f"restart_after must be positive, got {self.restart_after}"
            )


@dataclass(frozen=True)
class LinkFlap:
    """Multiply one worker's (or every worker's) available bandwidth by
    ``factor`` during ``[start, start + duration)``.

    ``factor`` in ``(0, 1]``: a near-zero factor models a link cut (kept
    strictly positive so in-window transfers finish in finite time), an
    intermediate factor a degrade window.  ``worker=None`` flaps all links.
    """

    start: float
    duration: float
    factor: float
    worker: int | None = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigurationError(f"flap start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ConfigurationError(
                f"flap duration must be positive, got {self.duration}"
            )
        if not 0 < self.factor <= 1:
            raise ConfigurationError(
                f"flap factor must be in (0, 1], got {self.factor}"
            )
        if self.worker is not None and self.worker < 0:
            raise ConfigurationError(f"flap worker must be >= 0, got {self.worker}")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class MessageDrops:
    """Independent per-message drop probabilities during ``[start, end)``.

    ``push`` applies to push data messages (worker → PS), ``pull`` to pull
    responses (PS → worker), and ``ack`` to push acknowledgements — the leg
    whose loss produces *duplicate* pushes and therefore exercises the
    PS's at-most-once sequence-number dedup.  ``worker=None`` applies to
    every worker.
    """

    push: float = 0.0
    pull: float = 0.0
    ack: float = 0.0
    start: float = 0.0
    end: float = math.inf
    worker: int | None = None

    def __post_init__(self) -> None:
        for name in ("push", "pull", "ack"):
            p = getattr(self, name)
            if not 0 <= p < 1:
                raise ConfigurationError(
                    f"{name} drop probability must be in [0, 1), got {p}"
                )
        if self.start < 0:
            raise ConfigurationError(f"drop start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise ConfigurationError(
                f"drop window end {self.end} must exceed start {self.start}"
            )
        if self.worker is not None and self.worker < 0:
            raise ConfigurationError(f"drop worker must be >= 0, got {self.worker}")

    @property
    def is_noop(self) -> bool:
        return self.push == 0.0 and self.pull == 0.0 and self.ack == 0.0


@dataclass(frozen=True)
class PSStall:
    """The parameter server stops releasing pulls during
    ``[at, at + duration)`` (GC pause, preemption, failover hand-off).

    Aggregation state keeps accumulating — only the *release* of updated
    parameters is deferred to the end of the window, after which queued
    releases flush in their original order.  On the sharded tier,
    ``server`` restricts the stall to one shard PS; ``server=None`` stalls
    the whole tier.
    """

    at: float
    duration: float
    server: int | None = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError(f"stall time must be >= 0, got {self.at}")
        if self.duration <= 0:
            raise ConfigurationError(
                f"stall duration must be positive, got {self.duration}"
            )
        if self.server is not None and self.server < 0:
            raise ConfigurationError(
                f"stall server must be >= 0, got {self.server}"
            )

    @property
    def end(self) -> float:
        return self.at + self.duration


@dataclass(frozen=True)
class ServerCrash:
    """Shard PS ``server`` goes down at ``at`` and a warm standby takes
    over ``failover_after`` seconds later.

    Durable state (everything the PS has *acknowledged*) survives the
    hand-off; pushes arriving inside the outage window are lost and are
    replayed by the workers' reliable-delivery retry queues once the
    standby answers.  Pull releases queued during the outage flush at
    failover, in their original order — the same deferral semantics as a
    :class:`PSStall`, plus the message loss.
    """

    server: int
    at: float
    failover_after: float

    def __post_init__(self) -> None:
        if self.server < 0:
            raise ConfigurationError(
                f"crash server must be >= 0, got {self.server}"
            )
        if self.at < 0:
            raise ConfigurationError(f"crash time must be >= 0, got {self.at}")
        if self.failover_after <= 0:
            raise ConfigurationError(
                f"failover_after must be positive, got {self.failover_after}"
            )

    @property
    def end(self) -> float:
        return self.at + self.failover_after


@dataclass(frozen=True)
class FaultPlan:
    """Complete fault schedule for one run, plus the retry policy the
    reliable-delivery layer uses to survive it."""

    crashes: tuple[WorkerCrash, ...] = ()
    flaps: tuple[LinkFlap, ...] = ()
    drops: tuple[MessageDrops, ...] = ()
    ps_stalls: tuple[PSStall, ...] = ()
    server_crashes: tuple[ServerCrash, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        # Tolerate lists in hand-written plans; normalize to tuples so the
        # plan stays hashable/frozen in spirit.
        for name in ("crashes", "flaps", "drops", "ps_stalls", "server_crashes"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        crashed: set[int] = set()
        for crash in self.crashes:
            if crash.worker in crashed:
                raise ConfigurationError(
                    f"multiple crashes for worker {crash.worker}; "
                    "one outage per worker per plan is supported"
                )
            crashed.add(crash.worker)
        downed: set[int] = set()
        for sc in self.server_crashes:
            if sc.server in downed:
                raise ConfigurationError(
                    f"multiple crashes for server {sc.server}; "
                    "one outage per server per plan is supported"
                )
            downed.add(sc.server)
        stalls = sorted(self.ps_stalls, key=lambda s: s.at)
        for a, b in zip(stalls, stalls[1:]):
            if b.at < a.end and (
                a.server is None or b.server is None or a.server == b.server
            ):
                raise ConfigurationError(
                    f"PS stall windows overlap: [{a.at}, {a.end}) and "
                    f"[{b.at}, {b.end})"
                )

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing at all (layer stays inert)."""
        return (
            not self.crashes
            and not self.flaps
            and not self.ps_stalls
            and not self.server_crashes
            and all(d.is_noop for d in self.drops)
        )

    def validate_workers(self, n_workers: int) -> None:
        """Check that every referenced worker id exists in the cluster."""
        for crash in self.crashes:
            if crash.worker >= n_workers:
                raise ConfigurationError(
                    f"crash references worker {crash.worker} but the "
                    f"cluster has {n_workers} workers"
                )
        for flap in self.flaps:
            if flap.worker is not None and flap.worker >= n_workers:
                raise ConfigurationError(
                    f"flap references worker {flap.worker} but the "
                    f"cluster has {n_workers} workers"
                )
        for drop in self.drops:
            if drop.worker is not None and drop.worker >= n_workers:
                raise ConfigurationError(
                    f"drop spec references worker {drop.worker} but the "
                    f"cluster has {n_workers} workers"
                )

    def validate_topology(
        self, n_workers: int, n_servers: int = 1, backend: str = "ps"
    ) -> None:
        """Check the plan against the concrete cluster topology.

        Replaces the old blanket "faults not supported on this backend"
        rejections: every fault must name an entity that exists in the
        topology, and faults whose semantics have no counterpart on a
        backend (PS-leg faults on allreduce) are configuration errors, not
        silent no-ops.
        """
        self.validate_workers(n_workers)
        if backend == "allreduce":
            for drop in self.drops:
                if drop.pull != 0.0 or drop.ack != 0.0:
                    raise ConfigurationError(
                        "pull/ack drop probabilities have no meaning on the "
                        "allreduce backend (there is no PS leg); only "
                        "``push`` drops apply, as per-chunk ring-step losses"
                    )
            if self.ps_stalls:
                raise ConfigurationError(
                    "PS stalls have no meaning on the allreduce backend; "
                    "model a slow rank with a LinkFlap instead"
                )
            if self.server_crashes:
                raise ConfigurationError(
                    "server crashes have no meaning on the allreduce "
                    "backend; use WorkerCrash to remove a rank"
                )
            if len(self.crashes) >= n_workers:
                raise ConfigurationError(
                    "the plan crashes every rank in the collective group; "
                    "at least one survivor is required"
                )
        else:
            for sc in self.server_crashes:
                if sc.server >= n_servers:
                    raise ConfigurationError(
                        f"server crash references server {sc.server} but "
                        f"the PS tier has {n_servers} servers"
                    )
            for stall in self.ps_stalls:
                if stall.server is not None and stall.server >= n_servers:
                    raise ConfigurationError(
                        f"PS stall references server {stall.server} but "
                        f"the PS tier has {n_servers} servers"
                    )
