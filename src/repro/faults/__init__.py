"""Deterministic fault injection (``repro.faults``).

Declarative :class:`FaultPlan` specs describe worker crashes, link flaps,
per-message drops, and PS stalls; the :class:`FaultInjector` replays them
against the simulated cluster under the experiment seed.  See
``experiments/chaos.py`` for the resilience harness built on top.
"""

from repro.cluster.messages import RetryPolicy
from repro.faults.injector import FaultInjector, FlappedSchedule
from repro.faults.plan import (
    FaultPlan,
    LinkFlap,
    MessageDrops,
    PSStall,
    ServerCrash,
    WorkerCrash,
)

__all__ = [
    "FaultPlan",
    "WorkerCrash",
    "LinkFlap",
    "MessageDrops",
    "PSStall",
    "ServerCrash",
    "RetryPolicy",
    "FaultInjector",
    "FlappedSchedule",
]
