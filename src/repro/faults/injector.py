"""Seed-driven fault injection for the cluster simulation.

The :class:`FaultInjector` turns a declarative
:class:`~repro.faults.plan.FaultPlan` into scheduled engine events (crash,
restart, flap and stall boundaries) and into per-message drop decisions
drawn from a dedicated RNG stream (``spawn_rng(seed, "faults")``).  All
fault occurrences are counted in :attr:`FaultInjector.stats` and recorded
as ``fault``-category trace instants when tracing is enabled, so a chaos
run's Perfetto view shows exactly when each failure fired and when the
cluster recovered.

Link flaps are layered onto the links' existing bandwidth schedules via
:class:`FlappedSchedule`, which multiplies the base schedule's value inside
each flap window — composing with, not replacing, the dynamic-bandwidth
experiments' square waves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.faults.plan import FaultPlan, LinkFlap
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.link import Link

__all__ = ["FaultInjector", "FlappedSchedule"]

#: Drop legs the delivery layer may roll for.  ``chunk`` is the collective
#: backend's alias for the plan's ``push`` probability: one roll per ring
#: chunk-step completion, a lost chunk forcing a same-link retransmit.
_LEGS = ("push", "pull", "ack", "chunk")


class FlappedSchedule:
    """A bandwidth schedule with flap windows layered multiplicatively.

    Duck-types :class:`~repro.net.link.BandwidthSchedule` (``value`` and
    ``mean``), so links and monitors are oblivious to the wrapping.
    Overlapping windows compound (two 0.5x flaps yield 0.25x).
    """

    def __init__(self, base, flaps: tuple[LinkFlap, ...]):
        self._base = base
        self._flaps = tuple(flaps)

    def value(self, time: float) -> float:
        value = self._base.value(time)
        for flap in self._flaps:
            if flap.start <= time < flap.end:
                value *= flap.factor
        return value

    @property
    def mean(self) -> float:
        """Mean of the *base* schedule (summaries ignore transient flaps)."""
        return self._base.mean


class FaultInjector:
    """Schedules a plan's fault events and serves drop decisions."""

    def __init__(
        self,
        engine: Engine,
        plan: FaultPlan,
        n_workers: int,
        rng: np.random.Generator,
    ):
        plan.validate_workers(n_workers)
        self.engine = engine
        self.plan = plan
        self.n_workers = n_workers
        self._rng = rng
        self._installed = False
        #: Fault/recovery counters accumulated over the run.
        self.stats: dict[str, int] = {
            "push_drops": 0,
            "pull_drops": 0,
            "ack_drops": 0,
            "chunk_drops": 0,
            "push_retries": 0,
            "pull_retries": 0,
            "chunk_retries": 0,
            "ring_steps": 0,
            "stalled_steps": 0,
            "shrinks": 0,
            "duplicate_pushes": 0,
            "crashes": 0,
            "restarts": 0,
            "link_flaps": 0,
            "ps_stalls": 0,
            "server_crashes": 0,
            "failovers": 0,
            "lost_pushes": 0,
        }
        #: ``(time, kind, detail)`` log of every discrete fault event.
        self.log: list[tuple[float, str, dict]] = []
        self._stalls = tuple(sorted(plan.ps_stalls, key=lambda s: s.at))

    @property
    def retry(self):
        """The plan's :class:`~repro.cluster.messages.RetryPolicy`."""
        return self.plan.retry

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def install(
        self,
        workers: list,
        links: Mapping[int, "Link | Sequence[Link]"],
        servers: "Sequence | None" = None,
    ) -> None:
        """Wrap link schedules and schedule every discrete fault event.

        ``workers`` are the cluster's :class:`~repro.cluster.worker.Worker`
        objects (crash targets); ``links`` maps worker id → uplink or
        sequence of uplinks (flap targets — on the sharded tier every
        per-shard duplex uplink of a flapped worker degrades together; on
        the collective backend the worker's ring/local/global links do).
        ``servers`` lists the PS tier's
        :class:`~repro.cluster.ps.ParameterServer` objects, indexed by
        shard, when the plan contains :class:`ServerCrash` events.  Must be
        called exactly once, before the engine runs.
        """
        if self._installed:
            raise SimulationError("FaultInjector.install() called twice")
        self._installed = True
        for worker_id, worker_links in links.items():
            flaps = tuple(
                f
                for f in self.plan.flaps
                if f.worker is None or f.worker == worker_id
            )
            if not flaps:
                continue
            if not isinstance(worker_links, (list, tuple)):
                worker_links = (worker_links,)
            for link in worker_links:
                link.schedule = FlappedSchedule(link.schedule, flaps)
        seen_flap_windows = set()
        for flap in self.plan.flaps:
            window = (flap.start, flap.duration, flap.factor, flap.worker)
            if window in seen_flap_windows:
                continue
            seen_flap_windows.add(window)
            self.engine.schedule(flap.start, self._flap_started, flap)
            self.engine.schedule(flap.end, self._flap_ended, flap)
        for crash in self.plan.crashes:
            self.engine.schedule(crash.at, self._crash, workers[crash.worker], crash)
        for stall in self._stalls:
            self.engine.schedule(stall.at, self._stall_started, stall)
            self.engine.schedule(stall.end, self._stall_ended, stall)
        if self.plan.server_crashes:
            if servers is None:
                raise SimulationError(
                    "the plan contains server crashes but install() got no "
                    "servers"
                )
            for sc in self.plan.server_crashes:
                self.engine.schedule(sc.at, self._server_crash, servers[sc.server], sc)
                self.engine.schedule(
                    sc.end, self._server_failover, servers[sc.server], sc
                )

    # ------------------------------------------------------------------
    # Queries served to the delivery layer
    # ------------------------------------------------------------------
    def roll_drop(self, leg: str, worker: int) -> bool:
        """Decide whether a ``leg`` message of ``worker`` is lost now.

        Active drop specs combine as independent loss processes
        (``1 - prod(1 - p)``).  Every call draws exactly once so the drop
        sequence is a deterministic function of the delivery event order.
        """
        if leg not in _LEGS:
            raise SimulationError(f"unknown drop leg {leg!r}")
        attr = "push" if leg == "chunk" else leg
        now = self.engine.now
        keep = 1.0
        for spec in self.plan.drops:
            if spec.worker is not None and spec.worker != worker:
                continue
            if not spec.start <= now < spec.end:
                continue
            keep *= 1.0 - getattr(spec, attr)
        p = 1.0 - keep
        if p <= 0.0:
            return False
        dropped = bool(self._rng.random() < p)
        if dropped:
            self.stats[f"{leg}_drops"] += 1
            self._record(f"drop.{leg}", f"worker{worker}/faults", {"worker": worker})
        return dropped

    def ps_release_delay(self, now: float, server: int | None = None) -> float:
        """Extra delay a PS release scheduled at ``now`` must absorb
        because of an active stall window (0 outside every window).

        ``server`` is the releasing PS's shard index; stalls pinned to a
        different shard are ignored, tier-wide stalls (``server=None`` in
        the spec) always apply.
        """
        for stall in self._stalls:
            if stall.server is not None and server is not None:
                if stall.server != server:
                    continue
            if stall.at <= now < stall.end:
                return stall.end - now
        return 0.0

    def count(self, key: str, n: int = 1) -> None:
        """Increment a stats counter (retries, duplicates) from the
        delivery layer."""
        self.stats[key] = self.stats.get(key, 0) + n

    # ------------------------------------------------------------------
    # Scheduled fault events
    # ------------------------------------------------------------------
    def _crash(self, worker, crash) -> None:
        if worker.done:
            return  # training outran the plan; a crash after completion is moot
        self.stats["crashes"] += 1
        self._record(
            "fault.crash",
            f"worker{crash.worker}/faults",
            {"worker": crash.worker, "restart_after": crash.restart_after},
        )
        worker.crash()
        self.engine.schedule_after(crash.restart_after, self._restart, worker, crash)

    def _restart(self, worker, crash) -> None:
        self.stats["restarts"] += 1
        self._record(
            "fault.restart", f"worker{crash.worker}/faults", {"worker": crash.worker}
        )
        worker.restart()

    def _flap_started(self, flap: LinkFlap) -> None:
        self.stats["link_flaps"] += 1
        track = "faults" if flap.worker is None else f"worker{flap.worker}/faults"
        self._record(
            "fault.flap",
            track,
            {"worker": flap.worker, "factor": flap.factor, "duration": flap.duration},
        )

    def _flap_ended(self, flap: LinkFlap) -> None:
        track = "faults" if flap.worker is None else f"worker{flap.worker}/faults"
        self._record("fault.flap_end", track, {"worker": flap.worker})

    def _stall_started(self, stall) -> None:
        self.stats["ps_stalls"] += 1
        track = "ps" if stall.server is None else f"ps{stall.server}"
        self._record(
            "fault.ps_stall",
            track,
            {"duration": stall.duration, "server": stall.server},
        )

    def _stall_ended(self, stall) -> None:
        track = "ps" if stall.server is None else f"ps{stall.server}"
        self._record("fault.ps_resume", track, {"server": stall.server})

    def _server_crash(self, ps, sc) -> None:
        self.stats["server_crashes"] += 1
        self._record(
            "fault.server_crash",
            ps.name,
            {"server": sc.server, "failover_after": sc.failover_after},
        )
        ps.fail()

    def _server_failover(self, ps, sc) -> None:
        self.stats["failovers"] += 1
        self._record("fault.failover", ps.name, {"server": sc.server})
        ps.recover()

    # ------------------------------------------------------------------
    def record(self, kind: str, track: str, detail: dict) -> None:
        """Public log/trace hook for recovery events originated *outside*
        the injector — the collective controller's elastic shrink, the
        executors' straggler timeouts — so one timeline holds every fault
        and every recovery action."""
        self._record(kind, track, detail)

    def _record(self, kind: str, track: str, detail: dict) -> None:
        self.log.append((self.engine.now, kind, detail))
        trace = self.engine.trace
        if trace.enabled:
            trace.instant(kind, "fault", self.engine.now, track, detail)
