"""Event queue and simulation clock.

The engine is a calendar queue: events are binned into fixed-width time
buckets (a dict keyed by ``time // width``), and a small binary heap
orders the *buckets*, not the events.  Design points that matter for this
reproduction:

* **Deterministic tie-breaking.**  Events at the same timestamp fire in
  the order they were scheduled (a monotone sequence number is part of
  the sort key).  Communication-scheduling experiments are full of
  simultaneous events (a burst of gradients released by aggregation), and
  replaying the exact same interleaving under a fixed seed is what makes
  the benchmark tables reproducible.  The calendar queue preserves the
  exact ``(time, seq)`` FIFO order of the old single-heap engine: bucket
  index is monotone in time, a bucket is sorted on activation if any
  append broke its order, and events appended to the *active* bucket
  mid-drain re-sort the undrained suffix when (and only when) the append
  broke it.
* **Why buckets beat one big heap.**  A binary heap pays ``O(log n)``
  comparisons per push *and* pop, and with a Python-level ``__lt__``
  those comparisons dominated the event loop at fleet shapes (64 workers
  keep a 64-deep heap; every event paid ~12 interpreted comparisons).
  Here an event lands in its bucket with one dict probe and a list
  append; the heap only orders bucket *indices* — plain C float
  comparisons on a heap that is ~occupancy× smaller.  Same-timestamp
  bursts (a barrier step completing on 64 links at once) coalesce into
  one bucket and drain as a straight list scan.  :class:`Event` is a
  ``list`` subclass (``[time, seq, fn, args, alive, engine]``) so both
  sorting and construction run at C speed; ``seq`` is unique, so a sort
  never compares beyond index 1.
* **Bucket width auto-tuning.**  Width starts at 10 µs and is retuned
  from the observed inter-event firing spacing (targeting
  :data:`_TARGET_OCCUPANCY` events per bucket) every
  :data:`_RETUNE_STRIDE` bucket activations, rebuilding the calendar
  only when the ideal width drifts ≥ 4× from the current one.  Retuning
  happens strictly *between* bucket drains, when no bucket is active, so
  a rebuild can never reorder an in-flight drain.  Far-future events
  (idle-link watchdogs, fault timers) degrade gracefully: each lands in
  its own distant bucket, and the bucket heap behaves exactly like the
  old event heap — that *is* the heap fallback, with cheaper C-float
  comparisons.
* **Cancellation by tombstone, with lazy compaction.**  ``cancel`` marks
  the event dead in place — O(1), no structure surgery.  Dead events are
  skipped when their bucket drains.  Cancellation-heavy runs
  (Prophet/ByteScheduler replanning every block) can accumulate
  tombstones faster than draining retires them, so the engine keeps an
  O(1) count of dead events and sweeps all idle buckets once more than
  half the queued events are tombstones.  This bounds the structure at
  twice the live-event count instead of growing with the total number of
  cancellations.
* **No wall-clock coupling.**  The clock only advances when an event
  fires, so a simulated 10-minute training job costs only as much real
  time as its event count.
* **Trace attach point.**  The engine owns the simulation clock, so it
  also carries the session's trace recorder (``engine.trace``, default
  no-op): every component already holds the engine, which spares
  threading a recorder through each constructor.  While tracing, the run
  loop samples its own queue depth as a counter every
  :data:`_TRACE_QUEUE_STRIDE` events; disabled, the run loop takes a
  leaner specialized path with no per-event trace or budget checks.
"""

from __future__ import annotations

import heapq
from math import inf
from typing import Any, Callable

from repro.errors import SimulationError
from repro.trace.recorder import NULL_RECORDER, NullRecorder, TraceRecorder

__all__ = ["Event", "Engine"]

#: While tracing, sample the event-queue depth every this many events.
_TRACE_QUEUE_STRIDE = 256

#: Tombstone compaction only kicks in above this many dead events — tiny
#: queues are cheaper to drain than to sweep.
_COMPACT_MIN_DEAD = 64

#: Bucket-width auto-tuning: aim for this many events per bucket ...
_TARGET_OCCUPANCY = 32
#: ... re-evaluating the width every this many bucket activations ...
_RETUNE_STRIDE = 256
#: ... and only rebuilding when the ideal width drifts 4x from current.
_RETUNE_RATIO = 4.0
_WIDTH_MIN = 1e-9
_WIDTH_MAX = 1e3

# Event list layout (indices into the Event list subclass).
_TIME = 0
_SEQ = 1
_FN = 2
_ARGS = 3
_ALIVE = 4
_ENGINE = 5


class Event(list):
    """Handle to a scheduled callback.

    Instances are returned by :meth:`Engine.schedule` and can be used to
    cancel the callback before it fires.  The handle exposes the
    scheduled ``time`` and whether the event is still ``alive``.

    Internally an event *is* a list — ``[time, seq, fn, args, alive,
    engine]`` — so bucket sorts compare ``(time, seq)`` element-wise at C
    speed (``seq`` is unique per engine, so a comparison never reaches
    the callback).  The attribute API below is the public surface;
    treat the list layout as private.
    """

    __slots__ = ()

    # Identity hashing (list subclasses are unhashable by default; event
    # handles are compared and hashed as opaque tokens).
    __hash__ = object.__hash__  # type: ignore[assignment]

    @property
    def time(self) -> float:
        """Scheduled firing time (absolute simulation seconds)."""
        return self[_TIME]

    @property
    def seq(self) -> int:
        """Monotone schedule-order sequence number (the FIFO tiebreak)."""
        return self[_SEQ]

    @property
    def fn(self) -> Callable[..., None]:
        return self[_FN]

    @property
    def args(self) -> tuple:
        return self[_ARGS]

    @property
    def alive(self) -> bool:
        """Whether the event can still fire (``cancel`` clears this)."""
        return self[_ALIVE]

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self[_ALIVE]:
            self[_ALIVE] = False
            engine = self[_ENGINE]
            if engine is not None:
                engine._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self[_ALIVE] else "cancelled"
        name = getattr(self[_FN], "__qualname__", repr(self[_FN]))
        return f"Event(t={self[_TIME]:.6f}, fn={name}, {state})"


class Engine:
    """Discrete-event simulation engine.

    Example
    -------
    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(1.0, fired.append, "a")
    >>> _ = eng.schedule(0.5, fired.append, "b")
    >>> eng.run()
    >>> fired
    ['b', 'a']
    >>> eng.now
    1.0
    """

    def __init__(
        self,
        trace: TraceRecorder | NullRecorder = NULL_RECORDER,
        time_quantum: float | None = None,
    ) -> None:
        #: Calendar: bucket index -> list of Events in that bin.  Indices
        #: are floats (``time // width``); ``time * inv_width // 1.0`` is
        #: monotone in time, which is all ordering correctness needs.
        #: A non-finite product (events at/near t=inf) collapses to the
        #: shared ``inf`` bucket, which drains last.
        self._buckets: dict[float, list[Event]] = {}
        #: Heap of ``(bucket_index, bucket_list)`` ordering the calendar.
        #: Bucket indices are unique in the heap (the dict guarantees one
        #: bucket per index), so heap comparisons stop at the C float.
        self._bucket_heap: list[tuple[float, list[Event]]] = []
        #: Indices of buckets whose append order is broken (an event was
        #: added before an already-queued one); sorted at activation.
        #: Buckets not in this set are already in (time, seq) order.
        self._unsorted: set[float] = set()
        #: Bucket currently being drained by run()/step(), else None.
        #: Removed from the dict/heap while active; schedule() appends
        #: same-bucket events directly to it.
        self._active: list[Event] | None = None
        self._active_idx = -1.0
        #: Set when an append broke the active bucket's undrained-suffix
        #: order (new event earlier than a queued one); the drain loop
        #: re-sorts the suffix before the next pop.
        self._active_dirty = False
        self._width = 1e-5
        self._inv_width = 1.0 / self._width
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        #: Physical event count across buckets (incl. tombstones).  The
        #: specialized drain loop batches its decrements per bucket, so
        #: mid-callback reads may be high by the bucket's fired count.
        self._size = 0
        #: Count of cancelled events still queued; kept exact so
        #: ``pending()`` is O(1) and compaction can trigger lazily.
        self._dead = 0
        #: Tombstones a sweep could not reclaim (they sat in the active
        #: bucket); prevents a sweep storm when the threshold stays met.
        self._compact_floor = 0
        # Width-retune bookkeeping (observed firing spacing).
        self._activations = 0
        self._retune_mark_time = 0.0
        self._retune_mark_events = 0
        #: Optional time grid (seconds; a positive power of two).  When
        #: set, every *delay* handed to :meth:`schedule_after` is snapped
        #: to the nearest grid multiple.  Because only delays are snapped
        #: — a pure function of the delay, never of the current clock —
        #: every absolute event time stays an exact grid multiple and
        #: time arithmetic becomes exactly translation-invariant, which
        #: is what makes steady-state fast-forward (:mod:`repro.sim.
        #: fastforward`) bit-exact.  ``None`` (default) changes nothing.
        self._quantum = time_quantum
        self._inv_quantum = 0.0 if time_quantum is None else 1.0 / time_quantum
        #: Trace recorder shared by every component holding this engine.
        self.trace = trace
        #: Set by the fleet simulator when several jobs share this engine.
        #: Whole-engine transformations (steady-state fast-forward shifts
        #: every queued event) are unsound with co-tenants, so eligibility
        #: checks consult this flag; per-job components namespace their
        #: trace tracks and event tags themselves.
        self.multi_tenant = False

    @property
    def time_quantum(self) -> float | None:
        """The delay grid in seconds, or ``None`` when snapping is off."""
        return self._quantum

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``.

        ``time`` must not be in the past; scheduling *at* the current time is
        allowed and the event fires after all previously scheduled events at
        that timestamp.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.9f} before now={self._now:.9f}"
            )
        self._seq = seq = self._seq + 1
        ev = Event((time, seq, fn, args, True, self))
        self._size += 1
        idx = time * self._inv_width // 1.0
        if idx != idx:  # non-finite time: the shared far bucket
            idx = inf
        if idx == self._active_idx:
            active = self._active
            if active[-1][0] > time:  # type: ignore[index]
                self._active_dirty = True
            active.append(ev)  # type: ignore[union-attr]
            return ev
        bucket = self._buckets.get(idx)
        if bucket is None:
            self._buckets[idx] = bucket = [ev]
            heapq.heappush(self._bucket_heap, (idx, bucket))
        else:
            if bucket[-1][0] > time:
                self._unsorted.add(idx)
            bucket.append(ev)
        return ev

    def schedule_after(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` ``delay`` seconds from now (``delay >= 0``)."""
        # Fused copy of schedule() minus the past-time check (delay >= 0
        # implies time >= now): this is the hottest call in the simulator
        # and the extra frame was measurable.
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        quantum = self._quantum
        if quantum is not None:
            delay = round(delay * self._inv_quantum) * quantum
        time = self._now + delay
        self._seq = seq = self._seq + 1
        ev = Event((time, seq, fn, args, True, self))
        self._size += 1
        idx = time * self._inv_width // 1.0
        if idx != idx:
            idx = inf
        if idx == self._active_idx:
            active = self._active
            if active[-1][0] > time:  # type: ignore[index]
                self._active_dirty = True
            active.append(ev)  # type: ignore[union-attr]
            return ev
        bucket = self._buckets.get(idx)
        if bucket is None:
            self._buckets[idx] = bucket = [ev]
            heapq.heappush(self._bucket_heap, (idx, bucket))
        else:
            if bucket[-1][0] > time:
                self._unsorted.add(idx)
            bucket.append(ev)
        return ev

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        ``until`` is inclusive: events scheduled exactly at ``until`` fire.
        When the run stops because of ``until``, the clock is advanced to
        ``until`` so subsequent scheduling is relative to the horizon.
        """
        if self._running:
            raise SimulationError("Engine.run() is not reentrant")
        self._running = True
        try:
            horizon = inf if until is None else until
            budget = max_events if max_events is not None else -1
            # Hot loop: heap/dict/trace hoisted to locals.  Mutating
            # engine calls (schedule, cancel, compaction) all work on the
            # dict and the active-bucket list in place, so the aliases
            # stay valid across callbacks.
            heap = self._bucket_heap
            buckets = self._buckets
            unsorted = self._unsorted
            pop_bucket = heapq.heappop
            trace = self.trace
            tracing = trace.enabled
            # The common case — run to completion, no budget, no tracing —
            # takes a specialized drain with no per-event horizon/budget
            # checks and counter updates batched per bucket.
            fast = until is None and max_events is None and not tracing
            done = False
            while heap and not done:
                self._activations += 1
                if self._activations % _RETUNE_STRIDE == 0:
                    # Safe point: no bucket is active, every queued event
                    # is in the dict, so a width rebuild cannot reorder
                    # an in-flight drain.
                    self._maybe_retune()
                idx, bucket = pop_bucket(heap)
                del buckets[idx]
                if idx in unsorted:
                    unsorted.remove(idx)
                    bucket.sort()
                self._active = bucket
                self._active_idx = idx
                self._active_dirty = False
                pos = 0
                fired = 0
                try:
                    if fast:
                        while pos < len(bucket):
                            ev = bucket[pos]
                            pos += 1
                            if not ev[4]:  # _ALIVE
                                self._size -= 1
                                self._dead -= 1
                                if self._compact_floor > self._dead:
                                    self._compact_floor = self._dead
                                continue
                            self._now = ev[0]  # _TIME
                            fired += 1
                            args = ev[3]  # _ARGS
                            if args:
                                ev[2](*args)  # _FN
                            else:
                                ev[2]()
                            if self._active_dirty:
                                # An append during fn() broke the
                                # undrained suffix's order; restore it
                                # before popping further.
                                self._active_dirty = False
                                tail = bucket[pos:]
                                tail.sort()
                                bucket[pos:] = tail
                        continue  # finally flushes counters
                    while pos < len(bucket):
                        ev = bucket[pos]
                        pos += 1
                        if not ev[4]:
                            self._size -= 1
                            self._dead -= 1
                            if self._compact_floor > self._dead:
                                self._compact_floor = self._dead
                            continue
                        time = ev[0]
                        if time > horizon:
                            pos -= 1  # not fired; keep it queued
                            done = True
                            break
                        if budget == 0:
                            pos -= 1
                            raise SimulationError(
                                f"event budget exhausted at t={self._now:.6f} "
                                f"({self._events_processed} events fired); "
                                "the simulation is likely livelocked"
                            )
                        budget -= 1
                        self._now = time
                        self._events_processed += 1
                        self._size -= 1
                        args = ev[3]
                        if args:
                            ev[2](*args)
                        else:
                            ev[2]()
                        if self._active_dirty:
                            self._active_dirty = False
                            tail = bucket[pos:]
                            tail.sort()
                            bucket[pos:] = tail
                        if tracing and self._events_processed % _TRACE_QUEUE_STRIDE == 0:
                            trace.counter(
                                "engine.queue",
                                "engine",
                                self._now,
                                "engine",
                                {"pending": self._size - self._dead},
                            )
                finally:
                    if fired:
                        self._events_processed += fired
                        self._size -= fired
                    if pos < len(bucket):
                        rest = bucket[pos:]
                        buckets[idx] = rest
                        heapq.heappush(heap, (idx, rest))
                        if self._active_dirty:
                            # fn() raised after an out-of-order append;
                            # the suffix sorts at reactivation.
                            unsorted.add(idx)
                    self._active = None
                    self._active_idx = -1.0
                    self._active_dirty = False
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Fire the single next live event.  Returns ``False`` if queue empty."""
        heap = self._bucket_heap
        buckets = self._buckets
        while heap:
            idx, bucket = heapq.heappop(heap)
            del buckets[idx]
            if idx in self._unsorted:
                self._unsorted.remove(idx)
                bucket.sort()
            for pos, ev in enumerate(bucket):
                if not ev[_ALIVE]:
                    self._size -= 1
                    self._dead -= 1
                    if self._compact_floor > self._dead:
                        self._compact_floor = self._dead
                    continue
                rest = bucket[pos + 1 :]
                if rest:
                    buckets[idx] = rest
                    heapq.heappush(heap, (idx, rest))
                self._now = ev[_TIME]
                self._events_processed += 1
                self._size -= 1
                ev[_FN](*ev[_ARGS])
                return True
        return False

    def peek_time(self) -> float | None:
        """Timestamp of the next live event, or ``None`` if the queue is empty."""
        heap = self._bucket_heap
        buckets = self._buckets
        while heap:
            idx, bucket = heap[0]
            live = [ev for ev in bucket if ev[_ALIVE]]
            if not live:
                heapq.heappop(heap)
                del buckets[idx]
                self._unsorted.discard(idx)
                self._size -= len(bucket)
                self._dead -= len(bucket)
                if self._compact_floor > self._dead:
                    self._compact_floor = self._dead
                continue
            if len(live) != len(bucket):
                self._size -= len(bucket) - len(live)
                self._dead -= len(bucket) - len(live)
                if self._compact_floor > self._dead:
                    self._compact_floor = self._dead
                bucket[:] = live
            return min(live)[_TIME]
        return None

    def pending(self) -> int:
        """Number of live events still queued.  O(1)."""
        return self._size - self._dead

    # ------------------------------------------------------------------
    # Tombstone bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; sweeps when tombstones win."""
        self._dead += 1
        if (
            self._dead > _COMPACT_MIN_DEAD
            and self._dead * 2 > self._size
            and self._dead > self._compact_floor
        ):
            self._compact()

    def _compact(self) -> None:
        """Sweep tombstones out of every idle bucket and rebuild the
        bucket heap.  The active bucket (aliased by a running drain) is
        left alone — its tombstones retire as the drain passes them —
        and ``_compact_floor`` remembers how many were unreachable so the
        sweep doesn't re-trigger on every subsequent cancel."""
        buckets = self._buckets
        removed = 0
        for idx in [i for i, b in buckets.items() if not all(ev[_ALIVE] for ev in b)]:
            bucket = buckets[idx]
            live = [ev for ev in bucket if ev[_ALIVE]]
            removed += len(bucket) - len(live)
            if live:
                # In place: the heap entry aliases this list.
                bucket[:] = live
            else:
                del buckets[idx]
                self._unsorted.discard(idx)
        if removed:
            self._bucket_heap[:] = [(idx, b) for idx, b in buckets.items()]
            heapq.heapify(self._bucket_heap)
            self._size -= removed
            self._dead -= removed
        self._compact_floor = self._dead

    # ------------------------------------------------------------------
    # Bucket-width auto-tuning
    # ------------------------------------------------------------------
    def _maybe_retune(self) -> None:
        """Retune the bucket width from observed firing spacing.

        Called from run() between bucket drains only (no active bucket),
        so the rebuild can re-bin every queued event consistently.
        """
        fired = self._events_processed - self._retune_mark_events
        span = self._now - self._retune_mark_time
        self._retune_mark_events = self._events_processed
        self._retune_mark_time = self._now
        if fired <= 0 or span <= 0.0:
            return
        target = (span / fired) * _TARGET_OCCUPANCY
        if target < _WIDTH_MIN:
            target = _WIDTH_MIN
        elif target > _WIDTH_MAX:
            target = _WIDTH_MAX
        width = self._width
        if width / _RETUNE_RATIO < target < width * _RETUNE_RATIO:
            return
        self._rebuild(target)

    def _rebuild(self, width: float) -> None:
        """Re-bin every queued event under a new bucket width."""
        events: list[Event] = []
        for bucket in self._buckets.values():
            events.extend(bucket)
        self._width = width
        self._inv_width = inv = 1.0 / width
        self._buckets.clear()
        buckets = self._buckets
        for ev in events:
            idx = ev[_TIME] * inv // 1.0
            if idx != idx:
                idx = inf
            bucket = buckets.get(idx)
            if bucket is None:
                buckets[idx] = [ev]
            else:
                bucket.append(ev)
        self._bucket_heap[:] = [(idx, b) for idx, b in buckets.items()]
        heapq.heapify(self._bucket_heap)
        # Rebinning interleaves events arbitrarily; sort everything at
        # activation.  In place: run() holds an alias to this set.
        self._unsorted.clear()
        self._unsorted.update(buckets)

    # ------------------------------------------------------------------
    # Steady-state fast-forward support (repro.sim.fastforward)
    # ------------------------------------------------------------------
    def ff_pending(
        self, current: Event | None = None, *, ordered: bool = True
    ) -> list[Event]:
        """Every live queued event, sorted by ``(time, seq)``.

        ``current`` is the event whose callback is running right now;
        events at or before its ``(time, seq)`` key in the active bucket
        have already fired and are excluded.  Does not mutate the queue.
        ``ordered=False`` skips the final sort for callers that impose
        their own order on the result.
        """
        out: list[Event] = []
        active = self._active
        if active is not None:
            if current is None:
                out.extend(active)
            else:
                # The active bucket is kept sorted across callbacks, so
                # the undrained suffix is exactly the events ordered
                # after the firing one (list compare: time, then seq).
                out.extend(e for e in active if e > current)
        for bucket in self._buckets.values():
            out.extend(bucket)
        live = (e for e in out if e[_ALIVE])
        return sorted(live) if ordered else list(live)

    def ff_shift(
        self,
        dt: float,
        current: Event,
        rewrite: Callable[[Event], None] | None = None,
    ) -> None:
        """Advance the clock by ``dt``, translating every pending event.

        Must be called from inside the callback of ``current`` (the
        event firing right now).  The undrained suffix of the active
        bucket is taken over, every live event's time is shifted by
        ``dt`` (a uniform translation, so the exact ``(time, seq)``
        firing order is preserved and Event handles stay valid), and the
        calendar is rebuilt under the shifted times.  ``rewrite`` may
        rewrite each event's args in place (iteration relabeling).
        Tombstones are dropped during the rebuild.
        """
        if dt < 0:
            raise SimulationError(f"cannot fast-forward by negative dt {dt!r}")
        pending: list[Event] = []
        active = self._active
        if active is not None:
            keep: list[Event] = []
            for e in active:
                (pending if e > current else keep).append(e)
            # Truncating in place ends the drain loop's walk over this
            # bucket; run()'s finally block sees nothing left to requeue.
            active[:] = keep
            self._active_idx = -1.0
        for bucket in self._buckets.values():
            pending.extend(bucket)
        dropped = 0
        live: list[Event] = []
        for e in pending:
            if e[_ALIVE]:
                live.append(e)
            else:
                dropped += 1
        if dropped:
            self._size -= dropped
            self._dead -= dropped
            if self._compact_floor > self._dead:
                self._compact_floor = self._dead
        self._now += dt
        self._buckets.clear()
        buckets = self._buckets
        inv = self._inv_width
        for e in live:
            e[_TIME] = e[_TIME] + dt
            if rewrite is not None:
                rewrite(e)
            idx = e[_TIME] * inv // 1.0
            if idx != idx:
                idx = inf
            bucket = buckets.get(idx)
            if bucket is None:
                buckets[idx] = [e]
            else:
                bucket.append(e)
        self._bucket_heap[:] = [(idx, b) for idx, b in buckets.items()]
        heapq.heapify(self._bucket_heap)
        self._unsorted.clear()
        self._unsorted.update(buckets)
