"""Event queue and simulation clock.

The engine is a classic calendar queue built on :mod:`heapq`.  Design
points that matter for this reproduction:

* **Deterministic tie-breaking.**  Events at the same timestamp fire in the
  order they were scheduled (a monotone sequence number is part of the heap
  key).  Communication-scheduling experiments are full of simultaneous
  events (a burst of gradients released by aggregation), and replaying the
  exact same interleaving under a fixed seed is what makes the benchmark
  tables reproducible.
* **Cancellation by tombstone, with lazy compaction.**  ``cancel`` marks
  the event dead instead of re-heapifying; dead events are skipped when
  popped.  Schedulers cancel tentative transfer-start events when a
  higher-priority gradient preempts a plan, and cancellation-heavy runs
  (Prophet/ByteScheduler replanning every block) can accumulate tombstones
  faster than the pop loop retires them — so the engine keeps an O(1) count
  of dead events and rebuilds the heap in place once more than half of it
  is tombstones.  This bounds the heap at twice the live-event count
  instead of growing with the total number of cancellations.
* **No wall-clock coupling.**  The clock only advances when an event is
  popped, so a simulated 10-minute training job costs only as much real time
  as its event count.
* **Trace attach point.**  The engine owns the simulation clock, so it also
  carries the session's trace recorder (``engine.trace``, default no-op):
  every component already holds the engine, which spares threading a
  recorder through each constructor.  While tracing, the run loop samples
  its own queue depth as a counter every :data:`_TRACE_QUEUE_STRIDE`
  events; disabled, the per-event cost is one attribute load and branch.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro.errors import SimulationError
from repro.trace.recorder import NULL_RECORDER, NullRecorder, TraceRecorder

__all__ = ["Event", "Engine"]

#: While tracing, sample the event-queue depth every this many events.
_TRACE_QUEUE_STRIDE = 256

#: Tombstone compaction only kicks in above this many dead events — tiny
#: heaps are cheaper to drain than to rebuild.
_COMPACT_MIN_DEAD = 64


class Event:
    """Handle to a scheduled callback.

    Instances are returned by :meth:`Engine.schedule` and can be used to
    cancel the callback before it fires.  The handle exposes the scheduled
    ``time`` and whether the event is still ``alive``.
    """

    __slots__ = ("time", "seq", "fn", "args", "alive", "_engine")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
        engine: "Engine | None" = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.alive = True
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.alive:
            self.alive = False
            if self._engine is not None:
                self._engine._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "cancelled"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"Event(t={self.time:.6f}, fn={name}, {state})"


class Engine:
    """Discrete-event simulation engine.

    Example
    -------
    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(1.0, fired.append, "a")
    >>> _ = eng.schedule(0.5, fired.append, "b")
    >>> eng.run()
    >>> fired
    ['b', 'a']
    >>> eng.now
    1.0
    """

    def __init__(self, trace: TraceRecorder | NullRecorder = NULL_RECORDER) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        #: Count of cancelled events still sitting in the heap; kept exact
        #: so ``pending()`` is O(1) and compaction can trigger lazily.
        self._dead = 0
        #: Trace recorder shared by every component holding this engine.
        self.trace = trace

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``.

        ``time`` must not be in the past; scheduling *at* the current time is
        allowed and the event fires after all previously scheduled events at
        that timestamp.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.9f} before now={self._now:.9f}"
            )
        ev = Event(time, next(self._seq), fn, args, self)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_after(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` ``delay`` seconds from now (``delay >= 0``)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule(self._now + delay, fn, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        ``until`` is inclusive: events scheduled exactly at ``until`` fire.
        When the run stops because of ``until``, the clock is advanced to
        ``until`` so subsequent scheduling is relative to the horizon.
        """
        if self._running:
            raise SimulationError("Engine.run() is not reentrant")
        self._running = True
        try:
            budget = max_events if max_events is not None else -1
            # Hot loop: the heap, pop function, and trace recorder are
            # hoisted to locals (compaction mutates the heap list in place,
            # so the alias stays valid), and whether tracing is on is
            # latched once per run() — toggling the recorder mid-run is not
            # supported.
            heap = self._heap
            pop = heapq.heappop
            trace = self.trace
            tracing = trace.enabled
            while heap:
                ev = heap[0]
                if not ev.alive:
                    pop(heap)
                    self._dead -= 1
                    continue
                if until is not None and ev.time > until:
                    break
                if budget == 0:
                    raise SimulationError(
                        f"event budget exhausted at t={self._now:.6f} "
                        f"({self._events_processed} events fired); "
                        "the simulation is likely livelocked"
                    )
                pop(heap)
                self._now = ev.time
                self._events_processed += 1
                if budget > 0:
                    budget -= 1
                ev.fn(*ev.args)
                if tracing and self._events_processed % _TRACE_QUEUE_STRIDE == 0:
                    trace.counter(
                        "engine.queue",
                        "engine",
                        self._now,
                        "engine",
                        {"pending": len(heap) - self._dead},
                    )
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Fire the single next live event.  Returns ``False`` if queue empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if not ev.alive:
                self._dead -= 1
                continue
            self._now = ev.time
            self._events_processed += 1
            ev.fn(*ev.args)
            return True
        return False

    def peek_time(self) -> float | None:
        """Timestamp of the next live event, or ``None`` if the queue is empty."""
        while self._heap and not self._heap[0].alive:
            heapq.heappop(self._heap)
            self._dead -= 1
        return self._heap[0].time if self._heap else None

    def pending(self) -> int:
        """Number of live events still queued.  O(1)."""
        return len(self._heap) - self._dead

    # ------------------------------------------------------------------
    # Tombstone bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; compacts when tombstones win."""
        self._dead += 1
        if self._dead > _COMPACT_MIN_DEAD and self._dead * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop dead events and re-heapify, reusing the same list object
        (``run()`` holds an alias to it)."""
        heap = self._heap
        heap[:] = [ev for ev in heap if ev.alive]
        heapq.heapify(heap)
        self._dead = 0
