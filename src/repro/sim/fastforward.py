"""Steady-state iteration fast-forward: detect the periodic fixed point
of an eligible training run and skip the remaining simulated iterations
in O(1) event work per skipped iteration.

A fault-free BSP run under constant bandwidth and zero compute jitter is
a deterministic dynamical system: the tuple (component state, pending
event queue) at one iteration boundary fully determines everything that
follows.  When the simulation runs on the engine's power-of-two *time
quantum* grid (every delay snapped to a multiple of ``2**e``), the system
is additionally **exactly translation-invariant in time**: every event
timestamp is a grid multiple, and shifting all of them by a grid multiple
``D`` reproduces the identical float values the unrolled run would have
computed (the sums ``a·q + d·q = (a+d)·q`` are exact in IEEE-754 for any
mantissa-range ``a+d``).  Therefore, if the *canonical time-relative
snapshot* at iteration boundary ``k`` equals the snapshot at boundary
``k − p``, the run has entered a periodic fixed point with period ``p``:
iterations ``k .. k+p`` will replay iterations ``k−p .. k`` exactly,
shifted by ``D = t(k) − t(k−p)`` — bit for bit.

The :class:`FastForwardDetector` exploits this in three phases:

1. **Detect** — at every iteration boundary (all workers entered
   backward for iteration ``k``; a dedicated engine event fires at the
   boundary's position in the event stream) it computes a canonical
   fingerprint: each component's :meth:`ff_state` (absolute times as
   offsets from the boundary timestamp, iteration labels as offsets from
   ``k``) plus the canonicalized pending event queue.  A fingerprint
   seen before (at boundary ``k − p``) announces the candidate period.
2. **Journal** — it then records one full cycle ``[k, k+p)``: every
   metric row/field/gpu-span/gradient-mark, every link transfer record,
   and every PS byte-counter increment, in global chronological order.
   At boundary ``k + p`` the fingerprint is recomputed; any mismatch is
   a conservative fallback (discard the journal, keep detecting).
3. **Fast-forward** — on a verified match it computes how many whole
   cycles ``C`` fit before the configured end, replays the journal ``C``
   times (times shifted by ``m·D``, iterations by ``m·p`` — every
   floating-point accumulator sees the identical op sequence the
   unrolled run would have applied), extrapolates monotone integer
   counters, translates every pending event by ``C·D`` (relabeling
   iteration arguments and pull units), shifts component state, and
   resumes the event loop — which then simulates only the final partial
   cycle.  Aggregate results are bit-identical to the unrolled run.

Everything here **fails closed**: an unrecognized pending event or
callback, a mismatched verification fingerprint, or any unregistered
object disables fast-forward for the run and the simulation simply
unrolls, exactly as if the detector had never been installed.
"""

from __future__ import annotations

import os
from dataclasses import replace as _dc_replace
from functools import partial

from repro.cluster.collective import CollectiveController
from repro.cluster.sharded import _ShardPort
from repro.cluster.worker import ReliableDeliveryMixin, Worker
from repro.metrics.timeline import GpuInterval, IterationRecord
from repro.net.collective import _StepExecutor
from repro.net.link import Link, TransferRecord, _drain_batch
from repro.net.monitor import BandwidthMonitor
from repro.sim.engine import _ARGS, _FN, _TIME, Engine, Event

__all__ = [
    "FFContext",
    "FFShift",
    "FastForwardDetector",
    "fastforward_eligibility",
    "NO_FASTFORWARD_ENV",
]

#: Environment kill-switch: any non-empty value disables fast-forward
#: (``repro profile`` sets it so flame graphs show the real event loop).
NO_FASTFORWARD_ENV = "REPRO_NO_FASTFORWARD"

#: Give up after this many fingerprinted boundaries without a verified
#: period — bounds both the fingerprint-index memory and the per-boundary
#: overhead of a run that never settles.
_MAX_UNMATCHED_BOUNDARIES = 512


class _Unsupported(Exception):
    """A pending event/callback the canonicalizer does not recognise."""


# ----------------------------------------------------------------------
# Canonicalization context (fingerprints) and shift context (engagement)
# ----------------------------------------------------------------------
class FFContext:
    """Maps absolute simulation state to boundary-relative canonical form.

    ``t0`` is the boundary timestamp, ``k`` the boundary iteration; all
    component :meth:`ff_state` implementations express times as
    ``t − t0`` and iteration labels as ``i − k`` through this object, so
    two boundaries of a periodic orbit produce equal fingerprints.
    """

    __slots__ = ("t0", "k", "_tokens")

    def __init__(self, t0: float, k: int, tokens: dict[int, tuple]):
        self.t0 = t0
        self.k = k
        self._tokens = tokens

    def rel(self, t: float) -> float:
        return t - self.t0

    def rel_opt(self, t: float | None) -> float | None:
        return None if t is None else t - self.t0

    def rel_iter(self, i: int) -> int:
        return i - self.k

    def token(self, obj) -> tuple:
        """Stable identity token assigned at detector install time."""
        tok = self._tokens.get(id(obj))
        if tok is None:
            raise _Unsupported(f"object not registered for fast-forward: {obj!r}")
        return tok

    def pull(self, u) -> tuple:
        """Canonical form of a :class:`~repro.cluster.messages.PullUnit`
        (its segment is a frozen, time-free dataclass)."""
        return (u.worker, self.rel_iter(u.iteration), u.segment, self.rel(u.created))

    def tag(self, tag) -> tuple | None:
        """Canonical form of a transfer tag ``(kind, iteration)``."""
        if tag is None:
            return None
        kind, it = tag
        return (kind, self.rel_iter(it))

    def callback(self, cb) -> tuple | None:
        """Canonical form of a stored completion callback (link
        ``on_complete``).  Fails closed on anything unregistered."""
        if cb is None:
            return None
        if isinstance(cb, partial):
            fn = cb.func
            target = getattr(fn, "__func__", fn)
            handler = _CB_CANON.get(target)
            if handler is None:
                raise _Unsupported(f"unsupported callback {target!r}")
            owner = getattr(fn, "__self__", None)
            return (self.token(owner), target.__qualname__, handler(self, cb.args))
        target = getattr(cb, "__func__", None)
        if target is not None and target in _CB_ZERO:
            return (self.token(cb.__self__), target.__qualname__)
        raise _Unsupported(f"unsupported callback {cb!r}")


class FFShift:
    """Uniform translation applied at engagement: ``dt`` seconds and
    ``diter`` iterations (``dt = C·D`` is an exact multiple of the time
    quantum, so every shifted timestamp is bit-identical to the value
    the unrolled run would have produced)."""

    __slots__ = ("dt", "diter")

    def __init__(self, dt: float, diter: int):
        self.dt = dt
        self.diter = diter

    def pull(self, u):
        return _dc_replace(
            u, iteration=u.iteration + self.diter, created=u.created + self.dt
        )

    def tag(self, tag):
        if tag is None:
            return None
        kind, it = tag
        return (kind, it + self.diter)

    def callback(self, cb):
        """Rebuild a stored completion callback with shifted arguments."""
        if cb is None:
            return None
        if isinstance(cb, partial):
            target = getattr(cb.func, "__func__", cb.func)
            handler = _CB_SHIFT.get(target)
            if handler is None:
                raise _Unsupported(f"unsupported callback {target!r}")
            return partial(cb.func, *handler(self, cb.args))
        return cb  # zero-arg bound method: carries no time or iteration


# ----------------------------------------------------------------------
# Callback registries (link ``on_complete`` values)
# ----------------------------------------------------------------------
def _canon_pulls_done(ctx: FFContext, args) -> tuple:
    link, batch, start = args
    return (ctx.token(link), tuple(ctx.pull(p) for p in batch), ctx.rel(start))


def _shift_pulls_done(shift: FFShift, args) -> tuple:
    link, batch, start = args
    return (link, [shift.pull(p) for p in batch], start + shift.dt)


def _canon_unit_done(ctx: FFContext, args) -> tuple:
    # (iteration, unit, start, desc) — ``desc`` is trace-only detail
    # (None unless tracing) and carries no behaviour: excluded.
    iteration, unit, start, _desc = args
    return (ctx.rel_iter(iteration), unit.segments, ctx.rel(start))


def _shift_unit_done(shift: FFShift, args) -> tuple:
    iteration, unit, start, desc = args
    return (iteration + shift.diter, unit, start + shift.dt, desc)


_CB_CANON = {
    Worker._pulls_done: _canon_pulls_done,
    _ShardPort._pulls_done: _canon_pulls_done,
    Worker._push_done: _canon_unit_done,
    _ShardPort._push_done: _canon_unit_done,
    CollectiveController._op_done: _canon_unit_done,
}

_CB_SHIFT = {
    Worker._pulls_done: _shift_pulls_done,
    _ShardPort._pulls_done: _shift_pulls_done,
    Worker._push_done: _shift_unit_done,
    _ShardPort._push_done: _shift_unit_done,
    CollectiveController._op_done: _shift_unit_done,
}

#: Zero-argument bound methods that may appear as stored callbacks.
_CB_ZERO = {_StepExecutor._chunk_done}


# ----------------------------------------------------------------------
# Pending-event registries (the engine queue at a boundary)
# ----------------------------------------------------------------------
def _canon_noargs(ctx: FFContext, args) -> tuple:
    return ()


def _canon_fwd_chunk(ctx: FFContext, args) -> tuple:
    return (args[0],)


def _canon_bucket_ready(ctx: FFContext, args) -> tuple:
    return (ctx.rel_iter(args[0]), args[1])


def _shift_bucket_ready(shift: FFShift, args) -> tuple:
    return (args[0] + shift.diter, args[1])


def _canon_backward_done(ctx: FFContext, args) -> tuple:
    return (ctx.rel_iter(args[0]),)


def _shift_backward_done(shift: FFShift, args) -> tuple:
    return (args[0] + shift.diter,)


def _canon_enqueue_pull(ctx: FFContext, args) -> tuple:
    return (ctx.pull(args[0]),)


def _shift_enqueue_pull(shift: FFShift, args) -> tuple:
    return (shift.pull(args[0]),)


def _canon_enqueue_pulls(ctx: FFContext, args) -> tuple:
    return (tuple(ctx.pull(p) for p in args[0]),)


def _shift_enqueue_pulls(shift: FFShift, args) -> tuple:
    return ([shift.pull(p) for p in args[0]],)


def _canon_drain_batch(ctx: FFContext, args) -> tuple:
    return (tuple(ctx.token(link) for link in args[0]),)


_EVENT_CANON = {
    Link._finish: _canon_noargs,
    _drain_batch: _canon_drain_batch,
    _StepExecutor._op_done: _canon_noargs,
    Worker._forward_chunk_done: _canon_fwd_chunk,
    Worker._bucket_ready: _canon_bucket_ready,
    Worker._backward_done: _canon_backward_done,
    Worker._stall_check: _canon_noargs,
    _ShardPort._stall_check: _canon_noargs,
    CollectiveController._stall_check: _canon_noargs,
    Worker.enqueue_pull: _canon_enqueue_pull,
    _ShardPort.enqueue_pull: _canon_enqueue_pull,
    ReliableDeliveryMixin.enqueue_pulls: _canon_enqueue_pulls,
}

_EVENT_SHIFT = {
    Worker._bucket_ready: _shift_bucket_ready,
    Worker._backward_done: _shift_backward_done,
    Worker.enqueue_pull: _shift_enqueue_pull,
    _ShardPort.enqueue_pull: _shift_enqueue_pull,
    ReliableDeliveryMixin.enqueue_pulls: _shift_enqueue_pulls,
}

#: Pending events excluded from fingerprints: the bandwidth monitor's
#: sampling tick free-runs on its own period (generally incommensurate
#: with the iteration period), but under fast-forward eligibility the
#: sampled value is a constant and nothing behavioural consumes the
#: sample *timing* — the tick is translated generically at engagement.
_EVENT_EXCLUDE = {BandwidthMonitor._sample}


# ----------------------------------------------------------------------
# Eligibility gate
# ----------------------------------------------------------------------
def fastforward_eligibility(
    config, schedulers, links, injector, engine=None
) -> tuple[bool, str | None]:
    """Whether a run qualifies for steady-state fast-forward.

    Conservative by construction: every source of aperiodicity or
    cross-iteration drift (faults, noise, jitter, dynamic bandwidth,
    non-BSP sync, opted-out schedulers, co-tenant jobs on a shared
    engine) disqualifies the run.  Returns ``(eligible, reason)`` with
    ``reason`` naming the first blocker.
    """
    if not config.fastforward:
        return False, "disabled by configuration"
    if os.environ.get(NO_FASTFORWARD_ENV):
        return False, f"{NO_FASTFORWARD_ENV} set"
    if engine is not None and getattr(engine, "multi_tenant", False):
        return False, "multi-tenant engine (fleet run shares the event queue)"
    if config.time_quantum is None:
        return False, "no time_quantum configured (exactness requires the grid)"
    if injector is not None:
        return False, "fault injection active"
    if config.jitter_std != 0.0:
        return False, "compute jitter active"
    if config.bandwidth_noise_std != 0.0:
        return False, "bandwidth noise active"
    if config.sync_mode != "bsp":
        return False, f"sync mode {config.sync_mode!r} drifts across iterations"
    for sched in schedulers:
        if not getattr(sched, "ff_supported", False):
            return False, f"scheduler {sched.name!r} opted out"
    for link in links:
        if len(link.schedule._times) != 1:
            return False, f"link {link.name!r} has a dynamic bandwidth schedule"
    return True, None


# ----------------------------------------------------------------------
# The detector
# ----------------------------------------------------------------------
class FastForwardDetector:
    """Periodic-fixed-point detector and O(1) iteration fast-forwarder.

    Installed by the trainer only on eligible runs.  Workers report each
    iteration boundary from ``_begin_backward``; once all ``n_workers``
    reported, a dedicated engine event fingerprints the full simulation
    state at the boundary's exact position in the event stream.
    """

    def __init__(
        self,
        engine: Engine,
        *,
        workers,
        schedulers,
        links,
        servers,
        recorder,
        monitors,
        n_workers: int,
        n_iterations: int,
        controller=None,
        executor=None,
    ):
        self._engine = engine
        self._workers = list(workers)
        self._links = list(links)
        self._servers = list(servers)
        self._recorder = recorder
        self._monitors = list(monitors)
        self._n_workers = n_workers
        self.n_iterations = n_iterations

        self._components: list = []
        self._components.extend(self._workers)
        self._components.extend(schedulers)
        self._components.extend(self._links)
        self._components.extend(self._servers)
        if controller is not None:
            self._components.append(controller)
        if executor is not None:
            self._components.append(executor)

        # Stable identity tokens: canonical stand-ins for object
        # references inside fingerprints (callback owners, callback
        # arguments).  Keyed by id(); the keepalive list pins the
        # objects so ids cannot be recycled.
        self._tokens: dict[int, tuple] = {}
        self._keepalive: list = []
        for w in self._workers:
            self._register(w, ("w", w.worker_id))
            for s, port in enumerate(getattr(w, "_ports", ()) or ()):
                self._register(port, ("port", w.worker_id, s))
        for i, link in enumerate(self._links):
            self._register(link, ("link", i))
        for i, ps in enumerate(self._servers):
            self._register(ps, ("ps", i))
        if controller is not None:
            self._register(controller, ("ctl",))
        if executor is not None:
            self._register(executor, ("exec",))

        # Monotone integer counters: excluded from fingerprints,
        # extrapolated exactly (v1 + C·(v1 − v0)) at engagement.
        self._counters: list[tuple[object, str]] = []
        for comp in self._components:
            for name in getattr(type(comp), "ff_counters", ()):
                self._counters.append((comp, name))

        # Detection state.
        self._active = True
        self._report_iter = -1
        self._report_count = 0
        self._boundary_event: Event | None = None
        self._fp_index: dict = {}
        self._full_index: dict = {}
        # target-function → qualname (or "" for excluded events); memoised
        # because the cheap key resolves it for every pending event.
        self._qualnames: dict = {}
        self._journal: list | None = None
        self._journal_start: tuple | None = None
        self._journal_end_iter = -1

        #: Diagnostics / test surface.
        self.detect_only = False
        self.engaged = False
        self.period = 0
        self.cycles_skipped = 0
        self.iterations_skipped = 0
        self.fallbacks = 0
        self.boundaries_seen = 0
        self.disabled_reason: str | None = None

        for w in self._workers:
            w._ff = self

    # ------------------------------------------------------------------
    def _register(self, obj, token: tuple) -> None:
        self._tokens[id(obj)] = token
        self._keepalive.append(obj)

    def _disable(self, reason: str) -> None:
        self._active = False
        self.disabled_reason = reason
        self._detach_journal()
        trace = self._engine.trace
        if trace.enabled:
            trace.instant(
                "fastforward.disabled",
                "sim",
                self._engine.now,
                "sim.fastforward",
                {"reason": reason},
            )

    # ------------------------------------------------------------------
    # Boundary reporting (called from Worker._begin_backward)
    # ------------------------------------------------------------------
    def iteration_boundary(self, iteration: int) -> None:
        if not self._active:
            return
        if iteration != self._report_iter:
            self._report_iter = iteration
            self._report_count = 0
        self._report_count += 1
        if self._report_count == self._n_workers:
            # Fingerprint from a dedicated event so the snapshot sits at
            # a well-defined position in the same-timestamp event order
            # (after everything the last ``_begin_backward`` scheduled).
            self._boundary_event = self._engine.schedule(
                self._engine.now, self._boundary, iteration
            )

    # ------------------------------------------------------------------
    def _boundary(self, k: int) -> None:
        if not self._active:
            return
        if self._journal is not None and k < self._journal_end_iter:
            return  # mid-cycle boundary while recording: nothing to do
        self.boundaries_seen += 1
        now = self._engine.now
        ctx = FFContext(now, k, self._tokens)
        fp: tuple | None = None

        if self._journal is not None:
            # Verification boundary of a recorded cycle: always pay for
            # the full fingerprint (bounded — one per recorded period).
            try:
                fp = self._fingerprint(ctx)
            except _Unsupported as exc:
                self._disable(str(exc))
                return
            j_fp = self._journal_start[3]
            if fp == j_fp:
                self._engage(k, now)
                return
            # Conservative fallback: the orbit was not periodic after
            # all — discard the journal and keep detecting below (the
            # just-computed fingerprint is reused for indexing).
            self.fallbacks += 1
            self._detach_journal()

        # Two-tier detection.  The cheap key — pending-event times and
        # aggregation-state sizes, all implied by full-state equality —
        # costs O(pending) per boundary; the expensive canonical
        # fingerprint only runs on boundaries whose cheap key has been
        # seen before, so a never-periodic run pays ~nothing.
        cheap = self._cheap_key(ctx)
        if cheap not in self._fp_index:
            self._fp_index[cheap] = k
            if len(self._fp_index) > _MAX_UNMATCHED_BOUNDARIES:
                self._disable("no periodic fixed point found")
            return
        if fp is None:
            if self.detect_only:
                return  # overhead probe: never confirm, never engage
            try:
                fp = self._fingerprint(ctx)
            except _Unsupported as exc:
                self._disable(str(exc))
                return

        prev = self._full_index.get(fp)
        if prev is None:
            self._full_index[fp] = k
            if len(self._full_index) > _MAX_UNMATCHED_BOUNDARIES:
                self._disable("no periodic fixed point found")
            return
        if self.detect_only:
            return
        p = k - prev
        if (self.n_iterations - 1 - (k + p)) // p >= 1:
            self._journal_start = (k, now, self._snapshot_counters(), fp)
            self._journal_end_iter = k + p
            self._attach_journal()
        else:
            # Too close to the end for even one skipped cycle; no
            # later match can do better (the remaining span only
            # shrinks) — stop paying the per-boundary cost.
            self._disable("periodic, but too few iterations remain")

    # ------------------------------------------------------------------
    def _snapshot_counters(self) -> tuple:
        return tuple(getattr(obj, name) for obj, name in self._counters)

    def _cheap_key(self, ctx: FFContext) -> tuple:
        """O(pending) necessary condition for a full-fingerprint match.

        Built only from quantities *implied* by full canonical-state
        equality — the sorted (relative time, qualname) multiset of
        non-excluded pending events and the per-server aggregation map
        sizes — so equal full states always produce equal cheap keys
        (no false negatives).  Coincidental cheap collisions merely
        trigger one full fingerprint, whose own index settles the match.
        """
        t0 = ctx.t0
        names = self._qualnames
        events = []
        for e in self._engine.ff_pending(self._boundary_event, ordered=False):
            fn = e[_FN]
            target = getattr(fn, "__func__", fn)
            name = names.get(target)
            if name is None:
                if target in _EVENT_EXCLUDE:
                    name = ""
                else:
                    name = getattr(target, "__qualname__", "?")
                names[target] = name
            if name:
                events.append((e[_TIME] - t0, name))
        events.sort()
        servers = tuple(
            (len(ps._received), len(ps._progress), len(ps._waiting), ps._n_waiting)
            for ps in self._servers
        )
        return (tuple(events), servers)

    def _fingerprint(self, ctx: FFContext) -> tuple:
        parts = [comp.ff_state(ctx) for comp in self._components]
        pending = []
        for e in self._engine.ff_pending(self._boundary_event):
            canon = self._canon_event(ctx, e)
            if canon is not None:
                pending.append(canon)
        parts.append(tuple(pending))
        return tuple(parts)

    def _canon_event(self, ctx: FFContext, e: Event) -> tuple | None:
        fn = e[_FN]
        target = getattr(fn, "__func__", fn)
        if target in _EVENT_EXCLUDE:
            return None
        handler = _EVENT_CANON.get(target)
        if handler is None:
            raise _Unsupported(f"unsupported pending event {target!r}")
        owner = getattr(fn, "__self__", None)
        return (
            ctx.rel(e[_TIME]),
            None if owner is None else ctx.token(owner),
            target.__qualname__,
            handler(ctx, e[_ARGS]),
        )

    # ------------------------------------------------------------------
    # Cycle journal plumbing
    # ------------------------------------------------------------------
    def _attach_journal(self) -> None:
        journal: list = []
        self._journal = journal
        self._recorder._ff_journal = journal
        for link in self._links:
            link._ff_journal = journal
        for ps in self._servers:
            ps._ff_journal = journal

    def _detach_journal(self) -> None:
        self._journal = None
        self._journal_start = None
        self._journal_end_iter = -1
        self._recorder._ff_journal = None
        for link in self._links:
            link._ff_journal = None
        for ps in self._servers:
            ps._ff_journal = None

    # ------------------------------------------------------------------
    # Engagement: replay C cycles, translate everything, resume
    # ------------------------------------------------------------------
    def _engage(self, k1: int, t1: float) -> None:
        j_iter, t0, counters0, _j_fp = self._journal_start
        journal = self._journal
        counters1 = self._snapshot_counters()
        self._detach_journal()
        self._active = False

        p = k1 - j_iter
        # D and C·D are exact multiples of the time quantum (differences
        # and small-integer multiples of grid numbers are exact), so
        # every shifted timestamp below is the unrolled run's bit
        # pattern.
        period_time = t1 - t0
        cycles = (self.n_iterations - 1 - k1) // p
        if cycles < 1:  # pragma: no cover - guarded before journaling
            self._disable("periodic, but too few iterations remain")
            return
        self.engaged = True
        self.period = p
        self.cycles_skipped = cycles
        self.iterations_skipped = cycles * p
        shift = FFShift(cycles * period_time, cycles * p)

        # 1. Replay the recorded cycle C times: one chronological pass
        # per skipped cycle so every per-object float accumulator
        # (link byte/busy totals, PS push totals, gradient marks)
        # receives the identical op sequence, in order.
        recorder = self._recorder
        workers = self._workers
        for m in range(1, cycles + 1):
            dtm = m * period_time
            dim = m * p
            for op in journal:
                kind = op[0]
                if kind == "rowset":
                    _, w, i, field, t = op
                    rec = recorder._iter_index[(w, i + dim)]
                    setattr(rec, field, t + dtm)
                    if field == "fwd_start":
                        workers[w]._fwd_start_times.append(t + dtm)
                elif kind == "row":
                    _, w, i = op
                    rec = IterationRecord(worker=w, iteration=i + dim)
                    recorder.iterations.append(rec)
                    recorder._iter_index[(w, i + dim)] = rec
                elif kind == "gpu":
                    _, w, i, gkind, s, e = op
                    recorder.gpu_intervals.append(
                        GpuInterval(w, i + dim, gkind, s + dtm, e + dtm)
                    )
                elif kind == "grad":
                    _, w, i, g, field, t = op
                    rec = recorder.gradient(w, i + dim, g)
                    if rec is not None:
                        setattr(rec, field, t + dtm)
                elif kind == "link":
                    _, link, s, e, nbytes, tag = op
                    if tag is not None:
                        tag = (tag[0], tag[1] + dim)
                    link.records.append(
                        TransferRecord(s + dtm, e + dtm, nbytes, tag)
                    )
                    link.total_bytes += nbytes
                    link._busy_accum += e - s
                else:  # "ps"
                    _, ps, nbytes = op
                    ps.total_push_bytes += nbytes

        # 2. Monotone integer counters advance by exactly C per-cycle
        # increments.
        for (obj, name), v0, v1 in zip(self._counters, counters0, counters1):
            setattr(obj, name, v1 + cycles * (v1 - v0))

        # 3. Translate the pending event queue (uniform time shift +
        # iteration/pull-unit relabeling), then every component.
        self._shift = shift
        self._engine.ff_shift(shift.dt, self._boundary_event, self._rewrite_event)
        for comp in self._components:
            comp.ff_shift(shift)

        # 4. Re-point each worker's current-iteration row at the row the
        # replay created for its (shifted) iteration.
        for w in workers:
            w._iter_rec = recorder._iter_index[(w.worker_id, w._iter)]

        trace = self._engine.trace
        if trace.enabled:
            trace.complete(
                "fast-forward",
                "sim",
                t1,
                t1 + shift.dt,
                "sim.fastforward",
                {
                    "period": p,
                    "cycles": cycles,
                    "iterations_skipped": cycles * p,
                    "resume_iteration": k1 + cycles * p,
                },
            )

    def _rewrite_event(self, e: Event) -> None:
        fn = e[_FN]
        target = getattr(fn, "__func__", fn)
        handler = _EVENT_SHIFT.get(target)
        if handler is not None:
            e[_ARGS] = handler(self._shift, e[_ARGS])
