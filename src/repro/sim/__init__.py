"""Discrete-event simulation engine.

A minimal, allocation-light DES kernel: a priority queue of timestamped
events, a monotonically advancing clock, and deterministic tie-breaking by
insertion order.  All higher-level substrates (network links, workers, the
parameter server) are built as callbacks scheduled on one
:class:`~repro.sim.engine.Engine`.
"""

from repro.sim.engine import Engine, Event
from repro.sim.rng import make_rng, spawn_rng

__all__ = ["Engine", "Event", "make_rng", "spawn_rng"]
