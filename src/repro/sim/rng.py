"""Seeded random-number helpers.

Every stochastic component (compute-time jitter, bandwidth noise, Bayesian
optimization exploration) draws from its own :class:`numpy.random.Generator`
derived from a single experiment seed via ``spawn_rng``.  Independent
streams mean adding noise to one component never perturbs another — the
property that keeps A/B comparisons between schedulers paired.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rng"]


def make_rng(seed: int | None = 0) -> np.random.Generator:
    """Create the root generator for an experiment."""
    return np.random.default_rng(seed)


def spawn_rng(seed: int | None, *stream: str | int) -> np.random.Generator:
    """Derive an independent child stream from ``seed`` and a stream label.

    The label components (strings or ints) are hashed into the seed sequence
    so that, e.g., ``spawn_rng(7, "worker", 3)`` is a stable, independent
    stream across runs and across library versions.
    """
    entropy: list[int] = [0 if seed is None else int(seed)]
    for part in stream:
        if isinstance(part, int):
            entropy.append(part & 0xFFFFFFFF)
        else:
            # Stable 32-bit string hash (FNV-1a); ``hash()`` is salted per
            # process and would break reproducibility.
            acc = 0x811C9DC5
            for ch in str(part).encode():
                acc = ((acc ^ ch) * 0x01000193) & 0xFFFFFFFF
            entropy.append(acc)
    return np.random.default_rng(np.random.SeedSequence(entropy))
