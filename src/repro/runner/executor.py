"""Deterministic fan-out executor for grids of run specs.

:func:`run_grid` takes a list of :class:`~repro.runner.spec.RunSpec` and
returns their :class:`~repro.runner.spec.RunResult` scalars in the same
order, consulting the content-addressed result cache first and fanning
the misses out over a ``ProcessPoolExecutor``:

* **Spawn-safe by construction.**  Pools use the ``spawn`` start method
  (identical semantics on Linux/macOS/Windows, no inherited locks); the
  only things crossing the boundary are the plain-data spec and scalar
  result — the child resolves the strategy factory by registry name.
* **Determinism.**  Each simulation is fully determined by its spec (the
  engine is seed-deterministic and runs single-threaded inside one
  process), so parallel and serial execution produce bit-identical
  results; only completion *order* varies, and results are re-ordered by
  spec index before returning.
* **Job count.**  ``jobs`` argument > ``REPRO_JOBS`` env > 1.  With one
  job (or a single miss) everything runs inline in this process — no
  pool, no pickling, identical code path to the pre-runner harnesses.
* **Caching.**  On by default (disable per call with ``cache=False`` or
  process-wide with ``REPRO_NO_CACHE=1``).  Hits skip the simulation
  entirely; see :mod:`repro.runner.cache` for invalidation rules.

Worker pools persist across :func:`run_grid` calls (one per job count) so
sweeps that issue many small grids — e.g. Table 2's per-bandwidth
strategy comparisons — pay the interpreter spawn cost once, not per call.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.cluster.trainer import run_training
from repro.errors import ConfigurationError
from repro.runner.cache import ResultCache
from repro.runner.fingerprint import fingerprint, fleet_fingerprint
from repro.runner.registry import build_factory
from repro.runner.spec import RunResult, RunSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.spec import FleetRunResult, FleetSpec

__all__ = [
    "run_grid",
    "execute",
    "execute_fleet",
    "run_fleet_grid",
    "resolve_jobs",
    "shutdown_pools",
]

#: Environment variable supplying the default parallelism.
JOBS_ENV = "REPRO_JOBS"
#: Environment variable disabling the result cache process-wide.
NO_CACHE_ENV = "REPRO_NO_CACHE"


def resolve_jobs(jobs: int | None = None) -> int:
    """Effective job count: explicit argument > ``REPRO_JOBS`` > 1."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ConfigurationError(
                f"{JOBS_ENV} must be an integer, got {env!r}"
            ) from None
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return jobs


def execute(spec: RunSpec) -> RunResult:
    """Run one spec in this process and extract its scalars.

    This is the function shipped to pool workers: module-level (hence
    picklable by reference) and dependent only on the spec contents.
    """
    factory = build_factory(spec.strategy, spec.kwargs)
    result = run_training(spec.config, factory)
    return RunResult.from_training(result, skip=spec.skip)


def execute_fleet(spec: "FleetSpec") -> "FleetRunResult":
    """Run one fleet spec in this process and extract its scalars.

    Module-level for the same reason as :func:`execute`: pool workers
    pickle it by reference and rebuild everything from the plain-data
    spec.  Imports locally to keep single-run sweeps free of the fleet
    machinery.
    """
    from repro.fleet.simulator import run_fleet
    from repro.fleet.spec import FleetRunResult

    return FleetRunResult.from_result(run_fleet(spec))


# ----------------------------------------------------------------------
# Persistent pools
# ----------------------------------------------------------------------
_POOLS: dict[int, ProcessPoolExecutor] = {}


def _pool(workers: int) -> ProcessPoolExecutor:
    pool = _POOLS.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(
            max_workers=workers, mp_context=get_context("spawn")
        )
        _POOLS[workers] = pool
    return pool


def shutdown_pools() -> None:
    """Shut down every persistent worker pool (registered atexit)."""
    pools = list(_POOLS.values())
    _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pools)


def _resolve_cache(
    cache: bool | ResultCache | None, cache_dir: str | os.PathLike | None
) -> ResultCache | None:
    if isinstance(cache, ResultCache):
        return cache
    if cache is None:
        cache = not os.environ.get(NO_CACHE_ENV, "").strip()
    return ResultCache(cache_dir) if cache else None


def run_grid(
    specs: Iterable[RunSpec],
    *,
    jobs: int | None = None,
    cache: bool | ResultCache | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> list[RunResult]:
    """Execute every spec, in order, with caching and fan-out.

    Returns one :class:`RunResult` per spec, positionally aligned.  Any
    child-side error (bad config, scheduler contract violation) re-raises
    here with its original type.
    """
    spec_list: Sequence[RunSpec] = list(specs)
    jobs = resolve_jobs(jobs)
    store = _resolve_cache(cache, cache_dir)

    results: list[RunResult | None] = [None] * len(spec_list)
    fps: list[str | None] = [None] * len(spec_list)
    misses: list[int] = []
    for i, spec in enumerate(spec_list):
        if store is not None:
            fps[i] = fingerprint(spec)
            hit = store.get(fps[i])
            if hit is not None:
                results[i] = hit
                continue
        misses.append(i)

    if misses:
        if jobs == 1 or len(misses) == 1:
            for i in misses:
                results[i] = execute(spec_list[i])
        else:
            pool = _pool(jobs)
            futures = [(i, pool.submit(execute, spec_list[i])) for i in misses]
            try:
                for i, future in futures:
                    results[i] = future.result()
            except BrokenProcessPool:
                # A worker died (OOM/kill).  Drop the pool so the next
                # grid starts fresh, and fall back to inline execution
                # for whatever is still missing.
                _POOLS.pop(jobs, None)
                for i in misses:
                    if results[i] is None:
                        results[i] = execute(spec_list[i])
        if store is not None:
            for i in misses:
                spec = spec_list[i]
                store.put(
                    fps[i],
                    results[i],
                    meta={
                        "model": spec.config.model,
                        "batch_size": spec.config.batch_size,
                        "strategy": spec.strategy,
                        "seed": spec.config.seed,
                    },
                )
    return results  # type: ignore[return-value]


def run_fleet_grid(
    specs: "Iterable[FleetSpec]",
    *,
    jobs: int | None = None,
    cache: bool | ResultCache | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> "list[FleetRunResult]":
    """Execute every fleet spec, in order, with caching and fan-out.

    The fleet counterpart of :func:`run_grid`: same cache, same
    persistent pools, same deterministic re-ordering — only the unit of
    work is a whole multi-tenant fleet instead of a single run.
    """
    from repro.fleet.spec import FleetRunResult

    spec_list = list(specs)
    jobs = resolve_jobs(jobs)
    store = _resolve_cache(cache, cache_dir)

    results: "list[FleetRunResult | None]" = [None] * len(spec_list)
    fps: list[str | None] = [None] * len(spec_list)
    misses: list[int] = []
    for i, spec in enumerate(spec_list):
        if store is not None:
            fps[i] = fleet_fingerprint(spec)
            hit = store.get(fps[i], decode=FleetRunResult.from_payload)
            if hit is not None:
                results[i] = hit
                continue
        misses.append(i)

    if misses:
        if jobs == 1 or len(misses) == 1:
            for i in misses:
                results[i] = execute_fleet(spec_list[i])
        else:
            pool = _pool(jobs)
            futures = [
                (i, pool.submit(execute_fleet, spec_list[i])) for i in misses
            ]
            try:
                for i, future in futures:
                    results[i] = future.result()
            except BrokenProcessPool:
                _POOLS.pop(jobs, None)
                for i in misses:
                    if results[i] is None:
                        results[i] = execute_fleet(spec_list[i])
        if store is not None:
            for i in misses:
                spec = spec_list[i]
                store.put(
                    fps[i],
                    results[i],
                    meta={
                        "kind": "fleet",
                        "policy": spec.policy,
                        "n_jobs": spec.n_jobs,
                        "seed": spec.seed,
                    },
                )
    return results  # type: ignore[return-value]
