"""Parallel, cached experiment runner.

The paper's whole evaluation (Sec. 5) is an embarrassingly parallel sweep
of independent, seed-deterministic simulations.  This subsystem makes
those sweeps fast and rerunnable:

* :class:`RunSpec` / :class:`RunResult` — plain-data description of one
  run and the scalar projection of its outcome (:mod:`repro.runner.spec`);
* a strategy registry resolving scheduler factories by name in worker
  processes (:mod:`repro.runner.registry`);
* stable content fingerprints over config + strategy + fault plan + seed
  + version (:mod:`repro.runner.fingerprint`);
* a content-addressed on-disk result cache (:mod:`repro.runner.cache`);
* :func:`run_grid`, the deterministic fan-out executor gluing them
  together (:mod:`repro.runner.executor`).

``REPRO_JOBS=N`` parallelizes every ported experiment harness without
code changes; ``REPRO_NO_CACHE=1`` / ``REPRO_CACHE_DIR=...`` control the
cache.  See EXPERIMENTS.md ("Parallel execution and the result cache").
"""

from repro.runner.cache import CacheStats, ResultCache, default_cache_dir
from repro.runner.executor import (
    JOBS_ENV,
    NO_CACHE_ENV,
    execute,
    execute_fleet,
    resolve_jobs,
    run_fleet_grid,
    run_grid,
    shutdown_pools,
)
from repro.runner.fingerprint import (
    ENGINE_ENV_VARS,
    canonical,
    engine_env_payload,
    fingerprint,
    fleet_fingerprint,
    fleet_key_payload,
    key_payload,
)
from repro.runner.registry import (
    available_strategies,
    build_factory,
    register_strategy,
)
from repro.runner.spec import RunResult, RunSpec

__all__ = [
    "RunSpec",
    "RunResult",
    "run_grid",
    "execute",
    "resolve_jobs",
    "shutdown_pools",
    "ResultCache",
    "CacheStats",
    "default_cache_dir",
    "fingerprint",
    "canonical",
    "key_payload",
    "fleet_fingerprint",
    "fleet_key_payload",
    "engine_env_payload",
    "ENGINE_ENV_VARS",
    "execute_fleet",
    "run_fleet_grid",
    "register_strategy",
    "available_strategies",
    "build_factory",
    "JOBS_ENV",
    "NO_CACHE_ENV",
]
