"""Declarative run specifications and their scalar results.

A :class:`RunSpec` is the unit of work of the fan-out executor: one
``(TrainingConfig, strategy, fault plan)`` simulation, described entirely
as plain data.  The scheduler strategy is referenced **by registry name**
(plus keyword arguments for the factory builder), never as a callable —
that is what makes a spec safe to ship to a spawn-started worker process
and stable enough to fingerprint for the on-disk result cache.

A :class:`RunResult` is the scalar projection of a
:class:`~repro.cluster.result.TrainingResult`: the per-worker rates and
headline utilization/throughput numbers every figure/table runner
consumes.  It is a plain frozen dataclass of JSON-able scalars so it can
cross the process boundary cheaply and round-trip through the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from repro.config import TrainingConfig
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.result import TrainingResult

__all__ = ["RunSpec", "RunResult"]


@dataclass(frozen=True)
class RunSpec:
    """One simulated training run, described as plain data.

    ``strategy`` names an entry in :mod:`repro.runner.registry`;
    ``strategy_kwargs`` are keyword arguments for that entry's factory
    builder (e.g. ``{"partition_size": 2 * MB}`` for ``"p3"``).  They are
    normalized to a sorted tuple of pairs so specs hash and pickle
    deterministically.  ``skip`` is the warmup-iteration skip applied when
    the scalars are extracted — it changes the measured numbers, so it is
    part of the spec (and therefore of the cache fingerprint).
    """

    config: TrainingConfig
    strategy: str
    strategy_kwargs: tuple[tuple[str, Any], ...] = ()
    skip: int = 2

    def __post_init__(self) -> None:
        if not self.strategy:
            raise ConfigurationError("RunSpec.strategy must be non-empty")
        if self.skip < 0:
            raise ConfigurationError(f"skip must be >= 0, got {self.skip}")
        kwargs = self.strategy_kwargs
        if isinstance(kwargs, Mapping):
            kwargs = tuple(sorted(kwargs.items()))
        else:
            kwargs = tuple(sorted(tuple(kwargs)))
        object.__setattr__(self, "strategy_kwargs", kwargs)

    @property
    def kwargs(self) -> dict[str, Any]:
        """The strategy kwargs as a plain dict (for the factory builder)."""
        return dict(self.strategy_kwargs)


@dataclass(frozen=True)
class RunResult:
    """Scalar outcome of one run — everything the sweep harnesses read."""

    #: Mean per-worker training rate, samples/s (the paper's headline).
    training_rate: float
    #: Rate of each worker individually, samples/s.
    per_worker_rates: tuple[float, ...]
    #: Mean post-warmup iteration duration of worker 0, seconds.
    mean_iteration_s: float
    #: Mean GPU utilization of worker 0 over the measurement window.
    gpu_utilization: float
    #: Mean channel throughput of worker 0, bytes/s.
    throughput_bytes_per_s: float
    #: Simulated wall-clock at which the run finished, seconds.
    end_time: float
    #: Fault/recovery counters (``None`` for a fault-free run).
    fault_stats: tuple[tuple[str, int], ...] | None = None

    @classmethod
    def from_training(cls, result: "TrainingResult", skip: int = 2) -> "RunResult":
        """Extract the scalar projection from a full training result."""
        per_worker = tuple(
            result.per_worker_rate(w, skip=skip)
            for w in range(result.config.n_workers)
        )
        stats = result.fault_stats
        return cls(
            training_rate=result.training_rate(skip=skip),
            per_worker_rates=per_worker,
            mean_iteration_s=float(result.iteration_spans(0, skip=skip).mean()),
            gpu_utilization=result.mean_gpu_utilization(0, skip=skip),
            throughput_bytes_per_s=result.mean_throughput(0, skip=skip),
            end_time=result.end_time,
            fault_stats=tuple(sorted(stats.items())) if stats is not None else None,
        )

    # ------------------------------------------------------------------
    # Cache (JSON) round-trip
    # ------------------------------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        """Plain-JSON representation for the on-disk result cache."""
        return {
            "training_rate": self.training_rate,
            "per_worker_rates": list(self.per_worker_rates),
            "mean_iteration_s": self.mean_iteration_s,
            "gpu_utilization": self.gpu_utilization,
            "throughput_bytes_per_s": self.throughput_bytes_per_s,
            "end_time": self.end_time,
            "fault_stats": (
                [list(kv) for kv in self.fault_stats]
                if self.fault_stats is not None
                else None
            ),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "RunResult":
        """Rebuild from :meth:`to_payload` output.

        Raises ``KeyError``/``TypeError`` on malformed payloads; the cache
        treats those as corruption and discards the entry.
        """
        fault_stats = payload["fault_stats"]
        return cls(
            training_rate=float(payload["training_rate"]),
            per_worker_rates=tuple(
                float(r) for r in payload["per_worker_rates"]
            ),
            mean_iteration_s=float(payload["mean_iteration_s"]),
            gpu_utilization=float(payload["gpu_utilization"]),
            throughput_bytes_per_s=float(payload["throughput_bytes_per_s"]),
            end_time=float(payload["end_time"]),
            fault_stats=(
                tuple((str(k), int(v)) for k, v in fault_stats)
                if fault_stats is not None
                else None
            ),
        )

