"""Stable content fingerprints for run specifications.

The result cache is keyed by a SHA-256 over a *canonical* JSON encoding
of the spec: every field of the :class:`~repro.config.TrainingConfig`
(recursively, including the fault plan, device, TCP path, bandwidth
schedules, and aggregation policy), the strategy name and its builder
kwargs, the warmup ``skip``, and the package version.  Two specs collide
iff they describe the same simulation under the same code version — the
simulator is seed-deterministic, so equal fingerprints imply equal
results.

Canonicalization rules:

* dataclasses encode as ``{"__type__": qualified name, fields...}`` —
  the type tag keeps e.g. an empty ``FaultPlan`` distinct from ``None``;
* mappings encode as sorted key/value pair lists (keys may be ints);
* numpy scalars/arrays decay to Python numbers/lists;
* :class:`~repro.net.link.BandwidthSchedule` encodes as its breakpoints;
* other objects (aggregation policies) encode as class name + ``vars()``;
* callables are rejected with :class:`~repro.errors.ConfigurationError` —
  a closure has no stable content identity, which is exactly why specs
  carry strategy *names*.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Any, Mapping

import numpy as np

import repro
from repro.errors import ConfigurationError
from repro.net.link import BandwidthSchedule
from repro.runner.spec import RunSpec
from repro.sim.fastforward import NO_FASTFORWARD_ENV

__all__ = [
    "canonical",
    "fingerprint",
    "key_payload",
    "fleet_fingerprint",
    "fleet_key_payload",
    "engine_env_payload",
    "ENGINE_ENV_VARS",
]

#: Environment variables that change what the simulation engine computes.
#: They are part of every fingerprint: a result produced with fast-forward
#: disabled is *the same numbers* but a different event-level execution,
#: and the cache must not serve one as the other.
ENGINE_ENV_VARS = (NO_FASTFORWARD_ENV,)


def engine_env_payload() -> dict[str, bool]:
    """The engine-relevant environment as a stable payload fragment."""
    return {name: bool(os.environ.get(name)) for name in ENGINE_ENV_VARS}


def _type_tag(obj: Any) -> str:
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic JSON-able structure."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # json round-trips floats via repr (shortest exact form).
        return obj
    if isinstance(obj, np.generic):
        return canonical(obj.item())
    if isinstance(obj, np.ndarray):
        return {"__type__": "ndarray", "data": obj.tolist()}
    if isinstance(obj, BandwidthSchedule):
        return {
            "__type__": "BandwidthSchedule",
            "points": [[float(t), float(v)] for t, v in obj.points],
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: dict[str, Any] = {"__type__": _type_tag(obj)}
        for f in dataclasses.fields(obj):
            out[f.name] = canonical(getattr(obj, f.name))
        return out
    if isinstance(obj, Mapping):
        items = [[canonical(k), canonical(v)] for k, v in obj.items()]
        items.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True))
        return {"__type__": "mapping", "items": items}
    if isinstance(obj, (list, tuple)):
        return [canonical(x) for x in obj]
    if callable(obj):
        raise ConfigurationError(
            f"cannot fingerprint callable {obj!r}; reference strategies and "
            "policies by registry name / plain-data parameters instead"
        )
    # Generic objects (aggregation policies and the like): class identity
    # plus instance state.  Objects whose state is itself unfingerprintable
    # fail recursively with the callable error above.
    state = getattr(obj, "__dict__", None)
    if state is None and hasattr(type(obj), "__slots__"):
        state = {
            name: getattr(obj, name)
            for name in type(obj).__slots__
            if hasattr(obj, name)
        }
    if state is not None:
        return {
            "__type__": _type_tag(obj),
            "state": {k: canonical(v) for k, v in sorted(state.items())},
        }
    raise ConfigurationError(
        f"cannot fingerprint object of type {_type_tag(obj)}: no stable "
        "content representation"
    )


def key_payload(spec: RunSpec) -> dict[str, Any]:
    """The full canonical identity of ``spec`` (pre-hash, for debugging)."""
    return {
        "version": repro.__version__,
        "env": engine_env_payload(),
        "config": canonical(spec.config),
        "strategy": spec.strategy,
        "strategy_kwargs": canonical(spec.strategy_kwargs),
        "skip": spec.skip,
    }


def fingerprint(spec: RunSpec) -> str:
    """Hex SHA-256 identifying ``spec``'s simulation under this version."""
    return _digest(key_payload(spec))


def fleet_key_payload(spec: Any) -> dict[str, Any]:
    """The full canonical identity of a :class:`~repro.fleet.FleetSpec`.

    The ``"kind"`` tag keeps fleet entries disjoint from single-run
    entries even if their canonical bodies ever coincided.
    """
    return {
        "kind": "fleet",
        "version": repro.__version__,
        "env": engine_env_payload(),
        "spec": canonical(spec),
    }


def fleet_fingerprint(spec: Any) -> str:
    """Hex SHA-256 identifying a fleet spec's simulation."""
    return _digest(fleet_key_payload(spec))


def _digest(payload: dict[str, Any]) -> str:
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()
