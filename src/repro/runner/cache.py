"""Content-addressed on-disk cache of run results.

Each completed :class:`~repro.runner.spec.RunSpec` stores its
:class:`~repro.runner.spec.RunResult` scalars as one small JSON file named
by the spec's fingerprint (sharded by the first two hex digits, git-object
style).  A hit skips the simulation entirely — the simulator is
seed-deterministic, so a stored result is exactly what a re-run would
produce under the same package version.

Robustness rules:

* writes are atomic (temp file + ``os.replace``) so a killed process
  never leaves a half-written entry;
* unreadable/malformed entries are **discarded on read** and treated as
  misses — a corrupted cache can cost time, never correctness;
* the cache location comes from ``REPRO_CACHE_DIR`` or defaults to
  ``~/.cache/repro/results``; ``REPRO_NO_CACHE=1`` disables caching
  process-wide (see :mod:`repro.runner.executor`).
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

import repro
from repro.runner.spec import RunResult

__all__ = ["ResultCache", "CacheStats", "default_cache_dir"]

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro/results``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "results"


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of the cache directory plus this process's hit counters."""

    root: Path
    entries: int
    total_bytes: int
    hits: int
    misses: int


class ResultCache:
    """Fingerprint-keyed store of :class:`RunResult` payloads."""

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _path(self, fp: str) -> Path:
        return self.root / fp[:2] / f"{fp}.json"

    def get(
        self,
        fp: str,
        decode: Callable[[Mapping[str, Any]], Any] = RunResult.from_payload,
    ) -> Any | None:
        """The cached result for fingerprint ``fp``, or ``None`` on miss.

        ``decode`` rebuilds the stored payload (fleet sweeps pass
        ``FleetRunResult.from_payload``).  Any malformed entry (truncated
        JSON, wrong schema, fingerprint mismatch, decode failure) is
        deleted and reported as a miss.
        """
        path = self._path(fp)
        try:
            payload = json.loads(path.read_text())
            if payload.get("fingerprint") != fp:
                raise ValueError("fingerprint mismatch")
            result = decode(payload["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # Corrupted entry: discard, never fail the sweep over it.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, fp: str, result: Any, meta: dict[str, Any] | None = None) -> Path:
        """Store ``result`` (anything with ``to_payload()``) atomically."""
        path = self._path(fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "fingerprint": fp,
            "version": repro.__version__,
            "result": result.to_payload(),
        }
        if meta:
            payload["meta"] = meta
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------
    def _entry_paths(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return [
            p
            for p in self.root.glob("??/*.json")
            if not p.name.startswith(".tmp-")
        ]

    def stats(self) -> CacheStats:
        """Entry count and size on disk, plus this process's hit/miss."""
        paths = self._entry_paths()
        total = 0
        for p in paths:
            try:
                total += p.stat().st_size
            except OSError:
                pass
        return CacheStats(
            root=self.root,
            entries=len(paths),
            total_bytes=total,
            hits=self.hits,
            misses=self.misses,
        )

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for p in self._entry_paths():
            try:
                p.unlink()
                removed += 1
            except OSError:
                pass
        return removed
