"""Strategy-factory registry: resolve scheduler factories by name.

Scheduler factories are closures (they capture per-worker wiring), so a
:class:`~repro.runner.spec.RunSpec` cannot carry one across a process
boundary.  Instead it carries a *registry name* plus keyword arguments;
the executor — in the parent for inline runs, in the spawn-started child
otherwise — resolves the name here and calls the registered **builder**
(e.g. :func:`repro.workloads.presets.p3_factory`) with those kwargs to
obtain the actual :data:`~repro.config.SchedulerFactory`.

The preset strategies are registered at import time.  Extensions (custom
schedulers, ablation variants) call :func:`register_strategy`; for
parallel execution the registering module must be importable in the child
— put the registration at module top level and name the module in
``RunSpec.config``'s model registration or import it from the builder.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.config import SchedulerFactory
from repro.errors import ConfigurationError
from repro.workloads.presets import (
    bytescheduler_factory,
    fifo_factory,
    mgwfbp_factory,
    p3_factory,
    prophet_factory,
)

__all__ = [
    "register_strategy",
    "available_strategies",
    "build_factory",
]

#: name -> builder; a builder maps kwargs to a SchedulerFactory.
_BUILDERS: dict[str, Callable[..., SchedulerFactory]] = {}


def register_strategy(
    name: str, builder: Callable[..., SchedulerFactory], *, overwrite: bool = False
) -> None:
    """Register ``builder`` under ``name`` for spec-based execution."""
    if not name:
        raise ConfigurationError("strategy name must be non-empty")
    if name in _BUILDERS and not overwrite:
        raise ConfigurationError(f"strategy {name!r} is already registered")
    _BUILDERS[name] = builder


def available_strategies() -> tuple[str, ...]:
    """Sorted names of every registered strategy."""
    return tuple(sorted(_BUILDERS))


def build_factory(
    name: str, kwargs: Mapping[str, Any] | None = None
) -> SchedulerFactory:
    """Resolve ``name`` and build its factory with ``kwargs``."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown strategy {name!r}; registered: "
            f"{', '.join(available_strategies())}"
        ) from None
    return builder(**dict(kwargs or {}))


# ----------------------------------------------------------------------
# Preset strategies (the names used by STRATEGY_FACTORIES / the CLI).
# ----------------------------------------------------------------------
register_strategy("mxnet-fifo", fifo_factory)
register_strategy("fifo", fifo_factory)
register_strategy("p3", p3_factory)
register_strategy("bytescheduler", bytescheduler_factory)
register_strategy("prophet", prophet_factory)
register_strategy("mg-wfbp", mgwfbp_factory)
