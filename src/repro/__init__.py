"""repro — reproduction of *Prophet: Speeding up Distributed DNN Training
with Predictable Communication Scheduling* (ICPP 2021).

The package builds, from scratch, every system the paper depends on:

* a discrete-event simulator of PS-architecture DDNN training
  (:mod:`repro.sim`, :mod:`repro.cluster`),
* a TCP-level network model realizing the paper's ``f(s, B)``
  (:mod:`repro.net`),
* a layer-accurate DNN model zoo (:mod:`repro.models`),
* the KV-store aggregation that creates the stepwise pattern
  (:mod:`repro.agg`),
* the four schedulers under comparison — default MXNet FIFO, P3,
  ByteScheduler (with Bayesian credit tuning, :mod:`repro.bayesopt`) and
  Prophet (:mod:`repro.sched`),
* Prophet's profile/plan core and the Sec. 3 performance model
  (:mod:`repro.core`),
* measurement and reporting (:mod:`repro.metrics`), and
* per-figure/table experiment runners (:mod:`repro.experiments`).

Quickstart
----------
>>> from repro import TrainingConfig, run_training, prophet_factory
>>> from repro.quantities import Gbps
>>> config = TrainingConfig(model="resnet50", batch_size=64,
...                         bandwidth=3 * Gbps, n_iterations=10)
>>> result = run_training(config, prophet_factory())
>>> rate = result.training_rate()           # samples/sec per worker
"""

from repro.config import (
    SchedulerConfig,
    TrainingConfig,
    WorkerContext,
    SchedulerFactory,
)
from repro.cluster import Trainer, run_training, TrainingResult
from repro.core import JobProfile, JobProfiler, plan_schedule
from repro.faults import (
    FaultPlan,
    WorkerCrash,
    LinkFlap,
    MessageDrops,
    PSStall,
    RetryPolicy,
)
from repro.errors import (
    ReproError,
    ConfigurationError,
    SchedulingError,
    SimulationError,
    ProfileError,
)
from repro.sched import (
    CommScheduler,
    FIFOScheduler,
    P3Scheduler,
    ByteSchedulerScheduler,
    ProphetScheduler,
)
from repro.workloads.presets import (
    fifo_factory,
    p3_factory,
    bytescheduler_factory,
    prophet_factory,
    mgwfbp_factory,
    paper_config,
    STRATEGY_FACTORIES,
    EXTENDED_FACTORIES,
)

__version__ = "1.0.0"

# Imported after __version__ is bound: the runner's fingerprint/cache
# modules read ``repro.__version__`` (lazily, but keeping the ordering
# explicit avoids ever exposing a partially-initialized package).
from repro.runner import (  # noqa: E402
    RunSpec,
    RunResult,
    run_grid,
    ResultCache,
    register_strategy,
    available_strategies,
)

__all__ = [
    "RunSpec",
    "RunResult",
    "run_grid",
    "ResultCache",
    "register_strategy",
    "available_strategies",
    "SchedulerConfig",
    "TrainingConfig",
    "WorkerContext",
    "SchedulerFactory",
    "FaultPlan",
    "WorkerCrash",
    "LinkFlap",
    "MessageDrops",
    "PSStall",
    "RetryPolicy",
    "Trainer",
    "run_training",
    "TrainingResult",
    "JobProfile",
    "JobProfiler",
    "plan_schedule",
    "CommScheduler",
    "FIFOScheduler",
    "P3Scheduler",
    "ByteSchedulerScheduler",
    "ProphetScheduler",
    "fifo_factory",
    "p3_factory",
    "bytescheduler_factory",
    "prophet_factory",
    "mgwfbp_factory",
    "paper_config",
    "STRATEGY_FACTORIES",
    "EXTENDED_FACTORIES",
    "ReproError",
    "ConfigurationError",
    "SchedulingError",
    "SimulationError",
    "ProfileError",
    "__version__",
]
