"""Fleet-level metrics over a multi-tenant run's per-job records.

All functions take the :class:`~repro.fleet.job.JobRecord` sequence a
finished fleet run produces and reduce it to the cluster-operator view:
aggregate goodput, tail iteration time across every job's workers, Jain
fairness over per-job training rates, and queueing delay statistics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.job import JobRecord

__all__ = [
    "jain_index",
    "fleet_makespan",
    "fleet_goodput",
    "iteration_percentile",
    "queueing_delays",
    "summarize_fleet",
]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``, in (0, 1].

    1.0 means perfectly equal allocations; ``1/n`` means one participant
    got everything.  An empty or all-zero sequence is defined as 1.0
    (nobody is being treated unfairly).
    """
    if not values:
        return 1.0
    total = float(sum(values))
    squares = float(sum(v * v for v in values))
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(values) * squares)


def fleet_makespan(records: "Sequence[JobRecord]") -> float:
    """First arrival to last completion, the fleet's wall-clock extent."""
    _require(records)
    return max(r.finished_at for r in records) - min(r.arrival for r in records)


def fleet_goodput(records: "Sequence[JobRecord]") -> float:
    """Total samples trained per second of makespan (samples/s)."""
    makespan = fleet_makespan(records)
    total = sum(r.samples for r in records)
    return total / makespan if makespan > 0 else float("inf")


def iteration_percentile(records: "Sequence[JobRecord]", q: float) -> float:
    """The ``q``-th percentile iteration time across every job's workers."""
    _require(records)
    spans = np.concatenate([np.asarray(r.iteration_s, dtype=float) for r in records])
    if spans.size == 0:
        raise ConfigurationError("no iteration spans recorded")
    return float(np.percentile(spans, q))


def queueing_delays(records: "Sequence[JobRecord]") -> np.ndarray:
    """Per-job seconds spent waiting between arrival and placement."""
    _require(records)
    return np.array([r.queueing_delay for r in records], dtype=float)


def summarize_fleet(records: "Sequence[JobRecord]") -> dict[str, float]:
    """The scalar fleet report: one flat dict of all headline metrics."""
    delays = queueing_delays(records)
    return {
        "n_jobs": float(len(records)),
        "makespan_s": fleet_makespan(records),
        "goodput_samples_per_s": fleet_goodput(records),
        "p50_iteration_s": iteration_percentile(records, 50.0),
        "p99_iteration_s": iteration_percentile(records, 99.0),
        "jain_fairness": jain_index([r.training_rate for r in records]),
        "mean_queueing_delay_s": float(delays.mean()),
        "max_queueing_delay_s": float(delays.max()),
    }


def _require(records: "Sequence[JobRecord]") -> None:
    if not records:
        raise ConfigurationError("fleet metrics need at least one job record")
