"""Typed event timelines recorded during a training simulation.

The :class:`Recorder` is written to by workers as the simulation runs and
read by the figure/table harnesses afterwards.  Three record kinds:

* :class:`GpuInterval` — one contiguous GPU-busy span (forward or backward
  compute of one layer run, or a whole backward pass);
* :class:`IterationRecord` — per-worker iteration boundaries;
* :class:`GradientRecord` — the paper's per-gradient quantities: ready
  time ``c``, push start ``t``, push end, pull end ``u`` (Fig. 11's wait
  time is ``t − c``; its transfer time is push end − push start).

The recorder is a typed view over the structured trace layer
(:mod:`repro.trace`): every write is mirrored into the attached trace
recorder (compute spans on the ``worker{N}/gpu`` track, iteration-boundary
instants, per-gradient lifecycle instants), so the Chrome trace and the
numeric timelines are produced by one write path.
:func:`recorder_from_trace` inverts the mapping — rebuilding the typed
views from a trace event list (e.g. one re-read from an exported Chrome
JSON file), which is what makes the trace the authoritative record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.trace.events import INSTANT, SPAN, TraceEvent
from repro.trace.recorder import NULL_RECORDER, NullRecorder, TraceRecorder

__all__ = [
    "GpuInterval",
    "IterationRecord",
    "GradientRecord",
    "Recorder",
    "recorder_from_trace",
]


@dataclass(frozen=True)
class GpuInterval:
    """One GPU-busy span on one worker."""

    worker: int
    iteration: int
    kind: str  # "fwd" | "bwd"
    start: float
    end: float


@dataclass
class IterationRecord:
    """Per-worker iteration boundaries (bwd starts when fwd ends)."""

    worker: int
    iteration: int
    fwd_start: float = np.nan
    fwd_end: float = np.nan
    bwd_end: float = np.nan


@dataclass
class GradientRecord:
    """Per-gradient communication timeline on one worker, one iteration."""

    worker: int
    iteration: int
    grad: int
    ready: float = np.nan       # c(i): flushed by the KV store
    push_start: float = np.nan  # t(i): first byte enters the channel
    push_end: float = np.nan    # last byte pushed
    pull_end: float = np.nan    # u(i): parameters updated locally

    @property
    def wait_time(self) -> float:
        """Queueing delay before transmission (Fig. 11's wait time)."""
        return self.push_start - self.ready

    @property
    def transfer_time(self) -> float:
        """Push duration, first to last byte (Fig. 11's transfer time)."""
        return self.push_end - self.push_start


class Recorder:
    """Accumulates simulation timelines.

    ``record_gradients=False`` drops per-gradient records (the most
    memory-hungry signal) for large sweeps that only need rates.

    ``trace`` mirrors every write into a structured trace recorder
    (default: the shared no-op), putting the numeric timelines and the
    exportable Chrome trace on one write path.
    """

    def __init__(
        self,
        record_gradients: bool = True,
        trace: TraceRecorder | NullRecorder = NULL_RECORDER,
    ):
        self.record_gradients = record_gradients
        self.trace = trace
        self.gpu_intervals: list[GpuInterval] = []
        self.iterations: list[IterationRecord] = []
        self._gradients: dict[tuple[int, int, int], GradientRecord] = {}
        #: ``(worker, iteration) -> IterationRecord`` index over
        #: ``iterations`` — lets the fast-forward replay address rows
        #: created in an earlier cycle window (a row is created at
        #: forward start but its ``bwd_end`` lands one window later).
        self._iter_index: dict[tuple[int, int], IterationRecord] = {}
        #: Fast-forward journal; a list while one steady-state cycle is
        #: being recorded (repro.sim.fastforward), else None.
        self._ff_journal: list | None = None

    # ------------------------------------------------------------------
    # Write side (workers)
    # ------------------------------------------------------------------
    def gpu_busy(
        self, worker: int, iteration: int, kind: str, start: float, end: float
    ) -> None:
        if end > start:
            self.gpu_intervals.append(GpuInterval(worker, iteration, kind, start, end))
            journal = self._ff_journal
            if journal is not None:
                journal.append(("gpu", worker, iteration, kind, start, end))
            if self.trace.enabled:
                self.trace.complete(
                    kind,
                    "compute",
                    start,
                    end,
                    f"worker{worker}/gpu",
                    {"iteration": iteration},
                )

    def iteration_record(self, worker: int, iteration: int) -> IterationRecord:
        rec = IterationRecord(worker=worker, iteration=iteration)
        self.iterations.append(rec)
        self._iter_index[(worker, iteration)] = rec
        journal = self._ff_journal
        if journal is not None:
            journal.append(("row", worker, iteration))
        if self.trace.enabled:
            self.trace.instant(
                f"iter {iteration}",
                "iteration",
                self.trace.now(),
                f"worker{worker}/gpu",
                {"worker": worker, "iteration": iteration},
            )
        return rec

    def iter_field(self, rec: IterationRecord, field: str, t: float) -> None:
        """Set one boundary field on an iteration row.

        The journalable write path for ``fwd_start``/``fwd_end``/
        ``bwd_end`` — workers route row mutations through here so a
        recorded steady-state cycle can be replayed bit-identically.
        """
        setattr(rec, field, t)
        journal = self._ff_journal
        if journal is not None:
            journal.append(("rowset", rec.worker, rec.iteration, field, t))

    def gradient(self, worker: int, iteration: int, grad: int) -> GradientRecord | None:
        """The (mutable) gradient record, or ``None`` when recording is off."""
        if not self.record_gradients:
            return None
        key = (worker, iteration, grad)
        rec = self._gradients.get(key)
        if rec is None:
            rec = GradientRecord(worker=worker, iteration=iteration, grad=grad)
            self._gradients[key] = rec
        return rec

    # ------------------------------------------------------------------
    # Per-gradient lifecycle marks (the paper's c, t, push end, u)
    # ------------------------------------------------------------------
    def _mark(
        self, worker: int, iteration: int, grad: int, field: str, t: float
    ) -> None:
        if self.trace.enabled:
            self.trace.instant(
                field,
                "gradient",
                t,
                f"worker{worker}/grad",
                {"worker": worker, "iteration": iteration, "grad": grad},
            )
        rec = self.gradient(worker, iteration, grad)
        if rec is not None:
            setattr(rec, field, t)
            journal = self._ff_journal
            if journal is not None:
                journal.append(("grad", worker, iteration, grad, field, t))

    def mark_ready(self, worker: int, iteration: int, grad: int, t: float) -> None:
        """Gradient flushed by the KV store (the paper's ``c(i)``)."""
        self._mark(worker, iteration, grad, "ready", t)

    def mark_push_start(self, worker: int, iteration: int, grad: int, t: float) -> None:
        """First byte entered the channel (the paper's ``t(i)``)."""
        self._mark(worker, iteration, grad, "push_start", t)

    def mark_push_end(self, worker: int, iteration: int, grad: int, t: float) -> None:
        """Last byte pushed."""
        self._mark(worker, iteration, grad, "push_end", t)

    def mark_pull_end(self, worker: int, iteration: int, grad: int, t: float) -> None:
        """Updated parameters applied locally (the paper's ``u(i)``)."""
        self._mark(worker, iteration, grad, "pull_end", t)

    # ------------------------------------------------------------------
    # Read side (harnesses)
    # ------------------------------------------------------------------
    def worker_iterations(self, worker: int) -> list[IterationRecord]:
        """Iteration records of one worker, ordered by iteration."""
        return sorted(
            (r for r in self.iterations if r.worker == worker),
            key=lambda r: r.iteration,
        )

    def gradient_records(
        self, worker: int | None = None, iteration: int | None = None
    ) -> list[GradientRecord]:
        """Gradient records filtered by worker and/or iteration."""
        out = [
            r
            for r in self._gradients.values()
            if (worker is None or r.worker == worker)
            and (iteration is None or r.iteration == iteration)
        ]
        return sorted(out, key=lambda r: (r.worker, r.iteration, r.grad))

    def gpu_busy_intervals(self, worker: int) -> np.ndarray:
        """(N, 2) array of one worker's busy spans, sorted by start."""
        spans = sorted(
            (iv.start, iv.end) for iv in self.gpu_intervals if iv.worker == worker
        )
        if not spans:
            return np.empty((0, 2))
        return np.asarray(spans, dtype=float)


def _worker_of(track: str) -> int | None:
    """``"worker3/gpu"`` → 3; ``None`` for non-worker tracks."""
    if not track.startswith("worker"):
        return None
    head = track.partition("/")[0][len("worker"):]
    return int(head) if head.isdigit() else None


def recorder_from_trace(events: Iterable[TraceEvent]) -> Recorder:
    """Rebuild the typed timelines from a trace event list.

    The inverse of the recorder's write-through: compute spans become
    :class:`GpuInterval` records, iteration instants (together with the
    compute spans they bracket) become :class:`IterationRecord` rows, and
    per-gradient lifecycle instants repopulate :class:`GradientRecord`
    fields.  Accepts events straight from a live
    :class:`~repro.trace.recorder.TraceRecorder` or re-read from an
    exported Chrome JSON file via
    :func:`repro.trace.export.read_chrome_trace`.
    """
    rec = Recorder(record_gradients=True)
    iter_rows: dict[tuple[int, int], IterationRecord] = {}
    ordered = sorted(events, key=TraceEvent.sort_key)
    for ev in ordered:
        worker = _worker_of(ev.track)
        if worker is None:
            continue
        if ev.ph == SPAN and ev.cat == "compute":
            iteration = int(ev.args["iteration"])
            rec.gpu_busy(worker, iteration, ev.name, ev.ts, ev.end)
            row = iter_rows.get((worker, iteration))
            if row is not None:
                if ev.name == "fwd":
                    row.fwd_end = max(
                        ev.end,
                        row.fwd_end if np.isfinite(row.fwd_end) else -np.inf,
                    )
                elif ev.name == "bwd":
                    row.bwd_end = ev.end
        elif ev.ph == INSTANT and ev.cat == "iteration":
            iteration = int(ev.args["iteration"])
            row = rec.iteration_record(worker, iteration)
            row.fwd_start = ev.ts
            iter_rows[(worker, iteration)] = row
        elif ev.ph == INSTANT and ev.cat == "gradient":
            if ev.name in ("ready", "push_start", "push_end", "pull_end"):
                rec._mark(
                    worker,
                    int(ev.args["iteration"]),
                    int(ev.args["grad"]),
                    ev.name,
                    ev.ts,
                )
    return rec
