"""Raw event timelines recorded during a training simulation.

The :class:`Recorder` is written to by workers as the simulation runs and
read by the figure/table harnesses afterwards.  Three record kinds:

* :class:`GpuInterval` — one contiguous GPU-busy span (forward or backward
  compute of one layer run, or a whole backward pass);
* :class:`IterationRecord` — per-worker iteration boundaries;
* :class:`GradientRecord` — the paper's per-gradient quantities: ready
  time ``c``, push start ``t``, push end, pull end ``u`` (Fig. 11's wait
  time is ``t − c``; its transfer time is push end − push start).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GpuInterval", "IterationRecord", "GradientRecord", "Recorder"]


@dataclass(frozen=True)
class GpuInterval:
    """One GPU-busy span on one worker."""

    worker: int
    iteration: int
    kind: str  # "fwd" | "bwd"
    start: float
    end: float


@dataclass
class IterationRecord:
    """Per-worker iteration boundaries (bwd starts when fwd ends)."""

    worker: int
    iteration: int
    fwd_start: float = np.nan
    fwd_end: float = np.nan
    bwd_end: float = np.nan


@dataclass
class GradientRecord:
    """Per-gradient communication timeline on one worker, one iteration."""

    worker: int
    iteration: int
    grad: int
    ready: float = np.nan       # c(i): flushed by the KV store
    push_start: float = np.nan  # t(i): first byte enters the channel
    push_end: float = np.nan    # last byte pushed
    pull_end: float = np.nan    # u(i): parameters updated locally

    @property
    def wait_time(self) -> float:
        """Queueing delay before transmission (Fig. 11's wait time)."""
        return self.push_start - self.ready

    @property
    def transfer_time(self) -> float:
        """Push duration, first to last byte (Fig. 11's transfer time)."""
        return self.push_end - self.push_start


class Recorder:
    """Accumulates simulation timelines.

    ``record_gradients=False`` drops per-gradient records (the most
    memory-hungry signal) for large sweeps that only need rates.
    """

    def __init__(self, record_gradients: bool = True):
        self.record_gradients = record_gradients
        self.gpu_intervals: list[GpuInterval] = []
        self.iterations: list[IterationRecord] = []
        self._gradients: dict[tuple[int, int, int], GradientRecord] = {}

    # ------------------------------------------------------------------
    # Write side (workers)
    # ------------------------------------------------------------------
    def gpu_busy(
        self, worker: int, iteration: int, kind: str, start: float, end: float
    ) -> None:
        if end > start:
            self.gpu_intervals.append(GpuInterval(worker, iteration, kind, start, end))

    def iteration_record(self, worker: int, iteration: int) -> IterationRecord:
        rec = IterationRecord(worker=worker, iteration=iteration)
        self.iterations.append(rec)
        return rec

    def gradient(self, worker: int, iteration: int, grad: int) -> GradientRecord | None:
        """The (mutable) gradient record, or ``None`` when recording is off."""
        if not self.record_gradients:
            return None
        key = (worker, iteration, grad)
        rec = self._gradients.get(key)
        if rec is None:
            rec = GradientRecord(worker=worker, iteration=iteration, grad=grad)
            self._gradients[key] = rec
        return rec

    # ------------------------------------------------------------------
    # Read side (harnesses)
    # ------------------------------------------------------------------
    def worker_iterations(self, worker: int) -> list[IterationRecord]:
        """Iteration records of one worker, ordered by iteration."""
        return sorted(
            (r for r in self.iterations if r.worker == worker),
            key=lambda r: r.iteration,
        )

    def gradient_records(
        self, worker: int | None = None, iteration: int | None = None
    ) -> list[GradientRecord]:
        """Gradient records filtered by worker and/or iteration."""
        out = [
            r
            for r in self._gradients.values()
            if (worker is None or r.worker == worker)
            and (iteration is None or r.iteration == iteration)
        ]
        return sorted(out, key=lambda r: (r.worker, r.iteration, r.grad))

    def gpu_busy_intervals(self, worker: int) -> np.ndarray:
        """(N, 2) array of one worker's busy spans, sorted by start."""
        spans = sorted(
            (iv.start, iv.end) for iv in self.gpu_intervals if iv.worker == worker
        )
        if not spans:
            return np.empty((0, 2))
        return np.asarray(spans, dtype=float)
