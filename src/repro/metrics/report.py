"""Plain-text table formatting for benchmark harnesses.

Every figure/table harness prints its rows through :func:`format_table` so
benchmark output lines up with the paper's tables for eyeball comparison
(EXPERIMENTS.md embeds these outputs).
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_trace_summary"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Floats are shown with two decimals; everything else via ``str``.
    """
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_trace_summary(summary: Mapping[str, object]) -> str:
    """Render a :func:`repro.trace.export.summarize_trace` dict as a table.

    One row per span category (count and total seconds), then one per
    instant category and counter series — the quick sanity read before
    opening the full trace in Perfetto.
    """
    rows: list[list[object]] = []
    for cat, agg in summary.get("spans", {}).items():  # type: ignore[union-attr]
        rows.append(["span", cat, agg["count"], f"{agg['total_s']:.4f} s"])
    for cat, count in summary.get("instants", {}).items():  # type: ignore[union-attr]
        rows.append(["instant", cat, count, ""])
    for name, agg in summary.get("counters", {}).items():  # type: ignore[union-attr]
        last = ", ".join(f"{k}={v:.3g}" for k, v in agg["last"].items())
        rows.append(["counter", name, agg["samples"], last])
    title = (
        f"trace: {summary.get('n_events', 0)} events over "
        f"{float(summary.get('time_span_s', 0.0)):.3f} simulated seconds, "
        f"{len(summary.get('tracks', []))} tracks"
    )
    return format_table(["kind", "category", "count", "detail"], rows, title=title)
