"""Plain-text table formatting for benchmark harnesses.

Every figure/table harness prints its rows through :func:`format_table` so
benchmark output lines up with the paper's tables for eyeball comparison
(EXPERIMENTS.md embeds these outputs).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Floats are shown with two decimals; everything else via ``str``.
    """
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
