"""Result export: CSV and JSON serialization of training results.

Sweep harnesses and downstream analysis want flat records, not live
simulator objects.  :func:`result_summary_dict` flattens one
:class:`~repro.cluster.result.TrainingResult` into JSON-safe scalars;
:func:`gradient_records_rows` flattens per-gradient timelines;
:func:`write_csv` / :func:`write_json` persist either.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.cluster.result import TrainingResult
from repro.errors import ConfigurationError

__all__ = [
    "result_summary_dict",
    "gradient_records_rows",
    "write_csv",
    "write_json",
]


def result_summary_dict(result: TrainingResult, skip: int = 2) -> dict[str, object]:
    """Flatten a result's headline numbers plus the identifying config."""
    config = result.config
    bandwidth = config.bandwidth
    bandwidth_desc = (
        float(bandwidth) if isinstance(bandwidth, (int, float)) else "schedule"
    )
    summary = result.summary(skip=skip)
    return {
        "model": config.model,
        "batch_size": config.batch_size,
        "n_workers": config.n_workers,
        "n_iterations": config.n_iterations,
        "bandwidth_bytes_per_s": bandwidth_desc,
        "sync_mode": config.sync_mode,
        "seed": config.seed,
        "training_rate": float(summary["training_rate"]),
        "mean_iteration_s": float(summary["mean_iteration_s"]),
        "gpu_utilization": float(summary["gpu_utilization"]),
        "throughput_bytes_per_s": float(summary["throughput_bytes_per_s"]),
    }


def gradient_records_rows(
    result: TrainingResult, worker: int = 0, iteration: int | None = None
) -> list[dict[str, object]]:
    """Per-gradient timeline rows (NaNs serialized as ``None``)."""

    def clean(value: float) -> float | None:
        return float(value) if np.isfinite(value) else None

    return [
        {
            "worker": r.worker,
            "iteration": r.iteration,
            "grad": r.grad,
            "ready": clean(r.ready),
            "push_start": clean(r.push_start),
            "push_end": clean(r.push_end),
            "pull_end": clean(r.pull_end),
        }
        for r in result.gradient_records(worker=worker, iteration=iteration)
    ]


def write_csv(rows: Sequence[Mapping[str, object]], path: str | Path) -> Path:
    """Write homogeneous dict rows as CSV; returns the path."""
    if not rows:
        raise ConfigurationError("no rows to write")
    path = Path(path)
    fieldnames = list(rows[0].keys())
    for i, row in enumerate(rows):
        if list(row.keys()) != fieldnames:
            raise ConfigurationError(f"row {i} keys differ from header")
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
    return path


def write_json(data: object, path: str | Path) -> Path:
    """Write JSON with stable formatting; returns the path."""
    path = Path(path)
    with path.open("w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
