"""Terminal Gantt charts for channel and gradient timelines.

The paper's Figs. 5 and 11 are transfer timelines; these helpers render
the simulated equivalents as text so examples and benchmark logs can show
*why* a schedule is fast or slow without a plotting stack:

* :func:`render_channel_timeline` — one lane per traffic direction, one
  character per time bin (``#`` push, ``=`` pull, ``.`` idle).
* :func:`render_gradient_waterfall` — one row per (sampled) gradient:
  generation (``|``), wait (``-``), transfer (``#``), until pull (``~``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.metrics.timeline import GradientRecord
from repro.net.link import TransferRecord

__all__ = ["render_channel_timeline", "render_gradient_waterfall"]


def _bin_index(t: float, start: float, step: float, width: int) -> int:
    return min(width - 1, max(0, int((t - start) / step)))


def render_channel_timeline(
    records: Sequence[TransferRecord],
    start: float,
    end: float,
    width: int = 80,
) -> str:
    """Render a channel's occupancy between ``start`` and ``end``.

    Each column is ``(end-start)/width`` seconds; a bin shows ``#`` if
    mostly push traffic, ``=`` if mostly pull, ``.`` if idle.
    """
    if end <= start:
        raise ConfigurationError("end must exceed start")
    if width < 10:
        raise ConfigurationError(f"width must be >= 10, got {width}")
    step = (end - start) / width
    push = np.zeros(width)
    pull = np.zeros(width)
    for rec in records:
        if rec.end <= start or rec.start >= end:
            continue
        kind = rec.tag[0] if isinstance(rec.tag, tuple) else "push"
        lane = push if kind == "push" else pull
        lo = _bin_index(rec.start, start, step, width)
        hi = _bin_index(rec.end, start, step, width)
        for b in range(lo, hi + 1):
            bin_lo = start + b * step
            bin_hi = bin_lo + step
            overlap = min(rec.end, bin_hi) - max(rec.start, bin_lo)
            lane[b] += max(0.0, overlap)
    chars = []
    for b in range(width):
        if push[b] + pull[b] < 0.05 * step:
            chars.append(".")
        elif push[b] >= pull[b]:
            chars.append("#")
        else:
            chars.append("=")
    ruler = f"{start * 1e3:.0f}ms" + " " * (width - 12) + f"{end * 1e3:.0f}ms"
    return ruler[:width] + "\n" + "".join(chars) + "\n(# push, = pull, . idle)"


def render_gradient_waterfall(
    records: Sequence[GradientRecord],
    width: int = 72,
    max_rows: int = 24,
) -> str:
    """Render per-gradient lifecycles (one iteration's records).

    Rows are gradients in priority order (subsampled to ``max_rows``);
    per row: spaces before generation, ``-`` while waiting in the queue,
    ``#`` during the push, ``~`` until the parameters return.
    """
    if width < 10:
        raise ConfigurationError(f"width must be >= 10, got {width}")
    if max_rows < 1:
        raise ConfigurationError(f"max_rows must be >= 1, got {max_rows}")
    usable = [
        r
        for r in records
        if np.isfinite(r.ready) and np.isfinite(r.push_start) and np.isfinite(r.push_end)
    ]
    if not usable:
        raise ConfigurationError("no complete gradient records to render")
    usable.sort(key=lambda r: r.grad)
    stride = max(1, len(usable) // max_rows)
    sampled = usable[::stride]

    t0 = min(r.ready for r in sampled)
    t1 = max(
        (r.pull_end if np.isfinite(r.pull_end) else r.push_end) for r in sampled
    )
    if t1 <= t0:
        t1 = t0 + 1e-9
    step = (t1 - t0) / width

    lines = []
    for r in sampled:
        row = [" "] * width
        ready_b = _bin_index(r.ready, t0, step, width)
        start_b = _bin_index(r.push_start, t0, step, width)
        end_b = _bin_index(r.push_end, t0, step, width)
        for b in range(ready_b, start_b):
            row[b] = "-"
        for b in range(start_b, end_b + 1):
            row[b] = "#"
        if np.isfinite(r.pull_end):
            pull_b = _bin_index(r.pull_end, t0, step, width)
            for b in range(end_b + 1, pull_b + 1):
                row[b] = "~"
        row[ready_b] = "|"
        lines.append(f"g{r.grad}".rjust(5) + " " + "".join(row))
    header = (
        f"      t0={t0 * 1e3:.1f}ms .. t1={t1 * 1e3:.1f}ms   "
        "(| ready, - wait, # push, ~ until params return)"
    )
    return header + "\n" + "\n".join(lines)
