"""GPU-utilization series from busy intervals.

The paper plots GPU utilization over time (Figs. 2, 9, 13) as the
fraction of each sampling window the GPU spent computing.  We reproduce it
from exact busy intervals: build the cumulative-busy-time curve, then
window it — all vectorized (the curves have a few thousand breakpoints).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["busy_curve", "windowed_utilization", "mean_utilization"]


def _merge(intervals: np.ndarray) -> np.ndarray:
    """Merge overlapping/adjacent (start, end) spans (sorted by start)."""
    if len(intervals) == 0:
        return intervals
    merged = [list(intervals[0])]
    for s, e in intervals[1:]:
        if s <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], e)
        else:
            merged.append([s, e])
    return np.asarray(merged)


def busy_curve(intervals: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Cumulative busy time as a piecewise-linear curve.

    Returns ``(times, cum_busy)`` such that linear interpolation gives the
    total busy seconds in ``[0, t]`` for any ``t``.  ``intervals`` is an
    (N, 2) array of busy spans sorted by start.
    """
    intervals = np.asarray(intervals, dtype=float).reshape(-1, 2)
    if len(intervals) == 0:
        return np.array([0.0]), np.array([0.0])
    merged = _merge(intervals)
    starts, ends = merged[:, 0], merged[:, 1]
    durations = ends - starts
    cum_at_start = np.concatenate([[0.0], np.cumsum(durations)[:-1]])
    cum_at_end = np.cumsum(durations)
    times = np.empty(2 * len(merged) + 1)
    cum = np.empty_like(times)
    times[0], cum[0] = 0.0, 0.0
    times[1::2], cum[1::2] = starts, cum_at_start
    times[2::2], cum[2::2] = ends, cum_at_end
    return times, cum


def windowed_utilization(
    intervals: np.ndarray,
    sample_times: np.ndarray,
    window: float,
) -> np.ndarray:
    """Utilization in the trailing ``window`` at each of ``sample_times``.

    Mirrors how ``nvidia-smi``-style samplers report utilization: the busy
    fraction of the last ``window`` seconds.  Samples earlier than
    ``window`` use the shortened span from t=0.
    """
    if window <= 0:
        raise ConfigurationError(f"window must be positive, got {window}")
    sample_times = np.asarray(sample_times, dtype=float)
    times, cum = busy_curve(intervals)
    upper = np.interp(sample_times, times, cum, left=0.0, right=cum[-1])
    lo = np.maximum(sample_times - window, 0.0)
    lower = np.interp(lo, times, cum, left=0.0, right=cum[-1])
    spans = np.maximum(sample_times - lo, 1e-12)
    return np.clip((upper - lower) / spans, 0.0, 1.0)


def mean_utilization(
    intervals: np.ndarray, start: float, end: float
) -> float:
    """Busy fraction over ``[start, end]`` (the paper's average figures)."""
    if end <= start:
        raise ConfigurationError("end must exceed start")
    times, cum = busy_curve(intervals)
    hi = float(np.interp(end, times, cum, left=0.0, right=cum[-1]))
    lo = float(np.interp(start, times, cum, left=0.0, right=cum[-1]))
    return max(0.0, min(1.0, (hi - lo) / (end - start)))
