"""Network-throughput series from link transfer records.

Reproduces the paper's Figs. 2 and 10 (uplink/downlink throughput of a
worker node over time): bytes are spread uniformly across each transfer's
duration, accumulated into a piecewise-linear delivered-bytes curve, then
windowed — the same computation an ``iftop``-style monitor performs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.net.link import TransferRecord

__all__ = ["bytes_curve", "windowed_throughput"]


def bytes_curve(records: Sequence[TransferRecord]) -> tuple[np.ndarray, np.ndarray]:
    """Cumulative delivered bytes as a piecewise-linear curve.

    Returns ``(times, cum_bytes)``; interpolation gives bytes delivered in
    ``[0, t]``.  Within one transfer, bytes flow at the transfer's average
    rate.  Records may be unsorted.
    """
    if not records:
        return np.array([0.0]), np.array([0.0])
    recs = sorted(records, key=lambda r: r.start)
    times = [0.0]
    cum = [0.0]
    total = 0.0
    for r in recs:
        if r.start > times[-1]:
            times.append(r.start)
            cum.append(total)
        total += r.nbytes
        times.append(max(r.end, r.start + 1e-12))
        cum.append(total)
    return np.asarray(times), np.asarray(cum)


def windowed_throughput(
    records: Sequence[TransferRecord],
    sample_times: np.ndarray,
    window: float,
) -> np.ndarray:
    """Bytes/second over the trailing ``window`` at each sample time."""
    if window <= 0:
        raise ConfigurationError(f"window must be positive, got {window}")
    sample_times = np.asarray(sample_times, dtype=float)
    times, cum = bytes_curve(records)
    upper = np.interp(sample_times, times, cum, left=0.0, right=cum[-1])
    lo = np.maximum(sample_times - window, 0.0)
    lower = np.interp(lo, times, cum, left=0.0, right=cum[-1])
    spans = np.maximum(sample_times - lo, 1e-12)
    return (upper - lower) / spans
