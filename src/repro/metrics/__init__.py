"""Measurement: timelines, utilization/throughput series, reports.

The simulator records the same raw signals the paper measures on its EC2
testbed — GPU busy intervals (their ``nvidia-smi`` traces), per-transfer
link records (their network throughput traces), and per-gradient
communication events (their BytePS transfer logs) — and this package turns
them into the derived series shown in Figs. 2, 9, 10, 11 and the rate
tables.
"""

from repro.metrics.timeline import (
    Recorder,
    GpuInterval,
    IterationRecord,
    GradientRecord,
    recorder_from_trace,
)
from repro.metrics.utilization import busy_curve, windowed_utilization, mean_utilization
from repro.metrics.throughput import bytes_curve, windowed_throughput
from repro.metrics.report import format_table, format_trace_summary
from repro.trace.export import summarize_trace
from repro.metrics.ascii_timeline import render_channel_timeline, render_gradient_waterfall
from repro.metrics.export import (
    result_summary_dict,
    gradient_records_rows,
    write_csv,
    write_json,
)
from repro.metrics.fleet import (
    jain_index,
    fleet_makespan,
    fleet_goodput,
    iteration_percentile,
    queueing_delays,
    summarize_fleet,
)

__all__ = [
    "Recorder",
    "GpuInterval",
    "IterationRecord",
    "GradientRecord",
    "recorder_from_trace",
    "summarize_trace",
    "format_trace_summary",
    "busy_curve",
    "windowed_utilization",
    "mean_utilization",
    "bytes_curve",
    "windowed_throughput",
    "format_table",
    "render_channel_timeline",
    "render_gradient_waterfall",
    "result_summary_dict",
    "gradient_records_rows",
    "write_csv",
    "write_json",
    "jain_index",
    "fleet_makespan",
    "fleet_goodput",
    "iteration_percentile",
    "queueing_delays",
    "summarize_fleet",
]
