"""Training-run configuration.

One frozen :class:`TrainingConfig` fully determines a simulated training
run (together with the scheduler factory passed to the trainer).  Defaults
mirror the paper's testbed: g3.8xlarge-class compute, 1 PS + 3 workers,
ResNet-50 at batch 64, module-boundary aggregation, and the single shared
worker↔PS channel implied by the paper's Constraint (8) / Eq. (4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, TYPE_CHECKING

from repro.agg.policies import AggregationPolicy, ModulePrefixPolicy
from repro.errors import ConfigurationError
from repro.models.device import DeviceSpec, TESLA_M60
from repro.net.link import BandwidthSchedule
from repro.net.tcp import TCPParams
from repro.quantities import Gbps

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.core.profiler import JobProfile
    from repro.faults.plan import FaultPlan
    from repro.net.monitor import BandwidthMonitor
    from repro.sched.base import CommScheduler
    from repro.sim.engine import Engine

__all__ = ["SchedulerConfig", "TrainingConfig", "WorkerContext", "SchedulerFactory"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Worker-side communication-agent knobs shared by every strategy.

    ``stall_timeout`` is the stall-probe delay: how long a worker tolerates
    an idle channel with unsent gradients before prodding the scheduler's
    flow control (:meth:`repro.sched.base.CommScheduler.grant_probe`) — the
    escape hatch for ByteScheduler-style credit pipelines whose divergent
    send orders can otherwise deadlock the BSP ring.
    """

    stall_timeout: float = 5e-3

    def __post_init__(self) -> None:
        if self.stall_timeout <= 0:
            raise ConfigurationError(
                f"stall_timeout must be positive, got {self.stall_timeout}"
            )


@dataclass(frozen=True)
class TrainingConfig:
    """Everything that defines one simulated DDNN training run.

    Attributes mirror the experimental knobs of the paper's Sec. 5:
    model/batch size (Fig. 8, Table 3), per-worker bandwidth caps
    (Table 2, the heterogeneity experiment), worker count (Fig. 12), and
    the substrate parameters (TCP path, device, aggregation policy).

    ``duplex=False`` (default) models push and pull sharing one serialized
    channel per worker — the network model the paper's Eq. (4)
    (``u = t + 2E``) and Constraint (8) describe.  ``duplex=True`` is the
    full-duplex ablation.

    ``sync_mode`` selects the parameter-synchronization model: ``"bsp"``
    (the paper's setting), ``"asp"`` (future-work item 1: fully
    asynchronous), or ``"ssp"`` with ``ssp_staleness`` bounding how far
    the fastest worker may run ahead.

    ``faults`` optionally attaches a :class:`~repro.faults.plan.FaultPlan`
    (crashes, link flaps, message drops, PS stalls).  ``None`` — or an
    empty plan — leaves the fault machinery entirely uninstantiated: the
    run's event sequence is bit-identical to a build without the faults
    subsystem.
    """

    model: str = "resnet50"
    batch_size: int = 64
    n_workers: int = 3
    #: Communication backend.  ``"ps"`` (default) is the paper's
    #: parameter-server star (or the sharded tier with ``n_servers > 1``);
    #: ``"allreduce"`` replaces the PS with a collective tier — a single
    #: negotiated scheduler instance driving ring (or hierarchical)
    #: allreduce operations over :mod:`repro.net.collective` topologies.
    backend: str = "ps"
    #: Collective topology for ``backend="allreduce"``: ``"ring"`` (flat
    #: ring, ``2(N-1)`` chunk steps) or ``"hierarchical"`` (two-level
    #: reduce-scatter / all-gather with ``collective_group_size`` workers
    #: per group).
    collective: str = "ring"
    #: Workers per group of the hierarchical collective; must divide
    #: ``n_workers``.  Ignored by the flat ring.
    collective_group_size: int = 2
    #: Number of key-sharded parameter servers.  1 (default) runs the
    #: paper's single-PS star; >1 builds a BytePS-style sharded tier —
    #: a :class:`~repro.net.topology.ShardedTopology` with per-shard
    #: links, one :class:`~repro.cluster.ps.ParameterServer` per shard,
    #: and per-shard scheduler instances (see DESIGN.md).  With a
    #: sharded tier, ``ps_bandwidth`` is each server's own NIC capacity.
    n_servers: int = 1
    #: Optional P3-style slicing threshold for the key→shard assignment:
    #: gradients larger than this are split into equal slices across
    #: shards.  ``None`` (default) keeps whole tensors (BytePS keying).
    #: Only meaningful with ``n_servers > 1``.
    shard_slice_bytes: float | None = None
    n_iterations: int = 30
    bandwidth: float | BandwidthSchedule = 3 * Gbps
    worker_bandwidth: Mapping[int, float | BandwidthSchedule] | None = None
    ps_bandwidth: float | None = None
    tcp: TCPParams = field(default_factory=TCPParams)
    device: DeviceSpec = TESLA_M60
    agg_policy: AggregationPolicy | None = None
    kv_flush_fixed: float = 0.3e-3
    kv_flush_per_byte: float = 0.0
    duplex: bool = False
    seed: int = 0
    jitter_std: float = 0.02
    bandwidth_noise_std: float = 0.0
    monitor_interval: float = 5.0
    ps_update_fixed: float = 100e-6
    ps_update_per_byte: float = 0.0
    record_gradients: bool = True
    #: Enable the structured trace layer (:mod:`repro.trace`): spans for
    #: compute, block assembly, queue waits, and every transfer, plus link
    #: and queue-depth counters.  Off by default — the no-op recorder keeps
    #: hot-path event processing at full speed.
    trace: bool = False
    #: Arm the steady-state fast-forward detector
    #: (:mod:`repro.sim.fastforward`): once the per-iteration state
    #: fingerprint repeats, the remaining iterations are replayed from
    #: the recorded cycle instead of being re-simulated event by event.
    #: Requires ``time_quantum``; silently ignored (the run unrolls in
    #: full) under fault plans, non-constant bandwidth schedules, compute
    #: jitter, bandwidth noise, non-BSP sync, or adaptive schedulers.
    fastforward: bool = True
    #: Time grid in seconds — a positive power of two (e.g. ``2**-20``,
    #: ~1 µs) — that every event *delay* is snapped to.  Snapping only
    #: delays (never absolute times) keeps all event times exact grid
    #: multiples, making time arithmetic exactly translation-invariant;
    #: this is the precondition for bit-exact fast-forward.  ``None``
    #: (default) disables snapping and fast-forward entirely, leaving
    #: every existing run byte-identical.
    time_quantum: float | None = None
    worker_compute_scale: Mapping[int, float] | None = None
    dtype_bytes: int = 4
    sched: SchedulerConfig = field(default_factory=SchedulerConfig)
    sync_mode: str = "bsp"
    ssp_staleness: int = 2
    faults: "FaultPlan | None" = None

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.n_iterations < 1:
            raise ConfigurationError(
                f"n_iterations must be >= 1, got {self.n_iterations}"
            )
        if self.jitter_std < 0:
            raise ConfigurationError(f"jitter_std must be >= 0, got {self.jitter_std}")
        if self.monitor_interval <= 0:
            raise ConfigurationError(
                f"monitor_interval must be positive, got {self.monitor_interval}"
            )
        if self.ps_update_fixed < 0 or self.ps_update_per_byte < 0:
            raise ConfigurationError("PS update costs must be >= 0")
        if not isinstance(self.sched, SchedulerConfig):
            raise ConfigurationError(
                f"sched must be a SchedulerConfig, got {type(self.sched).__name__}"
            )
        if self.sync_mode not in ("bsp", "asp", "ssp"):
            raise ConfigurationError(
                f"sync_mode must be 'bsp', 'asp' or 'ssp', got {self.sync_mode!r}"
            )
        if self.ssp_staleness < 0:
            raise ConfigurationError(
                f"ssp_staleness must be >= 0, got {self.ssp_staleness}"
            )
        if self.n_servers < 1:
            raise ConfigurationError(
                f"n_servers must be >= 1, got {self.n_servers}"
            )
        if self.time_quantum is not None:
            quantum = self.time_quantum
            if not (quantum > 0 and math.isfinite(quantum)):
                raise ConfigurationError(
                    f"time_quantum must be a positive finite float, got {quantum!r}"
                )
            if math.frexp(quantum)[0] != 0.5:
                raise ConfigurationError(
                    f"time_quantum must be a power of two (e.g. 2**-20) so "
                    f"grid arithmetic is exact, got {quantum!r}"
                )
        if self.shard_slice_bytes is not None and self.shard_slice_bytes <= 0:
            raise ConfigurationError(
                f"shard_slice_bytes must be positive, got {self.shard_slice_bytes}"
            )
        if self.backend not in ("ps", "allreduce"):
            raise ConfigurationError(
                f"backend must be 'ps' or 'allreduce', got {self.backend!r}"
            )
        if self.collective not in ("ring", "hierarchical"):
            raise ConfigurationError(
                f"collective must be 'ring' or 'hierarchical', "
                f"got {self.collective!r}"
            )
        if self.collective_group_size < 1:
            raise ConfigurationError(
                f"collective_group_size must be >= 1, "
                f"got {self.collective_group_size}"
            )
        if self.backend == "allreduce":
            if self.n_servers > 1:
                raise ConfigurationError(
                    "backend='allreduce' has no PS tier; n_servers must be 1"
                )
            if self.duplex:
                raise ConfigurationError(
                    "backend='allreduce' has no pull direction; duplex "
                    "links only apply to the PS backend"
                )
            if self.ps_bandwidth is not None:
                raise ConfigurationError(
                    "ps_bandwidth only applies to the PS backend"
                )
            if self.sync_mode != "bsp":
                raise ConfigurationError(
                    "the allreduce backend is inherently bulk-synchronous; "
                    f"sync_mode must be 'bsp', got {self.sync_mode!r}"
                )
            if (
                self.collective == "hierarchical"
                and self.n_workers % self.collective_group_size != 0
            ):
                raise ConfigurationError(
                    f"collective_group_size {self.collective_group_size} "
                    f"does not divide n_workers {self.n_workers}"
                )
        if self.worker_compute_scale:
            for w, scale in self.worker_compute_scale.items():
                if not 0 <= w < self.n_workers:
                    raise ConfigurationError(f"compute scale for unknown worker {w}")
                if scale <= 0:
                    raise ConfigurationError(
                        f"compute scale must be positive, got {scale} for worker {w}"
                    )
        if self.faults is not None:
            # Plan-vs-topology validation (replaces the old blanket
            # "faults are not supported on this backend" rejections):
            # every referenced worker/server must exist, and fault kinds
            # with no counterpart on the backend are configuration errors.
            self.faults.validate_topology(
                self.n_workers, n_servers=self.n_servers, backend=self.backend
            )

    def effective_policy(self) -> AggregationPolicy:
        """The aggregation policy, defaulting to module-boundary grouping.

        The default prefix depth follows the model's naming convention:
        ResNet-style tensors (``layer3.4.conv2.weight``) group per residual
        block at depth 2, while Inception tensors
        (``Mixed_5b.branch1x1.conv.weight``) group per Inception module at
        depth 1 — depth 2 would split every branch conv into its own
        micro-bucket and destroy the stepwise block structure.
        """
        if self.agg_policy is not None:
            return self.agg_policy
        depth = 1 if self.model.startswith("inception") else 2
        return ModulePrefixPolicy(depth)


@dataclass
class WorkerContext:
    """Per-worker wiring handed to a scheduler factory.

    Gives factories what Prophet's prototype components need: the
    bandwidth monitor, an oracle job profile (for skip-warmup runs), the
    TCP path parameters for transfer-time estimation, and a seeded RNG for
    stochastic tuners (ByteScheduler's Bayesian optimizer).  ``engine``
    lets a factory wire scheduler-internal events (Prophet's degradation
    notifications) into the run's trace recorder.
    """

    worker_id: int
    monitor: "BandwidthMonitor"
    oracle_profile: "JobProfile"
    tcp: TCPParams
    rng: "np.random.Generator"
    engine: "Engine | None" = None


SchedulerFactory = Callable[[WorkerContext], "CommScheduler"]
