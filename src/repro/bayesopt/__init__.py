"""Gaussian-process Bayesian optimization.

ByteScheduler tunes its credit size with Bayesian optimization (paper
Sec. 2.2: "Bayesian optimization is used to explore an appropriate credit
size"), and the exploration is what makes its training rate fluctuate
between ~44 and ~56 samples/s in Fig. 3(b).  This package provides the
pure-NumPy GP regression and expected-improvement loop that drives the
reproduction of that behaviour.
"""

from repro.bayesopt.gp import GaussianProcess, RBFKernel
from repro.bayesopt.optimizer import BayesianOptimizer

__all__ = ["GaussianProcess", "RBFKernel", "BayesianOptimizer"]
