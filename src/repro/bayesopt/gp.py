"""Exact Gaussian-process regression (pure NumPy).

A deliberately small implementation — RBF kernel, jittered Cholesky,
standardized targets — sufficient for the 1-D credit-size search
ByteScheduler performs.  Inputs are expected to be pre-scaled by the caller
(the optimizer works in log-credit space normalized to [0, 1]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["RBFKernel", "GaussianProcess"]


@dataclass(frozen=True)
class RBFKernel:
    """Squared-exponential kernel ``k(a,b) = var * exp(-|a-b|²/(2ℓ²))``."""

    length_scale: float = 0.2
    variance: float = 1.0

    def __post_init__(self) -> None:
        if self.length_scale <= 0:
            raise ConfigurationError(
                f"length_scale must be positive, got {self.length_scale}"
            )
        if self.variance <= 0:
            raise ConfigurationError(f"variance must be positive, got {self.variance}")

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.atleast_1d(np.asarray(a, dtype=float))
        b = np.atleast_1d(np.asarray(b, dtype=float))
        sq = (a[:, None] - b[None, :]) ** 2
        return self.variance * np.exp(-0.5 * sq / self.length_scale**2)


class GaussianProcess:
    """Exact GP posterior over scalar functions of one variable.

    Targets are standardized internally so kernel variance 1 is always a
    reasonable prior; predictions are returned in the original scale.
    """

    def __init__(self, kernel: RBFKernel | None = None, noise: float = 1e-4):
        if noise < 0:
            raise ConfigurationError(f"noise must be >= 0, got {noise}")
        self.kernel = kernel if kernel is not None else RBFKernel()
        self.noise = noise
        self._x: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._chol: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Condition on observations ``(x, y)``."""
        x = np.asarray(x, dtype=float).ravel()
        y = np.asarray(y, dtype=float).ravel()
        if len(x) != len(y):
            raise ConfigurationError("x and y must have the same length")
        if len(x) == 0:
            raise ConfigurationError("need at least one observation")
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        yn = (y - self._y_mean) / self._y_std
        k = self.kernel(x, x) + (self.noise + 1e-10) * np.eye(len(x))
        chol = np.linalg.cholesky(k)
        self._alpha = np.linalg.solve(chol.T, np.linalg.solve(chol, yn))
        self._x = x
        self._chol = chol
        return self

    def predict(self, x_new: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at ``x_new``."""
        if self._x is None or self._alpha is None or self._chol is None:
            raise ConfigurationError("predict before fit")
        x_new = np.atleast_1d(np.asarray(x_new, dtype=float))
        k_star = self.kernel(x_new, self._x)
        mean = k_star @ self._alpha
        v = np.linalg.solve(self._chol, k_star.T)
        var = np.clip(self.kernel.variance - np.sum(v**2, axis=0), 0.0, None)
        return (
            mean * self._y_std + self._y_mean,
            np.sqrt(var) * self._y_std,
        )
