"""Expected-improvement Bayesian optimizer over a bounded 1-D space.

Used by ByteScheduler's credit auto-tuner.  The search space is
log-transformed (credit sizes span 1–16 MB, a multiplicative scale) and
normalized to [0, 1] before fitting the GP.  The optimizer *minimizes* its
objective (iteration time); maximizing training rate is the caller's
negation.

The first ``n_init`` proposals are a low-discrepancy sweep of the space —
this initial exploration, trying deliberately bad credits, is precisely
what produces the rate fluctuation the paper shows in Fig. 3(b).
"""

from __future__ import annotations

import numpy as np

from repro.bayesopt.gp import GaussianProcess, RBFKernel
from repro.errors import ConfigurationError

__all__ = ["BayesianOptimizer"]

_SQRT2 = float(np.sqrt(2.0))


def _norm_cdf(z: np.ndarray) -> np.ndarray:
    from scipy.special import erf  # scipy is a declared substrate dependency

    return 0.5 * (1.0 + erf(z / _SQRT2))


def _norm_pdf(z: np.ndarray) -> np.ndarray:
    return np.exp(-0.5 * z**2) / np.sqrt(2.0 * np.pi)


class BayesianOptimizer:
    """Sequential model-based minimization with expected improvement.

    Parameters
    ----------
    low, high:
        Bounds of the (positive) search variable, e.g. credit bytes.
    n_init:
        Number of initial space-filling evaluations before the GP guides
        the search.
    n_candidates:
        Grid resolution for maximizing the acquisition function.
    xi:
        EI exploration bonus.
    rng:
        Source of tie-breaking/jitter randomness.
    """

    def __init__(
        self,
        low: float,
        high: float,
        n_init: int = 4,
        n_candidates: int = 256,
        xi: float = 0.01,
        rng: np.random.Generator | None = None,
    ):
        if low <= 0 or high <= low:
            raise ConfigurationError(f"need 0 < low < high, got [{low}, {high}]")
        if n_init < 1:
            raise ConfigurationError(f"n_init must be >= 1, got {n_init}")
        self.low = float(low)
        self.high = float(high)
        self.n_init = n_init
        self.n_candidates = n_candidates
        self.xi = xi
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._x: list[float] = []  # normalized log-space coordinates
        self._y: list[float] = []

    # ------------------------------------------------------------------
    def _to_unit(self, value: float) -> float:
        lo, hi = np.log(self.low), np.log(self.high)
        return (np.log(value) - lo) / (hi - lo)

    def _from_unit(self, u: float) -> float:
        lo, hi = np.log(self.low), np.log(self.high)
        return float(np.exp(lo + u * (hi - lo)))

    # ------------------------------------------------------------------
    def suggest(self) -> float:
        """Next point to evaluate, in the original (e.g. bytes) scale."""
        n = len(self._x)
        if n < self.n_init:
            # Van der Corput low-discrepancy sequence over (0, 1).
            u, denom, i = 0.0, 0.5, n + 1
            while i:
                u += denom * (i & 1)
                i >>= 1
                denom *= 0.5
            return self._from_unit(u)
        gp = GaussianProcess(RBFKernel(length_scale=0.25), noise=1e-3)
        gp.fit(np.array(self._x), np.array(self._y))
        grid = np.linspace(0.0, 1.0, self.n_candidates)
        mean, std = gp.predict(grid)
        best = min(self._y)
        with np.errstate(divide="ignore", invalid="ignore"):
            z = (best - mean - self.xi) / np.where(std > 0, std, np.inf)
            ei = (best - mean - self.xi) * _norm_cdf(z) + std * _norm_pdf(z)
        ei = np.where(std > 0, ei, 0.0)
        if np.all(ei <= 0):
            u = float(self._rng.uniform())
        else:
            u = float(grid[int(np.argmax(ei))])
        return self._from_unit(u)

    def observe(self, value: float, objective: float) -> None:
        """Record the measured ``objective`` (to minimize) at ``value``."""
        if not self.low <= value <= self.high * (1 + 1e-9):
            raise ConfigurationError(
                f"observed value {value} outside [{self.low}, {self.high}]"
            )
        if not np.isfinite(objective):
            raise ConfigurationError(f"objective must be finite, got {objective}")
        self._x.append(self._to_unit(value))
        self._y.append(float(objective))

    @property
    def best(self) -> tuple[float, float] | None:
        """Best ``(value, objective)`` seen so far, or ``None``."""
        if not self._y:
            return None
        i = int(np.argmin(self._y))
        return self._from_unit(self._x[i]), self._y[i]

    @property
    def num_observations(self) -> int:
        return len(self._y)
