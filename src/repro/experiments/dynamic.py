"""Dynamic network environments — the motivation the paper leads with.

Sec. 1: "such *static* configurations of partition size and credit size
can hardly adapt to the *dynamic* network environments during the DDNN
training"; Sec. 5.3 trains "under a varying network bandwidth
environment".  This runner drives the cluster with an oscillating
bandwidth schedule and compares the adaptive strategy (Prophet, re-planning
from its monitor every iteration) against the static ones, reporting both
mean rate and per-phase rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.cluster.trainer import run_training
from repro.metrics.report import format_table
from repro.net.link import BandwidthSchedule
from repro.quantities import Gbps
from repro.workloads.presets import STRATEGY_FACTORIES, paper_config

__all__ = ["DynamicResult", "run", "main"]


@dataclass(frozen=True)
class DynamicResult:
    """Per-strategy rates under the oscillating schedule."""

    phases: tuple[tuple[float, float], ...]  # (start time, Gbps)
    mean_rates: Mapping[str, float]
    worst_iteration_ms: Mapping[str, float]


def run(
    high_gbps: float = 4.0,
    low_gbps: float = 1.5,
    phase_seconds: float = 5.0,
    n_iterations: int = 24,
    monitor_interval: float = 2.0,
    seed: int = 0,
) -> DynamicResult:
    """ResNet-50 bs64 under a square-wave bandwidth schedule."""
    points = []
    level_high = True
    for k in range(8):
        points.append(
            (k * phase_seconds, (high_gbps if level_high else low_gbps) * Gbps)
        )
        level_high = not level_high
    schedule = BandwidthSchedule(points)
    config = paper_config(
        "resnet50",
        64,
        bandwidth=schedule,
        n_iterations=n_iterations,
        seed=seed,
        monitor_interval=monitor_interval,
        record_gradients=False,
    )
    mean_rates = {}
    worst = {}
    for name, factory in STRATEGY_FACTORIES.items():
        result = run_training(config, factory)
        spans = result.iteration_spans(0, skip=2)
        mean_rates[name] = config.batch_size / float(spans.mean())
        worst[name] = float(np.max(spans)) * 1e3
    return DynamicResult(
        phases=tuple((t, b / Gbps) for t, b in points),
        mean_rates=mean_rates,
        worst_iteration_ms=worst,
    )


def main() -> DynamicResult:
    res = run()
    print(
        format_table(
            ["strategy", "mean rate (samples/s)", "worst iteration (ms)"],
            [
                [name, f"{res.mean_rates[name]:.1f}",
                 f"{res.worst_iteration_ms[name]:.0f}"]
                for name in sorted(res.mean_rates, key=res.mean_rates.get,
                                   reverse=True)
            ],
            title=(
                "Dynamic network environment — square wave "
                f"{res.phases[0][1]:g}/{res.phases[1][1]:g} Gbps every "
                f"{res.phases[1][0] - res.phases[0][0]:g}s (ResNet-50 bs64)"
            ),
        )
    )
    return res


if __name__ == "__main__":
    main()
