"""Table 2 — training rate under per-worker bandwidth limits.

The paper caps worker bandwidth from 1 to 10 Gbps (ResNet-50 bs64) and
compares Prophet, ByteScheduler and P3; we add default MXNet for the
Sec. 5.3 ResNet-18 text experiment (110 / 137 / 153 samples/s at 3 Gbps
for MXNet / P3 / Prophet).

Expected shape: P3 collapses hardest at low bandwidth (per-partition
blocking), Prophet leads through the mid range, all strategies converge
once communication fully hides under compute (≥ 6 Gbps).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    FAST_ITERATIONS,
    StrategyRates,
    run_strategies_grid,
)
from repro.metrics.report import format_table
from repro.quantities import Gbps
from repro.workloads.presets import paper_config

__all__ = ["Table2Result", "run", "main", "PAPER_BANDWIDTHS_GBPS"]

#: The worker bandwidth limits of the paper's Table 2 (in Gbps).
PAPER_BANDWIDTHS_GBPS: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 4.5, 6.0, 10.0)


@dataclass(frozen=True)
class Table2Result:
    model: str
    batch_size: int
    bandwidths_gbps: tuple[float, ...]
    rows: tuple[StrategyRates, ...]

    def rates(self, strategy: str) -> list[float]:
        return [r.rates[strategy] for r in self.rows]


def run(
    model: str = "resnet50",
    batch_size: int = 64,
    bandwidths_gbps: tuple[float, ...] = PAPER_BANDWIDTHS_GBPS,
    n_iterations: int = FAST_ITERATIONS,
    seed: int = 0,
    *,
    jobs: int | None = None,
) -> Table2Result:
    """Sweep worker bandwidth caps for all four strategies.

    The full bandwidth × strategy grid is one
    :func:`~repro.runner.run_grid` fan-out (28 runs at the paper's seven
    bandwidths), so parallel workers stay busy across the whole table.
    """
    configs = [
        paper_config(
            model,
            batch_size,
            bandwidth=gbps * Gbps,
            n_iterations=n_iterations,
            seed=seed,
            record_gradients=False,
        )
        for gbps in bandwidths_gbps
    ]
    rows = run_strategies_grid(configs, jobs=jobs)
    return Table2Result(
        model=model,
        batch_size=batch_size,
        bandwidths_gbps=tuple(bandwidths_gbps),
        rows=tuple(rows),
    )


def main() -> Table2Result:
    res = run()
    table_rows = []
    for gbps, row in zip(res.bandwidths_gbps, res.rows):
        table_rows.append(
            [
                f"{gbps:g}",
                f"{row.rates['prophet']:.1f}",
                f"{row.rates['bytescheduler']:.1f}",
                f"{row.rates['p3']:.1f}",
                f"{row.rates['mxnet-fifo']:.1f}",
            ]
        )
    print(
        format_table(
            ["bandwidth (Gbps)", "Prophet", "ByteScheduler", "P3", "MXNet"],
            table_rows,
            title=f"Table 2 — {res.model} bs{res.batch_size} rate (samples/s) vs bandwidth",
        )
    )
    return res


if __name__ == "__main__":
    main()
