"""Shared helpers for the experiment runners."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.cluster.result import TrainingResult
from repro.cluster.trainer import run_training
from repro.config import SchedulerFactory, TrainingConfig
from repro.workloads.presets import STRATEGY_FACTORIES

__all__ = ["StrategyRates", "run_strategies", "FAST_ITERATIONS", "FULL_ITERATIONS"]

#: Iteration counts: FAST keeps a full figure/table regeneration in
#: seconds (benchmarks, CI); FULL matches a steadier measurement.
FAST_ITERATIONS = 12
FULL_ITERATIONS = 30


@dataclass(frozen=True)
class StrategyRates:
    """Training rates (samples/s per worker) per strategy for one config."""

    config: TrainingConfig
    rates: Mapping[str, float]

    def improvement(self, over: str, of: str = "prophet") -> float:
        """Relative improvement of ``of`` over ``over`` (e.g. 0.36 = +36%)."""
        return self.rates[of] / self.rates[over] - 1.0


def run_strategies(
    config: TrainingConfig,
    strategies: Mapping[str, SchedulerFactory] | None = None,
    skip: int = 2,
) -> StrategyRates:
    """Run each strategy on ``config`` and collect per-worker rates."""
    strategies = dict(strategies if strategies is not None else STRATEGY_FACTORIES)
    rates = {
        name: run_training(config, factory).training_rate(skip=skip)
        for name, factory in strategies.items()
    }
    return StrategyRates(config=config, rates=rates)


def run_one(
    config: TrainingConfig, factory: SchedulerFactory
) -> TrainingResult:
    """Thin alias kept for symmetry with :func:`run_strategies`."""
    return run_training(config, factory)
