"""Shared helpers for the experiment runners.

Since PR 3 the rate-oriented helpers here are thin fronts over
:mod:`repro.runner`: strategy comparisons build plain-data
:class:`~repro.runner.spec.RunSpec` grids and hand them to
:func:`~repro.runner.executor.run_grid`, which consults the on-disk
result cache and fans misses out across worker processes
(``REPRO_JOBS=N`` or the ``jobs`` argument).  Results are bit-identical
to in-process execution — the simulator is seed-deterministic and each
run still executes single-threaded inside one process.

Passing an explicit mapping of ad-hoc factory *callables* to
:func:`run_strategies` still works and runs inline (a closure can be
neither shipped to a worker process nor fingerprinted for the cache).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.cluster.result import TrainingResult
from repro.cluster.trainer import run_training
from repro.config import SchedulerFactory, TrainingConfig
from repro.runner import ResultCache, RunSpec, run_grid
from repro.workloads.presets import STRATEGY_FACTORIES

__all__ = [
    "StrategyRates",
    "run_strategies",
    "run_strategies_grid",
    "run_one",
    "FAST_ITERATIONS",
    "FULL_ITERATIONS",
]

#: Iteration counts: FAST keeps a full figure/table regeneration in
#: seconds (benchmarks, CI); FULL matches a steadier measurement.
FAST_ITERATIONS = 12
FULL_ITERATIONS = 30


@dataclass(frozen=True)
class StrategyRates:
    """Training rates (samples/s per worker) per strategy for one config."""

    config: TrainingConfig
    rates: Mapping[str, float]

    def improvement(self, over: str, of: str = "prophet") -> float:
        """Relative improvement of ``of`` over ``over`` (e.g. 0.36 = +36%)."""
        return self.rates[of] / self.rates[over] - 1.0


def run_strategies(
    config: TrainingConfig,
    strategies: Mapping[str, SchedulerFactory] | Sequence[str] | None = None,
    skip: int = 2,
    *,
    jobs: int | None = None,
    cache: bool | ResultCache | None = None,
) -> StrategyRates:
    """Run each strategy on ``config`` and collect per-worker rates.

    ``strategies`` may be ``None`` (the four paper strategies), a sequence
    of registry names (parallel + cached via :mod:`repro.runner`), or a
    legacy mapping of name → factory callable (runs inline, uncached).
    """
    if strategies is not None and isinstance(strategies, Mapping):
        rates = {
            name: run_training(config, factory).training_rate(skip=skip)
            for name, factory in dict(strategies).items()
        }
        return StrategyRates(config=config, rates=rates)
    return run_strategies_grid(
        [config], strategies, skip, jobs=jobs, cache=cache
    )[0]


def run_strategies_grid(
    configs: Sequence[TrainingConfig],
    strategies: Sequence[str] | None = None,
    skip: int = 2,
    *,
    jobs: int | None = None,
    cache: bool | ResultCache | None = None,
) -> list[StrategyRates]:
    """Strategy comparison over many configs as **one** fan-out grid.

    Flattening the whole sweep into a single :func:`run_grid` call lets
    the executor overlap runs across configs, not just within one — a
    Table 2 bandwidth sweep keeps every worker busy end to end.
    """
    names = list(strategies) if strategies is not None else list(STRATEGY_FACTORIES)
    specs = [
        RunSpec(config=config, strategy=name, skip=skip)
        for config in configs
        for name in names
    ]
    results = run_grid(specs, jobs=jobs, cache=cache)
    rows = []
    for c, config in enumerate(configs):
        offset = c * len(names)
        rows.append(
            StrategyRates(
                config=config,
                rates={
                    name: results[offset + s].training_rate
                    for s, name in enumerate(names)
                },
            )
        )
    return rows


def run_one(
    config: TrainingConfig, factory: SchedulerFactory
) -> TrainingResult:
    """Thin alias kept for symmetry with :func:`run_strategies`."""
    return run_training(config, factory)
