"""Design-choice ablations (beyond the paper's own experiments).

DESIGN.md calls out the fidelity decisions this reproduction made; each
gets an ablation so their effect is measurable rather than asserted:

* **shared channel vs full duplex** — the paper's Eq. (4)/Constraint (8)
  imply push and pull serialize on one channel; the duplex ablation gives
  every worker independent up/down links.
* **round-trip packing factor** — Algorithm 1 budgets the one-way E(i)
  against the block interval; factor 2 also reserves the mirrored pull.
* **slicing granularity** — Fig. 5 shows Prophet slicing gradients to
  fill an interval; disabling slicing (huge ``slice_bytes``) reverts to
  whole-gradient packing.
* **aggregation policy** — the stepwise pattern's block structure
  (module-boundary vs time-window vs byte-threshold bucketing).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agg.policies import ByteThresholdPolicy, ModulePrefixPolicy, TimeWindowPolicy
from repro.cluster.trainer import run_training
from repro.experiments.common import FAST_ITERATIONS
from repro.metrics.report import format_table
from repro.quantities import Gbps, MB
from repro.workloads.presets import paper_config, prophet_factory

__all__ = ["AblationRow", "run", "main"]


@dataclass(frozen=True)
class AblationRow:
    name: str
    rate: float


def run(
    bandwidth: float = 3 * Gbps,
    n_iterations: int = FAST_ITERATIONS,
    seed: int = 0,
) -> list[AblationRow]:
    """Prophet's rate under each ablated design choice (ResNet-50 bs64)."""
    base = dict(
        bandwidth=bandwidth, n_iterations=n_iterations, seed=seed,
        record_gradients=False,
    )
    rows: list[AblationRow] = []

    config = paper_config("resnet50", 64, **base)
    rows.append(
        AblationRow("baseline (shared channel)", run_training(config, prophet_factory()).training_rate())
    )

    duplex = paper_config("resnet50", 64, duplex=True, **base)
    rows.append(
        AblationRow("full-duplex links", run_training(duplex, prophet_factory()).training_rate())
    )

    def rtf2(ctx):
        from repro.sched.prophet_sched import ProphetScheduler

        monitor = ctx.monitor
        return ProphetScheduler(
            bandwidth_provider=lambda: monitor.bandwidth,
            profile=ctx.oracle_profile,
            tcp=ctx.tcp,
            round_trip_factor=2.0,
        )

    rows.append(
        AblationRow("round-trip packing (2E)", run_training(config, rtf2).training_rate())
    )

    def no_slice(ctx):
        from repro.sched.prophet_sched import ProphetScheduler

        monitor = ctx.monitor
        return ProphetScheduler(
            bandwidth_provider=lambda: monitor.bandwidth,
            profile=ctx.oracle_profile,
            tcp=ctx.tcp,
            slice_bytes=1e15,  # effectively whole-gradient packing only
        )

    rows.append(
        AblationRow("no gradient slicing", run_training(config, no_slice).training_rate())
    )

    for label, policy in (
        ("agg: time-window 5ms", TimeWindowPolicy(5e-3)),
        ("agg: byte-threshold 8MB", ByteThresholdPolicy(8 * MB)),
        ("agg: module depth 1 (stages)", ModulePrefixPolicy(1)),
    ):
        cfg = paper_config("resnet50", 64, agg_policy=policy, **base)
        rows.append(AblationRow(label, run_training(cfg, prophet_factory()).training_rate()))

    return rows


def main() -> list[AblationRow]:
    rows = run()
    print(
        format_table(
            ["variant", "Prophet rate (samples/s)"],
            [[r.name, f"{r.rate:.1f}"] for r in rows],
            title="Ablations — ResNet-50 bs64 at 3 Gbps",
        )
    )
    return rows


if __name__ == "__main__":
    main()
