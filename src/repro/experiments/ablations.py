"""Design-choice ablations (beyond the paper's own experiments).

DESIGN.md calls out the fidelity decisions this reproduction made; each
gets an ablation so their effect is measurable rather than asserted:

* **shared channel vs full duplex** — the paper's Eq. (4)/Constraint (8)
  imply push and pull serialize on one channel; the duplex ablation gives
  every worker independent up/down links.
* **round-trip packing factor** — Algorithm 1 budgets the one-way E(i)
  against the block interval; factor 2 also reserves the mirrored pull.
* **slicing granularity** — Fig. 5 shows Prophet slicing gradients to
  fill an interval; disabling slicing (huge ``slice_bytes``) reverts to
  whole-gradient packing.
* **aggregation policy** — the stepwise pattern's block structure
  (module-boundary vs time-window vs byte-threshold bucketing).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agg.policies import ByteThresholdPolicy, ModulePrefixPolicy, TimeWindowPolicy
from repro.experiments.common import FAST_ITERATIONS
from repro.metrics.report import format_table
from repro.quantities import Gbps, MB
from repro.runner import RunSpec, run_grid
from repro.workloads.presets import paper_config

__all__ = ["AblationRow", "run", "main"]


@dataclass(frozen=True)
class AblationRow:
    name: str
    rate: float


def run(
    bandwidth: float = 3 * Gbps,
    n_iterations: int = FAST_ITERATIONS,
    seed: int = 0,
    *,
    jobs: int | None = None,
) -> list[AblationRow]:
    """Prophet's rate under each ablated design choice (ResNet-50 bs64).

    Every variant is expressible as plain spec data — config overrides
    plus :func:`~repro.workloads.presets.prophet_factory` kwargs — so the
    whole ablation table is one parallel, cached grid.
    """
    base = dict(
        bandwidth=bandwidth, n_iterations=n_iterations, seed=seed,
        record_gradients=False,
    )
    config = paper_config("resnet50", 64, **base)
    duplex = paper_config("resnet50", 64, duplex=True, **base)

    labelled_specs: list[tuple[str, RunSpec]] = [
        (
            "baseline (shared channel)",
            RunSpec(config=config, strategy="prophet"),
        ),
        (
            "full-duplex links",
            RunSpec(config=duplex, strategy="prophet"),
        ),
        (
            "round-trip packing (2E)",
            RunSpec(
                config=config,
                strategy="prophet",
                strategy_kwargs={"round_trip_factor": 2.0},
            ),
        ),
        (
            "no gradient slicing",
            # Effectively whole-gradient packing only.
            RunSpec(
                config=config,
                strategy="prophet",
                strategy_kwargs={"slice_bytes": 1e15},
            ),
        ),
    ]
    for label, policy in (
        ("agg: time-window 5ms", TimeWindowPolicy(5e-3)),
        ("agg: byte-threshold 8MB", ByteThresholdPolicy(8 * MB)),
        ("agg: module depth 1 (stages)", ModulePrefixPolicy(1)),
    ):
        cfg = paper_config("resnet50", 64, agg_policy=policy, **base)
        labelled_specs.append((label, RunSpec(config=cfg, strategy="prophet")))

    results = run_grid([spec for _, spec in labelled_specs], jobs=jobs)
    return [
        AblationRow(label, result.training_rate)
        for (label, _), result in zip(labelled_specs, results)
    ]


def main() -> list[AblationRow]:
    rows = run()
    print(
        format_table(
            ["variant", "Prophet rate (samples/s)"],
            [[r.name, f"{r.rate:.1f}"] for r in rows],
            title="Ablations — ResNet-50 bs64 at 3 Gbps",
        )
    )
    return rows


if __name__ == "__main__":
    main()
