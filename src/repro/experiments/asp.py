"""Future-work item 1 — Prophet under ASP / SSP synchronization.

The paper's conclusion proposes "validating the stepwise pattern of
gradient transfer with the ASP model".  Two questions, both answered
here:

1. *Does the stepwise pattern survive?*  Yes by construction — the
   pattern originates in per-worker backward compute + KV aggregation,
   which synchronization does not touch.  What changes is its
   exploitability: without the BSP barrier, pulls return after one
   worker's own round trip, so preemption mistakes are cheaper.
2. *Does Prophet still help?*  The runner compares Prophet vs
   ByteScheduler vs FIFO under BSP, SSP (staleness 2) and ASP, with
   enough jitter that the synchronization model matters.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.experiments.common import FAST_ITERATIONS, run_strategies_grid
from repro.metrics.report import format_table
from repro.quantities import Gbps
from repro.workloads.presets import paper_config

__all__ = ["AspRow", "run", "main"]


@dataclass(frozen=True)
class AspRow:
    sync_mode: str
    rates: Mapping[str, float]

    @property
    def prophet_vs_bytescheduler(self) -> float:
        return self.rates["prophet"] / self.rates["bytescheduler"] - 1.0


def run(
    bandwidth: float = 3 * Gbps,
    n_iterations: int = FAST_ITERATIONS,
    jitter_std: float = 0.05,
    seed: int = 0,
    *,
    jobs: int | None = None,
) -> list[AspRow]:
    """ResNet-50 bs64 across synchronization models."""
    base = paper_config(
        "resnet50",
        64,
        bandwidth=bandwidth,
        n_iterations=n_iterations,
        seed=seed,
        jitter_std=jitter_std,
        record_gradients=False,
    )
    modes = ("bsp", "ssp", "asp")
    configs = [replace(base, sync_mode=mode) for mode in modes]
    strategy_rows = run_strategies_grid(configs, jobs=jobs)
    return [
        AspRow(sync_mode=mode, rates=rates.rates)
        for mode, rates in zip(modes, strategy_rows)
    ]


def main() -> list[AspRow]:
    rows = run()
    print(
        format_table(
            ["sync", "Prophet", "ByteScheduler", "P3", "MXNet", "P vs BS"],
            [
                [
                    r.sync_mode,
                    f"{r.rates['prophet']:.1f}",
                    f"{r.rates['bytescheduler']:.1f}",
                    f"{r.rates['p3']:.1f}",
                    f"{r.rates['mxnet-fifo']:.1f}",
                    f"{r.prophet_vs_bytescheduler * 100:+.1f}%",
                ]
                for r in rows
            ],
            title=(
                "Future work (1) — ResNet-50 bs64 at 3 Gbps, 5% compute "
                "jitter, under BSP / SSP(2) / ASP"
            ),
        )
    )
    return rows


if __name__ == "__main__":
    main()
