"""Sec. 5.4 — Prophet's runtime overhead.

Two components, both reproduced:

* **Job profiling** — the wall-clock (simulated) time the first
  ``profile_iterations`` warmup iterations take.  The paper reports 7 s
  (Inception-v3 bs32), 9.5 s (ResNet-50 bs64) and 24.7 s (ResNet-152
  bs32) for 50 iterations — negligible against thousands of training
  iterations.
* **Algorithm 1 planning** — the *real* CPU time one planning pass takes
  in this implementation, measured directly (the paper argues it is
  negligible via the linear worker scaling of Fig. 12).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.agg.kvstore import KVStore
from repro.cluster.trainer import run_training
from repro.core.algorithm import plan_schedule
from repro.core.profiler import JobProfile
from repro.metrics.report import format_table
from repro.models.compute import build_compute_profile
from repro.models.registry import get_model
from repro.quantities import Gbps
from repro.workloads.presets import paper_config, paper_device, prophet_factory

__all__ = ["ProfilingOverheadRow", "run_profiling_overhead", "planning_time", "main"]

#: The paper's Sec. 5.4 workloads and its reported 50-iteration costs.
PAPER_WORKLOADS: tuple[tuple[str, int, float], ...] = (
    ("inception_v3", 32, 7.0),
    ("resnet50", 64, 9.5),
    ("resnet152", 32, 24.7),
)


@dataclass(frozen=True)
class ProfilingOverheadRow:
    model: str
    batch_size: int
    profile_iterations: int
    profiling_seconds: float
    paper_seconds: float


def run_profiling_overhead(
    profile_iterations: int = 50,
    bandwidth: float = 10 * Gbps,
    seed: int = 0,
) -> list[ProfilingOverheadRow]:
    """Simulated wall time of the profiling phase per Sec. 5.4 workload."""
    rows = []
    for model, batch, paper_s in PAPER_WORKLOADS:
        config = paper_config(
            model,
            batch,
            bandwidth=bandwidth,
            n_workers=3,
            n_iterations=profile_iterations + 2,
            seed=seed,
            record_gradients=False,
        )
        result = run_training(
            config,
            prophet_factory(
                oracle_profile=False, profile_iterations=profile_iterations
            ),
        )
        recs = result.recorder.worker_iterations(0)
        starts = [r.fwd_start for r in recs]
        rows.append(
            ProfilingOverheadRow(
                model=model,
                batch_size=batch,
                profile_iterations=profile_iterations,
                profiling_seconds=float(starts[profile_iterations] - starts[0]),
                paper_seconds=paper_s,
            )
        )
    return rows


def planning_time(model: str = "resnet50", batch_size: int = 64) -> float:
    """CPU seconds of one Algorithm 1 planning pass (median of 20)."""
    spec = get_model(model)
    compute = build_compute_profile(spec, paper_device(model), batch_size)
    profile = JobProfile.from_generation_schedule(
        KVStore().generation_schedule(compute)
    )
    samples = []
    for _ in range(20):
        start = time.perf_counter()
        plan_schedule(profile, 3 * Gbps)
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def main() -> list[ProfilingOverheadRow]:
    rows = run_profiling_overhead()
    print(
        format_table(
            ["model (batch)", "profiling time (s)", "paper (s)"],
            [
                [f"{r.model} ({r.batch_size})", f"{r.profiling_seconds:.1f}",
                 f"{r.paper_seconds:.1f}"]
                for r in rows
            ],
            title="Sec. 5.4 — job-profiling overhead (50 iterations)",
        )
    )
    print(f"\nAlgorithm 1 planning pass: {planning_time() * 1e3:.2f} ms CPU")
    return rows


if __name__ == "__main__":
    main()
