"""Collective backend comparison — Prophet vs MG-WFBP vs FIFO on rings.

Not a paper figure: the paper evaluates Prophet on the PS star only, but
its scheduling principle — order transfers so predicted generation bursts
are never blocked — applies verbatim to collective training, where every
transfer unit becomes one allreduce operation on a ring (the MG-WFBP
deployment model, arXiv:1912.09268).  This experiment runs the three
strategy families over the model zoo on both collective topologies:

* ``mxnet-fifo`` — whole tensors, generation order (the WFBP baseline);
* ``mg-wfbp`` — with the :class:`~repro.agg.fusion.MGWFBPFusionPolicy`
  picking merge boundaries from the profiled backward timeline and the
  ring's per-operation startup (the paper's "optimal merging");
* ``prophet`` — stepwise blocks sized to the predicted generation
  intervals, seeing the ring's *effective* bandwidth.

The per-operation startup on a ring is ``2(N-1)`` chunk setups, so the
fusion tradeoff is sharper than on the star: many small operations pay
the Eq. 10 penalty per step per hop, while one giant fused operation
serializes the whole model behind its slowest link.  The interesting
question is where each strategy lands between those poles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agg.fusion import MGWFBPFusionPolicy
from repro.experiments.common import FAST_ITERATIONS
from repro.metrics.report import format_table
from repro.quantities import Gbps
from repro.runner import RunSpec, run_grid
from repro.workloads.presets import PAPER_TCP, paper_config

__all__ = ["CollectiveRow", "STRATEGIES", "run", "main"]

#: Strategy names compared, report order.
STRATEGIES: tuple[str, ...] = ("mxnet-fifo", "mg-wfbp", "prophet")

#: (model, batch size) zoo entries compared, report order.
WORKLOADS: tuple[tuple[str, int], ...] = (
    ("resnet18", 32),
    ("resnet50", 64),
    ("vgg16", 32),
)


@dataclass(frozen=True)
class CollectiveRow:
    model: str
    batch_size: int
    collective: str
    strategy: str
    training_rate: float
    mean_iteration_s: float


def _ring_cost_factor(n_workers: int, collective: str, group_size: int) -> float:
    """Serialized bytes per payload byte on one link (see the executors)."""
    if n_workers == 1:
        return 1.0
    if collective == "hierarchical":
        g, m = group_size, n_workers // group_size
        return 2.0 * (g - 1) / g + 2.0 * (m - 1) / (g * m)
    return 2.0 * (n_workers - 1) / n_workers


def run(
    workloads: tuple[tuple[str, int], ...] = WORKLOADS,
    collectives: tuple[str, ...] = ("ring", "hierarchical"),
    strategies: tuple[str, ...] = STRATEGIES,
    bandwidth: float = 3 * Gbps,
    n_workers: int = 4,
    group_size: int = 2,
    n_iterations: int = FAST_ITERATIONS,
    seed: int = 0,
    *,
    jobs: int | None = None,
) -> list[CollectiveRow]:
    """All (workload × collective × strategy) combinations, grid-cached.

    ``n_workers`` defaults to 4 so the hierarchical topology has real
    two-level structure (2 groups of ``group_size=2``).  The MG-WFBP runs
    replace the default module-boundary aggregation with the fusion
    policy, fed the collective's effective per-byte rate.
    """
    specs = []
    keys = []
    for model, batch_size in workloads:
        for collective in collectives:
            factor = _ring_cost_factor(n_workers, collective, group_size)
            fusion = MGWFBPFusionPolicy(
                tcp=PAPER_TCP, bandwidth=bandwidth / factor
            )
            for strategy in strategies:
                overrides = {"agg_policy": fusion} if strategy == "mg-wfbp" else {}
                config = paper_config(
                    model,
                    batch_size,
                    bandwidth=bandwidth,
                    n_workers=n_workers,
                    n_iterations=n_iterations,
                    seed=seed,
                    record_gradients=False,
                    backend="allreduce",
                    collective=collective,
                    collective_group_size=group_size,
                    **overrides,
                )
                specs.append(RunSpec(config=config, strategy=strategy))
                keys.append((model, batch_size, collective, strategy))
    results = run_grid(specs, jobs=jobs)
    return [
        CollectiveRow(
            model=model,
            batch_size=batch_size,
            collective=collective,
            strategy=strategy,
            training_rate=res.training_rate,
            mean_iteration_s=res.mean_iteration_s,
        )
        for (model, batch_size, collective, strategy), res in zip(keys, results)
    ]


def main() -> list[CollectiveRow]:
    rows = run()
    by_key = {
        (r.model, r.batch_size, r.collective, r.strategy): r for r in rows
    }
    table = []
    for model, batch_size in WORKLOADS:
        for collective in ("ring", "hierarchical"):
            fifo = by_key[(model, batch_size, collective, "mxnet-fifo")]
            line = [f"{model} bs{batch_size}", collective]
            for strategy in STRATEGIES:
                r = by_key[(model, batch_size, collective, strategy)]
                line.append(f"{r.training_rate:.1f}")
            line.append(
                f"{by_key[(model, batch_size, collective, 'prophet')].training_rate / fifo.training_rate:.2f}x"
            )
            table.append(line)
    print(
        format_table(
            ["workload", "collective", *STRATEGIES, "prophet/fifo"],
            table,
            title=(
                "Allreduce backend — training rate (samples/s), "
                "4 workers, 3 Gbps"
            ),
        )
    )
    return rows


if __name__ == "__main__":
    main()
