"""Fig. 4 — the stepwise pattern of gradient generation.

Reproduces both panels: ResNet-50 under MXNet-style module-boundary
aggregation (a staircase of ~18 blocks over ~160 gradients) and VGG-19
with the exact four blocks the paper reports: {28–37}, {14–27}, {2–13},
{0–1}.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.agg.kvstore import KVStore
from repro.agg.policies import ExplicitGroupsPolicy, ModulePrefixPolicy
from repro.agg.stepwise import StepwiseSummary, block_summary
from repro.metrics.report import format_table
from repro.models.compute import build_compute_profile
from repro.models.registry import get_model
from repro.workloads.presets import paper_device

__all__ = ["Fig4Result", "VGG19_PAPER_GROUPS", "run", "main"]

#: The four VGG-19 gradient blocks the paper reports observing.
VGG19_PAPER_GROUPS: tuple[tuple[int, ...], ...] = (
    tuple(range(28, 38)),
    tuple(range(14, 28)),
    tuple(range(2, 14)),
    (0, 1),
)


@dataclass(frozen=True)
class Fig4Result:
    """Generation staircases for the two example models."""

    resnet50_c: np.ndarray
    resnet50_summary: StepwiseSummary
    vgg19_c: np.ndarray
    vgg19_summary: StepwiseSummary


def run(batch_size: int = 64) -> Fig4Result:
    """Compute per-gradient generation times for ResNet-50 and VGG-19."""
    resnet = get_model("resnet50")
    profile = build_compute_profile(resnet, paper_device("resnet50"), batch_size)
    sched = KVStore(policy=ModulePrefixPolicy(2)).generation_schedule(profile)

    vgg = get_model("vgg19")
    vgg_profile = build_compute_profile(vgg, paper_device("vgg19"), batch_size)
    vgg_sched = KVStore(
        policy=ExplicitGroupsPolicy(VGG19_PAPER_GROUPS)
    ).generation_schedule(vgg_profile)

    return Fig4Result(
        resnet50_c=sched.c,
        resnet50_summary=block_summary(sched.c),
        vgg19_c=vgg_sched.c,
        vgg19_summary=block_summary(vgg_sched.c),
    )


def main() -> Fig4Result:
    res = run()
    for name, summary in (
        ("ResNet-50 (MXNet module-boundary aggregation)", res.resnet50_summary),
        ("VGG-19 (paper's observed 4 blocks)", res.vgg19_summary),
    ):
        rows = [
            [
                i,
                size,
                f"{t * 1e3:.1f}",
                f"{(iv * 1e3 if iv is not None else float('nan')):.1f}",
            ]
            for i, (size, t, iv) in enumerate(
                zip(
                    summary.block_sizes,
                    summary.block_times,
                    list(summary.intervals) + [float("nan")],
                )
            )
        ]
        print(
            format_table(
                ["block", "gradients", "flush time (ms)", "interval to next (ms)"],
                rows,
                title=f"Fig. 4 — stepwise pattern: {name}",
            )
        )
        print()
    return res


if __name__ == "__main__":
    main()
