"""Fig. 12 — scalability of Prophet in the number of workers.

The paper scales ResNet-50 from 2 to 8 workers and finds per-worker rate
nearly flat (69.94 → 68.83 samples/s), i.e. aggregate throughput is
roughly linear in worker count and Algorithm 1 adds no measurable
coordination overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import FAST_ITERATIONS
from repro.metrics.report import format_table
from repro.quantities import Gbps
from repro.runner import RunSpec, run_grid
from repro.workloads.presets import paper_config

__all__ = ["Fig12Row", "run", "main"]


@dataclass(frozen=True)
class Fig12Row:
    n_workers: int
    per_worker_rate: float

    @property
    def aggregate_rate(self) -> float:
        return self.n_workers * self.per_worker_rate


def run(
    worker_counts: tuple[int, ...] = (2, 4, 6, 8),
    bandwidth: float = 10 * Gbps,
    n_iterations: int = FAST_ITERATIONS,
    seed: int = 0,
    *,
    jobs: int | None = None,
) -> list[Fig12Row]:
    """Per-worker Prophet rate at each cluster size (ResNet-50 bs64)."""
    specs = [
        RunSpec(
            config=paper_config(
                "resnet50",
                64,
                bandwidth=bandwidth,
                n_workers=n,
                n_iterations=n_iterations,
                seed=seed,
                record_gradients=False,
            ),
            strategy="prophet",
        )
        for n in worker_counts
    ]
    results = run_grid(specs, jobs=jobs)
    return [
        Fig12Row(n_workers=n, per_worker_rate=res.training_rate)
        for n, res in zip(worker_counts, results)
    ]


def main() -> list[Fig12Row]:
    rows = run()
    print(
        format_table(
            ["workers", "per-worker rate (s/s)", "aggregate rate (s/s)"],
            [[r.n_workers, f"{r.per_worker_rate:.2f}", f"{r.aggregate_rate:.1f}"]
             for r in rows],
            title="Fig. 12 — Prophet scalability (ResNet-50 bs64)",
        )
    )
    return rows


if __name__ == "__main__":
    main()
