"""Table 3 — batch-size sensitivity of Prophet's improvement.

The paper's observation: larger batches mean longer backward passes,
wider stepwise intervals, and therefore more room for Prophet's block
assembly — improvements over ByteScheduler grow from 1.5 % (ResNet-50
bs16) to 36 % (bs64).  The reproduction target is the *trend* (monotone
in batch size), with magnitudes that depend on the baseline's modeled
inefficiency (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import FAST_ITERATIONS
from repro.metrics.report import format_table
from repro.quantities import Gbps
from repro.runner import ResultCache, RunSpec, run_grid
from repro.workloads.presets import paper_config

__all__ = ["Table3Row", "run", "main", "PAPER_WORKLOADS"]

#: The (model, batch) pairs of the paper's Table 3.
PAPER_WORKLOADS: tuple[tuple[str, int], ...] = (
    ("resnet18", 16),
    ("resnet18", 64),
    ("resnet50", 16),
    ("resnet50", 32),
    ("resnet50", 64),
)


@dataclass(frozen=True)
class Table3Row:
    model: str
    batch_size: int
    prophet_rate: float
    bytescheduler_rate: float

    @property
    def improvement(self) -> float:
        return self.prophet_rate / self.bytescheduler_rate - 1.0


def run(
    workloads: tuple[tuple[str, int], ...] = PAPER_WORKLOADS,
    bandwidth: float = 3 * Gbps,
    n_iterations: int = FAST_ITERATIONS,
    seed: int = 0,
    *,
    jobs: int | None = None,
    cache: bool | ResultCache | None = None,
) -> list[Table3Row]:
    """Prophet vs ByteScheduler across the paper's batch-size grid."""
    specs = []
    for model, batch in workloads:
        config = paper_config(
            model,
            batch,
            bandwidth=bandwidth,
            n_iterations=n_iterations,
            seed=seed,
            record_gradients=False,
        )
        specs.append(RunSpec(config=config, strategy="prophet"))
        specs.append(RunSpec(config=config, strategy="bytescheduler"))
    results = run_grid(specs, jobs=jobs, cache=cache)
    return [
        Table3Row(
            model=model,
            batch_size=batch,
            prophet_rate=results[2 * i].training_rate,
            bytescheduler_rate=results[2 * i + 1].training_rate,
        )
        for i, (model, batch) in enumerate(workloads)
    ]


def main() -> list[Table3Row]:
    rows = run()
    print(
        format_table(
            ["model (batch)", "Prophet (s/s)", "ByteScheduler (s/s)", "improvement"],
            [
                [f"{r.model} ({r.batch_size})", f"{r.prophet_rate:.2f}",
                 f"{r.bytescheduler_rate:.2f}", f"{r.improvement * 100:+.1f}%"]
                for r in rows
            ],
            title="Table 3 — batch-size sensitivity (3 Gbps)",
        )
    )
    return rows


if __name__ == "__main__":
    main()
