"""Fig. 8 — training-rate comparison, Prophet vs ByteScheduler, across
representative models and batch sizes.

The paper reports 10–40 % improvements across ResNet-18/50/152 and
Inception-v3 at batch sizes 16–64 on the constrained-bandwidth cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import FAST_ITERATIONS
from repro.cluster.trainer import run_training
from repro.metrics.report import format_table
from repro.quantities import Gbps
from repro.workloads.presets import (
    bytescheduler_factory,
    paper_config,
    prophet_factory,
)

__all__ = ["Fig8Row", "run", "main", "DEFAULT_WORKLOADS"]

#: (model, batch size) pairs shown in the paper's Fig. 8.
DEFAULT_WORKLOADS: tuple[tuple[str, int], ...] = (
    ("resnet18", 32),
    ("resnet18", 64),
    ("resnet50", 32),
    ("resnet50", 64),
    ("resnet152", 16),
    ("resnet152", 32),
    ("inception_v3", 32),
    ("inception_v3", 64),
)


@dataclass(frozen=True)
class Fig8Row:
    model: str
    batch_size: int
    prophet_rate: float
    bytescheduler_rate: float

    @property
    def improvement(self) -> float:
        return self.prophet_rate / self.bytescheduler_rate - 1.0


def run(
    workloads: tuple[tuple[str, int], ...] = DEFAULT_WORKLOADS,
    bandwidth: float = 3 * Gbps,
    n_iterations: int = FAST_ITERATIONS,
    seed: int = 0,
) -> list[Fig8Row]:
    """Prophet-vs-ByteScheduler rates for every (model, batch) pair."""
    rows = []
    for model, batch in workloads:
        config = paper_config(
            model,
            batch,
            bandwidth=bandwidth,
            n_iterations=n_iterations,
            seed=seed,
            record_gradients=False,
        )
        prophet = run_training(config, prophet_factory()).training_rate()
        bytesched = run_training(config, bytescheduler_factory()).training_rate()
        rows.append(
            Fig8Row(
                model=model,
                batch_size=batch,
                prophet_rate=prophet,
                bytescheduler_rate=bytesched,
            )
        )
    return rows


def main() -> list[Fig8Row]:
    rows = run()
    print(
        format_table(
            ["model", "batch", "Prophet (s/s)", "ByteScheduler (s/s)", "improvement"],
            [
                [r.model, r.batch_size, f"{r.prophet_rate:.1f}",
                 f"{r.bytescheduler_rate:.1f}", f"{r.improvement * 100:+.1f}%"]
                for r in rows
            ],
            title="Fig. 8 — training rate, Prophet vs ByteScheduler (3 Gbps)",
        )
    )
    return rows


if __name__ == "__main__":
    main()
