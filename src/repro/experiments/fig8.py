"""Fig. 8 — training-rate comparison, Prophet vs ByteScheduler, across
representative models and batch sizes.

The paper reports 10–40 % improvements across ResNet-18/50/152 and
Inception-v3 at batch sizes 16–64 on the constrained-bandwidth cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import FAST_ITERATIONS
from repro.metrics.report import format_table
from repro.quantities import Gbps
from repro.runner import ResultCache, RunSpec, run_grid
from repro.workloads.presets import paper_config

__all__ = ["Fig8Row", "run", "main", "DEFAULT_WORKLOADS"]

#: (model, batch size) pairs shown in the paper's Fig. 8.
DEFAULT_WORKLOADS: tuple[tuple[str, int], ...] = (
    ("resnet18", 32),
    ("resnet18", 64),
    ("resnet50", 32),
    ("resnet50", 64),
    ("resnet152", 16),
    ("resnet152", 32),
    ("inception_v3", 32),
    ("inception_v3", 64),
)


@dataclass(frozen=True)
class Fig8Row:
    model: str
    batch_size: int
    prophet_rate: float
    bytescheduler_rate: float

    @property
    def improvement(self) -> float:
        return self.prophet_rate / self.bytescheduler_rate - 1.0


def run(
    workloads: tuple[tuple[str, int], ...] = DEFAULT_WORKLOADS,
    bandwidth: float = 3 * Gbps,
    n_iterations: int = FAST_ITERATIONS,
    seed: int = 0,
    *,
    jobs: int | None = None,
    cache: bool | ResultCache | None = None,
) -> list[Fig8Row]:
    """Prophet-vs-ByteScheduler rates for every (model, batch) pair.

    The whole (model, batch) × strategy grid goes through
    :func:`repro.runner.run_grid` as one fan-out, so ``jobs``/
    ``REPRO_JOBS`` parallelizes it and reruns hit the result cache.
    """
    specs = []
    for model, batch in workloads:
        config = paper_config(
            model,
            batch,
            bandwidth=bandwidth,
            n_iterations=n_iterations,
            seed=seed,
            record_gradients=False,
        )
        specs.append(RunSpec(config=config, strategy="prophet"))
        specs.append(RunSpec(config=config, strategy="bytescheduler"))
    results = run_grid(specs, jobs=jobs, cache=cache)
    return [
        Fig8Row(
            model=model,
            batch_size=batch,
            prophet_rate=results[2 * i].training_rate,
            bytescheduler_rate=results[2 * i + 1].training_rate,
        )
        for i, (model, batch) in enumerate(workloads)
    ]


def main() -> list[Fig8Row]:
    rows = run()
    print(
        format_table(
            ["model", "batch", "Prophet (s/s)", "ByteScheduler (s/s)", "improvement"],
            [
                [r.model, r.batch_size, f"{r.prophet_rate:.1f}",
                 f"{r.bytescheduler_rate:.1f}", f"{r.improvement * 100:+.1f}%"]
                for r in rows
            ],
            title="Fig. 8 — training rate, Prophet vs ByteScheduler (3 Gbps)",
        )
    )
    return rows


if __name__ == "__main__":
    main()
