"""Chaos experiment — resilience of the four strategies under faults.

The paper's motivation (Sec. 1: static configurations "can hardly adapt to
the dynamic network environments") stops at smooth bandwidth variation;
this runner asks the harder operational question: *how much of each
strategy's training rate survives discrete failures?*  It drives the same
workload twice per strategy — once clean, once under a
:class:`~repro.faults.plan.FaultPlan` (a mid-training worker crash with
restart, a link flap, background message loss, and a PS stall) — and
reports, per strategy:

* **goodput retained** — faulty-run rate as a fraction of the paired
  clean-run rate (same seed, so the comparison is paired);
* **recovery time** — from the crash instant until the crashed worker
  starts its next fresh iteration (the BSP ring is turning again);
* **retry counts** — how much reliable-delivery work the fault plan
  induced (push + pull retransmissions).

Everything is deterministic under the seed: the drop sequence comes from a
dedicated ``spawn_rng(seed, "faults")`` stream, so the CI smoke test can
assert these scalars against committed baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.cluster.trainer import run_training
from repro.config import SchedulerFactory, TrainingConfig
from repro.faults.plan import FaultPlan, LinkFlap, MessageDrops, PSStall, WorkerCrash
from repro.metrics.report import format_table
from repro.workloads.presets import STRATEGY_FACTORIES, paper_config

__all__ = ["ChaosResult", "default_plan", "run", "main"]


@dataclass(frozen=True)
class ChaosResult:
    """Paired clean/faulty rates and resilience metrics per strategy."""

    config: TrainingConfig
    plan: FaultPlan
    clean_rates: Mapping[str, float]
    faulty_rates: Mapping[str, float]
    #: Faulty rate / clean rate (1.0 = the faults cost nothing).
    goodput_retained: Mapping[str, float]
    #: Seconds from the crash until the crashed worker's next fresh
    #: iteration start (NaN if the plan has no crash).
    recovery_time: Mapping[str, float]
    #: Push + pull retransmissions induced by the plan.
    retries: Mapping[str, int]
    #: Full injector counters per strategy (drops, duplicates, ...).
    fault_stats: Mapping[str, Mapping[str, int]]


def default_plan(
    crash_at: float = 2.0,
    restart_after: float = 0.5,
    crash_worker: int = 1,
    drop: float = 0.02,
    flap_at: float = 4.0,
    flap_duration: float = 1.0,
    flap_factor: float = 0.3,
    stall_at: float = 6.0,
    stall_duration: float = 0.3,
) -> FaultPlan:
    """The chaos cocktail: crash + restart, link flap, drops, PS stall."""
    return FaultPlan(
        crashes=[
            WorkerCrash(worker=crash_worker, at=crash_at, restart_after=restart_after)
        ],
        flaps=[
            LinkFlap(start=flap_at, duration=flap_duration, factor=flap_factor)
        ],
        drops=[MessageDrops(push=drop, pull=drop, ack=drop)],
        ps_stalls=[PSStall(at=stall_at, duration=stall_duration)],
    )


def _recovery_time(result, plan: FaultPlan) -> float:
    """Crash instant → the crashed worker's next fresh iteration start."""
    if not plan.crashes or result.fault_log is None:
        return math.nan
    crash_times = {
        detail["worker"]: t
        for t, kind, detail in result.fault_log
        if kind == "fault.crash"
    }
    if not crash_times:
        return math.nan
    worst = 0.0
    for worker, t_crash in crash_times.items():
        starts = [r.fwd_start for r in result.recorder.worker_iterations(worker)]
        t_next = min((s for s in starts if s > t_crash), default=math.nan)
        worst = max(worst, t_next - t_crash)
    return worst


def run(
    model: str = "resnet18",
    batch_size: int = 64,
    n_iterations: int = 12,
    seed: int = 0,
    plan: FaultPlan | None = None,
    strategies: Mapping[str, SchedulerFactory] | None = None,
    skip: int = 1,
) -> ChaosResult:
    """Paired clean/faulty comparison of all strategies under one plan."""
    if plan is None:
        plan = default_plan()
    strategies = dict(strategies if strategies is not None else STRATEGY_FACTORIES)
    clean_config = paper_config(
        model, batch_size, n_iterations=n_iterations, seed=seed,
        record_gradients=False,
    )
    faulty_config = paper_config(
        model, batch_size, n_iterations=n_iterations, seed=seed,
        record_gradients=False, faults=plan,
    )
    clean_rates: dict[str, float] = {}
    faulty_rates: dict[str, float] = {}
    retained: dict[str, float] = {}
    recovery: dict[str, float] = {}
    retries: dict[str, int] = {}
    stats: dict[str, Mapping[str, int]] = {}
    for name, factory in strategies.items():
        clean = run_training(clean_config, factory)
        faulty = run_training(faulty_config, factory)
        clean_rates[name] = clean.training_rate(skip=skip)
        faulty_rates[name] = faulty.training_rate(skip=skip)
        retained[name] = faulty_rates[name] / clean_rates[name]
        recovery[name] = _recovery_time(faulty, plan)
        assert faulty.fault_stats is not None
        stats[name] = dict(faulty.fault_stats)
        retries[name] = (
            faulty.fault_stats["push_retries"] + faulty.fault_stats["pull_retries"]
        )
    return ChaosResult(
        config=faulty_config,
        plan=plan,
        clean_rates=clean_rates,
        faulty_rates=faulty_rates,
        goodput_retained=retained,
        recovery_time=recovery,
        retries=retries,
        fault_stats=stats,
    )


def main(**kwargs) -> ChaosResult:
    res = run(**kwargs)
    rows = []
    for name in sorted(res.goodput_retained, key=res.goodput_retained.get,
                       reverse=True):
        rows.append(
            [
                name,
                f"{res.clean_rates[name]:.1f}",
                f"{res.faulty_rates[name]:.1f}",
                f"{res.goodput_retained[name] * 100:.1f}%",
                f"{res.recovery_time[name] * 1e3:.0f}",
                str(res.retries[name]),
            ]
        )
    plan = res.plan
    if plan.crashes:
        crash = plan.crashes[0]
        blurb = (
            f"worker {crash.worker} crash @ {crash.at:g}s "
            f"(+{crash.restart_after:g}s restart), drops, flap, PS stall"
        )
    else:
        blurb = "drops, flap, PS stall (no crash)"
    print(
        format_table(
            [
                "strategy",
                "clean (samples/s)",
                "faulty (samples/s)",
                "goodput retained",
                "recovery (ms)",
                "retries",
            ],
            rows,
            title=(
                f"Chaos — {res.config.model} bs{res.config.batch_size}: {blurb}"
            ),
        )
    )
    return res


if __name__ == "__main__":
    main()
