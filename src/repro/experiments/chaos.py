"""Chaos experiment — resilience of the four strategies under faults.

The paper's motivation (Sec. 1: static configurations "can hardly adapt to
the dynamic network environments") stops at smooth bandwidth variation;
this runner asks the harder operational question: *how much of each
strategy's training rate survives discrete failures?*  It drives the same
workload twice per strategy — once clean, once under a
:class:`~repro.faults.plan.FaultPlan` — on any of the three backends (the
single-PS star, the key-sharded multi-PS tier, or the ring/hierarchical
allreduce collective) and reports, per strategy:

* **goodput retained** — faulty-run rate as a fraction of the paired
  clean-run rate (same seed, so the comparison is paired);
* **recovery time** — from the crash instant until the BSP ring is
  turning again: the crashed worker's next fresh iteration start on the
  PS backends (crash + restart), or — under the collective backend's
  elastic shrink, where the dead rank never rejoins — the survivors'
  first fresh iteration start after the crash (falling back to the
  ``collective.resumed`` instant);
* **retry counts** — how much reliable-delivery work the fault plan
  induced (push + pull retransmissions);
* **stall amplification** (collective backends) — the fraction of ring
  chunk steps the straggler watchdog declared stalled, per discrete
  injected fault: how far each failure's blast radius spread through the
  barrier-synchronized collective.

Everything is deterministic under the seed: the drop sequence comes from a
dedicated ``spawn_rng(seed, "faults")`` stream, so the CI smoke test can
assert these scalars against committed baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.cluster.trainer import run_training
from repro.config import SchedulerFactory, TrainingConfig
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan, LinkFlap, MessageDrops, PSStall, WorkerCrash
from repro.metrics.report import format_table
from repro.workloads.presets import STRATEGY_FACTORIES, paper_config

__all__ = ["ChaosResult", "default_plan", "run", "main"]


@dataclass(frozen=True)
class ChaosResult:
    """Paired clean/faulty rates and resilience metrics per strategy."""

    config: TrainingConfig
    plan: FaultPlan
    clean_rates: Mapping[str, float]
    faulty_rates: Mapping[str, float]
    #: Faulty rate / clean rate (1.0 = the faults cost nothing).
    goodput_retained: Mapping[str, float]
    #: Seconds from the crash until the BSP ring turns again (NaN if the
    #: plan has no crash).
    recovery_time: Mapping[str, float]
    #: Push + pull retransmissions induced by the plan.
    retries: Mapping[str, int]
    #: Stalled ring steps / total ring steps, per discrete injected fault
    #: (NaN on the PS backends, which have no chunk steps).
    stall_amplification: Mapping[str, float]
    #: Full injector counters per strategy (drops, duplicates, ...).
    fault_stats: Mapping[str, Mapping[str, int]]


def default_plan(
    crash_at: float = 2.0,
    restart_after: float = 0.5,
    crash_worker: int = 1,
    drop: float = 0.02,
    flap_at: float = 4.0,
    flap_duration: float = 1.0,
    flap_factor: float = 0.3,
    stall_at: float = 6.0,
    stall_duration: float = 0.3,
    backend: str = "ps",
) -> FaultPlan:
    """The chaos cocktail, shaped per backend.

    PS backends get the full mix: crash + restart, link flap, drops on
    all three delivery legs, and a PS stall.  The allreduce backend has
    no pull/ack legs and no PS tier, so its plan keeps the crash and the
    flap and carries the drop probability on the ``push`` leg only (the
    collective rolls it per chunk step).
    """
    crashes = [
        WorkerCrash(worker=crash_worker, at=crash_at, restart_after=restart_after)
    ]
    flaps = [LinkFlap(start=flap_at, duration=flap_duration, factor=flap_factor)]
    if backend == "allreduce":
        return FaultPlan(
            crashes=crashes,
            flaps=flaps,
            drops=[MessageDrops(push=drop)],
        )
    return FaultPlan(
        crashes=crashes,
        flaps=flaps,
        drops=[MessageDrops(push=drop, pull=drop, ack=drop)],
        ps_stalls=[PSStall(at=stall_at, duration=stall_duration)],
    )


def _discrete_faults(plan: FaultPlan) -> int:
    """Count of discrete injected fault events (drops are a rate, not an
    event; they are excluded)."""
    return (
        len(plan.crashes)
        + len(plan.flaps)
        + len(plan.ps_stalls)
        + len(plan.server_crashes)
    )


def _recovery_time(result, plan: FaultPlan) -> float:
    """Crash instant → the BSP ring turning again (see module docstring)."""
    if not plan.crashes or result.fault_log is None:
        return math.nan
    crash_times = {
        detail["worker"]: t
        for t, kind, detail in result.fault_log
        if kind == "fault.crash"
    }
    if not crash_times:
        return math.nan
    worst = 0.0
    for worker, t_crash in crash_times.items():
        starts = [r.fwd_start for r in result.recorder.worker_iterations(worker)]
        t_next = min((s for s in starts if s > t_crash), default=math.nan)
        if math.isnan(t_next):
            # Elastic removal (collective backend): the dead rank never
            # resumes, so recovery is the survivors' ring turning again —
            # the first fresh iteration start cluster-wide after the
            # crash, else the instant the aborted operation resent.
            all_starts = [
                r.fwd_start
                for w in range(result.config.n_workers)
                for r in result.recorder.worker_iterations(w)
            ]
            t_next = min((s for s in all_starts if s > t_crash), default=math.nan)
        if math.isnan(t_next):
            resumed = [
                t
                for t, kind, _ in result.fault_log
                if kind in ("collective.resumed", "collective.shrink")
                and t >= t_crash
            ]
            t_next = min(resumed, default=math.nan)
        if not math.isnan(t_next):
            worst = max(worst, t_next - t_crash)
    return worst


def _goodput_rate(result, skip: int) -> float:
    """Mean per-worker rate over the workers that can be measured.

    A crashed collective rank never rejoins (elastic shrink is permanent),
    so it finishes with too few iteration spans to rate; goodput is then
    the survivors' mean.  On the PS backends every worker restarts and
    contributes, matching :meth:`TrainingResult.training_rate` exactly.
    """
    rates = []
    for w in range(result.config.n_workers):
        try:
            rates.append(result.per_worker_rate(w, skip))
        except ConfigurationError:
            continue
    if not rates:
        raise ConfigurationError(
            f"skip={skip} leaves no measurable worker in the faulty run"
        )
    return float(np.mean(rates))


def _stall_amplification(stats: Mapping[str, int], plan: FaultPlan) -> float:
    ring_steps = stats.get("ring_steps", 0)
    if ring_steps <= 0:
        return math.nan
    return stats.get("stalled_steps", 0) / ring_steps / max(1, _discrete_faults(plan))


def run(
    model: str = "resnet18",
    batch_size: int = 64,
    n_iterations: int = 12,
    seed: int = 0,
    plan: FaultPlan | None = None,
    strategies: Mapping[str, SchedulerFactory] | None = None,
    skip: int = 1,
    backend: str = "ps",
    collective: str = "ring",
    group_size: int = 2,
    n_servers: int = 1,
    n_workers: int = 3,
) -> ChaosResult:
    """Paired clean/faulty comparison of all strategies under one plan."""
    if plan is None:
        plan = default_plan(backend=backend)
    strategies = dict(strategies if strategies is not None else STRATEGY_FACTORIES)
    overrides: dict = {
        "record_gradients": False,
        "backend": backend,
        "n_workers": n_workers,
    }
    if backend == "allreduce":
        overrides["collective"] = collective
        overrides["collective_group_size"] = group_size
    else:
        overrides["n_servers"] = n_servers
    clean_config = paper_config(
        model, batch_size, n_iterations=n_iterations, seed=seed, **overrides
    )
    faulty_config = paper_config(
        model, batch_size, n_iterations=n_iterations, seed=seed,
        faults=plan, **overrides,
    )
    clean_rates: dict[str, float] = {}
    faulty_rates: dict[str, float] = {}
    retained: dict[str, float] = {}
    recovery: dict[str, float] = {}
    retries: dict[str, int] = {}
    amplification: dict[str, float] = {}
    stats: dict[str, Mapping[str, int]] = {}
    for name, factory in strategies.items():
        clean = run_training(clean_config, factory)
        faulty = run_training(faulty_config, factory)
        clean_rates[name] = clean.training_rate(skip=skip)
        faulty_rates[name] = _goodput_rate(faulty, skip)
        retained[name] = faulty_rates[name] / clean_rates[name]
        recovery[name] = _recovery_time(faulty, plan)
        assert faulty.fault_stats is not None
        stats[name] = dict(faulty.fault_stats)
        retries[name] = (
            faulty.fault_stats["push_retries"] + faulty.fault_stats["pull_retries"]
        )
        amplification[name] = _stall_amplification(faulty.fault_stats, plan)
    return ChaosResult(
        config=faulty_config,
        plan=plan,
        clean_rates=clean_rates,
        faulty_rates=faulty_rates,
        goodput_retained=retained,
        recovery_time=recovery,
        retries=retries,
        stall_amplification=amplification,
        fault_stats=stats,
    )


def main(**kwargs) -> ChaosResult:
    res = run(**kwargs)
    rows = []
    for name in sorted(res.goodput_retained, key=res.goodput_retained.get,
                       reverse=True):
        amp = res.stall_amplification[name]
        rows.append(
            [
                name,
                f"{res.clean_rates[name]:.1f}",
                f"{res.faulty_rates[name]:.1f}",
                f"{res.goodput_retained[name] * 100:.1f}%",
                f"{res.recovery_time[name] * 1e3:.0f}",
                str(res.retries[name]),
                "-" if math.isnan(amp) else f"{amp * 100:.2f}%",
            ]
        )
    plan = res.plan
    if plan.crashes:
        crash = plan.crashes[0]
        blurb = (
            f"worker {crash.worker} crash @ {crash.at:g}s "
            f"(+{crash.restart_after:g}s restart), drops, flap"
        )
        if plan.ps_stalls:
            blurb += ", PS stall"
    else:
        blurb = "drops, flap (no crash)"
    config = res.config
    if config.backend == "allreduce":
        topo = f"allreduce/{config.collective} x{config.n_workers}"
    elif config.n_servers > 1:
        topo = f"ps x{config.n_servers} sharded, {config.n_workers} workers"
    else:
        topo = f"ps star, {config.n_workers} workers"
    print(
        format_table(
            [
                "strategy",
                "clean (samples/s)",
                "faulty (samples/s)",
                "goodput retained",
                "recovery (ms)",
                "retries",
                "stall amp.",
            ],
            rows,
            title=(
                f"Chaos — {config.model} bs{config.batch_size} [{topo}]: {blurb}"
            ),
        )
    )
    return res


if __name__ == "__main__":
    main()
