"""PS-tier scalability — iteration time vs. number of parameter servers.

Not a paper figure: the paper fixes a single PS (its star topology), so
its PS NIC is the aggregation bottleneck whenever the workers' combined
gradient stream exceeds one NIC.  BytePS-style deployments answer this by
key-sharding the model over ``n_servers`` parameter servers, multiplying
the aggregate PS-side capacity.  This experiment holds the workload and
the *per-server* NIC cap fixed and sweeps the shard count: iteration time
should improve monotonically (within scheduler noise) until the bottleneck
moves back to the worker NICs or to compute.

Run through the grid runner so rows are cached and fanned out like every
other experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import FAST_ITERATIONS
from repro.metrics.report import format_table
from repro.quantities import Gbps
from repro.runner import RunSpec, run_grid
from repro.workloads.presets import paper_config

__all__ = ["ScalabilityRow", "run", "main"]


@dataclass(frozen=True)
class ScalabilityRow:
    n_servers: int
    mean_iteration_s: float
    training_rate: float


def run(
    server_counts: tuple[int, ...] = (1, 2, 4, 8),
    model: str = "resnet50",
    batch_size: int = 64,
    bandwidth: float = 10 * Gbps,
    ps_bandwidth: float = 3 * Gbps,
    n_workers: int = 3,
    n_iterations: int = FAST_ITERATIONS,
    seed: int = 0,
    *,
    jobs: int | None = None,
) -> list[ScalabilityRow]:
    """Prophet iteration time at each PS-tier width.

    ``ps_bandwidth`` is each server's NIC capacity (the cap that makes the
    single-PS baseline bottlenecked); ``bandwidth`` is the per-worker NIC.
    """
    specs = [
        RunSpec(
            config=paper_config(
                model,
                batch_size,
                bandwidth=bandwidth,
                n_workers=n_workers,
                n_iterations=n_iterations,
                seed=seed,
                record_gradients=False,
                ps_bandwidth=ps_bandwidth,
                n_servers=k,
            ),
            strategy="prophet",
        )
        for k in server_counts
    ]
    results = run_grid(specs, jobs=jobs)
    return [
        ScalabilityRow(
            n_servers=k,
            mean_iteration_s=res.mean_iteration_s,
            training_rate=res.training_rate,
        )
        for k, res in zip(server_counts, results)
    ]


def main() -> list[ScalabilityRow]:
    rows = run()
    base = rows[0].mean_iteration_s
    print(
        format_table(
            ["servers", "iteration (ms)", "rate (samples/s)", "speedup"],
            [
                [
                    r.n_servers,
                    f"{r.mean_iteration_s * 1e3:.1f}",
                    f"{r.training_rate:.1f}",
                    f"{base / r.mean_iteration_s:.2f}x",
                ]
                for r in rows
            ],
            title=(
                "PS-tier scalability — Prophet, ResNet-50 bs64, "
                "3 Gbps per-server NIC"
            ),
        )
    )
    return rows


if __name__ == "__main__":
    main()
