"""Fig. 13 — Prophet's profiling-phase overhead over time.

With online profiling (no oracle profile), Prophet runs default FIFO
scheduling for its first ``profile_iterations`` iterations; the paper
observes its GPU utilization slightly *below* ByteScheduler's in the
early seconds, overtaking once the profile activates.  The runner splits
the run into the profiling window and the post-activation window and
compares mean utilization in each against ByteScheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.trainer import run_training
from repro.metrics.report import format_table
from repro.metrics.utilization import mean_utilization
from repro.quantities import Gbps
from repro.workloads.presets import (
    bytescheduler_factory,
    paper_config,
    prophet_factory,
)

__all__ = ["Fig13Result", "run", "main"]


@dataclass(frozen=True)
class Fig13Result:
    """Early-vs-late mean GPU utilization for the two strategies."""

    profile_iterations: int
    prophet_early: float
    prophet_late: float
    bytescheduler_early: float
    bytescheduler_late: float
    prophet_rate: float
    bytescheduler_rate: float
    prophet_activation_time: float


def _split_utilization(result, boundary_iteration: int) -> tuple[float, float, float]:
    recs = result.recorder.worker_iterations(0)
    starts = [r.fwd_start for r in recs]
    boundary = starts[min(boundary_iteration, len(starts) - 1)]
    intervals = result.recorder.gpu_busy_intervals(0)
    early = mean_utilization(intervals, starts[1], boundary)
    late = mean_utilization(intervals, boundary, starts[-1])
    return early, late, boundary


def run(
    profile_iterations: int = 8,
    n_iterations: int = 24,
    bandwidth: float = 3 * Gbps,
    seed: int = 0,
) -> Fig13Result:
    """Online-profiling Prophet vs ByteScheduler (ResNet-50 bs64)."""
    config = paper_config(
        "resnet50",
        64,
        bandwidth=bandwidth,
        n_iterations=n_iterations,
        seed=seed,
        record_gradients=False,
    )
    prophet_result = run_training(
        config,
        prophet_factory(oracle_profile=False, profile_iterations=profile_iterations),
    )
    bs_result = run_training(config, bytescheduler_factory())
    p_early, p_late, boundary = _split_utilization(
        prophet_result, profile_iterations + 1
    )
    b_early, b_late, _ = _split_utilization(bs_result, profile_iterations + 1)
    return Fig13Result(
        profile_iterations=profile_iterations,
        prophet_early=p_early,
        prophet_late=p_late,
        bytescheduler_early=b_early,
        bytescheduler_late=b_late,
        prophet_rate=prophet_result.training_rate(skip=profile_iterations + 2),
        bytescheduler_rate=bs_result.training_rate(skip=profile_iterations + 2),
        prophet_activation_time=boundary,
    )


def main() -> Fig13Result:
    res = run()
    print(
        format_table(
            ["strategy", "util during profiling", "util after activation",
             "steady rate (s/s)"],
            [
                ["prophet (online profiling)", f"{res.prophet_early * 100:.1f}%",
                 f"{res.prophet_late * 100:.1f}%", f"{res.prophet_rate:.1f}"],
                ["bytescheduler", f"{res.bytescheduler_early * 100:.1f}%",
                 f"{res.bytescheduler_late * 100:.1f}%",
                 f"{res.bytescheduler_rate:.1f}"],
            ],
            title=(
                f"Fig. 13 — profiling overhead "
                f"(profile = first {res.profile_iterations} iterations)"
            ),
        )
    )
    return res


if __name__ == "__main__":
    main()
