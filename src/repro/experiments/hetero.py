"""Sec. 5.3 — heterogeneous cluster: one worker capped at 500 Mbps.

The paper's finding: the slow worker's bandwidth gates every BSP update,
so the optimization space shrinks — Prophet (26.4 samples/s) and
ByteScheduler (25.8) nearly tie, both well ahead of default MXNet
(15.09).  The reproduction targets: both priority schedulers ≫ MXNet, and
the Prophet-ByteScheduler gap collapsing to a few percent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import FAST_ITERATIONS, StrategyRates, run_strategies
from repro.metrics.report import format_table
from repro.quantities import Gbps, Mbps
from repro.workloads.presets import paper_config

__all__ = ["HeteroResult", "run", "main"]


@dataclass(frozen=True)
class HeteroResult:
    slow_worker_mbps: float
    rates: StrategyRates

    @property
    def prophet_vs_bytescheduler(self) -> float:
        return self.rates.improvement(over="bytescheduler")

    @property
    def prophet_vs_mxnet(self) -> float:
        return self.rates.improvement(over="mxnet-fifo")


def run(
    slow_worker_mbps: float = 500.0,
    base_bandwidth: float = 3 * Gbps,
    n_iterations: int = FAST_ITERATIONS,
    seed: int = 0,
    *,
    jobs: int | None = None,
) -> HeteroResult:
    """ResNet-18 bs64 with worker 0 capped at ``slow_worker_mbps``.

    ResNet-18 reproduces the paper's absolute rates (~26 samples/s for the
    priority schedulers): at 500 Mbps the slow worker's channel carries
    2 x 44.6 MB per iteration, ~2.4 s — matching the reported 25.8-26.4.
    """
    config = paper_config(
        "resnet18",
        64,
        bandwidth=base_bandwidth,
        n_iterations=n_iterations,
        seed=seed,
        worker_bandwidth={0: slow_worker_mbps * Mbps},
        record_gradients=False,
    )
    return HeteroResult(
        slow_worker_mbps=slow_worker_mbps,
        rates=run_strategies(config, jobs=jobs),
    )


def main() -> HeteroResult:
    res = run()
    print(
        format_table(
            ["strategy", "rate (samples/s)"],
            sorted(res.rates.rates.items(), key=lambda kv: -kv[1]),
            title=(
                "Sec. 5.3 — heterogeneous cluster "
                f"(worker 0 capped at {res.slow_worker_mbps:.0f} Mbps)"
            ),
        )
    )
    print(
        f"\nProphet vs ByteScheduler: {res.prophet_vs_bytescheduler * 100:+.1f}%  "
        f"(paper: +2.3%); vs MXNet: {res.prophet_vs_mxnet * 100:+.1f}% "
        f"(paper: +75% — our work-conserving FIFO loses less at saturation; "
        f"see EXPERIMENTS.md)"
    )
    return res


if __name__ == "__main__":
    main()
