"""Fleet contention experiment — per-job strategies under shared-core load.

Not a paper figure: the paper evaluates Prophet one job at a time on a
private star, but a datacenter runs many concurrent jobs whose NICs feed
an oversubscribed core.  This experiment submits the same synthetic job
mix (Poisson arrivals, fixed cluster) once per scheduling strategy —
Prophet, the MXNet FIFO baseline, and MG-WFBP — plus a mixed fleet
rotating all three, and compares the *fleet-level* outcomes: aggregate
goodput, tail (p99) iteration time, Jain fairness across jobs, and
queueing delay.  Each fleet is one :class:`~repro.fleet.FleetSpec` run
through :func:`~repro.runner.run_fleet_grid`, so sweeps are cached and
parallelizable like every other experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.fleet.spec import FleetSpec
from repro.metrics.report import format_table
from repro.quantities import Gbps
from repro.runner import run_fleet_grid

__all__ = ["FleetRow", "MIXES", "BASE_SPEC", "run", "main"]

#: Strategy mixes compared, report order.  Each value feeds
#: ``FleetSpec.strategies`` (jobs rotate round-robin through it).
MIXES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("mxnet-fifo", ("mxnet-fifo",)),
    ("mg-wfbp", ("mg-wfbp",)),
    ("prophet", ("prophet",)),
    ("mixed", ("prophet", "mxnet-fifo", "mg-wfbp")),
)

#: The shared cluster every mix runs on: 8 two-worker jobs on 4x2 slots,
#: each job demanding 2 x 3 Gbps of a 10 Gbps core (1.2x oversubscribed
#: when four jobs run concurrently).
BASE_SPEC = FleetSpec(
    n_jobs=8,
    policy="fair",
    n_hosts=4,
    slots_per_host=2,
    core_bandwidth=10 * Gbps,
    nic_bandwidth=3 * Gbps,
    model="resnet18",
    batch_size=32,
    n_workers=2,
    n_iterations=4,
    mean_interarrival_s=0.05,
    seed=0,
)


@dataclass(frozen=True)
class FleetRow:
    mix: str
    policy: str
    goodput: float
    p99_iteration_s: float
    jain_fairness: float
    mean_queueing_delay_s: float
    makespan_s: float


def run(
    base: FleetSpec = BASE_SPEC,
    mixes: tuple[tuple[str, tuple[str, ...]], ...] = MIXES,
    policies: tuple[str, ...] = ("fifo", "fair"),
    *,
    jobs: int | None = None,
) -> list[FleetRow]:
    """All (mix × placement policy) fleets, grid-cached."""
    specs = []
    keys = []
    for policy in policies:
        for mix_name, strategies in mixes:
            specs.append(replace(base, policy=policy, strategies=strategies))
            keys.append((mix_name, policy))
    results = run_fleet_grid(specs, jobs=jobs)
    return [
        FleetRow(
            mix=mix_name,
            policy=policy,
            goodput=res.goodput_samples_per_s,
            p99_iteration_s=res.p99_iteration_s,
            jain_fairness=res.jain_fairness,
            mean_queueing_delay_s=res.mean_queueing_delay_s,
            makespan_s=res.makespan_s,
        )
        for (mix_name, policy), res in zip(keys, results)
    ]


def main() -> list[FleetRow]:
    rows = run()
    table = [
        [
            r.mix,
            r.policy,
            f"{r.goodput:.1f}",
            f"{r.p99_iteration_s * 1e3:.0f}",
            f"{r.jain_fairness:.4f}",
            f"{r.mean_queueing_delay_s:.2f}",
            f"{r.makespan_s:.2f}",
        ]
        for r in rows
    ]
    print(
        format_table(
            [
                "mix", "policy", "goodput (s/s)", "p99 iter (ms)",
                "Jain", "mean queue (s)", "makespan (s)",
            ],
            table,
            title=(
                f"Fleet contention — {BASE_SPEC.n_jobs} x "
                f"{BASE_SPEC.model} bs{BASE_SPEC.batch_size} on "
                f"{BASE_SPEC.n_hosts}x{BASE_SPEC.slots_per_host} slots, "
                f"10 Gbps shared core"
            ),
        )
    )
    return rows


if __name__ == "__main__":
    main()
