"""Fig. 11 — per-gradient transfer start/end times under MXNet,
ByteScheduler, and Prophet (ResNet-50).

The paper's numbers: average gradient transmission takes 446 ms under
default MXNet vs 135 ms (ByteScheduler) and 125 ms (Prophet); the average
wait before transmission drops from 67 ms (ByteScheduler) to 26 ms
(Prophet), with the biggest wins on high-priority gradients.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.trainer import run_training
from repro.experiments.common import FAST_ITERATIONS
from repro.metrics.report import format_table
from repro.quantities import Gbps
from repro.workloads.presets import (
    bytescheduler_factory,
    fifo_factory,
    paper_config,
    prophet_factory,
)

__all__ = ["GradientTimelineRow", "Fig11Result", "run", "main"]


@dataclass(frozen=True)
class GradientTimelineRow:
    """Per-gradient mean timings for one strategy (ms)."""

    strategy: str
    grads: np.ndarray
    wait_ms: np.ndarray
    transfer_ms: np.ndarray

    @property
    def mean_wait_ms(self) -> float:
        return float(self.wait_ms.mean())

    @property
    def mean_transfer_ms(self) -> float:
        return float(self.transfer_ms.mean())

    def high_priority_mean_wait_ms(self, upto: int = 80) -> float:
        """Mean wait over gradients 0..upto (the paper highlights 0–80)."""
        mask = self.grads <= upto
        return float(self.wait_ms[mask].mean())


@dataclass(frozen=True)
class Fig11Result:
    rows: tuple[GradientTimelineRow, ...]

    def by_strategy(self) -> dict[str, GradientTimelineRow]:
        return {r.strategy: r for r in self.rows}


def _collect(strategy: str, factory, config, skip: int) -> GradientTimelineRow:
    result = run_training(config, factory)
    recs = [
        r
        for r in result.gradient_records(worker=0)
        if r.iteration >= skip and np.isfinite(r.push_start) and np.isfinite(r.push_end)
    ]
    grads = sorted({r.grad for r in recs})
    wait = np.array(
        [np.mean([r.wait_time for r in recs if r.grad == g]) for g in grads]
    )
    transfer = np.array(
        [np.mean([r.transfer_time for r in recs if r.grad == g]) for g in grads]
    )
    return GradientTimelineRow(
        strategy=strategy,
        grads=np.asarray(grads),
        wait_ms=wait * 1e3,
        transfer_ms=transfer * 1e3,
    )


def run(
    bandwidth: float = 3 * Gbps,
    n_iterations: int = FAST_ITERATIONS,
    seed: int = 0,
    skip: int = 2,
) -> Fig11Result:
    """Per-gradient wait/transfer means for the three strategies."""
    config = paper_config(
        "resnet50", 64, bandwidth=bandwidth, n_iterations=n_iterations, seed=seed
    )
    rows = tuple(
        _collect(name, factory, config, skip)
        for name, factory in (
            ("mxnet-fifo", fifo_factory()),
            ("bytescheduler", bytescheduler_factory()),
            ("prophet", prophet_factory()),
        )
    )
    return Fig11Result(rows=rows)


def main() -> Fig11Result:
    res = run()
    print(
        format_table(
            ["strategy", "mean wait (ms)", "mean transfer (ms)",
             "wait grads 0-80 (ms)"],
            [
                [r.strategy, f"{r.mean_wait_ms:.1f}", f"{r.mean_transfer_ms:.1f}",
                 f"{r.high_priority_mean_wait_ms():.1f}"]
                for r in res.rows
            ],
            title="Fig. 11 — per-gradient communication timings (ResNet-50 bs64)",
        )
    )
    return res


if __name__ == "__main__":
    main()
