"""Fig. 2 — GPU utilization and network throughput of one worker under
default MXNet scheduling (ResNet-152, the paper's motivation experiment).

The paper's observation: "the GPU utilization can dramatically decrease to
zero during the pull operation of model parameters", idle over 50 % of the
iteration at constrained bandwidth.  The runner reproduces the two time
series and summary statistics: mean utilization, and the fraction of time
the GPU sits essentially idle (< 10 % utilization).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.trainer import run_training
from repro.experiments.common import FAST_ITERATIONS
from repro.metrics.report import format_table
from repro.quantities import Gbps, to_MB
from repro.workloads.presets import fifo_factory, paper_config

__all__ = ["Fig2Result", "run", "main"]


@dataclass(frozen=True)
class Fig2Result:
    """Time series + summary for the motivation experiment."""

    times: np.ndarray
    gpu_utilization: np.ndarray
    throughput_mb_s: np.ndarray
    mean_utilization: float
    idle_fraction: float
    training_rate: float


def run(
    bandwidth: float = 2 * Gbps,
    n_iterations: int = FAST_ITERATIONS,
    seed: int = 0,
) -> Fig2Result:
    """Train ResNet-152 (bs 32) with default MXNet; 1 PS + 3 workers."""
    config = paper_config(
        model="resnet152",
        batch_size=32,
        bandwidth=bandwidth,
        n_workers=3,
        n_iterations=n_iterations,
        seed=seed,
        record_gradients=False,
    )
    result = run_training(config, fifo_factory())
    times, util = result.gpu_utilization_series(worker=0, window=0.25, resolution=0.05)
    _, thr = result.throughput_series(worker=0, window=0.25, resolution=0.05)
    start, end = result.measurement_window(0)
    mask = (times >= start) & (times <= end)
    return Fig2Result(
        times=times[mask],
        gpu_utilization=util[mask],
        throughput_mb_s=np.array([to_MB(x) for x in thr[mask]]),
        mean_utilization=result.mean_gpu_utilization(0),
        idle_fraction=float((util[mask] < 0.10).mean()),
        training_rate=result.training_rate(),
    )


def main() -> Fig2Result:
    res = run()
    rows = [
        ["mean GPU utilization", f"{res.mean_utilization * 100:.1f}%"],
        ["fraction of time near-idle (<10%)", f"{res.idle_fraction * 100:.1f}%"],
        ["training rate (samples/s/worker)", f"{res.training_rate:.1f}"],
        ["peak throughput (MB/s)", f"{res.throughput_mb_s.max():.1f}"],
    ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title="Fig. 2 — default MXNet, ResNet-152: GPU starvation during pulls",
        )
    )
    return res


if __name__ == "__main__":
    main()
