"""Figs. 9 & 10 — GPU utilization and network throughput over time,
Prophet vs ByteScheduler (ResNet-50 bs64).

The paper reports average GPU utilization improving from 67.85 %
(ByteScheduler) to 91.15 % (Prophet), and average network throughput
higher by ~37 % — with periodic sharp utilization dips in both (the
unavoidable per-iteration turnaround at gradient 0).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.trainer import run_training
from repro.experiments.common import FAST_ITERATIONS
from repro.metrics.report import format_table
from repro.quantities import Gbps, to_MB
from repro.workloads.presets import (
    bytescheduler_factory,
    paper_config,
    prophet_factory,
)

__all__ = ["StrategyTrace", "Fig910Result", "run", "main"]


@dataclass(frozen=True)
class StrategyTrace:
    """Utilization + throughput series and averages for one strategy."""

    strategy: str
    times: np.ndarray
    gpu_utilization: np.ndarray
    throughput_mb_s: np.ndarray
    mean_utilization: float
    mean_throughput_mb_s: float
    training_rate: float


@dataclass(frozen=True)
class Fig910Result:
    prophet: StrategyTrace
    bytescheduler: StrategyTrace

    @property
    def utilization_gain(self) -> float:
        """Absolute GPU-utilization gain of Prophet (paper: ~23 points)."""
        return self.prophet.mean_utilization - self.bytescheduler.mean_utilization

    @property
    def throughput_gain(self) -> float:
        """Relative throughput gain of Prophet (paper: ~37 %)."""
        return (
            self.prophet.mean_throughput_mb_s
            / self.bytescheduler.mean_throughput_mb_s
            - 1.0
        )


def _trace(strategy: str, factory, config) -> StrategyTrace:
    result = run_training(config, factory)
    times, util = result.gpu_utilization_series(worker=0, window=0.25, resolution=0.05)
    _, thr = result.throughput_series(worker=0, window=0.25, resolution=0.05)
    start, end = result.measurement_window(0)
    mask = (times >= start) & (times <= end)
    return StrategyTrace(
        strategy=strategy,
        times=times[mask],
        gpu_utilization=util[mask],
        throughput_mb_s=np.array([to_MB(x) for x in thr[mask]]),
        mean_utilization=result.mean_gpu_utilization(0),
        mean_throughput_mb_s=to_MB(result.mean_throughput(0)),
        training_rate=result.training_rate(),
    )


def run(
    bandwidth: float = 3 * Gbps,
    n_iterations: int = FAST_ITERATIONS,
    seed: int = 0,
) -> Fig910Result:
    """ResNet-50 bs64 traces for Prophet and ByteScheduler."""
    config = paper_config(
        "resnet50",
        64,
        bandwidth=bandwidth,
        n_iterations=n_iterations,
        seed=seed,
        record_gradients=False,
    )
    return Fig910Result(
        prophet=_trace("prophet", prophet_factory(), config),
        bytescheduler=_trace("bytescheduler", bytescheduler_factory(), config),
    )


def main() -> Fig910Result:
    res = run()
    rows = [
        [
            t.strategy,
            f"{t.mean_utilization * 100:.1f}%",
            f"{t.mean_throughput_mb_s:.1f}",
            f"{t.training_rate:.1f}",
        ]
        for t in (res.prophet, res.bytescheduler)
    ]
    print(
        format_table(
            ["strategy", "mean GPU util", "mean throughput (MB/s)", "rate (s/s)"],
            rows,
            title="Figs. 9 & 10 — ResNet-50 bs64, Prophet vs ByteScheduler",
        )
    )
    print(
        f"\nutilization gain: {res.utilization_gain * 100:+.1f} points; "
        f"throughput gain: {res.throughput_gain * 100:+.1f}%"
    )
    return res


if __name__ == "__main__":
    main()
