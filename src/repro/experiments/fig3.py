"""Fig. 3 — the two baseline pathologies that motivate Prophet.

(a) **P3's partition-size overhead**: sweeping the partition size shows
    the training rate collapsing as partitions shrink (every partition
    pays the blocking per-message synchronization) and preemption
    degrading as they grow.

(b) **ByteScheduler's auto-tuning fluctuation**: with Bayesian credit
    tuning enabled, the per-iteration training rate oscillates while the
    optimizer explores credit sizes (the paper observes 44–56 samples/s
    and credits moving between ~3 MB and 13 MB).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.trainer import run_training
from repro.metrics.report import format_table
from repro.quantities import Gbps, MB
from repro.runner import RunSpec, run_grid
from repro.workloads.presets import bytescheduler_factory, paper_config

__all__ = ["Fig3aResult", "Fig3bResult", "run_partition_sweep", "run_autotune", "main"]

DEFAULT_PARTITIONS_MB = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)


@dataclass(frozen=True)
class Fig3aResult:
    """P3 training rate per partition size."""

    partition_mb: tuple[float, ...]
    rates: tuple[float, ...]

    @property
    def best_partition_mb(self) -> float:
        return self.partition_mb[int(np.argmax(self.rates))]


@dataclass(frozen=True)
class Fig3bResult:
    """ByteScheduler per-iteration rate and credit while auto-tuning."""

    iterations: tuple[int, ...]
    rates: tuple[float, ...]
    credits_mb: tuple[float, ...]

    @property
    def rate_spread(self) -> float:
        """max - min per-iteration rate (the fluctuation band)."""
        return max(self.rates) - min(self.rates)


def run_partition_sweep(
    partitions_mb: tuple[float, ...] = DEFAULT_PARTITIONS_MB,
    bandwidth: float = 3 * Gbps,
    n_iterations: int = 12,
    seed: int = 0,
    *,
    jobs: int | None = None,
) -> Fig3aResult:
    """Fig. 3(a): ResNet-50 bs64 rate vs P3 partition size."""
    config = paper_config(
        "resnet50",
        64,
        bandwidth=bandwidth,
        n_iterations=n_iterations,
        seed=seed,
        record_gradients=False,
    )
    specs = [
        RunSpec(
            config=config,
            strategy="p3",
            strategy_kwargs={"partition_size": mb * MB},
        )
        for mb in partitions_mb
    ]
    results = run_grid(specs, jobs=jobs)
    return Fig3aResult(
        partition_mb=tuple(partitions_mb),
        rates=tuple(r.training_rate for r in results),
    )


def run_autotune(
    bandwidth: float = 3 * Gbps,
    n_iterations: int = 40,
    tune_every: int = 3,
    seed: int = 0,
) -> Fig3bResult:
    """Fig. 3(b): per-iteration rate under Bayesian credit auto-tuning."""
    config = paper_config(
        "resnet50",
        64,
        bandwidth=bandwidth,
        n_iterations=n_iterations,
        seed=seed,
        record_gradients=False,
    )
    result = run_training(
        config, bytescheduler_factory(auto_tune=True, tune_every=tune_every)
    )
    spans = result.iteration_spans(worker=0, skip=1)
    rates = tuple(float(config.batch_size / s) for s in spans)
    # Credit history from worker 0's scheduler, aligned to iterations 1..N.
    history = dict(result.schedulers[0].credit_history)
    iters = tuple(range(1, 1 + len(rates)))
    credits = tuple(history.get(i, np.nan) / MB for i in iters)
    return Fig3bResult(iterations=iters, rates=rates, credits_mb=credits)


def main() -> tuple[Fig3aResult, Fig3bResult]:
    a = run_partition_sweep()
    print(
        format_table(
            ["partition (MB)", "rate (samples/s)"],
            list(zip(a.partition_mb, a.rates)),
            title="Fig. 3(a) — P3 rate vs partition size (ResNet-50 bs64, 3 Gbps)",
        )
    )
    b = run_autotune()
    print()
    print(
        format_table(
            ["iteration", "rate (samples/s)", "credit (MB)"],
            list(zip(b.iterations, b.rates, b.credits_mb)),
            title="Fig. 3(b) — ByteScheduler auto-tuning fluctuation",
        )
    )
    print(f"\nrate fluctuation band: {min(b.rates):.1f} - {max(b.rates):.1f} samples/s")
    return a, b


if __name__ == "__main__":
    main()
