"""Experiment runners — one per figure/table of the paper's evaluation.

Each module exposes a ``run(...)`` function returning a structured result
and a ``main()`` that prints the same rows/series the paper reports.  The
benchmark harnesses under ``benchmarks/`` wrap these runners; the mapping
from paper artifact to module is the experiment index in DESIGN.md.

=========  ==========================================================
Module     Paper artifact
=========  ==========================================================
fig2       Fig. 2 — GPU util / net throughput over time, default MXNet
fig3       Fig. 3 — P3 partition-size overhead; ByteScheduler tuning
fig4       Fig. 4 — stepwise pattern of gradient generation
fig5       Fig. 5 — illustrative 4-strategy schedule on a toy job
fig8       Fig. 8 — training-rate comparison across models/batch sizes
fig9_10    Figs. 9 & 10 — GPU utilization and network throughput
fig11      Fig. 11 — per-gradient transfer start/end times
fig12      Fig. 12 — scalability in worker count
fig13      Fig. 13 — profiling-phase overhead over time
table2     Table 2 — rates under worker bandwidth limits
table3     Table 3 — rates across batch sizes
hetero     Sec. 5.3 — heterogeneous cluster (one slow worker)
overhead   Sec. 5.4 — job-profiling and planning overhead
ablations  design-choice ablations (not in the paper)
chaos      resilience under faults (crash/flap/drops/stall; not in paper)
scalability  iteration time vs. PS-tier width (sharded PSs; not in paper)
collective   Prophet vs MG-WFBP vs FIFO on ring/hierarchical allreduce
fleet        multi-tenant fleet contention (goodput/p99/fairness; not in paper)
=========  ==========================================================
"""

from repro.experiments import (  # noqa: F401
    fig2,
    fig3,
    fig4,
    fig5,
    fig8,
    fig9_10,
    fig11,
    fig12,
    fig13,
    table2,
    table3,
    hetero,
    overhead,
    ablations,
    asp,
    chaos,
    devices,
    dynamic,
    convergence,
    scalability,
    collective,
    fleet,
)

__all__ = [
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig8",
    "fig9_10",
    "fig11",
    "fig12",
    "fig13",
    "table2",
    "table3",
    "hetero",
    "overhead",
    "ablations",
    "asp",
    "chaos",
    "devices",
    "dynamic",
    "convergence",
    "scalability",
    "collective",
    "fleet",
]
