"""Time-to-accuracy under BSP / SSP / ASP — completing future-work item 1.

Throughput alone flatters asynchrony (``experiments/asp.py``); what a
practitioner cares about is **time to a target loss**.  This runner closes
the loop:

1. simulate the cluster under each sync mode → seconds/iteration and the
   *observed* gradient-staleness distribution at the PS;
2. run stale SGD on a reference quadratic with that staleness
   distribution → iterations to reach the target loss fraction;
3. multiply.

The expected shape: ASP gains throughput but pays statistical efficiency;
with mild jitter (small staleness) it still wins time-to-accuracy, and the
gap narrows as staleness grows — SSP sits between.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.cluster.trainer import Trainer
from repro.convergence.sgd import (
    QuadraticProblem,
    empirical_staleness_sampler,
    run_stale_sgd,
)
from repro.metrics.report import format_table
from repro.quantities import Gbps
from repro.workloads.presets import paper_config, prophet_factory

__all__ = ["ConvergenceRow", "run", "main"]


@dataclass(frozen=True)
class ConvergenceRow:
    sync_mode: str
    seconds_per_iteration: float
    mean_staleness: float
    iterations_to_target: int | None
    time_to_target_s: float | None


def run(
    target_fraction: float = 0.01,
    bandwidth: float = 3 * Gbps,
    n_iterations: int = 16,
    jitter_std: float = 0.05,
    straggler_scale: float = 1.4,
    sgd_steps: int = 4000,
    seed: int = 0,
) -> list[ConvergenceRow]:
    """Prophet-scheduled cluster under each sync mode → time-to-loss.

    One worker computes ``straggler_scale`` slower: without persistent
    skew, ASP workers drift less than one iteration apart and staleness
    stays zero (asynchrony is then a free win); the straggler is what
    makes the throughput/staleness trade-off bind.
    """
    base = paper_config(
        "resnet50",
        64,
        bandwidth=bandwidth,
        n_iterations=n_iterations,
        seed=seed,
        jitter_std=jitter_std,
        worker_compute_scale={0: straggler_scale},
        record_gradients=False,
    )
    problem = QuadraticProblem()
    rows = []
    for mode in ("bsp", "ssp", "asp"):
        trainer = Trainer(replace(base, sync_mode=mode), prophet_factory())
        result = trainer.run()
        # Cluster-mean seconds per worker-iteration (one model update per
        # worker round).  Under BSP every worker runs at the straggler's
        # pace; under ASP/SSP the fast workers' quicker rounds pull the
        # mean down — that is asynchrony's throughput win.
        sec_per_iter = base.batch_size / result.training_rate(skip=2)
        samples = trainer.ps.staleness_samples
        sampler = empirical_staleness_sampler(
            samples, np.random.default_rng(seed + 1)
        )
        sgd = run_stale_sgd(problem, sampler, n_steps=sgd_steps, seed=seed)
        iters = None if sgd.diverged else sgd.iterations_to(target_fraction)
        rows.append(
            ConvergenceRow(
                sync_mode=mode,
                seconds_per_iteration=sec_per_iter,
                mean_staleness=sgd.mean_staleness,
                iterations_to_target=iters,
                time_to_target_s=(
                    None if iters is None else iters * sec_per_iter
                ),
            )
        )
    return rows


def main() -> list[ConvergenceRow]:
    rows = run()
    print(
        format_table(
            ["sync", "s/iteration", "mean staleness", "iters to 1% loss",
             "time to 1% loss (s)"],
            [
                [
                    r.sync_mode,
                    f"{r.seconds_per_iteration * 1e3:.0f} ms",
                    f"{r.mean_staleness:.2f}",
                    "diverged" if r.iterations_to_target is None
                    else r.iterations_to_target,
                    "-" if r.time_to_target_s is None
                    else f"{r.time_to_target_s:.1f}",
                ]
                for r in rows
            ],
            title=(
                "Time-to-accuracy under BSP/SSP/ASP (Prophet-scheduled "
                "cluster + stale SGD on a reference quadratic)"
            ),
        )
    )
    return rows


if __name__ == "__main__":
    main()
