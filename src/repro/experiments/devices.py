"""Future-work item 2 — Prophet on faster GPU instances (p3/p4).

The paper proposes examining Prophet on p3/p4 EC2 instances.  Faster GPUs
shrink the backward pass, which (a) narrows the stepwise intervals
Algorithm 1 packs against and (b) raises the bandwidth needed to stay
compute-bound — at a fixed link speed, a V100 node is far deeper into the
communication-bound regime than an M60 node.  The runner sweeps device
generations at a fixed bandwidth and reports where scheduling still pays.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.experiments.common import FAST_ITERATIONS, run_strategies_grid
from repro.metrics.report import format_table
from repro.models.device import A100, TESLA_M60, TESLA_V100, DeviceSpec
from repro.quantities import Gbps
from repro.workloads.presets import paper_config

__all__ = ["DeviceRow", "run", "main", "DEVICE_GENERATIONS"]

DEVICE_GENERATIONS: tuple[DeviceSpec, ...] = (TESLA_M60, TESLA_V100, A100)


@dataclass(frozen=True)
class DeviceRow:
    device: str
    compute_s: float
    rates: Mapping[str, float]

    @property
    def prophet_vs_bytescheduler(self) -> float:
        return self.rates["prophet"] / self.rates["bytescheduler"] - 1.0

    @property
    def prophet_vs_mxnet(self) -> float:
        return self.rates["prophet"] / self.rates["mxnet-fifo"] - 1.0


def run(
    devices: tuple[DeviceSpec, ...] = DEVICE_GENERATIONS,
    bandwidth: float = 10 * Gbps,
    n_iterations: int = FAST_ITERATIONS,
    seed: int = 0,
    *,
    jobs: int | None = None,
) -> list[DeviceRow]:
    """ResNet-50 bs64 at a fixed 10 Gbps across GPU generations."""
    from repro.models.compute import build_compute_profile
    from repro.models.registry import get_model

    configs = [
        replace(
            paper_config(
                "resnet50",
                64,
                bandwidth=bandwidth,
                n_iterations=n_iterations,
                seed=seed,
                record_gradients=False,
            ),
            device=device,
        )
        for device in devices
    ]
    strategy_rows = run_strategies_grid(configs, jobs=jobs)
    rows = []
    for device, rates in zip(devices, strategy_rows):
        compute = build_compute_profile(get_model("resnet50"), device, 64)
        rows.append(
            DeviceRow(
                device=device.name,
                compute_s=compute.compute_time,
                rates=rates.rates,
            )
        )
    return rows


def main() -> list[DeviceRow]:
    rows = run()
    print(
        format_table(
            ["device", "compute (ms)", "Prophet", "ByteScheduler", "MXNet",
             "P vs BS", "P vs MXNet"],
            [
                [
                    r.device,
                    f"{r.compute_s * 1e3:.0f}",
                    f"{r.rates['prophet']:.1f}",
                    f"{r.rates['bytescheduler']:.1f}",
                    f"{r.rates['mxnet-fifo']:.1f}",
                    f"{r.prophet_vs_bytescheduler * 100:+.1f}%",
                    f"{r.prophet_vs_mxnet * 100:+.1f}%",
                ]
                for r in rows
            ],
            title=(
                "Future work (2) — ResNet-50 bs64 at 10 Gbps across GPU "
                "generations (faster compute -> communication-bound)"
            ),
        )
    )
    return rows


if __name__ == "__main__":
    main()
