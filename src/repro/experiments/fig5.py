"""Fig. 5 — illustrative example: the four strategies on a tiny job.

The paper walks a 3-gradient toy example: default MXNet lets gradient 1's
long transfer block gradient 0; P3 slices everything (fine preemption,
extra overhead); ByteScheduler uses a fixed credit; Prophet assembles
exactly as many partitions of gradient 1 as fit before gradient 0 is
generated.  We reproduce it end-to-end: a 3-tensor synthetic model run
through the full simulator under each strategy, reporting gradient 0's
wait time and the iteration time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.agg.policies import ExplicitGroupsPolicy
from repro.cluster.trainer import run_training
from repro.config import TrainingConfig
from repro.metrics.report import format_table
from repro.models.device import DeviceSpec
from repro.models.layers import LayerSpec, ModelSpec, ParamTensor
from repro.models.registry import available_models, register_model
from repro.quantities import Gbps, MB
from repro.workloads.presets import PAPER_TCP, STRATEGY_FACTORIES

__all__ = ["Fig5Row", "Fig5Result", "run", "main", "TOY_MODEL_NAME"]

TOY_MODEL_NAME = "toy-fig5"


def _build_toy_model() -> ModelSpec:
    """Three single-tensor layers; gradient 2 generated first, 0 last."""
    flops = 6e9  # per layer per sample; sets the inter-block intervals
    layers = tuple(
        LayerSpec(
            name=f"layer{i}",
            kind="fc",
            params=(ParamTensor(f"layer{i}.weight", (int(size // 4),)),),
            fwd_flops=flops,
        )
        for i, size in enumerate((8 * MB, 16 * MB, 8 * MB))
    )
    return ModelSpec(name=TOY_MODEL_NAME, input_size=1, layers=layers)


if TOY_MODEL_NAME not in available_models():
    register_model(TOY_MODEL_NAME, _build_toy_model)


@dataclass(frozen=True)
class Fig5Row:
    """One strategy's outcome on the toy job."""

    strategy: str
    grad0_wait_ms: float
    grad0_update_ms: float
    iteration_ms: float


@dataclass(frozen=True)
class Fig5Result:
    rows: tuple[Fig5Row, ...]

    def by_strategy(self) -> Mapping[str, Fig5Row]:
        return {r.strategy: r for r in self.rows}


def run(
    bandwidth: float = 1 * Gbps, n_iterations: int = 8, seed: int = 0
) -> Fig5Result:
    """Run all four strategies on the 3-gradient toy job (one worker)."""
    config = TrainingConfig(
        model=TOY_MODEL_NAME,
        batch_size=16,
        n_workers=1,
        n_iterations=n_iterations,
        bandwidth=bandwidth,
        tcp=PAPER_TCP,
        device=DeviceSpec(name="toy", peak_flops=9.6e12, efficiency=0.2),
        agg_policy=ExplicitGroupsPolicy(((2,), (1,), (0,))),
        seed=seed,
        jitter_std=0.0,
    )
    rows = []
    for name, factory in STRATEGY_FACTORIES.items():
        result = run_training(config, factory)
        recs = {
            r.grad: r for r in result.gradient_records(worker=0, iteration=n_iterations - 2)
        }
        g0 = recs[0]
        rows.append(
            Fig5Row(
                strategy=name,
                grad0_wait_ms=(g0.push_start - g0.ready) * 1e3,
                grad0_update_ms=(g0.pull_end - g0.ready) * 1e3,
                iteration_ms=float(result.iteration_spans(0, skip=2).mean()) * 1e3,
            )
        )
    return Fig5Result(rows=tuple(rows))


def main() -> Fig5Result:
    res = run()
    print(
        format_table(
            ["strategy", "grad0 wait (ms)", "grad0 update (ms)", "iteration (ms)"],
            [
                [r.strategy, f"{r.grad0_wait_ms:.2f}", f"{r.grad0_update_ms:.1f}", f"{r.iteration_ms:.1f}"]
                for r in res.rows
            ],
            title="Fig. 5 — illustrative 3-gradient example (1 worker, 1 Gbps)",
        )
    )
    return res


if __name__ == "__main__":
    main()
