"""Default-MXNet FIFO scheduling.

The baseline every DDNN framework ships: tensors are pushed whole, one
message per tensor, in the order the KV store flushed them (generation
order).  Because backward propagation generates low-priority (large,
early-layer... rather, *late-layer*) gradients first, a large tensor at the
head of the queue blocks the critical gradient 0 even after it is
generated — the failure mode of Fig. 5's first row.
"""

from __future__ import annotations

from collections import deque

from repro.agg.kvstore import GenerationSchedule
from repro.sched.base import CommScheduler, Segment, TransferUnit

__all__ = ["FIFOScheduler"]


class FIFOScheduler(CommScheduler):
    """Whole-tensor, first-in-first-out transmission (default MXNet)."""

    name = "mxnet-fifo"
    fifo_channel = True

    def __init__(self) -> None:
        super().__init__()
        self._queue: deque[int] = deque()

    def begin_iteration(
        self, iteration: int, schedule: GenerationSchedule, now: float
    ) -> None:
        super().begin_iteration(iteration, schedule, now)
        self._queue.clear()

    def gradient_ready(self, grad: int, now: float) -> None:
        super().gradient_ready(grad, now)
        self._queue.append(grad)

    def _select(self, now: float) -> TransferUnit | None:
        if not self._queue:
            return None
        grad = self._queue[0]
        return TransferUnit(
            segments=(Segment(grad=grad, offset=0.0, nbytes=self.size_of(grad)),)
        )

    def _committed(self, unit: TransferUnit, now: float) -> None:
        head = self._queue.popleft()
        if head != unit.segments[0].grad:  # pragma: no cover - defensive
            raise AssertionError("FIFO commit does not match proposal")

    def describe_unit(self, unit: TransferUnit) -> dict[str, object]:
        desc = super().describe_unit(unit)
        # Depth of the arrival-order queue behind this tensor: the blocked
        # work a priority scheduler would have reordered past it.
        desc["queue_depth"] = len(self._queue)
        return desc

    def ff_state(self, ctx) -> tuple:
        return super().ff_state(ctx) + (tuple(self._queue),)
