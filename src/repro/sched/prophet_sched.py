"""Prophet's online scheduler — Algorithm 1 driven by live profile/monitor.

This is the event-driven counterpart of the offline planner in
:mod:`repro.core.algorithm`, matching the prototype architecture of the
paper's Fig. 7:

* the **Training Job Profiler** (:class:`~repro.core.profiler.JobProfiler`)
  records per-gradient generation times during the first
  ``profile_iterations`` iterations (the paper uses 50); until the profile
  is ready the scheduler falls back to default FIFO behaviour — which is
  why Fig. 13 shows Prophet's GPU utilization slightly *below*
  ByteScheduler's in the first seconds of training;
* the **Network Bandwidth Monitor** is injected as ``bandwidth_provider``
  (wired by the trainer to a :class:`~repro.net.monitor.BandwidthMonitor`
  sampling every 5 s);
* the **Gradient Block Assembler** runs at every scheduling decision
  during backward propagation: it packs the highest-priority ready
  gradients into one block as long as the block — with its single
  message-setup cost — is predicted to finish before the next
  higher-priority generation event (Constraint 11).  If not even the most
  urgent gradient fits, the link is left deliberately idle so the imminent
  gradients are not blocked;
* gradient 0 is pushed alone the instant it is generated (line 17), and
  the remaining gradients drain in strict priority order during forward
  propagation, batched into blocks of at most ``forward_block_bytes``.

A pre-built :class:`~repro.core.profiler.JobProfile` may be supplied to
skip warmup (the "oracle profile", equivalent to a converged profiling
run) — the fast benchmark presets use this.

**Graceful degradation.**  A stepwise plan is only as good as its inputs,
and both can rot mid-run: the profiled ``c(i)`` goes stale when compute
pacing shifts (straggler onset, thermal throttling), and the monitored
bandwidth can collapse under a link fault, making every interval budget
infeasible.  The scheduler therefore watches its own assumptions: each
planned iteration compares observed generation times against the profile
(size-weighted mean relative drift) and each iteration start compares the
monitored bandwidth against the best recently seen.  When drift exceeds
``stale_tolerance`` for ``stale_patience`` consecutive iterations, or
bandwidth falls below ``collapse_factor`` of the reference, the scheduler
*falls back* instead of emitting an infeasible plan: ``on_stale="reprofile"``
(default) discards the profile and re-enters the warmup-FIFO path until a
fresh profile converges; ``on_stale="fifo"`` degrades to FIFO permanently.
Every detection fires the ``notify`` hook (wired by the factory to a
``fault``-category trace instant) and increments the public counters.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable

from repro.agg.kvstore import GenerationSchedule
from repro.core.profiler import JobProfile, JobProfiler
from repro.errors import ConfigurationError
from repro.net.tcp import TCPParams
from repro.quantities import MB
from repro.sched.base import CommScheduler, Segment, TransferUnit

__all__ = ["ProphetScheduler"]


class ProphetScheduler(CommScheduler):
    """Predictable gradient-block scheduling (the paper's contribution)."""

    name = "prophet"

    def __init__(
        self,
        bandwidth_provider: Callable[[], float],
        profile: JobProfile | None = None,
        profile_iterations: int = 50,
        tcp: TCPParams | None = None,
        eps: float = 1e-6,
        guard: float = 0.0,
        forward_block_bytes: float = 4 * MB,
        round_trip_factor: float = 1.0,
        slice_bytes: float = 1 * MB,
        pull_batch_bytes: float = 4 * MB,
        stale_tolerance: float | None = 0.5,
        stale_patience: int = 2,
        collapse_factor: float = 0.1,
        on_stale: str = "reprofile",
        notify: Callable[[str, dict], None] | None = None,
    ):
        if forward_block_bytes <= 0:
            raise ConfigurationError(
                f"forward_block_bytes must be positive, got {forward_block_bytes}"
            )
        if guard < 0:
            raise ConfigurationError(f"guard must be >= 0, got {guard}")
        if round_trip_factor < 1:
            raise ConfigurationError(
                f"round_trip_factor must be >= 1, got {round_trip_factor}"
            )
        if stale_tolerance is not None and stale_tolerance <= 0:
            raise ConfigurationError(
                f"stale_tolerance must be positive (or None), got {stale_tolerance}"
            )
        if stale_patience < 1:
            raise ConfigurationError(
                f"stale_patience must be >= 1, got {stale_patience}"
            )
        if not 0 <= collapse_factor < 1:
            raise ConfigurationError(
                f"collapse_factor must be in [0, 1), got {collapse_factor}"
            )
        if on_stale not in ("reprofile", "fifo"):
            raise ConfigurationError(
                f"on_stale must be 'reprofile' or 'fifo', got {on_stale!r}"
            )
        super().__init__()
        #: Budget multiplier for block packing.  1.0 is Algorithm 1 as
        #: written (the interval constrains the one-way push time E(i));
        #: 2.0 additionally reserves channel time for the block's mirrored
        #: pull (an ablation — it protects preemption latency at the cost
        #: of deliberate idling, which measurement shows is a net loss).
        self.round_trip_factor = float(round_trip_factor)
        if slice_bytes <= 0:
            raise ConfigurationError(f"slice_bytes must be positive, got {slice_bytes}")
        #: Slicing granularity when a whole gradient does not fit the
        #: remaining interval (the paper's Fig. 5: "only two partitions of
        #: gradient 1 can be transmitted before gradient 0 is generated").
        self.slice_bytes = float(slice_bytes)
        if pull_batch_bytes <= 0:
            raise ConfigurationError(
                f"pull_batch_bytes must be positive, got {pull_batch_bytes}"
            )
        #: Coalescing limit for pull responses (may exceed the forward
        #: push-block size: parameters stream back in priority order
        #: either way, and bigger response batches amortize per-message
        #: costs when the channel is saturated).
        self.pull_batch_bytes = float(pull_batch_bytes)
        self._bandwidth_provider = bandwidth_provider
        self._profile = profile
        self.profile_iterations = profile_iterations
        self._tcp = tcp if tcp is not None else TCPParams()
        self._eps = eps
        self._guard = guard
        self.forward_block_bytes = float(forward_block_bytes)
        self._profiler: JobProfiler | None = None
        self._backward_start = 0.0
        self._signalled: list[bool] | None = None
        self._fallback_queue: deque[int] = deque()
        # Derived per-profile / per-iteration boundary state (see
        # ``_boundary``): ``_c_order`` sorts gradient indices by predicted
        # generation time; ``_c_ptr`` advances monotonically past
        # signalled gradients, so the next-generation boundary is an O(1)
        # amortized lookup instead of a per-call masked-numpy min.
        self._c_src: JobProfile | None = None
        self._c_list: list[float] = []
        self._c_order: list[int] = []
        self._c_abs: list[float] = []
        self._c_ptr = 0
        #: Number of iterations scheduled with the profile active (stats).
        self.planned_iterations = 0

        # Degradation policy (see the module docstring).
        self.stale_tolerance = stale_tolerance
        self.stale_patience = int(stale_patience)
        self.collapse_factor = float(collapse_factor)
        self.on_stale = on_stale
        self._notify = notify
        self._stale_streak = 0
        self._drift_err = 0.0
        self._drift_base = 0.0
        self._reference_bandwidth = 0.0
        self._fifo_locked = False
        #: Stale-profile detections (drift beyond tolerance, patience met).
        self.stale_detections = 0
        #: Bandwidth-collapse detections.
        self.collapse_detections = 0
        #: Times the scheduler abandoned its plan (either detection kind).
        self.fallbacks = 0
        #: Fallbacks that re-entered profiling (``on_stale="reprofile"``).
        self.reprofiles = 0

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether the stepwise profile is available (warmup finished)."""
        return self._profile is not None

    @property
    def profile(self) -> JobProfile | None:
        return self._profile

    @property
    def degraded(self) -> bool:
        """Whether the scheduler has abandoned at least one plan."""
        return self.fallbacks > 0

    # ------------------------------------------------------------------
    def begin_iteration(
        self, iteration: int, schedule: GenerationSchedule, now: float
    ) -> None:
        super().begin_iteration(iteration, schedule, now)
        self._backward_start = now
        self._signalled = [False] * len(schedule.sizes)
        self._fallback_queue.clear()
        self._drift_err = 0.0
        self._drift_base = 0.0
        if self.collapse_factor > 0:
            bandwidth = self._bandwidth_provider()
            self._reference_bandwidth = max(self._reference_bandwidth, bandwidth)
            if (
                self._profile is not None
                and bandwidth < self.collapse_factor * self._reference_bandwidth
            ):
                self._degrade(
                    "bandwidth-collapse",
                    {
                        "bandwidth": bandwidth,
                        "reference": self._reference_bandwidth,
                        "iteration": iteration,
                    },
                )
        if self._profiler is None and self._profile is None and not self._fifo_locked:
            self._profiler = JobProfiler(
                sizes=schedule.sizes, min_iterations=self.profile_iterations
            )
        if self._profile is not None:
            self.planned_iterations += 1
            if self._c_src is not self._profile:
                self._c_src = self._profile
                # Snapped onto the time-quantum grid (identity without a
                # quantum): ``_backward_start + c`` is then exact grid
                # arithmetic, which keeps the predicted boundaries — and
                # hence every block-assembly decision — translation-
                # invariant under steady-state fast-forward.
                self._c_list = [self._snap(c) for c in self._profile.c.tolist()]
                self._c_order = sorted(
                    range(len(self._c_list)), key=self._c_list.__getitem__
                )
            self._c_abs = [self._backward_start + c for c in self._c_list]
            self._c_ptr = 0

    def _boundary(self, now: float) -> float:
        """Absolute time of the next predicted generation among gradients
        not yet signalled (``max(min c(i), now)``, ``inf`` if none pending).

        Gradients only ever *become* signalled within an iteration, so a
        pointer over the c-sorted order advances monotonically and the
        masked min is the first unsignalled entry — no numpy temporaries.
        """
        signalled = self._signalled
        order = self._c_order
        ptr = self._c_ptr
        n = len(order)
        while ptr < n and signalled[order[ptr]]:
            ptr += 1
        self._c_ptr = ptr
        if ptr == n:
            return math.inf
        b = self._c_abs[order[ptr]]
        return b if b > now else now

    def gradient_ready(self, grad: int, now: float) -> None:
        super().gradient_ready(grad, now)
        assert self._signalled is not None
        self._signalled[grad] = True
        self._fallback_queue.append(grad)
        if self._profiler is not None and self._profile is None:
            self._profiler.observe(grad, max(0.0, now - self._backward_start))
        elif self._profile is not None and self.stale_tolerance is not None:
            # Plan-vs-reality drift: accumulate |observed - c(i)| weighted
            # against the profile's own timescale.
            expected = float(self._profile.c[grad])
            observed = max(0.0, now - self._backward_start)
            self._drift_err += abs(observed - expected)
            self._drift_base += max(expected, self._eps)

    def end_iteration(self, iteration: int, iteration_time: float, now: float) -> None:
        if (
            self._profile is not None
            and self.stale_tolerance is not None
            and self._drift_base > 0
        ):
            drift = self._drift_err / self._drift_base
            if drift > self.stale_tolerance:
                self._stale_streak += 1
                if self._stale_streak >= self.stale_patience:
                    self._degrade(
                        "stale-profile", {"drift": drift, "iteration": iteration}
                    )
            else:
                self._stale_streak = 0
        if self._profiler is not None and self._profile is None:
            self._profiler.end_iteration()
            if self._profiler.ready:
                self._profile = self._profiler.build()

    def _degrade(self, reason: str, detail: dict) -> None:
        """Abandon the current plan: re-profile or lock into FIFO."""
        if reason == "stale-profile":
            self.stale_detections += 1
        else:
            self.collapse_detections += 1
        self.fallbacks += 1
        self._stale_streak = 0
        self._profile = None
        self._profiler = None
        if self.on_stale == "fifo":
            self._fifo_locked = True
        else:
            self.reprofiles += 1
        if self._notify is not None:
            self._notify(
                "prophet.fallback", {"reason": reason, "action": self.on_stale, **detail}
            )

    def pull_batch_limit(self, now: float) -> float | None:
        """Interval-aware pull batching.

        During backward propagation a pull response occupies the channel
        just like a push would, so its batch is sized to the remaining
        stepwise budget (at least one slice — a response cannot shrink
        below the data it already carries).  During the forward drain,
        batches are capped at ``pull_batch_bytes`` so parameters stream
        back smoothly to the layer-by-layer forward gate.
        """
        if self._profile is None or self._signalled is None or self._signalled[0]:
            return self.pull_batch_bytes
        boundary = self._boundary(now)
        if boundary == math.inf:
            return self.pull_batch_bytes
        budget = boundary - now - self._guard
        line_rate = self._bandwidth_provider() * self._tcp.goodput
        setup = self._tcp.fixed_overhead + self._tcp.handshake_rtts * self._tcp.rtt
        allowance = (budget - setup) * line_rate
        return max(self.slice_bytes, min(self.pull_batch_bytes * 4, allowance))

    # ------------------------------------------------------------------
    def _select(self, now: float) -> TransferUnit | None:
        if self._profile is None:
            return self._select_fallback()
        ready = self.ready_grads
        if not ready:
            return None

        # Line 17: gradient 0 travels alone, the instant it is ready.
        if ready[0] == 0:
            return TransferUnit(segments=(self._segment_for(0, math.inf),))

        assert self._signalled is not None
        if self._signalled[0]:
            # Forward phase (gradient 0 already generated): drain by
            # priority in bounded blocks (Constraint 9).
            segments: list[Segment] = []
            nbytes = 0.0
            for q in ready:
                rem = self.remaining_bytes(q)
                if segments and nbytes + rem > self.forward_block_bytes:
                    break
                segments.append(self._segment_for(q, rem))
                nbytes += rem
            return TransferUnit(segments=tuple(segments))

        # Backward phase: block assembly against the predicted boundary.
        # budget is inf when nothing is pending (boundary == inf) and
        # >= -guard otherwise (the boundary is clamped to now).
        boundary = self._boundary(now)
        budget = boundary - now - self._guard
        bandwidth = self._bandwidth_provider()
        # The warm path is affine in bytes (setup + bytes/line-rate), so
        # the interval budget inverts exactly to a byte allowance for the
        # whole block (round trip: push and its mirrored pull both fit).
        line_rate = bandwidth * self._tcp.goodput
        setup = self._tcp.fixed_overhead + self._tcp.handshake_rtts * self._tcp.rtt
        allowance = (budget / self.round_trip_factor - setup) * line_rate
        if allowance <= 0:
            return None  # protect the imminent higher-priority gradients
        segments = []
        nbytes = 0.0
        for q in ready:
            rem = self.remaining_bytes(q)
            if nbytes + rem <= allowance:
                segments.append(self._segment_for(q, rem))
                nbytes += rem
                continue
            # Partial fill: slice the first non-fitting gradient so the
            # residual interval is not wasted (Fig. 5's "two partitions of
            # gradient 1"), then stop — no lower-priority bytes may pass.
            slices = int((allowance - nbytes) // self.slice_bytes)
            take = min(rem, slices * self.slice_bytes)
            if take > 0:
                segments.append(self._segment_for(q, take))
            break
        if not segments:
            return None
        return TransferUnit(segments=tuple(segments))

    def _select_fallback(self) -> TransferUnit | None:
        """Warmup behaviour: default FIFO whole-tensor transmission."""
        while self._fallback_queue and self.remaining_bytes(self._fallback_queue[0]) <= 0:
            self._fallback_queue.popleft()
        if not self._fallback_queue:
            return None
        grad = self._fallback_queue[0]
        return TransferUnit(segments=(self._segment_for(grad, math.inf),))

    def _committed(self, unit: TransferUnit, now: float) -> None:
        if self._profile is None and self._fallback_queue:
            if self._fallback_queue[0] == unit.segments[0].grad:
                self._fallback_queue.popleft()

    # ------------------------------------------------------------------
    # Steady-state fast-forward protocol (repro.sim.fastforward)
    # ------------------------------------------------------------------
    #: Monotone counters extrapolated linearly at engagement (they are
    #: excluded from the fingerprint, so steady growth — e.g.
    #: ``planned_iterations`` rising by the period each cycle — does not
    #: defeat period detection).
    ff_counters = (
        "planned_iterations",
        "stale_detections",
        "collapse_detections",
        "fallbacks",
        "reprofiles",
    )

    def ff_state(self, ctx) -> tuple:
        profiler = self._profiler
        return super().ff_state(ctx) + (
            ctx.rel(self._backward_start),
            None if self._signalled is None else tuple(self._signalled),
            tuple(self._fallback_queue),
            self._profile is not None,
            self._c_src is self._profile,
            tuple(self._c_list),
            self._c_ptr,
            self._stale_streak,
            self._drift_err,
            self._drift_base,
            self._reference_bandwidth,
            self._fifo_locked,
            # Warmup progress: strictly growing while the profiler runs,
            # so no two warmup boundaries can fingerprint-match and the
            # fast-forward can only engage on the planned steady state.
            None
            if profiler is None
            else (profiler.iterations_observed, len(profiler._current)),
        )

    def ff_shift(self, shift) -> None:
        super().ff_shift(shift)
        self._backward_start += shift.dt
        # Recomputed, not shifted in place: ``_backward_start + c`` is
        # exact grid arithmetic, so this reproduces exactly the values the
        # unrolled run's begin_iteration would have computed.
        self._c_abs = [self._backward_start + c for c in self._c_list]

    def describe_unit(self, unit: TransferUnit) -> dict[str, object]:
        """Label each block with the Algorithm-1 phase that assembled it."""
        desc = super().describe_unit(unit)
        if self._profile is None:
            phase = "warmup-fifo"
        elif unit.grads == (0,):
            phase = "gradient0"  # line 17: pushed alone, immediately
        elif self._signalled is not None and self._signalled[0]:
            phase = "forward-drain"
        else:
            phase = "backward-block"
        desc["phase"] = phase
        desc["planned"] = self._profile is not None
        return desc
