"""ByteScheduler (Peng et al., SOSP 2019): credit-based priority scheduling.

ByteScheduler slices gradients into partitions (like P3) and regulates the
channel with a *credit*: a byte budget of **outstanding** work — partitions
whose push has been sent but whose updated parameters have not yet
returned from the PS.  Sends are batches of the highest-priority ready
partitions up to the unconsumed credit; each returning pull replenishes
it.  The credit therefore arbitrates a genuine trade-off:

* small credit → fine preemption, but the pipeline stalls whenever the
  push→aggregate→pull feedback loop is slower than generation (the
  low-bandwidth regime), and per-message overhead grows;
* large credit → deep pipeline, but a freshly generated high-priority
  gradient waits behind up to a credit's worth of in-flight bytes.

Because the credit is a *fixed* byte value, no single setting suits all
bandwidths — the gap Prophet's interval-derived blocks close (paper
Sec. 3, "the fixed and auto-tuned hyperparameters of ByteScheduler are not
designed to minimize Σ(u(i) − p(i−1))⁺").

Two operating modes, matching the paper's usage:

* **fixed credit** (``auto_tune=False``) — the paper's main baselines run
  BytePS "with a default credit size" because auto-tuning degrades the
  first ~1,000 iterations;
* **Bayesian auto-tuning** (``auto_tune=True``) — every ``tune_every``
  iterations the measured iteration time is reported to a
  :class:`~repro.bayesopt.BayesianOptimizer` and a new credit is adopted,
  reproducing the 3→13 MB excursions and rate fluctuation of Fig. 3(b).
"""

from __future__ import annotations

import numpy as np

from repro.agg.kvstore import GenerationSchedule
from repro.bayesopt import BayesianOptimizer
from repro.errors import ConfigurationError
from repro.quantities import MB
from repro.sched.base import CommScheduler, Segment, TransferUnit

__all__ = ["ByteSchedulerScheduler"]


class ByteSchedulerScheduler(CommScheduler):
    """Credit-sized batches of priority-ordered partitions."""

    name = "bytescheduler"
    #: Opts out of steady-state fast-forward: the per-iteration
    #: ``credit_history`` log (and the Bayesian tuner when auto_tune is
    #: on) is unbounded cross-iteration state that a periodic snapshot
    #: cannot canonicalise; eligible runs fall back to plain unrolling.
    ff_supported = False

    def __init__(
        self,
        credit: float = 12 * MB,
        partition_size: float = 4 * MB,
        auto_tune: bool = False,
        tune_every: int = 5,
        credit_bounds: tuple[float, float] = (1 * MB, 16 * MB),
        rng: np.random.Generator | None = None,
    ):
        if credit <= 0:
            raise ConfigurationError(f"credit must be positive, got {credit}")
        if partition_size <= 0:
            raise ConfigurationError(
                f"partition_size must be positive, got {partition_size}"
            )
        if tune_every < 1:
            raise ConfigurationError(f"tune_every must be >= 1, got {tune_every}")
        super().__init__()
        self.credit = float(credit)
        self.partition_size = float(partition_size)
        self.auto_tune = auto_tune
        self.tune_every = tune_every
        self._optimizer: BayesianOptimizer | None = None
        if auto_tune:
            low, high = credit_bounds
            self._optimizer = BayesianOptimizer(low=low, high=high, rng=rng)
            self.credit = self._optimizer.suggest()
        self._window_times: list[float] = []
        self._outstanding = 0.0
        self._probe_allowance = 0.0
        #: (iteration, credit) history — drives the Fig. 3(b) reproduction.
        self.credit_history: list[tuple[int, float]] = []

    # ------------------------------------------------------------------
    def begin_iteration(
        self, iteration: int, schedule: GenerationSchedule, now: float
    ) -> None:
        super().begin_iteration(iteration, schedule, now)
        self._outstanding = 0.0
        self._probe_allowance = 0.0
        self.credit_history.append((iteration, self.credit))

    def _select(self, now: float) -> TransferUnit | None:
        ready = self.ready_grads
        if not ready:
            return None
        # The unconsumed credit bounds this send; zero credit stalls the
        # push stream until pulls replenish it (flow control).  Stall
        # probes granted by the worker temporarily extend the window.
        budget = self.credit + self._probe_allowance - self._outstanding
        if budget <= 0:
            return None
        # Batch the most urgent ready bytes, walking gradients in priority
        # order.  Partitions are the scheduling atoms: a gradient tail
        # shorter than a partition still forms one atom, and the batch is
        # cut at the credit boundary.
        segments: list[Segment] = []
        for grad in ready:
            if budget <= 0:
                break
            remaining = self.remaining_bytes(grad)
            take = min(remaining, budget)
            # Quantize up to whole partitions where the budget allows, so a
            # nearly-exhausted credit doesn't emit sub-partition slivers.
            if take < remaining:
                atoms = max(1, int(take // self.partition_size))
                take = min(remaining, atoms * self.partition_size)
            offset = self.size_of(grad) - remaining
            segments.append(Segment(grad=grad, offset=offset, nbytes=take))
            budget -= take
        if not segments:
            return None
        return TransferUnit(segments=tuple(segments))

    def pull_batch_limit(self, now: float) -> float | None:
        return self.credit

    def _committed(self, unit: TransferUnit, now: float) -> None:
        self._outstanding += unit.total_bytes

    def pull_completed(self, grad: int, nbytes: float, now: float) -> None:
        self._outstanding = max(0.0, self._outstanding - nbytes)
        self._probe_allowance = 0.0  # feedback restored

    def grant_probe(self, now: float) -> None:
        self._probe_allowance += self.partition_size

    def describe_unit(self, unit: TransferUnit) -> dict[str, object]:
        desc = super().describe_unit(unit)
        # Window state at commit time: how much of the credit this batch
        # consumes explains both deep-pipeline wins and preemption stalls.
        desc["credit_bytes"] = self.credit
        desc["outstanding_bytes"] = self._outstanding
        desc["auto_tune"] = self.auto_tune
        return desc

    # ------------------------------------------------------------------
    def end_iteration(self, iteration: int, iteration_time: float, now: float) -> None:
        if self._optimizer is None:
            return
        self._window_times.append(iteration_time)
        if len(self._window_times) < self.tune_every:
            return
        objective = float(np.mean(self._window_times))
        self._window_times.clear()
        self._optimizer.observe(self.credit, objective)
        self.credit = self._optimizer.suggest()
