"""Communication schedulers.

Four strategies, matching the paper's evaluation:

* :class:`~repro.sched.fifo.FIFOScheduler` — default MXNet: whole tensors
  in generation (FIFO) order.
* :class:`~repro.sched.p3.P3Scheduler` — P3 (Jayarajan et al., MLSys'19):
  fixed-size partitions, strict priority, one partition per message.
* :class:`~repro.sched.bytescheduler.ByteSchedulerScheduler` —
  ByteScheduler (Peng et al., SOSP'19): credit-sized batches of
  priority-ordered partitions, credit optionally auto-tuned by Bayesian
  optimization.
* :class:`~repro.sched.prophet_sched.ProphetScheduler` — the paper's
  contribution: profile-driven gradient blocks sized to the stepwise
  pattern's inter-block intervals (Algorithm 1).

All schedulers implement :class:`~repro.sched.base.CommScheduler`; the unit
they emit is a :class:`~repro.sched.base.TransferUnit` — one serialized
network message paying one TCP setup, containing segments of one or more
gradients.
"""

from repro.sched.base import CommScheduler, Segment, TransferUnit
from repro.sched.fifo import FIFOScheduler
from repro.sched.p3 import P3Scheduler
from repro.sched.bytescheduler import ByteSchedulerScheduler
from repro.sched.prophet_sched import ProphetScheduler
from repro.sched.mgwfbp import MGWFBPScheduler

__all__ = [
    "CommScheduler",
    "Segment",
    "TransferUnit",
    "FIFOScheduler",
    "P3Scheduler",
    "ByteSchedulerScheduler",
    "ProphetScheduler",
    "MGWFBPScheduler",
]
