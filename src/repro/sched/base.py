"""Scheduler interface and shared bookkeeping.

The worker's communication agent drives its scheduler through three hooks:

* :meth:`CommScheduler.begin_iteration` — backward propagation is starting;
  the per-iteration push state resets (all of the previous iteration's
  traffic is necessarily finished by then, because the next backward pass
  can only start after the next forward pass, which needs every parameter).
* :meth:`CommScheduler.gradient_ready` — the KV store flushed gradient
  ``i``; it may now be pushed.
* :meth:`CommScheduler.next_unit` — the uplink is idle; return the next
  :class:`TransferUnit` to send, or ``None`` to deliberately leave the link
  idle (Prophet does this to protect an imminent higher-priority gradient).

A :class:`TransferUnit` is one serialized network message: it pays one TCP
setup (handshake + slow start) regardless of how many gradient segments it
carries.  This is the cost model that separates the four strategies — P3
pays setup per small partition, ByteScheduler per credit batch, Prophet per
stepwise block, FIFO per whole tensor.

The base class tracks remaining un-pushed bytes per gradient and the ready
set, and enforces the scheduler contract (no pushing gradients that are not
ready, no double-sending bytes) so concrete strategies contain only policy.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass

import numpy as np

from repro.agg.kvstore import GenerationSchedule
from repro.errors import SchedulingError

__all__ = ["Segment", "TransferUnit", "CommScheduler"]


@dataclass(frozen=True, slots=True)
class Segment:
    """A contiguous byte range of one gradient inside a transfer unit."""

    grad: int
    offset: float
    nbytes: float

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise SchedulingError(f"segment of gradient {self.grad} has no bytes")
        if self.offset < 0:
            raise SchedulingError(f"segment of gradient {self.grad} has offset < 0")


@dataclass(frozen=True, slots=True)
class TransferUnit:
    """One network message: an ordered tuple of gradient segments."""

    segments: tuple[Segment, ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise SchedulingError("empty transfer unit")

    @property
    def total_bytes(self) -> float:
        return sum(s.nbytes for s in self.segments)

    @property
    def priority(self) -> int:
        """Unit priority = most urgent gradient it carries (min index)."""
        return min(s.grad for s in self.segments)

    @property
    def grads(self) -> tuple[int, ...]:
        return tuple(s.grad for s in self.segments)


class CommScheduler:
    """Base class: ready-set bookkeeping plus the strategy hook.

    Subclasses implement :meth:`_select` which sees the ready gradients
    (those with un-pushed bytes) and returns the next unit.

    The worker uses a propose/commit protocol: :meth:`propose_unit` returns
    the unit the scheduler *would* send without consuming it; if the worker
    picks the push over a pending pull it calls :meth:`commit_unit`, which
    validates the unit and debits its bytes.  (Push and pull share one
    serialized channel — the paper's Constraint (8) and the ``2E`` in
    Eq. (4) — so the worker must arbitrate between them.)
    """

    #: Human-readable strategy name (used in reports and legends).
    name: str = "base"

    #: True for strategies whose channel is a pure arrival-order queue
    #: (default MXNet).  The worker then interleaves pushes and pulls
    #: FIFO instead of by priority.
    fifo_channel: bool = False

    #: Extra RTTs of blocking synchronization charged per message in each
    #: direction.  0 for pipelined engines (MXNet streams sends; BytePS's
    #: credit keeps the window full); P3/TicTac "rely on the blocking call
    #: of TCP protocol" (paper Sec. 6.1) and pay a stop-and-wait
    #: round trip per partition — the mechanism behind Fig. 3(a).
    unit_sync_rtts: float = 0.0

    #: Whether the strategy supports steady-state fast-forward
    #: (repro.sim.fastforward): its decision state must be fully captured
    #: by :meth:`ff_state` and translation-invariant on the time-quantum
    #: grid.  Strategies with hidden cross-iteration randomness or
    #: unbounded learning state (ByteScheduler's Bayesian tuner) opt out.
    ff_supported: bool = True

    def __init__(self) -> None:
        self._sizes: np.ndarray | None = None
        self._sizes_list: list[float] | None = None
        self._remaining: dict[int, float] = {}
        self._ready: set[int] = set()
        #: ``sorted(self._remaining)`` maintained incrementally (insort on
        #: ready, bisect-removal on full send) so the per-decision
        #: ``ready_grads`` walk needs no per-call sort.
        self._ready_order: list[int] = []
        #: Running total of ``self._remaining.values()`` — only its sign is
        #: load-bearing (idle/stall detection), so incremental float drift
        #: is fine; it snaps to exactly 0.0 whenever the dict empties.
        self._pending_acc = 0.0
        self._iteration = -1
        # Time-quantum grid (steady-state fast-forward): strategies that
        # derive *absolute* times from relative predictions snap the
        # relative parts onto the grid so the sums stay exact.
        self._quantum: float | None = None
        self._inv_quantum = 0.0

    # ------------------------------------------------------------------
    # Lifecycle hooks (called by the worker)
    # ------------------------------------------------------------------
    def begin_iteration(
        self, iteration: int, schedule: GenerationSchedule, now: float
    ) -> None:
        """Reset push state for a new iteration's gradient set."""
        if self._remaining:
            raise SchedulingError(
                f"iteration {self._iteration} still has unsent gradients "
                f"{sorted(self._remaining)[:5]}... when iteration {iteration} begins"
            )
        self._iteration = iteration
        self._sizes = schedule.sizes
        self._sizes_list = schedule.sizes.tolist()
        self._ready = set()
        self._ready_order = []
        self._pending_acc = 0.0

    def gradient_ready(self, grad: int, now: float) -> None:
        """Gradient ``grad`` flushed from the KV store and can be pushed."""
        if self._sizes is None:
            raise SchedulingError("gradient_ready before begin_iteration")
        if grad in self._ready or grad in self._remaining:
            raise SchedulingError(f"gradient {grad} signalled ready twice")
        self._ready.add(grad)
        size = self._sizes_list[grad]
        self._remaining[grad] = size
        insort(self._ready_order, grad)
        self._pending_acc += size

    def propose_unit(self, now: float) -> TransferUnit | None:
        """The unit the scheduler would push now (``None`` = idle the link).

        Does **not** consume state; the worker must call
        :meth:`commit_unit` if it actually sends the proposal.
        """
        if not self._remaining:
            return None
        return self._select(now)

    def commit_unit(self, unit: TransferUnit, now: float) -> None:
        """Accept a previously proposed unit: validate and debit its bytes."""
        self._consume(unit)
        self._committed(unit, now)

    def unit_sent(self, unit: TransferUnit, now: float) -> None:
        """Notification that ``unit`` finished transmitting (optional hook)."""

    def pull_completed(self, grad: int, nbytes: float, now: float) -> None:
        """Notification that ``nbytes`` of ``grad``'s updated parameters
        arrived back from the PS (optional hook — ByteScheduler's credit
        flow control replenishes on this signal)."""

    def grant_probe(self, now: float) -> None:
        """The channel has been idle with no feedback for a while; a
        flow-controlled scheduler may extend its window by one unit.

        Credit-style flow control across BSP workers can deadlock when
        workers' send orders diverge (each worker's outstanding window
        missing segments another worker is withholding).  Real engines
        break such stalls with asynchronous timeouts; the worker calls
        this hook after ``stall_timeout`` of forced idleness.  Default:
        no-op (only window-based strategies need it)."""

    def end_iteration(self, iteration: int, iteration_time: float, now: float) -> None:
        """Notification of a completed iteration (for auto-tuners)."""

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def describe_unit(self, unit: TransferUnit) -> dict[str, object]:
        """Strategy metadata attached to the unit's trace spans.

        The worker calls this (only while tracing) when it commits a push,
        and stores the result in the block-assembly and transfer spans.
        Subclasses extend the base payload with the knobs that explain
        *why* this unit looks the way it does — partition size, credit,
        predicted interval phase — so a Perfetto view of two strategies is
        directly comparable.
        """
        return {
            "strategy": self.name,
            "grads": list(unit.grads),
            "nbytes": unit.total_bytes,
            "priority": unit.priority,
            "segments": len(unit.segments),
        }

    # ------------------------------------------------------------------
    # State helpers available to strategies
    # ------------------------------------------------------------------
    @property
    def ready_grads(self) -> list[int]:
        """Ready gradients with un-pushed bytes, most urgent first."""
        return list(self._ready_order)

    def remaining_bytes(self, grad: int) -> float:
        """Un-pushed bytes of ``grad`` (0 when fully sent or not ready)."""
        return self._remaining.get(grad, 0.0)

    @property
    def pending_bytes(self) -> float:
        """Total un-pushed bytes across ready gradients."""
        if not self._remaining:
            return 0.0
        return self._pending_acc

    def size_of(self, grad: int) -> float:
        """Full size of gradient ``grad`` in bytes."""
        if self._sizes_list is None:
            raise SchedulingError("size_of before begin_iteration")
        return self._sizes_list[grad]

    # ------------------------------------------------------------------
    # Steady-state fast-forward protocol (repro.sim.fastforward)
    # ------------------------------------------------------------------
    def set_time_quantum(self, quantum: float | None) -> None:
        """Adopt the engine's time-quantum grid (trainer wiring)."""
        self._quantum = quantum
        self._inv_quantum = 0.0 if quantum is None else 1.0 / quantum

    def _snap(self, duration: float) -> float:
        """Round a predicted duration onto the grid (identity without a
        quantum)."""
        inv = self._inv_quantum
        if inv:
            return round(duration * inv) * self._quantum
        return duration

    def ff_state(self, ctx) -> tuple:
        """Canonical time-relative snapshot of the shared bookkeeping.

        Subclasses with extra decision state extend the tuple.
        """
        return (
            ctx.rel_iter(self._iteration),
            tuple(sorted(self._remaining.items())),
            tuple(self._ready_order),
            tuple(sorted(self._ready)),
            self._pending_acc,
        )

    def ff_shift(self, shift) -> None:
        """Translate iteration labels (and, in subclasses, any absolute
        times) by the skipped cycles."""
        self._iteration += shift.diter

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def pull_batch_limit(self, now: float) -> float | None:
        """Max bytes of pending pull responses coalesced into one message.

        ``None`` means per-key pulls (one segment per message — the MXNet
        and P3 behaviour).  Credit/block strategies return their unit size
        so pull-direction message overhead matches the push direction;
        Prophet additionally bounds the batch by the time remaining before
        the next predicted generation burst (a long pull response would
        delay the burst's push just like a long push would).
        """
        return None

    def _select(self, now: float) -> TransferUnit | None:
        raise NotImplementedError

    def _committed(self, unit: TransferUnit, now: float) -> None:
        """Subclass hook fired when a proposal is committed (e.g. to pop
        strategy-internal queues).  Default: nothing."""

    def _consume(self, unit: TransferUnit) -> None:
        """Validate the unit against ready state and debit its bytes."""
        for seg in unit.segments:
            if seg.grad not in self._remaining:
                raise SchedulingError(
                    f"unit pushes gradient {seg.grad} which is not ready "
                    f"(or already fully sent)"
                )
            remaining = self._remaining[seg.grad]
            sent_so_far = self.size_of(seg.grad) - remaining
            if abs(seg.offset - sent_so_far) > 1e-9:
                raise SchedulingError(
                    f"gradient {seg.grad}: segment offset {seg.offset} does not "
                    f"continue from {sent_so_far} (out-of-order or double send)"
                )
            if seg.nbytes > remaining + 1e-9:
                raise SchedulingError(
                    f"gradient {seg.grad}: segment of {seg.nbytes} B exceeds "
                    f"remaining {remaining} B"
                )
            new_remaining = remaining - seg.nbytes
            if new_remaining <= 1e-9:
                del self._remaining[seg.grad]
                self._remove_ready(seg.grad)
                # Drop the full leftover (incl. the sub-tolerance residual)
                # so the accumulator tracks the dict, not the raw debits.
                self._pending_acc -= remaining
            else:
                self._remaining[seg.grad] = new_remaining
                self._pending_acc -= seg.nbytes

    def _remove_ready(self, grad: int) -> None:
        """Remove ``grad`` from the maintained sorted ready order."""
        order = self._ready_order
        idx = bisect_left(order, grad)
        if idx < len(order) and order[idx] == grad:
            order.pop(idx)

    # ------------------------------------------------------------------
    # Segment-construction helpers shared by partitioned strategies
    # ------------------------------------------------------------------
    def _segment_for(self, grad: int, nbytes: float) -> Segment:
        """Next contiguous segment of ``grad`` of at most ``nbytes``."""
        remaining = self._remaining[grad]
        offset = self.size_of(grad) - remaining
        return Segment(grad=grad, offset=offset, nbytes=min(nbytes, remaining))
