"""P3: Priority-based Parameter Propagation (Jayarajan et al., MLSys 2019).

P3 slices every gradient into fixed-size partitions and transmits them
strictly by priority, one partition per message.  Small partitions give
fine-grained preemption — a freshly generated gradient 0 waits at most one
partition — but every partition pays the full TCP setup and slow-start
cost, so small partition sizes collapse the achieved bandwidth (the paper's
Fig. 3(a), and the Table 2 low-bandwidth regime where P3 falls behind).

The paper's evaluation sets P3's partition size to 4 MB.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.quantities import MB
from repro.sched.base import CommScheduler, TransferUnit

__all__ = ["P3Scheduler"]


class P3Scheduler(CommScheduler):
    """Fixed-size partitions, strict priority, one partition per message."""

    name = "p3"

    def __init__(self, partition_size: float = 4 * MB, sync_rtts: float = 2.0):
        if partition_size <= 0:
            raise ConfigurationError(
                f"partition_size must be positive, got {partition_size}"
            )
        if sync_rtts < 0:
            raise ConfigurationError(f"sync_rtts must be >= 0, got {sync_rtts}")
        super().__init__()
        self.partition_size = float(partition_size)
        # P3 serializes a blocking request/response per partition.
        self.unit_sync_rtts = float(sync_rtts)

    def _select(self, now: float) -> TransferUnit | None:
        ready = self.ready_grads
        if not ready:
            return None
        grad = ready[0]  # most urgent
        seg = self._segment_for(grad, self.partition_size)
        return TransferUnit(segments=(seg,))

    def describe_unit(self, unit: TransferUnit) -> dict[str, object]:
        desc = super().describe_unit(unit)
        seg = unit.segments[0]
        desc["partition_bytes"] = self.partition_size
        desc["partition_index"] = int(seg.offset // self.partition_size)
        return desc
