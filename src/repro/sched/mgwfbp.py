"""MG-WFBP: Merged-Gradient Wait-Free Backpropagation (Shi et al.,
INFOCOM 2019) — a related-work baseline (paper Sec. 6.2).

MG-WFBP starts from wait-free backpropagation (FIFO order, fully
overlapped) and *merges* consecutive gradient transfers whenever the
per-message startup cost makes separate sends slower than one combined
send.  Unlike Prophet it is priority-blind: merging happens in generation
order, so a merged message can still block the critical gradient 0 — it
optimizes network efficiency, not preemption.

The merge rule follows the MG-WFBP insight: sending two tensors
separately costs ``2·a + (s1+s2)/B`` while merged costs ``a + (s1+s2)/B``
(``a`` = per-message startup), so merging is always bandwidth-profitable;
what bounds the merge is *timeliness* — waiting for the next gradient to
be generated delays the bytes already in hand.  We merge the pending
window and dispatch when either (a) the accumulated bytes exceed
``merge_bytes`` (so each message amortizes its startup well below 1 %) or
(b) dispatching is free because the channel just became idle anyway.
"""

from __future__ import annotations

from collections import deque

from repro.agg.kvstore import GenerationSchedule
from repro.errors import ConfigurationError
from repro.quantities import MB
from repro.sched.base import CommScheduler, Segment, TransferUnit

__all__ = ["MGWFBPScheduler"]


class MGWFBPScheduler(CommScheduler):
    """Generation-order transmission with merged-gradient messages."""

    name = "mg-wfbp"

    def __init__(self, merge_bytes: float = 16 * MB):
        if merge_bytes <= 0:
            raise ConfigurationError(f"merge_bytes must be positive, got {merge_bytes}")
        super().__init__()
        self.merge_bytes = float(merge_bytes)
        self._queue: deque[int] = deque()

    def begin_iteration(
        self, iteration: int, schedule: GenerationSchedule, now: float
    ) -> None:
        super().begin_iteration(iteration, schedule, now)
        self._queue.clear()

    def gradient_ready(self, grad: int, now: float) -> None:
        super().gradient_ready(grad, now)
        self._queue.append(grad)

    def pull_batch_limit(self, now: float) -> float | None:
        return self.merge_bytes

    def _select(self, now: float) -> TransferUnit | None:
        if not self._queue:
            return None
        # Merge the generation-order window up to merge_bytes.  The channel
        # only asks when idle, so dispatching whatever is in hand never
        # delays earlier bytes (the wait-free property); the cap just
        # bounds how long one message can occupy the channel.
        segments: list[Segment] = []
        total = 0.0
        for grad in self._queue:
            size = self.size_of(grad)
            if segments and total + size > self.merge_bytes:
                break
            segments.append(Segment(grad=grad, offset=0.0, nbytes=size))
            total += size
        return TransferUnit(segments=tuple(segments))

    def _committed(self, unit: TransferUnit, now: float) -> None:
        for seg in unit.segments:
            head = self._queue.popleft()
            if head != seg.grad:  # pragma: no cover - defensive
                raise AssertionError("MG-WFBP commit does not match queue head")

    def describe_unit(self, unit: TransferUnit) -> dict[str, object]:
        desc = super().describe_unit(unit)
        desc["merge_bytes"] = self.merge_bytes
        desc["merged_tensors"] = len(unit.segments)
        return desc

    def ff_state(self, ctx) -> tuple:
        return super().ff_state(ctx) + (tuple(self._queue),)
