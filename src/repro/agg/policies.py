"""Aggregation (bucketing) policies.

A policy decides which gradients the key-value store flushes together —
the mechanism behind the paper's stepwise pattern.  Input is the gradient
table and each gradient's *raw* backward completion time; output is the
list of flush buckets in generation order (backward walks layers in
reverse, so generation order is descending gradient index).

Policies model the aggregation behaviours named in the paper:

* :class:`TimeWindowPolicy` — copyD2H / send-buffer batching: gradients
  landing within a time window are flushed together (MXNet-like default).
* :class:`ByteThresholdPolicy` — fusion-buffer batching by size
  (Horovod-like).
* :class:`LayerCountPolicy` — flush every N parameterized layers.
* :class:`ModulePrefixPolicy` — flush at module boundaries (e.g. each
  ResNet residual block), matching the block structure visible in Fig. 4.
* :class:`ExplicitGroupsPolicy` — caller-specified groups, used to pin the
  exact VGG-19 4-block structure reported by the paper.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.models.gradients import GradientSpec
from repro.models.layers import ModelSpec

__all__ = [
    "AggregationPolicy",
    "TimeWindowPolicy",
    "ByteThresholdPolicy",
    "LayerCountPolicy",
    "ModulePrefixPolicy",
    "ExplicitGroupsPolicy",
]


class AggregationPolicy(Protocol):
    """Groups gradients into flush buckets.

    ``raw_times[i]`` is gradient ``i``'s backward completion time measured
    from the start of backward propagation.  The result must be a partition
    of all gradient indices; buckets and their members must be in
    generation order (descending gradient index).
    """

    def buckets(
        self,
        model: ModelSpec,
        grads: Sequence[GradientSpec],
        raw_times: np.ndarray,
    ) -> list[list[int]]:
        """Partition gradient indices into flush buckets."""
        ...


def _generation_order(grads: Sequence[GradientSpec]) -> list[int]:
    """Gradient indices in the order backward propagation produces them."""
    return [g.index for g in sorted(grads, key=lambda g: -g.index)]


class TimeWindowPolicy:
    """Flush when the next gradient lands more than ``window`` seconds after
    the bucket's first gradient.

    ``window`` represents the copyD2H/send-buffer batching horizon; larger
    windows give fewer, bigger steps.
    """

    def __init__(self, window: float):
        if window < 0:
            raise ConfigurationError(f"window must be >= 0, got {window}")
        self.window = window

    def buckets(
        self, model: ModelSpec, grads: Sequence[GradientSpec], raw_times: np.ndarray
    ) -> list[list[int]]:
        order = _generation_order(grads)
        out: list[list[int]] = []
        current: list[int] = []
        bucket_start = None
        for idx in order:
            t = float(raw_times[idx])
            if bucket_start is None or t - bucket_start > self.window:
                if current:
                    out.append(current)
                current = [idx]
                bucket_start = t
            else:
                current.append(idx)
        if current:
            out.append(current)
        return out


class ByteThresholdPolicy:
    """Flush once the bucket has accumulated at least ``threshold`` bytes."""

    def __init__(self, threshold: float):
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be positive, got {threshold}")
        self.threshold = threshold

    def buckets(
        self, model: ModelSpec, grads: Sequence[GradientSpec], raw_times: np.ndarray
    ) -> list[list[int]]:
        by_index = {g.index: g for g in grads}
        out: list[list[int]] = []
        current: list[int] = []
        acc = 0.0
        for idx in _generation_order(grads):
            current.append(idx)
            acc += by_index[idx].nbytes
            if acc >= self.threshold:
                out.append(current)
                current = []
                acc = 0.0
        if current:
            out.append(current)
        return out


class LayerCountPolicy:
    """Flush after every ``count`` parameterized layers."""

    def __init__(self, count: int):
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        self.count = count

    def buckets(
        self, model: ModelSpec, grads: Sequence[GradientSpec], raw_times: np.ndarray
    ) -> list[list[int]]:
        by_index = {g.index: g for g in grads}
        out: list[list[int]] = []
        current: list[int] = []
        layers_seen: set[int] = set()
        for idx in _generation_order(grads):
            layer = by_index[idx].layer_index
            if layer not in layers_seen and len(layers_seen) >= self.count:
                out.append(current)
                current = []
                layers_seen = set()
            current.append(idx)
            layers_seen.add(layer)
        if current:
            out.append(current)
        return out


class ModulePrefixPolicy:
    """Flush when the tensor-name prefix (first ``depth`` dot-separated
    components) changes — i.e. at module boundaries.

    With ``depth=2``, ResNet tensors group per residual block
    (``layer3.4.*``), producing block sizes of ~6–11 gradients: the
    granularity visible in the paper's Fig. 4 staircase.
    """

    def __init__(self, depth: int = 2):
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        self.depth = depth

    def _prefix(self, name: str) -> str:
        return ".".join(name.split(".")[: self.depth])

    def buckets(
        self, model: ModelSpec, grads: Sequence[GradientSpec], raw_times: np.ndarray
    ) -> list[list[int]]:
        by_index = {g.index: g for g in grads}
        out: list[list[int]] = []
        current: list[int] = []
        current_prefix: str | None = None
        for idx in _generation_order(grads):
            prefix = self._prefix(by_index[idx].name)
            if current_prefix is not None and prefix != current_prefix:
                out.append(current)
                current = []
            current.append(idx)
            current_prefix = prefix
        if current:
            out.append(current)
        return out


class ExplicitGroupsPolicy:
    """Caller-specified buckets (each a collection of gradient indices).

    Groups may be given in any order; they are sorted into generation order.
    The groups must exactly partition the gradient index space.
    """

    def __init__(self, groups: Sequence[Sequence[int]]):
        if not groups:
            raise ConfigurationError("groups must be non-empty")
        self._groups = [sorted(set(int(i) for i in g), reverse=True) for g in groups]
        flat = [i for g in self._groups for i in g]
        if len(flat) != len(set(flat)):
            raise ConfigurationError("groups overlap")

    def buckets(
        self, model: ModelSpec, grads: Sequence[GradientSpec], raw_times: np.ndarray
    ) -> list[list[int]]:
        flat = sorted(i for g in self._groups for i in g)
        expected = sorted(g.index for g in grads)
        if flat != expected:
            raise ConfigurationError(
                "explicit groups must partition all gradient indices "
                f"(got {len(flat)} indices, expected {len(expected)})"
            )
        # Generation order: bucket whose max index is largest flushes first.
        return sorted(self._groups, key=lambda g: -max(g))
