"""MG-WFBP optimal gradient fusion as an aggregation policy.

:class:`~repro.sched.mgwfbp.MGWFBPScheduler` merges transfers at *send*
time under a byte cap.  The original MG-WFBP algorithm (Shi et al.,
arXiv:1912.09268) goes further: it picks merge boundaries **offline**
from the profiled backward timeline and the network's per-message startup
cost, so fusion happens where it is provably free — where the next
gradient arrives before the bytes in hand could even begin transferring.

:class:`MGWFBPFusionPolicy` promotes that rule into the ``agg`` layer: it
is an :class:`~repro.agg.policies.AggregationPolicy`, so the KV store
itself flushes MG-WFBP's merged buckets and *every* scheduler (including
plain FIFO) transmits them as single messages.  The greedy timeline walk,
in generation order:

* track ``t_free`` — when the channel frees up from the buckets already
  dispatched — and the current bucket's flush time (its last gradient's
  generation time ``r``);
* merging the next gradient is **free** iff it is generated before the
  current bucket could start paying its startup:
  ``r_next <= max(t_free, flush) + startup``;
* otherwise close the bucket (it begins transferring) and start a new
  one.

``startup`` is the size-independent cost of one message on the modeled
TCP path — handshake, slow-start ramp, fixed overhead — i.e. the Eq. 10
small-message penalty that makes merging profitable in the first place.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.models.gradients import GradientSpec
from repro.models.layers import ModelSpec
from repro.net.tcp import TCPParams, transfer_time

__all__ = ["MGWFBPFusionPolicy"]


class MGWFBPFusionPolicy:
    """Merge-boundary selection from profiled compute/comm times.

    Parameters
    ----------
    tcp:
        TCP path parameters; the per-message startup is the cold-start
        transfer time of a single byte (pure setup, no payload).
    bandwidth:
        Link bandwidth in bytes/s used for the timeline walk.  For a
        collective backend divide by the executor's per-byte cost factor
        first (see ``EffectiveBandwidthView``).
    max_merge_bytes:
        Optional cap on a merged bucket (bounds channel occupancy per
        message, like the scheduler-side ``merge_bytes``).  ``None``
        means unbounded.
    """

    def __init__(
        self,
        tcp: TCPParams | None = None,
        bandwidth: float = 375e6,
        max_merge_bytes: float | None = None,
    ):
        if bandwidth <= 0:
            raise ConfigurationError(f"bandwidth must be positive, got {bandwidth}")
        if max_merge_bytes is not None and max_merge_bytes <= 0:
            raise ConfigurationError(
                f"max_merge_bytes must be positive, got {max_merge_bytes}"
            )
        self.tcp = tcp if tcp is not None else TCPParams()
        self.bandwidth = float(bandwidth)
        self.max_merge_bytes = max_merge_bytes
        #: Per-message startup: what one byte costs on a cold connection.
        self.startup = float(transfer_time(1.0, self.bandwidth, self.tcp, warm=False))

    def buckets(
        self,
        model: ModelSpec,
        grads: Sequence[GradientSpec],
        raw_times: np.ndarray,
    ) -> list[list[int]]:
        # Gradient indices in backward-generation order (descending index),
        # matching the other aggregation policies' bucket convention.
        order = [g.index for g in sorted(grads, key=lambda g: -g.index)]
        sizes = {g.index: float(g.nbytes) for g in grads}
        per_byte = 1.0 / self.bandwidth

        buckets: list[list[int]] = []
        current = [order[0]]
        current_bytes = sizes[order[0]]
        flush = float(raw_times[order[0]])
        t_free = 0.0
        for i in order[1:]:
            r_next = float(raw_times[i])
            fits = (
                self.max_merge_bytes is None
                or current_bytes + sizes[i] <= self.max_merge_bytes
            )
            if fits and r_next <= max(t_free, flush) + self.startup:
                # The gradient lands before the bucket in hand could get
                # past its message setup: merging costs no waiting and
                # saves one startup.
                current.append(i)
                current_bytes += sizes[i]
                flush = max(flush, r_next)
            else:
                start = max(t_free, flush)
                t_free = start + self.startup + current_bytes * per_byte
                buckets.append(current)
                current = [i]
                current_bytes = sizes[i]
                flush = r_next
        buckets.append(current)
        return buckets

    def __repr__(self) -> str:
        cap = (
            f", max_merge_bytes={self.max_merge_bytes:.0f}"
            if self.max_merge_bytes is not None
            else ""
        )
        return (
            f"MGWFBPFusionPolicy(bandwidth={self.bandwidth:.3g}, "
            f"startup={self.startup * 1e3:.3f}ms{cap})"
        )
