"""Key-value store aggregation: from compute profile to generation times.

:class:`KVStore` composes a :class:`~repro.models.compute.ComputeProfile`
with an :class:`~repro.agg.policies.AggregationPolicy` and aggregation
costs to produce a :class:`GenerationSchedule` — the per-gradient
communication-ready times ``c(i)`` (measured from the start of backward
propagation) whose staircase shape is the paper's stepwise pattern.

The flush of a bucket costs a fixed CPU overhead plus a per-byte cost
(``GroupKVPairsPush``-style grouping and device-to-host copy).  Aggregation
runs asynchronously on the CPU, so it delays when gradients reach the
network layer, not the GPU's backward pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.agg.policies import AggregationPolicy, TimeWindowPolicy
from repro.errors import ConfigurationError
from repro.models.compute import ComputeProfile
from repro.models.gradients import GradientSpec, gradient_table

__all__ = ["GenerationSchedule", "KVStore"]


@dataclass(frozen=True)
class GenerationSchedule:
    """Per-iteration gradient generation times for one worker.

    Attributes
    ----------
    c:
        ``c[i]`` = communication-ready time of gradient ``i`` in seconds
        from backward start (the paper's ``c^(i)``).
    raw:
        Raw backward completion times before aggregation delay.
    bucket_of:
        ``bucket_of[i]`` = flush-bucket id of gradient ``i`` (bucket 0
        flushes first).
    buckets:
        Gradient indices per bucket, in generation order.
    sizes:
        Gradient sizes in bytes, indexed by gradient.
    backward_time:
        Duration of the full backward pass (GPU-side).
    """

    c: np.ndarray
    raw: np.ndarray
    bucket_of: np.ndarray
    buckets: tuple[tuple[int, ...], ...]
    sizes: np.ndarray
    backward_time: float

    @property
    def num_gradients(self) -> int:
        return len(self.c)

    @property
    def num_blocks(self) -> int:
        return len(self.buckets)

    @cached_property
    def generation_order(self) -> np.ndarray:
        """Gradient indices in the order they become communication-ready.

        Ties in ``c`` (same bucket) break by descending index, matching the
        order backward propagation produced them.
        """
        idx = np.arange(self.num_gradients)
        return idx[np.lexsort((-idx, self.c))]

    def scaled(self, factor: float) -> "GenerationSchedule":
        """Schedule with all times multiplied by ``factor`` (compute jitter)."""
        return GenerationSchedule(
            c=self.c * factor,
            raw=self.raw * factor,
            bucket_of=self.bucket_of,
            buckets=self.buckets,
            sizes=self.sizes,
            backward_time=self.backward_time * factor,
        )


class KVStore:
    """Aggregating key-value store front-end of one worker.

    Parameters
    ----------
    policy:
        Bucketing policy; defaults to a 5 ms :class:`TimeWindowPolicy`.
    flush_fixed:
        Fixed seconds per bucket flush (grouping, dispatch).
    flush_per_byte:
        Seconds per byte of bucket content (aggregation + copyD2H).
    """

    def __init__(
        self,
        policy: AggregationPolicy | None = None,
        flush_fixed: float = 0.3e-3,
        flush_per_byte: float = 0.0,
    ):
        if flush_fixed < 0:
            raise ConfigurationError(f"flush_fixed must be >= 0, got {flush_fixed}")
        if flush_per_byte < 0:
            raise ConfigurationError(
                f"flush_per_byte must be >= 0, got {flush_per_byte}"
            )
        self.policy: AggregationPolicy = (
            policy if policy is not None else TimeWindowPolicy(5e-3)
        )
        self.flush_fixed = flush_fixed
        self.flush_per_byte = flush_per_byte

    def generation_schedule(self, profile: ComputeProfile) -> GenerationSchedule:
        """Compute ``c(i)`` for one iteration of ``profile``'s model."""
        grads = gradient_table(profile.model)
        if not grads:
            raise ConfigurationError(
                f"model {profile.model.name!r} has no trainable tensors"
            )
        layer_completion = profile.bwd_completion_times()
        raw = np.array([layer_completion[g.layer_index] for g in grads], dtype=float)
        sizes = np.array([g.nbytes for g in grads], dtype=float)

        buckets = self.policy.buckets(profile.model, grads, raw)
        self._validate_partition(buckets, grads)

        c = np.empty(len(grads), dtype=float)
        bucket_of = np.empty(len(grads), dtype=np.int64)
        prev_flush = -np.inf
        for b, bucket in enumerate(buckets):
            members = np.asarray(bucket, dtype=np.int64)
            flush = float(raw[members].max())
            flush += self.flush_fixed + self.flush_per_byte * float(sizes[members].sum())
            # Flushes are serialized on the aggregation thread: monotone.
            flush = max(flush, prev_flush)
            prev_flush = flush
            c[members] = flush
            bucket_of[members] = b
        return GenerationSchedule(
            c=c,
            raw=raw,
            bucket_of=bucket_of,
            buckets=tuple(tuple(b) for b in buckets),
            sizes=sizes,
            backward_time=profile.total_bwd,
        )

    @staticmethod
    def _validate_partition(
        buckets: list[list[int]], grads: list[GradientSpec]
    ) -> None:
        flat = [i for bucket in buckets for i in bucket]
        if sorted(flat) != sorted(g.index for g in grads):
            raise ConfigurationError(
                "aggregation policy did not produce a partition of gradients"
            )
        # Buckets must flush in generation order (descending index blocks).
        maxes = [max(bucket) for bucket in buckets]
        if maxes != sorted(maxes, reverse=True):
            raise ConfigurationError(
                "aggregation buckets are not in generation order"
            )
