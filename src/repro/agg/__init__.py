"""Gradient aggregation — the root cause of the stepwise pattern.

The paper (Sec. 2.2) traces the stepwise pattern of gradient transfer start
times to the key-value aggregation that DDNN frameworks perform before each
push: MXNet's ``GroupKVPairsPush`` (and Horovod's RendezvousServer,
TensorFlow's communication buffer) collect a set of gradients into one data
structure before the push operation is invoked, and copyD2H/send-buffer
batching reinforces the grouping.  Gradients therefore become
*communication-ready* in bursts, separated by the backward-compute time of
the layers in between.

This package models that mechanism: an aggregation
:class:`~repro.agg.policies.AggregationPolicy` groups raw per-layer
backward completion times into flush buckets, and
:class:`~repro.agg.kvstore.KVStore` turns a compute profile into the
per-gradient generation times ``c(i)`` — the paper's Table 1 quantity and
Algorithm 1 input.
"""

from repro.agg.policies import (
    AggregationPolicy,
    TimeWindowPolicy,
    ByteThresholdPolicy,
    LayerCountPolicy,
    ModulePrefixPolicy,
    ExplicitGroupsPolicy,
)
from repro.agg.kvstore import KVStore, GenerationSchedule
from repro.agg.stepwise import detect_blocks, block_summary, StepwiseSummary

__all__ = [
    "AggregationPolicy",
    "TimeWindowPolicy",
    "ByteThresholdPolicy",
    "LayerCountPolicy",
    "ModulePrefixPolicy",
    "ExplicitGroupsPolicy",
    "KVStore",
    "GenerationSchedule",
    "detect_blocks",
    "block_summary",
    "StepwiseSummary",
]
