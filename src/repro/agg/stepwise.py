"""Stepwise-pattern analysis utilities.

Given per-gradient generation times ``c(i)`` (from a
:class:`~repro.agg.kvstore.GenerationSchedule` or from a measured trace),
these helpers recover the *block* structure the paper observes in Fig. 4:
which gradients form a burst, how wide the inter-block intervals are, and
summary statistics used by the Fig. 4 benchmark and by calibration tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["detect_blocks", "block_summary", "StepwiseSummary"]


def detect_blocks(c: np.ndarray, eps: float = 1e-6) -> list[list[int]]:
    """Cluster gradients into generation blocks.

    Gradients whose generation times differ by at most ``eps`` belong to
    the same block.  Returns blocks in generation order, each a list of
    gradient indices in descending-index (generation) order — the same
    convention as aggregation buckets.
    """
    c = np.asarray(c, dtype=float)
    if c.ndim != 1 or len(c) == 0:
        raise ConfigurationError("c must be a non-empty 1-D array")
    if eps < 0:
        raise ConfigurationError(f"eps must be >= 0, got {eps}")
    idx = np.arange(len(c))
    order = idx[np.lexsort((-idx, c))]
    blocks: list[list[int]] = []
    current: list[int] = [int(order[0])]
    block_time = c[order[0]]
    for i in order[1:]:
        if c[i] - block_time > eps:
            blocks.append(current)
            current = []
            block_time = c[i]
        current.append(int(i))
    blocks.append(current)
    return blocks


@dataclass(frozen=True)
class StepwiseSummary:
    """Aggregate description of a stepwise generation trace."""

    num_gradients: int
    num_blocks: int
    block_sizes: tuple[int, ...]
    block_times: tuple[float, ...]
    intervals: tuple[float, ...]

    @property
    def mean_interval(self) -> float:
        """Mean inter-block interval in seconds (0 for a single block)."""
        return float(np.mean(self.intervals)) if self.intervals else 0.0

    @property
    def span(self) -> float:
        """Time from first to last block flush."""
        if len(self.block_times) < 2:
            return 0.0
        return self.block_times[-1] - self.block_times[0]


def block_summary(c: np.ndarray, eps: float = 1e-6) -> StepwiseSummary:
    """Summarize the staircase: block count, sizes, and step intervals."""
    blocks = detect_blocks(c, eps)
    c = np.asarray(c, dtype=float)
    times = [float(c[b[0]]) for b in blocks]
    intervals = tuple(t2 - t1 for t1, t2 in zip(times, times[1:]))
    return StepwiseSummary(
        num_gradients=len(c),
        num_blocks=len(blocks),
        block_sizes=tuple(len(b) for b in blocks),
        block_times=tuple(times),
        intervals=intervals,
    )
