"""Statistical convergence under stale gradients.

The paper's future work proposes validating Prophet with the ASP model.
ASP/SSP raise *throughput* (no BSP barrier — see
:mod:`repro.experiments.asp`) but apply **stale** gradients, which costs
*statistical* progress per iteration.  Whether asynchrony wins therefore
depends on **time-to-accuracy** = (seconds per iteration) × (iterations
to reach the target loss), not on throughput alone.

This package supplies the statistical half: a stale-gradient SGD
simulator on a controllable quadratic objective
(:mod:`repro.convergence.sgd`), fed with the staleness distribution the
cluster simulation actually produced
(:attr:`repro.cluster.ps.ParameterServer.staleness_samples`).  The
combined analysis lives in :mod:`repro.experiments.convergence`.
"""

from repro.convergence.sgd import (
    QuadraticProblem,
    StaleSGDResult,
    run_stale_sgd,
    empirical_staleness_sampler,
)

__all__ = [
    "QuadraticProblem",
    "StaleSGDResult",
    "run_stale_sgd",
    "empirical_staleness_sampler",
]
