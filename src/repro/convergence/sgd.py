"""Stale-gradient SGD on a quadratic objective.

The canonical analysis setting for asynchronous SGD: minimize
``f(x) = 0.5 xᵀ A x`` with SPD ``A`` whose spectrum spans a chosen
condition number.  At step ``t`` the update uses the gradient evaluated
at the *stale* iterate ``x_{t-τ_t}`` plus isotropic gradient noise:

    ``x_{t+1} = x_t − lr (A x_{t−τ_t} + ξ_t)``

Staleness ``τ_t`` is drawn per step from a caller-supplied sampler — in
the experiments, the empirical distribution the cluster simulation
recorded.  For τ≡0 this is plain SGD; growing staleness slows (and past
``lr·λ_max·τ = O(1)`` destabilizes) convergence, which is exactly the
trade-off time-to-accuracy analysis needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "QuadraticProblem",
    "StaleSGDResult",
    "run_stale_sgd",
    "empirical_staleness_sampler",
]


@dataclass(frozen=True)
class QuadraticProblem:
    """``f(x) = 0.5 xᵀ diag(λ) x`` with log-spaced spectrum.

    A diagonal ``A`` loses no generality (SGD is rotation-equivariant on
    quadratics) and keeps every step O(dim).
    """

    dim: int = 50
    condition_number: float = 20.0

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ConfigurationError(f"dim must be >= 1, got {self.dim}")
        if self.condition_number < 1:
            raise ConfigurationError(
                f"condition_number must be >= 1, got {self.condition_number}"
            )

    def eigenvalues(self) -> np.ndarray:
        return np.logspace(0, np.log10(self.condition_number), self.dim)

    def loss(self, x: np.ndarray) -> float:
        return float(0.5 * np.sum(self.eigenvalues() * x**2))

    def stable_lr(self) -> float:
        """A safe synchronous step size (1/λ_max, halved for headroom)."""
        return 0.5 / float(self.eigenvalues().max())


@dataclass(frozen=True)
class StaleSGDResult:
    """Loss trajectory of one stale-SGD run."""

    losses: np.ndarray
    mean_staleness: float
    diverged: bool

    def iterations_to(self, fraction: float) -> int | None:
        """First step whose loss is below ``fraction`` of the initial loss,
        or ``None`` if never reached."""
        if not 0 < fraction < 1:
            raise ConfigurationError(f"fraction must be in (0,1), got {fraction}")
        target = self.losses[0] * fraction
        hits = np.nonzero(self.losses <= target)[0]
        return int(hits[0]) if hits.size else None


def empirical_staleness_sampler(
    samples: Sequence[int], rng: np.random.Generator
) -> Callable[[], int]:
    """Sampler drawing i.i.d. from an observed staleness multiset.

    An empty sample set means the run was BSP-synchronous: staleness 0.
    """
    if not samples:
        return lambda: 0
    arr = np.asarray(samples, dtype=np.int64)
    return lambda: int(arr[rng.integers(0, len(arr))])


def run_stale_sgd(
    problem: QuadraticProblem,
    staleness_sampler: Callable[[], int],
    n_steps: int = 2000,
    lr: float | None = None,
    noise_std: float = 0.01,
    seed: int = 0,
) -> StaleSGDResult:
    """Run stale SGD; returns the loss trajectory.

    Divergence (loss explodes past 1e6x the initial value) is detected and
    reported rather than raised — an unstable (lr, staleness) pair is a
    legitimate experimental outcome.
    """
    if n_steps < 1:
        raise ConfigurationError(f"n_steps must be >= 1, got {n_steps}")
    if noise_std < 0:
        raise ConfigurationError(f"noise_std must be >= 0, got {noise_std}")
    lr = problem.stable_lr() if lr is None else lr
    if lr <= 0:
        raise ConfigurationError(f"lr must be positive, got {lr}")

    rng = np.random.default_rng(seed)
    eigs = problem.eigenvalues()
    x = np.ones(problem.dim)
    history = [x.copy()]
    losses = np.empty(n_steps + 1)
    losses[0] = problem.loss(x)
    staleness_total = 0
    diverged = False
    for t in range(n_steps):
        tau = max(0, int(staleness_sampler()))
        staleness_total += tau
        stale_x = history[max(0, len(history) - 1 - tau)]
        grad = eigs * stale_x + noise_std * rng.standard_normal(problem.dim)
        x = x - lr * grad
        history.append(x.copy())
        if len(history) > 256:  # bound memory; staleness never nears this
            history.pop(0)
        losses[t + 1] = problem.loss(x)
        if not np.isfinite(losses[t + 1]) or losses[t + 1] > 1e6 * losses[0]:
            losses = losses[: t + 2]
            diverged = True
            break
    return StaleSGDResult(
        losses=losses,
        mean_staleness=staleness_total / max(1, len(losses) - 1),
        diverged=diverged,
    )
