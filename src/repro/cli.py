"""Command-line interface.

Subcommands::

    python -m repro list                     # models + experiments
    python -m repro info resnet50            # model card
    python -m repro run table2 -j 4          # regenerate a paper artifact
    python -m repro compare --model resnet50 --batch 64 --gbps 3
    python -m repro sweep --model resnet50 --gbps 1 3 10
    python -m repro sched prophet --trace out.json   # traced single run
    python -m repro chaos --model resnet18 --drop 0.02  # fault resilience
    python -m repro fleet --n-jobs 16 --policy fair     # multi-tenant fleet
    python -m repro bench -j 4               # timed fig8 grid via the runner
    python -m repro profile fig8 --top 20    # cProfile hotspot report
    python -m repro cache                    # result-cache stats
    python -m repro cache clear              # drop every cached result

``run`` accepts any experiment name from :mod:`repro.experiments` and
invokes its ``main()``; ``-j/--jobs`` and ``--no-cache`` reach the
:mod:`repro.runner` fan-out through the ``REPRO_JOBS`` / ``REPRO_NO_CACHE``
environment variables, so they apply to every grid the experiment issues.
``compare`` and ``sweep`` build ad-hoc configs on the paper's calibrated
presets.  ``sched`` runs one strategy on one preset workload and can
export the structured trace as Chrome trace-event JSON (open in Perfetto /
``chrome://tracing``) and/or compact JSONL.  ``chaos`` runs the paired
clean/faulty resilience comparison of :mod:`repro.experiments.chaos` with
an ad-hoc fault plan.  ``bench`` times the Fig. 8 FAST grid through the
parallel runner and reports wall time plus cache hit/miss counts.
``profile`` runs any experiment under :mod:`cProfile` (forced serial and
cache-bypassing, so the report reflects simulation cost — see
:mod:`repro.profiling`) and prints the top-N hotspots; ``--dump`` keeps
the raw stats for snakeviz.  ``cache`` inspects or clears the on-disk
result cache.  ``run``/``compare``/``sched``/``bench`` accept
``--no-fastforward`` to force every iteration to be simulated even when
the steady-state fast-forward (:mod:`repro.sim.fastforward`) could skip
them; ``profile`` always disables it so the report reflects the real
event loop.

``fleet`` runs the multi-tenant cluster simulator of :mod:`repro.fleet`:
N jobs placed by a FIFO/fair-share/gang scheduler onto shared hosts whose
NICs feed an oversubscribed core, reporting fleet goodput, tail iteration
time, Jain fairness, and queueing delay.

Unknown model/strategy/experiment names, unrecognized flags, and invalid
flag combinations (e.g. ``--collective`` without ``--backend allreduce``)
all exit with a one-line ``error: ...`` message and status 2 — never a
traceback or a silently ignored flag.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.cluster.trainer import run_training
from repro.errors import ConfigurationError, ReproError, TracingError
from repro.metrics.report import format_table, format_trace_summary
from repro.models.gradients import gradient_table
from repro.models.registry import available_models, get_model
from repro.quantities import Gbps, fmt_bytes
from repro.workloads.presets import EXTENDED_FACTORIES, paper_config

__all__ = ["main", "build_parser"]

EXPERIMENTS = (
    "fig2", "fig3", "fig4", "fig5", "fig8", "fig9_10", "fig11", "fig12",
    "fig13", "table2", "table3", "hetero", "overhead", "ablations", "asp",
    "devices", "dynamic", "convergence", "chaos", "scalability", "collective",
    "fleet",
)


class _Parser(argparse.ArgumentParser):
    """ArgumentParser whose failures match the CLI's error contract.

    Argparse's default ``error()`` prints multi-line usage + message;
    every other failure in this CLI is a one-line greppable
    ``error: ...`` on stderr with exit status 2, so parse failures
    (unknown flags, bad choices, missing arguments) follow suit.
    Subparsers inherit this class automatically (``add_subparsers``
    instantiates the parent's type).
    """

    def error(self, message: str) -> None:
        self.exit(2, f"error: {message}\n")


def _validate_choice(kind: str, name: str, options: Sequence[str]) -> None:
    """Eager name validation with a one-line, greppable error message."""
    if name not in options:
        raise ConfigurationError(
            f"unknown {kind} {name!r}; available: {', '.join(sorted(options))}"
        )


def _add_fastforward_args(
    sub: argparse.ArgumentParser, *, time_quantum: bool = False
) -> None:
    """Steady-state fast-forward knobs (:mod:`repro.sim.fastforward`)."""
    sub.add_argument(
        "--no-fastforward", action="store_true",
        help="disable steady-state iteration fast-forward and simulate "
        "every iteration (equivalent to REPRO_NO_FASTFORWARD=1)",
    )
    if time_quantum:
        sub.add_argument(
            "--time-quantum", type=int, default=None, metavar="EXP",
            help="snap event delays to a 2**EXP-second grid (e.g. -24 for "
            "~60 ns resolution); fast-forward only engages on a quantized "
            "run",
        )
        sub.add_argument(
            "--jitter", type=float, default=None, metavar="STD",
            help="compute-jitter stddev as a fraction of layer time "
            "(default: preset 0.02; fast-forward needs --jitter 0)",
        )


def _fastforward_overrides(args: argparse.Namespace) -> dict:
    """Translate the fast-forward CLI flags into paper_config overrides."""
    overrides: dict = {}
    if args.no_fastforward:
        overrides["fastforward"] = False
    if getattr(args, "time_quantum", None) is not None:
        overrides["time_quantum"] = 2.0 ** args.time_quantum
    if getattr(args, "jitter", None) is not None:
        overrides["jitter_std"] = args.jitter
    return overrides


def _add_ps_tier_args(sub: argparse.ArgumentParser) -> None:
    """PS-tier knobs shared by the ad-hoc workload subcommands."""
    sub.add_argument(
        "--n-servers", type=int, default=1,
        help="key-sharded parameter servers (default 1: the paper's "
        "single-PS star)",
    )
    sub.add_argument(
        "--ps-gbps", type=float, default=None,
        help="per-server PS NIC cap in Gbps (default: uncapped); with "
        "--n-servers > 1 each shard server gets its own cap",
    )


def _ps_tier_overrides(args: argparse.Namespace) -> dict:
    """Translate the PS-tier CLI flags into paper_config overrides."""
    overrides: dict = {}
    if args.n_servers != 1:
        overrides["n_servers"] = args.n_servers
    if args.ps_gbps is not None:
        overrides["ps_bandwidth"] = args.ps_gbps * Gbps
    return overrides


def _add_backend_args(sub: argparse.ArgumentParser) -> None:
    """Communication-backend knobs shared by the workload subcommands.

    ``--collective`` and ``--group-size`` default to ``None`` sentinels so
    :func:`_validate_backend_flags` can tell "user typed the default" from
    "user never mentioned the flag" — only the latter is legal without
    ``--backend allreduce``.
    """
    sub.add_argument(
        "--backend", default="ps", choices=("ps", "allreduce"),
        help="communication backend: the paper's parameter-server star "
        "(default) or the ring/hierarchical allreduce collective",
    )
    sub.add_argument(
        "--collective", default=None, choices=("ring", "hierarchical"),
        help="allreduce topology (requires --backend allreduce; "
        "default ring)",
    )
    sub.add_argument(
        "--group-size", type=int, default=None,
        help="workers per group for the hierarchical collective "
        "(requires --collective hierarchical; must divide --workers; "
        "default 2)",
    )


def _validate_backend_flags(args: argparse.Namespace) -> None:
    """Reject flag combinations that would otherwise be silently ignored."""
    if args.backend != "allreduce":
        if args.collective is not None:
            raise ConfigurationError(
                "--collective requires --backend allreduce"
            )
        if args.group_size is not None:
            raise ConfigurationError(
                "--group-size requires --backend allreduce"
            )
        return
    if getattr(args, "n_servers", 1) != 1:
        raise ConfigurationError(
            "--n-servers is a parameter-server knob; drop it with "
            "--backend allreduce"
        )
    if getattr(args, "ps_gbps", None) is not None:
        raise ConfigurationError(
            "--ps-gbps is a parameter-server knob; drop it with "
            "--backend allreduce"
        )
    if args.group_size is not None and args.collective != "hierarchical":
        raise ConfigurationError(
            "--group-size only applies to --collective hierarchical"
        )


def _resolved_collective(args: argparse.Namespace) -> str:
    return args.collective if args.collective is not None else "ring"


def _resolved_group_size(args: argparse.Namespace) -> int:
    return args.group_size if args.group_size is not None else 2


def _backend_overrides(args: argparse.Namespace) -> dict:
    """Translate the backend CLI flags into paper_config overrides."""
    _validate_backend_flags(args)
    if args.backend == "ps":
        return {}
    return {
        "backend": args.backend,
        "collective": _resolved_collective(args),
        "collective_group_size": _resolved_group_size(args),
    }


def _backend_suffix(args: argparse.Namespace) -> str:
    """Table-title suffix naming the non-default backend, if any."""
    if args.backend == "ps":
        return ""
    return f", {_resolved_collective(args)} allreduce"


def build_parser() -> argparse.ArgumentParser:
    parser = _Parser(
        prog="repro",
        description="Prophet (ICPP'21) reproduction — simulate DDNN "
        "communication scheduling.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list models, strategies, and experiments")

    info = sub.add_parser("info", help="show a model card")
    info.add_argument("model", help=f"one of: {', '.join(available_models())}")

    run = sub.add_parser("run", help="regenerate a paper figure/table")
    run.add_argument("experiment", help=f"one of: {', '.join(EXPERIMENTS)}")
    run.add_argument(
        "-j", "--jobs", type=int, default=None,
        help="parallel simulation processes for the experiment's run grids "
        "(default: REPRO_JOBS or 1)",
    )
    run.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk result cache for this invocation",
    )
    _add_fastforward_args(run)

    compare = sub.add_parser(
        "compare", help="compare all strategies on one workload"
    )
    compare.add_argument("--model", default="resnet50")
    compare.add_argument("--batch", type=int, default=64)
    compare.add_argument("--gbps", type=float, default=3.0)
    compare.add_argument("--workers", type=int, default=3)
    compare.add_argument("--iterations", type=int, default=12)
    compare.add_argument("--sync", default="bsp", choices=("bsp", "asp", "ssp"))
    compare.add_argument("--seed", type=int, default=0)
    _add_ps_tier_args(compare)
    _add_backend_args(compare)
    _add_fastforward_args(compare, time_quantum=True)

    sched = sub.add_parser(
        "sched", help="run one scheduling strategy, optionally tracing it"
    )
    sched.add_argument(
        "strategy",
        help="communication-scheduling strategy to simulate "
        f"(one of: {', '.join(sorted(EXTENDED_FACTORIES))})",
    )
    sched.add_argument("--model", default="resnet50")
    sched.add_argument("--batch", type=int, default=64)
    sched.add_argument("--gbps", type=float, default=3.0)
    sched.add_argument("--workers", type=int, default=3)
    sched.add_argument("--iterations", type=int, default=12)
    sched.add_argument("--sync", default="bsp", choices=("bsp", "asp", "ssp"))
    sched.add_argument("--seed", type=int, default=0)
    _add_ps_tier_args(sched)
    _add_backend_args(sched)
    _add_fastforward_args(sched, time_quantum=True)
    sched.add_argument(
        "--trace",
        metavar="OUT.json",
        help="write the run's Chrome trace-event JSON here",
    )
    sched.add_argument(
        "--trace-jsonl",
        metavar="OUT.jsonl",
        help="write the run's trace as compact JSONL here",
    )

    sweep = sub.add_parser("sweep", help="bandwidth sweep for one workload")
    sweep.add_argument("--model", default="resnet50")
    sweep.add_argument("--batch", type=int, default=64)
    sweep.add_argument("--gbps", type=float, nargs="+", default=[1.0, 3.0, 10.0])
    sweep.add_argument("--workers", type=int, default=3)
    sweep.add_argument("--iterations", type=int, default=12)
    sweep.add_argument("--seed", type=int, default=0)
    _add_ps_tier_args(sweep)

    chaos = sub.add_parser(
        "chaos", help="paired clean/faulty resilience comparison"
    )
    chaos.add_argument("--model", default="resnet18")
    chaos.add_argument("--batch", type=int, default=64)
    chaos.add_argument("--iterations", type=int, default=12)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--workers", type=int, default=3)
    chaos.add_argument(
        "--crash-at", type=float, default=2.0,
        help="crash worker 1 at this sim time (s)",
    )
    chaos.add_argument(
        "--restart-after", type=float, default=0.5,
        help="restart the crashed worker after this delay (s); on the "
        "allreduce backend the rejoin is refused (elastic shrink is "
        "permanent) and the delay only times the refusal event",
    )
    chaos.add_argument(
        "--drop", type=float, default=0.02,
        help="per-message drop probability on push/pull/ack legs (chunk "
        "leg on the allreduce backend)",
    )
    _add_backend_args(chaos)
    chaos.add_argument(
        "--n-servers", type=int, default=1,
        help="key-sharded parameter servers (PS backend only; default 1)",
    )

    fleet = sub.add_parser(
        "fleet", help="multi-tenant fleet simulation on a shared fabric"
    )
    fleet.add_argument(
        "--n-jobs", type=int, default=8,
        help="number of training jobs to submit (default 8)",
    )
    fleet.add_argument(
        "--policy", default="fifo", choices=("fifo", "fair", "gang"),
        help="placement policy: strict FIFO (default), tenant fair-share "
        "with backfill, or gang scheduling on exclusive whole hosts",
    )
    fleet.add_argument(
        "--hosts", type=int, default=4,
        help="GPU hosts in the cluster (default 4)",
    )
    fleet.add_argument(
        "--slots-per-host", type=int, default=2,
        help="GPU slots per host (default 2)",
    )
    fleet.add_argument(
        "--core-gbps", type=float, default=10.0,
        help="shared core capacity in Gbps, water-filled across tenants "
        "(default 10)",
    )
    fleet.add_argument(
        "--nic-gbps", type=float, default=3.0,
        help="per-host NIC rate in Gbps, the per-tenant cap (default 3)",
    )
    fleet.add_argument("--model", default="resnet18")
    fleet.add_argument("--batch", type=int, default=32)
    fleet.add_argument(
        "--workers", type=int, default=2,
        help="workers (GPU slots) per job (default 2)",
    )
    fleet.add_argument("--iterations", type=int, default=4)
    fleet.add_argument(
        "--strategies", nargs="+", default=["prophet"], metavar="STRATEGY",
        help="scheduling strategies assigned round-robin to jobs; each "
        "strategy doubles as a fair-share tenant (default: prophet)",
    )
    fleet.add_argument(
        "--interarrival", type=float, default=0.05, metavar="SECONDS",
        help="mean Poisson interarrival gap between submissions "
        "(default 0.05; 0 = all jobs arrive at t=0)",
    )
    fleet.add_argument("--seed", type=int, default=0)

    bench = sub.add_parser(
        "bench", help="timed Fig. 8 FAST grid through the parallel runner"
    )
    bench.add_argument(
        "-j", "--jobs", type=int, default=None,
        help="parallel simulation processes (default: REPRO_JOBS or 1)",
    )
    bench.add_argument(
        "--no-cache", action="store_true",
        help="bypass the result cache (measure cold simulation time)",
    )
    bench.add_argument(
        "--cache-dir", default=None,
        help="result-cache directory (default: REPRO_CACHE_DIR or "
        "~/.cache/repro/results)",
    )
    _add_fastforward_args(bench)

    profile = sub.add_parser(
        "profile", help="run an experiment under cProfile and report hotspots"
    )
    profile.add_argument("experiment", help=f"one of: {', '.join(EXPERIMENTS)}")
    profile.add_argument(
        "--top", type=int, default=25,
        help="number of hotspot rows to print (default 25)",
    )
    profile.add_argument(
        "--sort", default="cumulative", choices=("cumulative", "tottime", "calls"),
        help="pstats sort key (default: cumulative)",
    )
    profile.add_argument(
        "--dump", metavar="OUT.prof", default=None,
        help="also dump raw cProfile stats here (open with snakeviz or "
        "`python -m pstats`)",
    )
    profile.add_argument(
        "--use-cache", action="store_true",
        help="allow cached grid results (profiles cache lookups instead of "
        "fresh simulation)",
    )
    profile.add_argument(
        "--workers", type=int, default=None,
        help="profile at this worker count (passed to the experiment as "
        "n_workers; errors if its entry point has no such knob)",
    )
    profile.add_argument(
        "--n-servers", type=int, default=None,
        help="profile over a key-sharded PS tier of this size (passed "
        "through as n_servers)",
    )
    profile.add_argument(
        "--backend", default=None, choices=("ps", "allreduce"),
        help="profile the given communication backend (passed through)",
    )

    cache = sub.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument(
        "action", nargs="?", default="stats", choices=("stats", "clear"),
        help="'stats' (default) prints entry count and size; 'clear' "
        "removes every cached result",
    )
    cache.add_argument(
        "--dir", default=None, dest="cache_dir",
        help="cache directory (default: REPRO_CACHE_DIR or "
        "~/.cache/repro/results)",
    )
    return parser


def _cmd_list() -> int:
    print("models:      " + ", ".join(available_models()))
    print("strategies:  " + ", ".join(EXTENDED_FACTORIES))
    print("experiments: " + ", ".join(EXPERIMENTS))
    return 0


def _cmd_info(model_name: str) -> int:
    model = get_model(model_name)
    grads = gradient_table(model)
    largest = max(grads, key=lambda g: g.nbytes)
    rows = [
        ["layers", len(model.layers)],
        ["parameter tensors (gradients)", model.num_tensors],
        ["parameters", f"{model.num_params:,}"],
        ["model size (fp32)", fmt_bytes(model.param_bytes())],
        ["forward GFLOPs/sample", f"{model.fwd_flops / 1e9:.2f}"],
        ["largest gradient", f"{largest.name} ({fmt_bytes(largest.nbytes)})"],
        ["input resolution", f"{model.input_size}x{model.input_size}"],
    ]
    print(format_table(["property", "value"], rows, title=model.name))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    import importlib
    import os

    from repro.runner import JOBS_ENV, NO_CACHE_ENV, resolve_jobs

    _validate_choice("experiment", args.experiment, EXPERIMENTS)
    resolve_jobs(args.jobs)  # validate eagerly, before any training run
    # Experiments' main() entry points take no arguments; the runner picks
    # the knobs up from the environment, so they reach every grid the
    # experiment fans out — including nested helper calls.
    if args.jobs is not None:
        os.environ[JOBS_ENV] = str(args.jobs)
    if args.no_cache:
        os.environ[NO_CACHE_ENV] = "1"
    if args.no_fastforward:
        from repro.sim.fastforward import NO_FASTFORWARD_ENV

        os.environ[NO_FASTFORWARD_ENV] = "1"
    module = importlib.import_module(f"repro.experiments.{args.experiment}")
    module.main()
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    config = paper_config(
        args.model,
        args.batch,
        bandwidth=args.gbps * Gbps,
        n_workers=args.workers,
        n_iterations=args.iterations,
        seed=args.seed,
        sync_mode=args.sync,
        record_gradients=False,
        **_ps_tier_overrides(args),
        **_backend_overrides(args),
        **_fastforward_overrides(args),
    )
    rows = []
    for name, factory in EXTENDED_FACTORIES.items():
        result = run_training(config, factory)
        summary = result.summary()
        rows.append(
            [
                name,
                f"{summary['training_rate']:.1f}",
                f"{summary['mean_iteration_s'] * 1e3:.0f}",
                f"{summary['gpu_utilization'] * 100:.1f}%",
            ]
        )
    print(
        format_table(
            ["strategy", "rate (samples/s)", "iteration (ms)", "GPU util"],
            rows,
            title=(
                f"{args.model} bs{args.batch} @ {args.gbps:g} Gbps, "
                f"{args.workers} workers, {args.sync}{_backend_suffix(args)}"
            ),
        )
    )
    return 0


def _cmd_sched(args: argparse.Namespace) -> int:
    _validate_choice("strategy", args.strategy, EXTENDED_FACTORIES)
    tracing = bool(args.trace or args.trace_jsonl)
    config = paper_config(
        args.model,
        args.batch,
        bandwidth=args.gbps * Gbps,
        n_workers=args.workers,
        n_iterations=args.iterations,
        seed=args.seed,
        sync_mode=args.sync,
        trace=tracing,
        **_ps_tier_overrides(args),
        **_backend_overrides(args),
        **_fastforward_overrides(args),
    )
    result = run_training(config, EXTENDED_FACTORIES[args.strategy])
    summary = result.summary()
    comm = result.gradient_comm_stats()
    rows = [
        ["training rate", f"{summary['training_rate']:.1f} samples/s"],
        ["iteration", f"{summary['mean_iteration_s'] * 1e3:.0f} ms"],
        ["GPU utilization", f"{summary['gpu_utilization'] * 100:.1f}%"],
        ["mean gradient wait", f"{comm.mean_wait * 1e3:.2f} ms"],
        ["mean gradient transfer", f"{comm.mean_transfer * 1e3:.2f} ms"],
    ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=(
                f"{args.strategy} — {args.model} bs{args.batch} @ "
                f"{args.gbps:g} Gbps, {args.workers} workers, "
                f"{args.sync}{_backend_suffix(args)}"
            ),
        )
    )
    if tracing:
        print()
        print(format_trace_summary(result.trace_summary()))
        if args.trace:
            path = _write_trace(result.write_chrome_trace, args.trace)
            print(f"chrome trace written to {path} (open in https://ui.perfetto.dev)")
        if args.trace_jsonl:
            path = _write_trace(result.write_trace_jsonl, args.trace_jsonl)
            print(f"trace JSONL written to {path}")
    return 0


def _write_trace(writer, destination: str):
    """Run a trace export, turning filesystem failures into the CLI's
    one-line error contract instead of an OSError traceback."""
    try:
        return writer(destination)
    except OSError as exc:
        raise TracingError(
            f"cannot write trace to {destination!r}: {exc}"
        ) from exc


def _cmd_sweep(args: argparse.Namespace) -> int:
    rows = []
    for gbps in args.gbps:
        config = paper_config(
            args.model,
            args.batch,
            bandwidth=gbps * Gbps,
            n_workers=args.workers,
            n_iterations=args.iterations,
            seed=args.seed,
            record_gradients=False,
            **_ps_tier_overrides(args),
        )
        rates = {
            name: run_training(config, factory).training_rate()
            for name, factory in EXTENDED_FACTORIES.items()
        }
        rows.append([f"{gbps:g}"] + [f"{rates[n]:.1f}" for n in EXTENDED_FACTORIES])
    print(
        format_table(
            ["Gbps"] + list(EXTENDED_FACTORIES),
            rows,
            title=f"{args.model} bs{args.batch} — bandwidth sweep (samples/s)",
        )
    )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments import chaos

    get_model(args.model)  # validate eagerly, before any training run
    _validate_backend_flags(args)
    plan = chaos.default_plan(
        crash_at=args.crash_at,
        restart_after=args.restart_after,
        drop=args.drop,
        backend=args.backend,
    )
    chaos.main(
        model=args.model,
        batch_size=args.batch,
        n_iterations=args.iterations,
        seed=args.seed,
        plan=plan,
        backend=args.backend,
        collective=_resolved_collective(args),
        group_size=_resolved_group_size(args),
        n_servers=args.n_servers,
        n_workers=args.workers,
    )
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import FleetSpec, run_fleet
    from repro.quantities import fmt_bandwidth

    for strategy in args.strategies:
        _validate_choice("strategy", strategy, EXTENDED_FACTORIES)
    spec = FleetSpec(
        n_jobs=args.n_jobs,
        policy=args.policy,
        n_hosts=args.hosts,
        slots_per_host=args.slots_per_host,
        core_bandwidth=args.core_gbps * Gbps,
        nic_bandwidth=args.nic_gbps * Gbps,
        model=args.model,
        batch_size=args.batch,
        n_workers=args.workers,
        n_iterations=args.iterations,
        strategies=tuple(args.strategies),
        mean_interarrival_s=args.interarrival,
        seed=args.seed,
    )
    result = run_fleet(spec)
    summary = result.summary()
    oversub = (args.n_jobs and
               spec.n_workers * spec.nic_bandwidth / spec.core_bandwidth)
    rows = [
        ["jobs", f"{int(summary['n_jobs'])}"],
        ["makespan", f"{summary['makespan_s']:.2f} s"],
        ["fleet goodput", f"{summary['goodput_samples_per_s']:.1f} samples/s"],
        ["p50 iteration", f"{summary['p50_iteration_s'] * 1e3:.0f} ms"],
        ["p99 iteration", f"{summary['p99_iteration_s'] * 1e3:.0f} ms"],
        ["Jain fairness", f"{summary['jain_fairness']:.4f}"],
        ["mean queueing delay", f"{summary['mean_queueing_delay_s']:.2f} s"],
        ["max queueing delay", f"{summary['max_queueing_delay_s']:.2f} s"],
        ["per-job NIC demand", f"{oversub:.2f}x core" if oversub else "-"],
    ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=(
                f"fleet — {args.n_jobs} x {args.model} bs{args.batch}, "
                f"{args.policy} policy, {args.hosts}x{args.slots_per_host} "
                f"slots, core {fmt_bandwidth(spec.core_bandwidth)}"
            ),
        )
    )
    by_strategy: dict[str, list] = {}
    for record in result.records:
        by_strategy.setdefault(record.strategy, []).append(record)
    if len(by_strategy) > 1:
        strat_rows = [
            [
                name,
                len(records),
                f"{sum(r.training_rate for r in records) / len(records):.1f}",
                f"{sum(r.queueing_delay for r in records) / len(records):.2f}",
            ]
            for name, records in sorted(by_strategy.items())
        ]
        print()
        print(
            format_table(
                ["strategy", "jobs", "mean rate (s/s)", "mean queue (s)"],
                strat_rows,
                title="per-strategy breakdown",
            )
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import os
    import time

    from repro.experiments import fig8
    from repro.runner import ResultCache, resolve_jobs

    jobs = resolve_jobs(args.jobs)
    if args.no_fastforward:
        from repro.sim.fastforward import NO_FASTFORWARD_ENV

        os.environ[NO_FASTFORWARD_ENV] = "1"
    cache: bool | ResultCache
    if args.no_cache:
        cache = False
    else:
        cache = ResultCache(args.cache_dir)
    workloads = fig8.DEFAULT_WORKLOADS
    n_runs = 2 * len(workloads)
    start = time.perf_counter()
    rows = fig8.run(workloads=workloads, jobs=jobs, cache=cache)
    elapsed = time.perf_counter() - start
    print(
        format_table(
            ["model", "batch", "Prophet (s/s)", "ByteScheduler (s/s)"],
            [[r.model, r.batch_size, f"{r.prophet_rate:.1f}",
              f"{r.bytescheduler_rate:.1f}"] for r in rows],
            title=f"bench — Fig. 8 FAST grid ({n_runs} runs, jobs={jobs})",
        )
    )
    if isinstance(cache, ResultCache):
        cache_line = f"cache: {cache.hits} hits, {cache.misses} misses"
    else:
        cache_line = "cache: disabled"
    print(f"\nwall time: {elapsed:.2f} s ({n_runs / elapsed:.2f} runs/s); "
          f"{cache_line}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.profiling import profile_experiment

    _validate_choice("experiment", args.experiment, EXPERIMENTS)
    overrides = {
        key: value
        for key, value in (
            ("n_workers", args.workers),
            ("n_servers", args.n_servers),
            ("backend", args.backend),
        )
        if value is not None
    }
    report = profile_experiment(
        args.experiment,
        top=args.top,
        sort=args.sort,
        dump=args.dump,
        use_cache=args.use_cache,
        overrides=overrides,
    )
    print()
    print(f"profile — {report.experiment}: {report.total_calls:,} calls in "
          f"{report.total_seconds:.2f} s (serial, "
          f"{'cache allowed' if args.use_cache else 'cache bypassed'})")
    print(report.text, end="")
    if report.dump_path:
        print(f"raw stats dumped to {report.dump_path} "
              f"(view with `snakeviz {report.dump_path}`)")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.runner import ResultCache

    store = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} cached result(s) from {store.root}")
        return 0
    stats = store.stats()
    rows = [
        ["directory", str(stats.root)],
        ["entries", stats.entries],
        ["total size", fmt_bytes(stats.total_bytes)],
    ]
    print(format_table(["property", "value"], rows, title="result cache"))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    dispatch = {
        "list": lambda: _cmd_list(),
        "info": lambda: _cmd_info(args.model),
        "run": lambda: _cmd_run(args),
        "compare": lambda: _cmd_compare(args),
        "sched": lambda: _cmd_sched(args),
        "sweep": lambda: _cmd_sweep(args),
        "chaos": lambda: _cmd_chaos(args),
        "fleet": lambda: _cmd_fleet(args),
        "bench": lambda: _cmd_bench(args),
        "profile": lambda: _cmd_profile(args),
        "cache": lambda: _cmd_cache(args),
    }
    try:
        return dispatch[args.command]()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
