"""Key→shard assignment for the sharded parameter-server tier.

BytePS shards the parameter store by key: each gradient tensor lives on
exactly one server, so aggregation bandwidth scales with the number of
servers instead of being gated by one NIC.  P3 additionally *slices*
oversized tensors so that no single key serializes a whole layer behind
one server.  This module implements both, deterministically:

* every gradient becomes one or more :class:`ShardPiece`\\ s — exactly one
  when it fits under ``slice_bytes`` (or slicing is off), otherwise equal
  contiguous slices covering the tensor exactly once;
* pieces are packed onto shards with greedy LPT (largest processing time
  first): sorted by descending size, each piece goes to the currently
  lightest shard.  The classic LPT invariant — max load minus min load
  never exceeds the largest piece size — bounds the imbalance, and the
  deterministic tie-breaks (size, then gradient, then slice; lowest shard
  id wins ties) make the assignment a pure function of ``(sizes,
  n_servers, slice_bytes)``;
* within a shard, pieces are ordered by ``(gradient, slice)`` ascending
  and given dense *local* indices.  Local index order therefore preserves
  the global priority order (gradient 0 = most urgent, the paper's
  forward-order priority), which is what lets an unmodified
  :class:`~repro.sched.base.CommScheduler` instance run per shard: its
  "smaller index = more urgent" convention holds locally.

:func:`restrict_generation_schedule` and :func:`restrict_profile` project
the global per-iteration generation schedule / stepwise job profile onto
one shard's local index space — each piece inherits its parent gradient's
generation time ``c(i)`` (all slices of a tensor materialize together)
and carries its own byte size.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from heapq import heapify, heappop, heappush
from typing import Sequence

import numpy as np

from repro.agg.kvstore import GenerationSchedule
from repro.core.profiler import JobProfile
from repro.errors import ConfigurationError

__all__ = [
    "ShardPiece",
    "ShardAssignment",
    "assign_shards",
    "failover_assignment",
    "restrict_generation_schedule",
    "restrict_profile",
]


@dataclass(frozen=True, slots=True)
class ShardPiece:
    """One contiguous byte range of one gradient, owned by one shard."""

    #: Global gradient index.
    grad: int
    #: Slice number within the gradient (0 for an unsliced tensor).
    part: int
    #: Byte offset of this piece within the gradient.
    offset: float
    #: Piece size in bytes.
    nbytes: float
    #: Owning server (shard) index.
    shard: int
    #: Dense index within the shard, in ``(grad, part)`` order.
    local: int


@dataclass(frozen=True)
class ShardAssignment:
    """Deterministic mapping of every gradient byte to one shard."""

    n_servers: int
    #: All pieces, ordered by ``(grad, part)``.
    pieces: tuple[ShardPiece, ...]

    @cached_property
    def by_shard(self) -> tuple[tuple[ShardPiece, ...], ...]:
        """Pieces of each shard, in local-index order."""
        buckets: list[list[ShardPiece]] = [[] for _ in range(self.n_servers)]
        for piece in self.pieces:
            buckets[piece.shard].append(piece)
        for bucket in buckets:
            bucket.sort(key=lambda p: p.local)
        return tuple(tuple(bucket) for bucket in buckets)

    @cached_property
    def _by_grad(self) -> dict[int, tuple[ShardPiece, ...]]:
        out: dict[int, list[ShardPiece]] = {}
        for piece in self.pieces:
            out.setdefault(piece.grad, []).append(piece)
        return {g: tuple(ps) for g, ps in out.items()}

    def pieces_of(self, grad: int) -> tuple[ShardPiece, ...]:
        """All pieces of one gradient, in slice order."""
        return self._by_grad[grad]

    @cached_property
    def loads(self) -> tuple[float, ...]:
        """Total bytes assigned to each shard."""
        totals = [0.0] * self.n_servers
        for piece in self.pieces:
            totals[piece.shard] += piece.nbytes
        return tuple(totals)


def assign_shards(
    sizes: Sequence[float] | np.ndarray,
    n_servers: int,
    slice_bytes: float | None = None,
) -> ShardAssignment:
    """Deterministic size-balanced key→shard assignment.

    ``slice_bytes`` enables P3-style slicing: a gradient larger than the
    threshold is split into ``ceil(size / slice_bytes)`` equal contiguous
    slices before packing, so one huge tensor cannot dominate a shard.
    """
    sizes = [float(s) for s in sizes]
    if not sizes:
        raise ConfigurationError("cannot shard an empty gradient set")
    if any(s <= 0 for s in sizes):
        raise ConfigurationError("gradient sizes must be positive")
    if n_servers < 1:
        raise ConfigurationError(f"n_servers must be >= 1, got {n_servers}")
    if slice_bytes is not None and slice_bytes <= 0:
        raise ConfigurationError(
            f"slice_bytes must be positive, got {slice_bytes}"
        )

    # 1. Slice.  Slice boundaries are ``size * i / k`` so the piece sizes
    # telescope to exactly the tensor size (no float residue).
    raw: list[tuple[int, int, float, float]] = []  # (grad, part, offset, nbytes)
    for grad, size in enumerate(sizes):
        if slice_bytes is not None and size > slice_bytes:
            k = int(np.ceil(size / slice_bytes))
            bounds = [size * i / k for i in range(k + 1)]
            for part in range(k):
                raw.append((grad, part, bounds[part], bounds[part + 1] - bounds[part]))
        else:
            raw.append((grad, 0, 0.0, size))

    if n_servers > len(raw):
        raise ConfigurationError(
            f"n_servers={n_servers} exceeds the {len(raw)} gradient pieces "
            "available (every shard needs at least one key; lower n_servers "
            "or enable slicing via shard_slice_bytes)"
        )

    # 2. Greedy LPT onto the lightest shard; all tie-breaks deterministic.
    order = sorted(raw, key=lambda p: (-p[3], p[0], p[1]))
    heap = [(0.0, s) for s in range(n_servers)]
    heapify(heap)
    shard_of: dict[tuple[int, int], int] = {}
    for grad, part, _, nbytes in order:
        load, shard = heappop(heap)
        shard_of[(grad, part)] = shard
        heappush(heap, (load + nbytes, shard))

    # 3. Dense local indices in (grad, part) order per shard.
    next_local = [0] * n_servers
    pieces: list[ShardPiece] = []
    for grad, part, offset, nbytes in raw:  # raw is already (grad, part)-sorted
        shard = shard_of[(grad, part)]
        pieces.append(
            ShardPiece(
                grad=grad,
                part=part,
                offset=offset,
                nbytes=nbytes,
                shard=shard,
                local=next_local[shard],
            )
        )
        next_local[shard] += 1
    return ShardAssignment(n_servers=n_servers, pieces=tuple(pieces))


def failover_assignment(
    assignment: ShardAssignment, dead: int
) -> ShardAssignment:
    """Redistribute a dead shard's keys over the survivors.

    The live tier handles a :class:`~repro.faults.plan.ServerCrash` with a
    warm standby (same shard id, same keys), so this helper is *not* on
    the simulation's hot path; it answers the capacity-planning question
    chaos reports need: if shard ``dead`` were lost for good, how balanced
    would the survivors be?  The dead shard's pieces are packed onto the
    survivors with the same greedy LPT as :func:`assign_shards`, seeded
    with the survivors' existing loads, so surviving keys never move —
    only orphans do — and the result is a pure function of the input.
    Local indices are re-densified per shard in ``(grad, part)`` order;
    the dead shard keeps its slot in ``by_shard`` but owns nothing.
    """
    if not 0 <= dead < assignment.n_servers:
        raise ConfigurationError(
            f"dead shard {dead} out of range for a {assignment.n_servers}-"
            "server tier"
        )
    if assignment.n_servers < 2:
        raise ConfigurationError(
            "cannot fail over a single-server tier (no survivors)"
        )
    heap = [
        (load, shard)
        for shard, load in enumerate(assignment.loads)
        if shard != dead
    ]
    heapify(heap)
    orphans = sorted(
        (p for p in assignment.pieces if p.shard == dead),
        key=lambda p: (-p.nbytes, p.grad, p.part),
    )
    new_shard_of: dict[tuple[int, int], int] = {}
    for piece in orphans:
        load, shard = heappop(heap)
        new_shard_of[(piece.grad, piece.part)] = shard
        heappush(heap, (load + piece.nbytes, shard))

    next_local = [0] * assignment.n_servers
    pieces: list[ShardPiece] = []
    for piece in assignment.pieces:  # already (grad, part)-sorted
        shard = new_shard_of.get((piece.grad, piece.part), piece.shard)
        pieces.append(
            ShardPiece(
                grad=piece.grad,
                part=piece.part,
                offset=piece.offset,
                nbytes=piece.nbytes,
                shard=shard,
                local=next_local[shard],
            )
        )
        next_local[shard] += 1
    return ShardAssignment(n_servers=assignment.n_servers, pieces=tuple(pieces))


def restrict_generation_schedule(
    schedule: GenerationSchedule, assignment: ShardAssignment, shard: int
) -> GenerationSchedule:
    """Project ``schedule`` onto ``shard``'s local piece index space.

    Every piece inherits its parent gradient's generation/raw times (all
    slices of a tensor flush together) and contributes its own bytes.
    Buckets keep the global flush order, restricted to the shard's pieces;
    buckets with no pieces on this shard disappear.
    """
    local_pieces = assignment.by_shard[shard]
    c = np.array([schedule.c[p.grad] for p in local_pieces], dtype=float)
    raw = np.array([schedule.raw[p.grad] for p in local_pieces], dtype=float)
    sizes = np.array([p.nbytes for p in local_pieces], dtype=float)

    local_of: dict[tuple[int, int], int] = {
        (p.grad, p.part): p.local for p in local_pieces
    }
    shard_parts: dict[int, list[int]] = {}
    for p in local_pieces:
        shard_parts.setdefault(p.grad, []).append(p.part)

    buckets: list[tuple[int, ...]] = []
    bucket_of = np.zeros(len(local_pieces), dtype=schedule.bucket_of.dtype)
    for bucket in schedule.buckets:
        locals_here: list[int] = []
        for grad in bucket:
            for part in shard_parts.get(grad, ()):
                locals_here.append(local_of[(grad, part)])
        if locals_here:
            bucket_of[locals_here] = len(buckets)
            buckets.append(tuple(locals_here))

    return GenerationSchedule(
        c=c,
        raw=raw,
        bucket_of=bucket_of,
        buckets=tuple(buckets),
        sizes=sizes,
        backward_time=schedule.backward_time,
    )


def restrict_profile(
    profile: JobProfile, assignment: ShardAssignment, shard: int
) -> JobProfile:
    """Project a stepwise job profile onto one shard's local pieces."""
    local_pieces = assignment.by_shard[shard]
    return JobProfile(
        c=np.array([profile.c[p.grad] for p in local_pieces], dtype=float),
        sizes=np.array([p.nbytes for p in local_pieces], dtype=float),
        iterations=profile.iterations,
    )
