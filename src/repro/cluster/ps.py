"""Parameter server: gradient aggregation under BSP, ASP, or SSP.

The PS keeps, per ``(iteration, gradient)``, the cumulative bytes received
from each worker, and releases each worker's pull (the mirrored response
for a pushed segment, after the update cost) according to the
synchronization model:

* **BSP** (the paper's setting): a byte range is released once *every*
  worker has delivered it — the slowest worker gates every update, at the
  finest granularity the strategy produced.  (Workers push a gradient's
  bytes strictly in order, so cumulative counts describe ranges exactly.)
* **ASP** (the paper's future-work item 1): the server applies each
  worker's gradient as it arrives and responds immediately — a worker's
  pull waits only for its *own* push.  Workers drift freely.
* **SSP** (bounded staleness, cf. the paper's Sec. 6.2 discussion of
  R2SP/DSSP): like ASP, but worker ``w``'s pull for iteration ``k``
  waits until every worker has *completed pushing that gradient* for
  iteration ``k - staleness - 1`` — i.e. the fastest worker's clock
  (completed iterations) may exceed the slowest by at most ``staleness``.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.cluster.messages import PullUnit
from repro.errors import ConfigurationError, SimulationError
from repro.sched.base import Segment, TransferUnit
from repro.sim.engine import Engine

__all__ = ["ParameterServer", "SYNC_MODES"]

_TOL = 1e-9

SYNC_MODES = ("bsp", "asp", "ssp")


class ParameterServer:
    """Aggregates pushes from ``n_workers`` and releases per-key pulls."""

    #: Fast-forward journal (repro.sim.fastforward); a shared list while a
    #: steady-state cycle is being recorded, else None.
    _ff_journal = None

    def __init__(
        self,
        engine: Engine,
        n_workers: int,
        sizes: np.ndarray,
        update_fixed: float = 100e-6,
        update_per_byte: float = 0.0,
        sync_mode: str = "bsp",
        staleness: int = 2,
        faults=None,
        name: str = "ps",
        server_index: int | None = None,
    ):
        if sync_mode not in SYNC_MODES:
            raise ConfigurationError(
                f"sync_mode must be one of {SYNC_MODES}, got {sync_mode!r}"
            )
        if staleness < 0:
            raise ConfigurationError(f"staleness must be >= 0, got {staleness}")
        self.engine = engine
        self.n_workers = n_workers
        #: Trace-track label; shard ``s`` of a sharded tier is ``"ps{s}"``.
        self.name = name
        self.sizes = np.asarray(sizes, dtype=float)
        # Scalar-indexed copy for the per-segment hot loop (indexing a
        # numpy array boxes a fresh np.float64 per lookup).
        self._sizes_list: list[float] = self.sizes.tolist()
        self.update_fixed = update_fixed
        self.update_per_byte = update_per_byte
        self.sync_mode = sync_mode
        self.staleness = staleness
        #: Optional :class:`~repro.faults.injector.FaultInjector`; when set,
        #: pushes arrive through :meth:`deliver_push` with sequence numbers
        #: and pull releases absorb PS-stall windows.
        self._faults = faults
        #: Shard index in a sharded tier (scopes per-server PS stalls);
        #: ``None`` on the single-PS star.
        self.server_index = server_index
        # ServerCrash outage state: while down, the delivery layer treats
        # in-flight pushes as lost (workers retry them against the warm
        # standby once it answers).  Durable (acked) aggregation state
        # survives the hand-off untouched.
        self._down = False
        # Reliable-delivery receiver state (fault mode): next sequence
        # number to apply per worker, plus a reorder buffer for messages
        # that arrived ahead of a dropped predecessor.
        self._next_seq: list[int] = [0] * n_workers
        self._reorder: dict[int, dict[int, tuple[int, TransferUnit]]] = defaultdict(
            dict
        )
        # (iteration, grad) -> per-worker cumulative bytes received.
        # Plain lists: the hot loop only ever does scalar reads/writes and
        # min() reductions, where numpy's per-element boxing dominates.
        self._received: dict[tuple[int, int], list[float]] = {}
        # grad -> per-worker latest iteration fully pushed (-1 = none).
        self._progress: dict[int, list[int]] = {}
        # grad -> pull units waiting for release.
        self._waiting: dict[int, list[PullUnit]] = defaultdict(list)
        # Pending release run: consecutive releases for one (worker,
        # delay) pair inside a single receive_push coalesce into ONE
        # engine wakeup (the worker's batched enqueue entry), instead of
        # one event per pull unit.  ``[worker, delay, [pulls...]]``.
        self._release_run: list | None = None
        # Count of units across _waiting — O(1) pending_pulls.
        self._n_waiting = 0
        self._workers: list = []
        # Highest iteration any push has carried — drives BSP pruning of
        # settled ``_received`` entries (see receive_push).
        self._max_push_iteration = -1
        #: Total gradient bytes pushed to the PS (all workers, all iters).
        self.total_push_bytes = 0.0
        #: Observed gradient staleness (iterations) at each pull release
        #: under ASP/SSP: how far the slowest contributor lagged the
        #: pulling worker.  Always 0 under BSP (not recorded).  Feeds the
        #: convergence analysis (:mod:`repro.convergence`).
        self.staleness_samples: list[int] = []

    @property
    def down(self) -> bool:
        """True inside a :class:`~repro.faults.plan.ServerCrash` outage."""
        return self._down

    def fail(self) -> None:
        """Enter a ServerCrash outage: stop answering pushes."""
        self._down = True

    def recover(self) -> None:
        """Warm standby takes over with the durable (acked) state."""
        self._down = False

    def attach_workers(self, workers: list) -> None:
        """Late-bind the worker objects (they need the PS at construction)."""
        if len(workers) != self.n_workers:
            raise SimulationError(
                f"expected {self.n_workers} workers, got {len(workers)}"
            )
        self._workers = list(workers)

    # ------------------------------------------------------------------
    def deliver_push(
        self, worker: int, iteration: int, unit: TransferUnit, seq: int
    ) -> bool:
        """Reliable-delivery entry point: receive ``unit`` at most once,
        apply strictly in per-worker sequence order.

        A retransmission whose original was already received (its ack was
        lost) is recognised by ``seq`` and **not** re-credited — the
        conservation laws hold across arbitrary retries.  A message that
        overtook a dropped predecessor (the worker slices gradients, so a
        later partition may carry a higher offset) is parked in a reorder
        buffer and applied once the gap fills, preserving the cumulative
        per-gradient offset invariant of :meth:`receive_push`.  Returns
        ``True`` when the push was newly received (applied or buffered),
        ``False`` for a duplicate.
        """
        trace = self.engine.trace
        pending = self._reorder[worker]
        if seq < self._next_seq[worker] or seq in pending:
            if trace.enabled:
                trace.instant(
                    "push.duplicate",
                    "fault",
                    self.engine.now,
                    self.name,
                    {"worker": worker, "seq": seq, "iteration": iteration},
                )
            return False
        if seq != self._next_seq[worker]:
            pending[seq] = (iteration, unit)
            if trace.enabled:
                trace.instant(
                    "push.reordered",
                    "fault",
                    self.engine.now,
                    self.name,
                    {"worker": worker, "seq": seq, "expected": self._next_seq[worker]},
                )
            return True
        self._next_seq[worker] = seq + 1
        self.receive_push(worker, iteration, unit)
        while self._next_seq[worker] in pending:
            queued_iter, queued_unit = pending.pop(self._next_seq[worker])
            self._next_seq[worker] += 1
            self.receive_push(worker, queued_iter, queued_unit)
        return True

    def receive_push(self, worker: int, iteration: int, unit: TransferUnit) -> None:
        """A push message from ``worker`` arrived: credit bytes, respond
        per key."""
        if self.sync_mode == "bsp" and iteration > self._max_push_iteration:
            # Under BSP a push for iteration k implies every worker fully
            # pushed (and was released for) iteration k-1: the pusher's
            # forward pass gated on its k-1 pulls, which gate on full
            # coverage by all workers.  Keys at or below k-2 can never be
            # written or queried again — drop them so the aggregation
            # state stays bounded by two iterations' keys.
            self._max_push_iteration = iteration
            cutoff = iteration - 2
            if cutoff >= 0:
                stale = [key for key in self._received if key[0] <= cutoff]
                for key in stale:
                    del self._received[key]
        touched: set[int] = set()
        for seg in unit.segments:
            key = (iteration, seg.grad)
            received = self._received.get(key)
            if received is None:
                received = [0.0] * self.n_workers
                self._received[key] = received
            size = self._sizes_list[seg.grad]
            if abs(received[worker] - seg.offset) > max(_TOL, 1e-6 * seg.nbytes):
                raise SimulationError(
                    f"worker {worker} pushed gradient {seg.grad} (iter {iteration}) "
                    f"at offset {seg.offset}, expected {received[worker]}"
                )
            received[worker] += seg.nbytes
            if received[worker] > size * (1 + 1e-9) + _TOL:
                raise SimulationError(
                    f"worker {worker} over-pushed gradient {seg.grad}: "
                    f"{received[worker]} of {size} bytes"
                )
            if received[worker] >= size - _TOL:
                progress = self._progress.get(seg.grad)
                if progress is None:
                    progress = [-1] * self.n_workers
                    self._progress[seg.grad] = progress
                if iteration > progress[worker]:
                    progress[worker] = iteration
            self.total_push_bytes += seg.nbytes
            journal = self._ff_journal
            if journal is not None:
                journal.append(("ps", self, seg.nbytes))
            touched.add(seg.grad)

            pull = PullUnit(
                worker=worker,
                iteration=iteration,
                segment=seg,
                created=self.engine.now,
            )
            if self._releasable(pull):
                self._release(pull)
            else:
                self._waiting[seg.grad].append(pull)
                self._n_waiting += 1

        # Newly credited bytes may unblock waiting pulls for these keys
        # (other workers under BSP; stale followers under SSP).
        for grad in touched:
            waiting = self._waiting.get(grad)
            if not waiting:
                continue
            still_waiting = []
            for pull in waiting:
                if self._releasable(pull):
                    self._release(pull)
                    self._n_waiting -= 1
                else:
                    still_waiting.append(pull)
            if still_waiting:
                self._waiting[grad] = still_waiting
            else:
                del self._waiting[grad]
        self._flush_releases()

        trace = self.engine.trace
        if trace.enabled:
            trace.counter(
                "ps.pending_pulls",
                "ps",
                self.engine.now,
                self.name,
                {"pending": self.pending_pulls},
            )

    # ------------------------------------------------------------------
    def _range_covered(self, iteration: int, seg: Segment) -> bool:
        received = self._received.get((iteration, seg.grad))
        if received is None:
            return False
        return min(received) >= seg.offset + seg.nbytes - _TOL

    def _releasable(self, pull: PullUnit) -> bool:
        seg = pull.segment
        if self.sync_mode == "bsp":
            return self._range_covered(pull.iteration, seg)
        # ASP/SSP: the worker's own bytes are in (they arrived with this
        # very push), so only the staleness bound can hold SSP back.
        if self.sync_mode == "asp":
            return True
        # Clock convention: a worker that completed iteration i has clock
        # i+1; iteration k may proceed when the slowest clock >= k - s.
        bound = pull.iteration - self.staleness - 1
        if bound < 0:
            return True
        progress = self._progress.get(seg.grad)
        if progress is None:
            return False
        return min(progress) >= bound

    def _release(self, pull: PullUnit) -> None:
        if self.sync_mode != "bsp":
            progress = self._progress.get(pull.segment.grad)
            slowest = min(progress) if progress is not None else -1
            self.staleness_samples.append(max(0, pull.iteration - 1 - slowest))
        trace = self.engine.trace
        if trace.enabled:
            trace.instant(
                f"release g{pull.segment.grad}",
                "ps",
                self.engine.now,
                self.name,
                {
                    "worker": pull.worker,
                    "iteration": pull.iteration,
                    "grad": pull.segment.grad,
                    "nbytes": pull.segment.nbytes,
                },
            )
        delay = self.update_fixed + self.update_per_byte * pull.total_bytes
        if self._faults is not None:
            # An active PS stall defers the release to the window's end;
            # queued releases keep their relative order (engine tie-break).
            delay += self._faults.ps_release_delay(
                self.engine.now, self.server_index
            )
        # Coalesce consecutive releases for the same worker at the same
        # delay into one run.  Within a ``receive_push`` nothing else
        # schedules between two releases, so the run's units would have
        # occupied consecutive sequence numbers at one timestamp — firing
        # them from a single wakeup that replays the per-unit enqueue+pump
        # sequence in order is bit-identical, at 1/N the event cost.
        run = self._release_run
        if run is not None and run[0] == pull.worker and run[1] == delay:
            run[2].append(pull)
        else:
            self._flush_releases()
            self._release_run = [pull.worker, delay, [pull]]

    def _flush_releases(self) -> None:
        """Schedule the pending release run (if any) as one engine event."""
        run = self._release_run
        if run is None:
            return
        self._release_run = None
        worker = self._workers[run[0]]
        batch = run[2]
        if len(batch) == 1:
            self.engine.schedule_after(run[1], worker.enqueue_pull, batch[0])
        else:
            self.engine.schedule_after(run[1], worker.enqueue_pulls, batch)

    # ------------------------------------------------------------------
    def aggregated_bytes(self, iteration: int, grad: int) -> float:
        """Bytes of ``grad`` aggregated from all workers in ``iteration``."""
        received = self._received.get((iteration, grad))
        return min(received) if received is not None else 0.0

    @property
    def pending_pulls(self) -> int:
        """Pull units still waiting on aggregation/staleness.  O(1)."""
        return self._n_waiting

    # ------------------------------------------------------------------
    # Steady-state fast-forward protocol (repro.sim.fastforward)
    # ------------------------------------------------------------------
    def ff_state(self, ctx) -> tuple:
        """Canonical time-relative snapshot of the aggregation state.

        ``total_push_bytes`` is deliberately absent: it is a monotone
        accumulator, replayed op-for-op from the cycle journal so its
        floating-point rounding matches the unrolled run bit for bit.
        """
        received = tuple(
            sorted(
                ((ctx.rel_iter(it), grad), tuple(counts))
                for (it, grad), counts in self._received.items()
            )
        )
        progress = tuple(
            sorted(
                (grad, tuple(it if it < 0 else ctx.rel_iter(it) for it in its))
                for grad, its in self._progress.items()
            )
        )
        waiting = tuple(
            sorted(
                (grad, tuple(ctx.pull(u) for u in units))
                for grad, units in self._waiting.items()
            )
        )
        max_push = self._max_push_iteration
        if max_push >= 0:
            max_push = ctx.rel_iter(max_push)
        return (received, progress, waiting, self._n_waiting, max_push)

    def ff_shift(self, shift) -> None:
        """Translate iteration labels and pull timestamps by the skipped
        cycles.  Byte counts are label-relative already."""
        assert self._release_run is None, "release run pending across boundary"
        diter = shift.diter
        if self._max_push_iteration >= 0:
            self._max_push_iteration += diter
        self._received = {
            (it + diter, grad): counts
            for (it, grad), counts in self._received.items()
        }
        for its in self._progress.values():
            for w, it in enumerate(its):
                if it >= 0:
                    its[w] = it + diter
        self._waiting = defaultdict(
            list,
            {
                grad: [shift.pull(u) for u in units]
                for grad, units in self._waiting.items()
            },
        )
