"""Trainer: wires config + scheduler factory into a running simulation.

Build order mirrors the real deployment: model → compute profile → KV
store (generation schedule) → network topology → parameter server →
workers (each with its own scheduler instance and bandwidth monitor).  The
same :class:`~repro.agg.kvstore.GenerationSchedule` template is shared by
all workers (identical model/device), individualized per iteration by each
worker's jitter factor — so scheduler comparisons under the same seed are
paired.
"""

from __future__ import annotations

from typing import Callable

from repro.agg.kvstore import KVStore
from repro.cluster.collective import (
    CollectiveController,
    CollectiveWorker,
    EffectiveBandwidthView,
)
from repro.cluster.ps import ParameterServer
from repro.cluster.result import TrainingResult
from repro.cluster.sharded import ShardedWorker
from repro.cluster.sharding import (
    assign_shards,
    restrict_generation_schedule,
)
from repro.cluster.worker import Worker
from repro.config import SchedulerFactory, TrainingConfig, WorkerContext
from repro.core.profiler import JobProfile
from repro.errors import ConfigurationError, SimulationError
from repro.faults.injector import FaultInjector
from repro.metrics.timeline import Recorder
from repro.models.compute import build_compute_profile
from repro.models.registry import get_model
from repro.net.collective import (
    HierarchicalExecutor,
    HierarchicalTopology,
    RingExecutor,
    RingTopology,
)
from repro.net.monitor import BandwidthMonitor
from repro.net.topology import ShardedTopology, StarTopology
from repro.sim.engine import Engine
from repro.sim.fastforward import FastForwardDetector, fastforward_eligibility
from repro.sim.rng import spawn_rng
from repro.trace.recorder import NULL_RECORDER, NullRecorder, TraceRecorder

__all__ = ["Trainer", "run_training"]


class Trainer:
    """One simulated training run.

    ``force_sharded`` routes even an ``n_servers=1`` config through the
    sharded build path (one shard).  It exists for equivalence testing —
    the sharded machinery with a single shard must reproduce the
    single-PS results — and is not part of the public configuration.

    ``engine`` attaches the trainer to an externally owned engine instead
    of creating its own — the fleet simulator places many jobs on one
    shared engine this way.  An attached trainer is *driven*, not run:
    the owner calls :meth:`start`, pumps the shared engine itself, and
    collects the job's :class:`TrainingResult` via :meth:`finalize` once
    ``on_finished`` fires (all workers done).  :meth:`run` remains the
    single-job path and refuses to pump an engine it does not own.
    """

    def __init__(
        self,
        config: TrainingConfig,
        scheduler_factory: SchedulerFactory,
        force_sharded: bool = False,
        *,
        engine: Engine | None = None,
        name: str = "",
        on_finished: "Callable[[Trainer], None] | None" = None,
    ):
        self.config = config
        self.name = name
        self.on_finished = on_finished
        self.finished_time: float | None = None
        self._external_engine = engine is not None
        if engine is None:
            self.engine = Engine(time_quantum=config.time_quantum)
            if config.trace:
                self.trace: TraceRecorder | NullRecorder = TraceRecorder(
                    clock=lambda: self.engine.now
                )
            else:
                self.trace = NULL_RECORDER
            self.engine.trace = self.trace
        else:
            if (
                config.time_quantum is not None
                and engine.time_quantum != config.time_quantum
            ):
                raise ConfigurationError(
                    f"job time_quantum {config.time_quantum!r} does not match "
                    f"the shared engine's {engine.time_quantum!r}"
                )
            self.engine = engine
            self.trace = engine.trace
        self.recorder = Recorder(
            record_gradients=config.record_gradients, trace=self.trace
        )

        model = get_model(config.model)
        self.compute = build_compute_profile(model, config.device, config.batch_size)
        kvstore = KVStore(
            policy=config.effective_policy(),
            flush_fixed=config.kv_flush_fixed,
            flush_per_byte=config.kv_flush_per_byte,
        )
        self.gen_schedule = kvstore.generation_schedule(self.compute)
        self.oracle_profile = JobProfile.from_generation_schedule(self.gen_schedule)

        self.monitors: list[BandwidthMonitor] = []
        self.workers: list[Worker] = []
        self.schedulers = []
        self.injector: FaultInjector | None = None
        self._done_count = 0
        if config.backend == "allreduce":
            self._build_collective(scheduler_factory)
        elif config.n_servers > 1 or force_sharded:
            self._build_sharded(scheduler_factory)
        else:
            self._build_single(scheduler_factory)
        if config.time_quantum is not None:
            # Strategy-side durations (Prophet's flush offsets) join the
            # engine's delay grid, keeping iteration cycles exactly
            # translation-invariant in time.
            for scheduler in self.schedulers:
                scheduler.set_time_quantum(config.time_quantum)
        self._install_fastforward()

    # ------------------------------------------------------------------
    def _all_links(self) -> list:
        """Every link the built topology materialized, in construction
        order (the order doubles as the links' fast-forward identity)."""
        topology = self.topology
        links: list = []
        for attr in ("uplinks", "downlinks", "links", "local_links", "global_links"):
            group = getattr(topology, attr, None)
            if not group:
                continue
            for item in group:
                if isinstance(item, list):
                    links.extend(item)
                else:
                    links.append(item)
        return links

    def _install_fastforward(self) -> None:
        """Install the steady-state fast-forward detector on eligible runs.

        Ineligible runs (no time quantum, faults, jitter, noise, dynamic
        bandwidth, non-BSP sync, opted-out schedulers, or the
        ``REPRO_NO_FASTFORWARD`` kill-switch) get no detector and are
        bit-identical to builds that predate it.
        """
        links = self._all_links()
        eligible, reason = fastforward_eligibility(
            self.config, self.schedulers, links, self.injector, self.engine
        )
        self.fastforward_reason = reason
        self.fastforward: FastForwardDetector | None = None
        if not eligible:
            return
        self.fastforward = FastForwardDetector(
            self.engine,
            workers=self.workers,
            schedulers=self.schedulers,
            links=links,
            servers=self.servers,
            recorder=self.recorder,
            monitors=self.monitors,
            n_workers=self.config.n_workers,
            n_iterations=self.config.n_iterations,
            controller=getattr(self, "controller", None),
            executor=getattr(self, "executor", None),
        )

    # ------------------------------------------------------------------
    def _make_injector(self) -> None:
        """Instantiate the fault injector iff the plan injects anything.

        Only a non-empty plan creates any fault machinery — with
        ``self.injector`` left ``None`` every fault branch in the workers,
        ports, PSs, executors, and controller stays on the ``is None``
        fast path and the event sequence is bit-identical to a fault-free
        build, on every backend.
        """
        plan = self.config.faults
        if plan is not None and not plan.is_empty:
            self.injector = FaultInjector(
                self.engine,
                plan,
                n_workers=self.config.n_workers,
                rng=spawn_rng(self.config.seed, "faults"),
            )

    def _build_single(self, scheduler_factory: SchedulerFactory) -> None:
        """The paper's topology: one PS, one duplex channel per worker."""
        config = self.config
        self.topology = StarTopology(
            self.engine,
            n_workers=config.n_workers,
            bandwidth=config.bandwidth,
            tcp=config.tcp,
            worker_bandwidth=config.worker_bandwidth,
            ps_bandwidth=config.ps_bandwidth,
            seed=config.seed,
            noise_std=config.bandwidth_noise_std,
        )
        self._make_injector()
        self.ps = ParameterServer(
            self.engine,
            n_workers=config.n_workers,
            sizes=self.gen_schedule.sizes,
            update_fixed=config.ps_update_fixed,
            update_per_byte=config.ps_update_per_byte,
            sync_mode=config.sync_mode,
            staleness=config.ssp_staleness,
            faults=self.injector,
        )
        self.servers = [self.ps]

        compute_scale = dict(config.worker_compute_scale or {})
        for w in range(config.n_workers):
            channel = self.topology.uplink(w)
            monitor = BandwidthMonitor(
                self.engine, channel, interval=config.monitor_interval
            )
            self.monitors.append(monitor)
            # Each worker's oracle profile reflects *its own* compute pace
            # (the real profiler runs per worker) — a compute straggler's
            # generation times are proportionally later.
            scale = compute_scale.get(w, 1.0)
            worker_profile = (
                self.oracle_profile
                if scale == 1.0
                else JobProfile(
                    c=self.oracle_profile.c * scale,
                    sizes=self.oracle_profile.sizes,
                    iterations=0,
                )
            )
            ctx = WorkerContext(
                worker_id=w,
                monitor=monitor,
                oracle_profile=worker_profile,
                tcp=config.tcp,
                rng=spawn_rng(config.seed, "sched", w),
                engine=self.engine,
            )
            scheduler = scheduler_factory(ctx)
            self.schedulers.append(scheduler)
            worker = Worker(
                engine=self.engine,
                worker_id=w,
                compute=self.compute,
                gen_schedule=self.gen_schedule,
                scheduler=scheduler,
                channel=channel,
                downlink=self.topology.downlink(w) if config.duplex else None,
                ps=self.ps,
                recorder=self.recorder,
                n_iterations=config.n_iterations,
                jitter_rng=spawn_rng(config.seed, "jitter", w),
                jitter_std=config.jitter_std,
                compute_scale=compute_scale.get(w, 1.0),
                on_done=self._worker_done,
                stall_timeout=config.sched.stall_timeout,
                faults=self.injector,
            )
            self.workers.append(worker)
        self.ps.attach_workers(self.workers)
        if self.injector is not None:
            self.injector.install(
                self.workers,
                {w: self.topology.uplink(w) for w in range(config.n_workers)},
                servers=self.servers,
            )

    # ------------------------------------------------------------------
    def _build_sharded(self, scheduler_factory: SchedulerFactory) -> None:
        """The BytePS-style tier: ``n_servers`` key-sharded PSs.

        Per worker and shard: a dedicated duplex link pair, a bandwidth
        monitor on the shard uplink, and an independent scheduler instance
        over the shard's locally re-indexed generation schedule (its own
        RNG stream, ``("sched", worker, shard)``).  Each shard PS holds
        the shard's piece sizes and attaches the workers' shard ports.
        """
        config = self.config
        n_shards = config.n_servers
        self.topology = ShardedTopology(
            self.engine,
            n_workers=config.n_workers,
            n_servers=n_shards,
            bandwidth=config.bandwidth,
            tcp=config.tcp,
            worker_bandwidth=config.worker_bandwidth,
            ps_bandwidth=config.ps_bandwidth,
            seed=config.seed,
            noise_std=config.bandwidth_noise_std,
        )
        self._make_injector()
        self.assignment = assign_shards(
            self.gen_schedule.sizes, n_shards, config.shard_slice_bytes
        )
        shard_templates = [
            restrict_generation_schedule(self.gen_schedule, self.assignment, s)
            for s in range(n_shards)
        ]
        self.servers = [
            ParameterServer(
                self.engine,
                n_workers=config.n_workers,
                sizes=shard_templates[s].sizes,
                update_fixed=config.ps_update_fixed,
                update_per_byte=config.ps_update_per_byte,
                sync_mode=config.sync_mode,
                staleness=config.ssp_staleness,
                faults=self.injector,
                name=f"ps{s}",
                server_index=s,
            )
            for s in range(n_shards)
        ]
        self.ps = self.servers[0]
        shard_profiles = [
            JobProfile.from_generation_schedule(t) for t in shard_templates
        ]

        compute_scale = dict(config.worker_compute_scale or {})
        for w in range(config.n_workers):
            scale = compute_scale.get(w, 1.0)
            schedulers: list = []
            for s in range(n_shards):
                monitor = BandwidthMonitor(
                    self.engine,
                    self.topology.uplink(w, s),
                    interval=config.monitor_interval,
                )
                self.monitors.append(monitor)
                profile = shard_profiles[s]
                if scale != 1.0:
                    profile = JobProfile(
                        c=profile.c * scale, sizes=profile.sizes, iterations=0
                    )
                ctx = WorkerContext(
                    worker_id=w,
                    monitor=monitor,
                    oracle_profile=profile,
                    tcp=config.tcp,
                    rng=spawn_rng(config.seed, "sched", w, s),
                    engine=self.engine,
                )
                schedulers.append(scheduler_factory(ctx))
            self.schedulers.extend(schedulers)
            worker = ShardedWorker(
                engine=self.engine,
                worker_id=w,
                compute=self.compute,
                gen_schedule=self.gen_schedule,
                assignment=self.assignment,
                shard_schedules=shard_templates,
                schedulers=schedulers,
                channels=[self.topology.uplink(w, s) for s in range(n_shards)],
                downlinks=(
                    [self.topology.downlink(w, s) for s in range(n_shards)]
                    if config.duplex
                    else None
                ),
                servers=self.servers,
                recorder=self.recorder,
                n_iterations=config.n_iterations,
                jitter_rng=spawn_rng(config.seed, "jitter", w),
                jitter_std=config.jitter_std,
                compute_scale=scale,
                on_done=self._worker_done,
                stall_timeout=config.sched.stall_timeout,
                faults=self.injector,
            )
            self.workers.append(worker)
        for s in range(n_shards):
            self.servers[s].attach_workers(
                [worker.port(s) for worker in self.workers]
            )
        if self.injector is not None:
            # A flapped worker degrades on every shard uplink at once (its
            # NIC, not one flow, is what the fault models).
            self.injector.install(
                self.workers,
                {
                    w: [self.topology.uplink(w, s) for s in range(n_shards)]
                    for w in range(config.n_workers)
                },
                servers=self.servers,
            )

    def _build_collective(self, scheduler_factory: SchedulerFactory) -> None:
        """The allreduce tier: a collective topology, one executor, and a
        single negotiated scheduler instance (see
        :mod:`repro.cluster.collective`).

        The scheduler factory gets worker 0's context with a bandwidth
        view scaled by the collective's per-byte cost, so strategies that
        plan from a bandwidth estimate (Prophet) predict operation times
        on the ring as accurately as they predict PS pushes.
        """
        config = self.config
        if config.collective == "hierarchical":
            self.topology = HierarchicalTopology(
                self.engine,
                n_workers=config.n_workers,
                group_size=config.collective_group_size,
                bandwidth=config.bandwidth,
                tcp=config.tcp,
                worker_bandwidth=config.worker_bandwidth,
                seed=config.seed,
                noise_std=config.bandwidth_noise_std,
            )
            self.executor = HierarchicalExecutor(self.topology)
            monitor_link = self.topology.local_links[0]
        else:
            self.topology = RingTopology(
                self.engine,
                n_workers=config.n_workers,
                bandwidth=config.bandwidth,
                tcp=config.tcp,
                worker_bandwidth=config.worker_bandwidth,
                seed=config.seed,
                noise_std=config.bandwidth_noise_std,
            )
            self.executor = RingExecutor(self.topology)
            monitor_link = self.topology.links[0]
        self.ps = None
        self.servers = []
        self._make_injector()
        if self.injector is not None:
            self.executor.set_faults(self.injector)

        monitor = BandwidthMonitor(
            self.engine, monitor_link, interval=config.monitor_interval
        )
        self.monitors.append(monitor)
        view = EffectiveBandwidthView(monitor, self.executor.efficiency_factor)
        ctx = WorkerContext(
            worker_id=0,
            monitor=view,
            oracle_profile=self.oracle_profile,
            tcp=config.tcp,
            rng=spawn_rng(config.seed, "sched", 0),
            engine=self.engine,
        )
        scheduler = scheduler_factory(ctx)
        self.schedulers.append(scheduler)
        self.controller = CollectiveController(
            self.engine,
            scheduler,
            self.executor,
            self.recorder,
            n_workers=config.n_workers,
            stall_timeout=config.sched.stall_timeout,
            faults=self.injector,
            view=view,
        )

        compute_scale = dict(config.worker_compute_scale or {})
        for w in range(config.n_workers):
            worker = CollectiveWorker(
                engine=self.engine,
                worker_id=w,
                compute=self.compute,
                gen_schedule=self.gen_schedule,
                controller=self.controller,
                recorder=self.recorder,
                n_iterations=config.n_iterations,
                jitter_rng=spawn_rng(config.seed, "jitter", w),
                jitter_std=config.jitter_std,
                compute_scale=compute_scale.get(w, 1.0),
                on_done=self._worker_done,
                faults=self.injector,
            )
            self.workers.append(worker)
        self.controller.attach_workers(self.workers)
        if self.injector is not None:
            # A flapped worker's whole NIC degrades: every transmit link it
            # owns (ring; local + global for a leader) flaps together.
            self.injector.install(
                self.workers,
                {
                    w: self.topology.worker_uplinks(w)
                    for w in range(config.n_workers)
                },
            )

    def _worker_done(self, worker_id: int) -> None:
        self._done_count += 1
        if self._done_count == self.config.n_workers:
            for monitor in self.monitors:
                monitor.stop()
            self.finished_time = self.engine.now
            if self.on_finished is not None:
                self.on_finished(self)

    @property
    def finished(self) -> bool:
        """Whether every worker completed its configured iterations."""
        return self._done_count == self.config.n_workers

    def event_budget(self) -> int:
        """Generous event budget for one full run of this job.

        Exceeding it means a scheduler livelocked the simulation.  The
        fleet simulator sums the budgets of all placed jobs to bound the
        shared engine's pump.
        """
        per_iter = 400 * (1 + self.gen_schedule.num_gradients // 4)
        return max(
            200_000, per_iter * self.config.n_iterations * self.config.n_workers
        )

    def start(self) -> None:
        """Schedule every worker's first compute; does not pump events."""
        for worker in self.workers:
            worker.start()

    def run(self, max_events: int | None = None) -> TrainingResult:
        """Execute the configured number of iterations on all workers."""
        if self._external_engine:
            raise SimulationError(
                "trainer is attached to a shared engine; its owner pumps "
                "events — use start()/finalize() instead of run()"
            )
        if max_events is None:
            max_events = self.event_budget()
        self.start()
        self.engine.run(max_events=max_events)
        if self._done_count != self.config.n_workers:
            raise SimulationError(
                f"training stalled: {self._done_count}/{self.config.n_workers} "
                f"workers finished (t={self.engine.now:.3f}s, "
                f"{self.engine.events_processed} events)"
            )
        return self.finalize()

    def finalize(self) -> TrainingResult:
        """Package the completed job's :class:`TrainingResult`.

        The result's ``end_time`` is the instant the last worker finished
        — on the owned-engine path that equals the drained ``engine.now``
        (the final worker's completion is the last event of the run), so
        results are identical whether the job ran alone or as one tenant
        of a fleet.
        """
        if self.finished_time is None:
            raise SimulationError(
                f"job {self.name or '<unnamed>'}: finalize() before all "
                f"workers finished ({self._done_count}/{self.config.n_workers})"
            )
        return TrainingResult(
            config=self.config,
            recorder=self.recorder,
            topology=self.topology,
            schedulers=self.schedulers,
            gen_schedule=self.gen_schedule,
            compute=self.compute,
            end_time=self.finished_time,
            trace=self.trace,
            fault_stats=dict(self.injector.stats) if self.injector else None,
            fault_log=list(self.injector.log) if self.injector else None,
            fastforward_stats=self._fastforward_stats(),
        )

    def _fastforward_stats(self) -> dict | None:
        ff = self.fastforward
        if ff is None:
            return None
        return {
            "engaged": ff.engaged,
            "period": ff.period,
            "cycles_skipped": ff.cycles_skipped,
            "iterations_skipped": ff.iterations_skipped,
            "fallbacks": ff.fallbacks,
            "boundaries_seen": ff.boundaries_seen,
            "disabled_reason": ff.disabled_reason,
        }


def run_training(
    config: TrainingConfig,
    scheduler_factory: SchedulerFactory,
    force_sharded: bool = False,
) -> TrainingResult:
    """Convenience one-shot: build a :class:`Trainer` and run it."""
    return Trainer(config, scheduler_factory, force_sharded=force_sharded).run()
