"""Sharded-PS worker: one compute pipeline, one comm agent per shard.

A :class:`ShardedWorker` runs the exact same compute path as the single-PS
:class:`~repro.cluster.worker.Worker` (it inherits forward gating, bucket
flushes, and iteration bookkeeping unchanged) but fans communication out
over ``n_servers`` independent :class:`_ShardPort` agents — one per
parameter-server shard, each with its own scheduler instance, uplink,
optional downlink, pull queue, and stall timer.  Because every port owns
its own link pair, a head-of-line block on one shard (e.g. a large
low-priority tensor in flight) never delays another shard's urgent
gradients — the BytePS property the tentpole exists to model.

Index spaces: the worker's compute path and recorder run on **global**
gradient indices; each port's scheduler, PS, and messages run on the
shard's **local** piece indices (dense, priority-ordered — see
:mod:`repro.cluster.sharding`).  Ports translate at the boundary: a
committed push credits global ``_pushed`` bytes, a completed pull credits
global ``_pulled`` bytes and the layer-gating counters, and the recorder
marks fire on global indices exactly once per gradient per iteration
(when the piece bytes complete the whole tensor).

Synchronization semantics are preserved across shards: each shard PS
applies BSP/ASP/SSP per piece, and the worker's forward pass for
iteration ``k+1`` still gates on *all* global parameter updates of
iteration ``k`` — so global BSP is exactly the conjunction of the
per-shard BSP conditions.

**Fault mode.**  When the trainer wires a
:class:`~repro.faults.injector.FaultInjector`, every port independently
runs the :class:`~repro.cluster.worker.ReliableDeliveryMixin` protocol
against its shard PS: per-port sequence numbers, per-leg drop rolls on
the port's own duplex links, and per-port retry queues — a drop on one
shard never delays another shard's traffic.  A worker crash suspends the
shared compute pipeline once and aborts every port's in-flight transfer;
a :class:`~repro.faults.plan.ServerCrash` takes one shard PS down, and
that shard's unacked pushes replay against the warm standby while the
other shards stream on undisturbed.  With no injector every port stays
on the fault-free fast path, bit-identical to before.
"""

from __future__ import annotations

import itertools
from functools import partial
from heapq import heapify, heappop, heappush
from typing import Callable

import numpy as np

from repro.agg.kvstore import GenerationSchedule
from repro.cluster.messages import PullUnit, PushMessage
from repro.cluster.ps import ParameterServer
from repro.cluster.sharding import ShardAssignment
from repro.cluster.worker import (
    ReliableDeliveryMixin,
    Worker,
    _ff_pull_heap_state,
    _ff_shift_pull_heap,
)
from repro.errors import SimulationError
from repro.metrics.timeline import Recorder
from repro.models.compute import ComputeProfile
from repro.models.gradients import gradient_table
from repro.net.link import Link
from repro.net.transport import LinkTransport
from repro.sched.base import CommScheduler, TransferUnit

__all__ = ["ShardedWorker"]

_TOL = 1e-9


class _ShardPort(ReliableDeliveryMixin):
    """Communication agent of one worker towards one PS shard.

    Mirrors the single-PS worker's channel logic — shared-channel
    arbitration between the scheduler's proposed push and pending pulls,
    priority-prefix pull batching, and the stall-probe escape hatch — on
    the shard's local index space.  The shard PS calls
    :meth:`enqueue_pull` on the port directly (ports are what
    ``attach_workers`` receives).  In fault mode each port is an
    independent reliable-delivery endpoint (its own sequence numbers,
    retry queue, and drop rolls) sharing the worker's crash state.
    """

    def __init__(
        self,
        worker: "ShardedWorker",
        shard: int,
        scheduler: CommScheduler,
        channel: Link,
        downlink: Link | None,
        ps: ParameterServer,
    ):
        self.worker = worker
        self.shard = shard
        self.scheduler = scheduler
        self.channel = channel
        self.transport = LinkTransport(channel)
        self.downlink = downlink
        self.ps = ps
        #: Local index -> :class:`~repro.cluster.sharding.ShardPiece`.
        self.pieces = worker.assignment.by_shard[shard]
        self._pull_heap: list[tuple[tuple, PullUnit, float]] = []
        self._pull_seq = itertools.count()
        self._pull_by_priority = (downlink is not None) or not scheduler.fifo_channel
        self._stall_timer = None
        self._track = f"worker{worker.worker_id}/s{shard}"
        self._init_reliable_state()
        channel.on_idle = self._pump
        if downlink is not None:
            downlink.on_idle = self._pump_downlink

    # ------------------------------------------------------------------
    # Worker-state delegation (the ReliableDeliveryMixin contract: the
    # port is a delivery endpoint, crash/suspension state is worker-wide).
    # ------------------------------------------------------------------
    @property
    def engine(self):
        return self.worker.engine

    @property
    def worker_id(self) -> int:
        return self.worker.worker_id

    @property
    def _faults(self):
        return self.worker._faults

    @property
    def _done(self) -> bool:
        return self.worker._done

    def _schedule_after(self, delay: float, fn, *args):
        return self.worker._schedule_after(delay, fn, *args)

    # ------------------------------------------------------------------
    def enqueue_pull(self, pull: PullUnit) -> None:
        """The shard PS released updated parameters for this worker."""
        self._enqueue_pull_item(pull, self.worker.engine.now)
        if self.downlink is not None:
            self._pump_downlink()
        else:
            self._pump()

    def _enqueue_pull_item(self, pull: PullUnit, arrival: float) -> None:
        if self._pull_by_priority:
            key = (pull.priority, arrival, next(self._pull_seq))
        else:
            key = (arrival, next(self._pull_seq))
        heappush(self._pull_heap, (key, pull, arrival))

    def _pick_pull(self) -> tuple[PullUnit, float] | None:
        if not self._pull_heap:
            return None
        entry = self._pull_heap[0]
        return entry[1], entry[2]

    def _push_arrival(self, unit: TransferUnit) -> float:
        piece = self.pieces[unit.segments[0].grad]
        ready = self.worker._ready_time[piece.grad]
        return ready if ready is not None else self.worker.engine.now

    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Arbitrate this shard's channel between pulls and the push."""
        worker = self.worker
        if worker._done or self.channel.busy:
            return
        if worker._faults is not None:
            if worker._suspended:
                return
            # Retransmissions go first: they carry the oldest committed
            # bytes, which every BSP peer is already gated on.
            if self._transmit_next_retry():
                return
        now = worker.engine.now
        pull_item = self._pick_pull() if self.downlink is None else None
        push = self.scheduler.propose_unit(now)

        choose_pull = False
        if pull_item is not None and push is None:
            choose_pull = True
        elif pull_item is not None and push is not None:
            if self.scheduler.fifo_channel:
                choose_pull = pull_item[1] <= self._push_arrival(push)
            else:
                choose_pull = pull_item[0].priority <= push.priority

        if choose_pull:
            self._send_pull_batch(self.channel)
        elif push is not None:
            self._send_push(push)
        elif self.scheduler.pending_bytes > 0:
            self._arm_stall_timer()

    def _arm_stall_timer(self) -> None:
        if self._stall_timer is not None and self._stall_timer.alive:
            return
        self._stall_timer = self.worker.engine.schedule_after(
            self.worker._stall_timeout, self._stall_check
        )

    def _stall_check(self) -> None:
        self._stall_timer = None
        worker = self.worker
        if (
            worker._done
            or worker._suspended
            or self.channel.busy
            or self._pull_heap
            or self.scheduler.pending_bytes <= 0
        ):
            return
        trace = worker.engine.trace
        if trace.enabled:
            trace.instant(
                "stall.probe",
                "sched",
                worker.engine.now,
                f"{self._track}/comm",
                {"pending_bytes": self.scheduler.pending_bytes},
            )
        self.scheduler.grant_probe(worker.engine.now)
        self._pump()

    def _pump_downlink(self) -> None:
        assert self.downlink is not None
        worker = self.worker
        if (
            worker._done
            or worker._suspended
            or self.downlink.busy
            or not self._pull_heap
        ):
            return
        self._send_pull_batch(self.downlink)

    # ------------------------------------------------------------------
    def _send_pull_batch(self, link: Link) -> None:
        """Send the head pull, batching more under ``pull_batch_limit``."""
        _, head_pull, _ = heappop(self._pull_heap)
        batch = [head_pull]
        total = head_pull.total_bytes
        limit = self.scheduler.pull_batch_limit(self.worker.engine.now)
        if limit is not None and self._pull_heap:
            if self._pull_by_priority:
                heap = self._pull_heap
                while heap:
                    pull = heap[0][1]
                    if total + pull.total_bytes > limit:
                        break
                    heappop(heap)
                    batch.append(pull)
                    total += pull.total_bytes
            else:
                candidates = sorted(
                    self._pull_heap, key=lambda e: (e[1].priority, e[2], e[0])
                )
                taken: set = set()
                for entry in candidates:
                    pull = entry[1]
                    if total + pull.total_bytes > limit:
                        break
                    batch.append(pull)
                    total += pull.total_bytes
                    taken.add(entry)
                if taken:
                    self._pull_heap = [
                        e for e in self._pull_heap if e not in taken
                    ]
                    heapify(self._pull_heap)
        if self.worker._faults is not None:
            self._inflight_pulls[link] = batch
        link.send(
            total,
            tag=("pull", batch[0].iteration),
            on_complete=partial(
                self._pulls_done, link, batch, self.worker.engine.now
            ),
            extra_time=self._unit_sync_time(),
        )

    def _unit_sync_time(self) -> float:
        return self.scheduler.unit_sync_rtts * self.channel.tcp.rtt

    def _send_push(self, unit: TransferUnit) -> None:
        worker = self.worker
        now = worker.engine.now
        self.scheduler.commit_unit(unit, now)
        for seg in unit.segments:
            piece = self.pieces[seg.grad]
            # The gradient's true first byte: global offset 0, which lives
            # in slice 0 on exactly one shard — the mark fires once.
            if seg.offset <= _TOL and piece.offset <= _TOL:
                worker.recorder.mark_push_start(
                    worker.worker_id, worker._comm_iter, piece.grad, now
                )
        desc: dict[str, object] | None = None
        if worker.engine.trace.enabled:
            desc = self.scheduler.describe_unit(unit)
            self._trace_push_spans(unit, desc, now)
        if worker._faults is None:
            self.transport.send_unit(
                unit.total_bytes,
                tag=("push", worker._comm_iter),
                on_complete=partial(
                    self._push_done, worker._comm_iter, unit, now, desc
                ),
                extra_time=self._unit_sync_time(),
            )
            return
        msg = PushMessage(
            seq=next(self._push_seq), iteration=worker._comm_iter, unit=unit
        )
        self._outstanding[msg.seq] = msg
        self._push_desc[msg.seq] = desc
        self._transmit_push(msg)

    def _trace_push_spans(
        self, unit: TransferUnit, desc: dict[str, object], now: float
    ) -> None:
        worker = self.worker
        trace = worker.engine.trace
        readies = [
            worker._ready_time[self.pieces[seg.grad].grad]
            for seg in unit.segments
            if worker._ready_time[self.pieces[seg.grad].grad] is not None
        ]
        trace.complete(
            f"assemble p{unit.priority}",
            "assembly",
            min(readies) if readies else now,
            now,
            f"{self._track}/assembly",
            desc,
        )
        for seg in unit.segments:
            if seg.offset > _TOL:
                continue
            piece = self.pieces[seg.grad]
            ready = worker._ready_time[piece.grad]
            if ready is not None and now > ready:
                trace.complete(
                    f"wait g{piece.grad}",
                    "wait",
                    ready,
                    now,
                    f"{self._track}/wait",
                    {
                        "grad": piece.grad,
                        "part": piece.part,
                        "shard": self.shard,
                        "iteration": worker._comm_iter,
                    },
                )

    def _push_done(
        self,
        iteration: int,
        unit: TransferUnit,
        start: float,
        desc: dict[str, object] | None,
    ) -> None:
        worker = self.worker
        now = worker.engine.now
        worker._credit_push(self, unit, iteration, now)
        trace = worker.engine.trace
        if trace.enabled:
            trace.complete(
                f"push i{iteration}",
                "comm",
                start,
                now,
                f"{self._track}/comm",
                desc if desc is not None else {},
            )
        self.scheduler.unit_sent(unit, now)
        self.ps.receive_push(worker.worker_id, iteration, unit)

    def _pulls_done(self, link: Link, batch: list[PullUnit], start: float) -> None:
        worker = self.worker
        now = worker.engine.now
        if worker._faults is not None:
            self._inflight_pulls.pop(link, None)
            if worker._faults.roll_drop("pull", worker.worker_id):
                self._schedule_pull_retry(batch)
                return
        for pull in batch:
            self.scheduler.pull_completed(pull.segment.grad, pull.segment.nbytes, now)
        worker._credit_pulls(self, batch, start, now, self._track)

    def _account_push(self, msg: PushMessage, start: float) -> None:
        """First delivery of a push on this port (fault mode): the
        fault-free completion bookkeeping, minus the PS hand-off (which
        :meth:`~repro.cluster.ps.ParameterServer.deliver_push` already
        performed)."""
        worker = self.worker
        now = worker.engine.now
        if msg.iteration == worker._comm_iter:
            worker._credit_push(self, msg.unit, msg.iteration, now)
        trace = worker.engine.trace
        if trace.enabled:
            desc = self._push_desc.get(msg.seq)
            trace.complete(
                f"push i{msg.iteration}",
                "comm",
                start,
                now,
                f"{self._track}/comm",
                desc if desc is not None else {},
            )
        self.scheduler.unit_sent(msg.unit, now)

    # ------------------------------------------------------------------
    # Steady-state fast-forward protocol (repro.sim.fastforward)
    # ------------------------------------------------------------------
    def ff_state(self, ctx) -> tuple:
        """Canonical snapshot of this port's pull queue (its scheduler and
        links snapshot themselves)."""
        return (_ff_pull_heap_state(self._pull_heap, ctx),)

    def ff_shift(self, shift) -> None:
        if self._pull_heap:
            self._pull_heap = _ff_shift_pull_heap(
                self._pull_heap, shift, self._pull_by_priority
            )

    def abort_for_crash(self) -> None:
        """Worker crashed: abort this port's in-flight traffic.

        The in-flight push's bytes are lost and the message re-enters the
        port's retry queue; an in-flight pull batch is re-queued for
        redelivery.  Mirrors the single-PS worker's crash handling, once
        per port.
        """
        if self._stall_timer is not None:
            self._stall_timer.cancel()
            self._stall_timer = None
        for link in (self.channel, self.downlink):
            if link is None:
                continue
            tag = link.abort()
            if tag is None:
                continue
            kind = tag[0] if isinstance(tag, tuple) else None
            if kind == "push" and self._inflight_push is not None:
                self._retry_queue.append(self._inflight_push)
                self._inflight_push = None
            elif kind == "pull":
                batch = self._inflight_pulls.pop(link, None)
                if batch:
                    now = self.engine.now
                    for pull in batch:
                        self._enqueue_pull_item(pull, now)


class ShardedWorker(Worker):
    """Worker with one comm agent per PS shard (compute path inherited)."""

    def __init__(
        self,
        engine,
        worker_id: int,
        compute: ComputeProfile,
        gen_schedule: GenerationSchedule,
        assignment: ShardAssignment,
        shard_schedules: list[GenerationSchedule],
        schedulers: list[CommScheduler],
        channels: list[Link],
        downlinks: list[Link] | None,
        servers: list[ParameterServer],
        recorder: Recorder,
        n_iterations: int,
        jitter_rng: np.random.Generator,
        jitter_std: float = 0.0,
        compute_scale: float = 1.0,
        on_done: Callable[[int], None] | None = None,
        stall_timeout: float = 5e-3,
        faults=None,
    ):
        # Deliberately does NOT call Worker.__init__: the base constructor
        # wires a single channel/scheduler/PS.  The compute-path state the
        # inherited methods read is set up here, and all single-channel
        # comm state is replaced by the per-shard ports.
        self.engine = engine
        self.worker_id = worker_id
        self._quantum = engine._quantum
        self._inv_quantum = engine._inv_quantum
        self.compute = compute
        self.gen_schedule = gen_schedule
        self.assignment = assignment
        self.recorder = recorder
        self.n_iterations = n_iterations
        self._jitter_rng = jitter_rng
        self._jitter_std = jitter_std
        self._compute_scale = compute_scale
        self._on_done = on_done

        grads = gradient_table(compute.model)
        self._n_grads = len(grads)
        self._layer_of = [g.layer_index for g in grads]
        self._layer_tensor_counts = [0] * len(compute.model.layers)
        for g in grads:
            self._layer_tensor_counts[g.layer_index] += 1
        self._total_tensor_count = sum(self._layer_tensor_counts)
        self._sizes = [float(s) for s in gen_schedule.sizes]

        self._iter = -1
        self._comm_iter = -1
        self._factor = 1.0
        self._fwd_layer = 0
        self._fwd_chunk_pending = False
        self._fwd_start_times: list[float] = []
        self._layer_pending = [0] * len(self._layer_tensor_counts)
        self._pending_updates = 0
        self._pulled = [0.0] * self._n_grads
        self._pushed = [0.0] * self._n_grads
        self._ready_time: list[float | None] = [None] * self._n_grads
        self._iter_rec = None
        self._compute_done = False
        self._done = False
        self._stall_timeout = stall_timeout
        # Crash/suspension state is worker-wide (one compute pipeline);
        # delivery state lives per port.  Ports read ``_faults`` through
        # their delegation properties, so this must be set before they are
        # constructed below.  With no injector the inherited
        # ``_schedule_at``/``_schedule_after`` stay on the fast path.
        self._faults = faults
        self._suspended = False
        self._deferred: list = []

        n_shards = assignment.n_servers
        if not (
            len(shard_schedules) == len(schedulers) == len(channels)
            == len(servers) == n_shards
        ):
            raise SimulationError(
                f"worker {worker_id}: shard wiring mismatch "
                f"({n_shards} shards)"
            )
        if downlinks is not None and len(downlinks) != n_shards:
            raise SimulationError(
                f"worker {worker_id}: {len(downlinks)} downlinks for "
                f"{n_shards} shards"
            )
        self._shard_schedules = list(shard_schedules)
        self._ports = [
            _ShardPort(
                self,
                shard=s,
                scheduler=schedulers[s],
                channel=channels[s],
                downlink=downlinks[s] if downlinks is not None else None,
                ps=servers[s],
            )
            for s in range(n_shards)
        ]
        # Base-class aliases so shared helpers (and debuggers) see shard
        # 0's agent where the single-PS worker has its only one.
        self.scheduler = schedulers[0]
        self.channel = channels[0]
        self.downlink = None
        self.ps = servers[0]

    # ------------------------------------------------------------------
    def port(self, shard: int) -> _ShardPort:
        """The comm agent towards ``shard`` (what its PS attaches to)."""
        return self._ports[shard]

    # ------------------------------------------------------------------
    # Scheduler fan-out hooks (see Worker)
    # ------------------------------------------------------------------
    def _sched_begin_iteration(self, iteration: int, sched, now: float) -> None:
        # ``sched`` is the globally scaled schedule; each shard scheduler
        # gets its restricted view scaled by the same jitter factor.
        for port, template in zip(self._ports, self._shard_schedules):
            port.scheduler.begin_iteration(
                iteration, template.scaled(self._factor), now
            )

    def _sched_end_iteration(self, iteration: int, span: float, now: float) -> None:
        for port in self._ports:
            port.scheduler.end_iteration(iteration, span, now)

    def _sched_gradient_ready(self, grad: int, now: float) -> None:
        for piece in self.assignment.pieces_of(grad):
            self._ports[piece.shard].scheduler.gradient_ready(piece.local, now)

    def _pump_all(self) -> None:
        for port in self._ports:
            port._pump()

    def _clear_pull_attempts(self) -> None:
        for port in self._ports:
            port._pull_attempts.clear()

    # ------------------------------------------------------------------
    # Port callbacks: translate local piece indices to global gradients
    # ------------------------------------------------------------------
    def _credit_push(
        self, port: _ShardPort, unit: TransferUnit, iteration: int, now: float
    ) -> None:
        for seg in unit.segments:
            grad = port.pieces[seg.grad].grad
            self._pushed[grad] += seg.nbytes
            if self._pushed[grad] >= self._sizes[grad] - _TOL:
                self.recorder.mark_push_end(self.worker_id, iteration, grad, now)

    def _credit_pulls(
        self,
        port: _ShardPort,
        batch: list[PullUnit],
        start: float,
        now: float,
        track: str,
    ) -> None:
        forward_was_blocked = (
            self._fwd_layer < len(self.compute.fwd_times)
            and not self._fwd_chunk_pending
        )
        for pull in batch:
            if pull.iteration != self._comm_iter:
                raise SimulationError(
                    f"worker {self.worker_id} pulled iteration {pull.iteration} "
                    f"while communicating iteration {self._comm_iter}"
                )
            seg = pull.segment
            grad = port.pieces[seg.grad].grad
            self._pulled[grad] += seg.nbytes
            if self._pulled[grad] >= self._sizes[grad] - _TOL:
                self.recorder.mark_pull_end(
                    self.worker_id, pull.iteration, grad, now
                )
                layer = self._layer_of[grad]
                self._layer_pending[layer] -= 1
                self._pending_updates -= 1
                if self._layer_pending[layer] < 0:
                    raise SimulationError(
                        f"worker {self.worker_id}: layer {layer} over-updated"
                    )
        trace = self.engine.trace
        if trace.enabled:
            trace.complete(
                f"pull i{batch[0].iteration}",
                "comm",
                start,
                now,
                f"{track}/comm",
                {
                    "grads": [port.pieces[p.segment.grad].grad for p in batch],
                    "shard": port.shard,
                    "nbytes": sum(p.total_bytes for p in batch),
                    "unblocked_forward": forward_was_blocked,
                },
            )
        if forward_was_blocked and self._iter == self._comm_iter + 1:
            self._advance_forward()
        self._check_done()

    # ------------------------------------------------------------------
    # Single-channel entry points that must not be reached in sharded mode
    # ------------------------------------------------------------------
    def enqueue_pull(self, pull: PullUnit) -> None:  # pragma: no cover
        raise SimulationError(
            "ShardedWorker receives pulls through its shard ports, not "
            "the worker itself — attach_workers got the wrong object"
        )

    # ------------------------------------------------------------------
    # Steady-state fast-forward protocol (repro.sim.fastforward)
    # ------------------------------------------------------------------
    def ff_state(self, ctx) -> tuple:
        return self._ff_compute_state(ctx) + tuple(
            port.ff_state(ctx) for port in self._ports
        )

    def ff_shift(self, shift) -> None:
        self._ff_shift_compute(shift)
        for port in self._ports:
            port.ff_shift(shift)

    # ------------------------------------------------------------------
    # Fault handling: one crash suspends the shared compute pipeline and
    # aborts every port's in-flight traffic (see Worker.crash).
    # ------------------------------------------------------------------
    def crash(self) -> None:
        self._suspended = True
        for port in self._ports:
            port.abort_for_crash()

    def restart(self) -> None:
        self._suspended = False
        deferred, self._deferred = self._deferred, []
        for fn, args in deferred:
            fn(*args)
        for port in self._ports:
            if port.downlink is not None:
                port._pump_downlink()
            port._pump()
