"""Messages exchanged between workers and the parameter server.

Besides the fault-free :class:`PullUnit`, this module defines the
reliable-delivery vocabulary used when a
:class:`~repro.faults.plan.FaultPlan` is active: every push message
carries a per-worker :class:`PushMessage.seq` sequence number, the PS applies each
sequence number **at most once** (a retransmission whose original was
delivered — its ack lost — is recognised and only re-acknowledged), and
unacknowledged messages are retransmitted under the exponential-backoff
:class:`RetryPolicy`.  With no fault plan none of this machinery is
instantiated and push completion remains implicitly reliable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sched.base import Segment, TransferUnit

__all__ = ["PullUnit", "PushMessage", "RetryPolicy"]


@dataclass(frozen=True)
class PullUnit:
    """One aggregated parameter range flowing PS → worker.

    The PS responds **per key** (per gradient segment), as BytePS does: a
    worker's pull for a byte range becomes available as soon as that range
    is aggregated from all workers — it does not wait for the rest of the
    push message it arrived in.  The worker then *batches* pending pull
    units into one network message according to its strategy's granularity
    (:meth:`repro.sched.base.CommScheduler.pull_batch_limit`), keeping
    per-message overhead symmetric with the push direction, as the paper's
    Eq. (4) ``u = t + 2E`` assumes.
    """

    worker: int
    iteration: int
    segment: Segment
    created: float

    @property
    def total_bytes(self) -> float:
        return self.segment.nbytes

    @property
    def priority(self) -> int:
        """The parameter carried (gradient index; smaller = more urgent)."""
        return self.segment.grad


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/backoff parameters for reliable push delivery.

    A push attempt that completes its transfer without an acknowledgement
    within ``timeout * backoff**attempt`` seconds (capped at
    ``max_timeout``) is retransmitted.  ``max_retries`` bounds the number
    of retransmissions per message so a partitioned network fails the
    simulation loudly instead of livelocking it.
    """

    timeout: float = 25e-3
    backoff: float = 2.0
    max_timeout: float = 0.5
    max_retries: int = 30

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ConfigurationError(f"retry timeout must be positive, got {self.timeout}")
        if self.backoff < 1:
            raise ConfigurationError(f"retry backoff must be >= 1, got {self.backoff}")
        if self.max_timeout < self.timeout:
            raise ConfigurationError(
                f"max_timeout {self.max_timeout} must be >= timeout {self.timeout}"
            )
        if self.max_retries < 1:
            raise ConfigurationError(
                f"max_retries must be >= 1, got {self.max_retries}"
            )

    def timeout_for(self, attempt: int) -> float:
        """Retransmission timeout after ``attempt`` (0-based) sends."""
        return min(self.max_timeout, self.timeout * self.backoff**attempt)


@dataclass
class PushMessage:
    """One committed push and its delivery state (fault mode only).

    The scheduler debits the unit's bytes exactly once, at commit time;
    ``attempts`` counts transmissions of the *same* bytes, so every
    retransmission carries identical segments/offsets and the PS's
    cumulative-offset invariants hold across retries.
    """

    seq: int
    iteration: int
    unit: TransferUnit
    attempts: int = 0
    acked: bool = False
    delivered: bool = False
