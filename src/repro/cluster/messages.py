"""Messages exchanged between workers and the parameter server."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sched.base import Segment

__all__ = ["PullUnit"]


@dataclass(frozen=True)
class PullUnit:
    """One aggregated parameter range flowing PS → worker.

    The PS responds **per key** (per gradient segment), as BytePS does: a
    worker's pull for a byte range becomes available as soon as that range
    is aggregated from all workers — it does not wait for the rest of the
    push message it arrived in.  The worker then *batches* pending pull
    units into one network message according to its strategy's granularity
    (:meth:`repro.sched.base.CommScheduler.pull_batch_limit`), keeping
    per-message overhead symmetric with the push direction, as the paper's
    Eq. (4) ``u = t + 2E`` assumes.
    """

    worker: int
    iteration: int
    segment: Segment
    created: float

    @property
    def total_bytes(self) -> float:
        return self.segment.nbytes

    @property
    def priority(self) -> int:
        """The parameter carried (gradient index; smaller = more urgent)."""
        return self.segment.grad
