"""Worker node: forward/backward compute plus the communication agent.

The worker is where the paper's dataflow comes together.  Per iteration:

1. **Forward** — layers run in order; layer ``l`` may only start once all
   of its parameter tensors were updated by the previous iteration's pull
   (this gating is the source of all GPU wait time — Eq. (2)).
2. **Backward** — runs uninterrupted (it depends on nothing remote); the
   KV store flushes gradient buckets at the stepwise times of the
   iteration's :class:`~repro.agg.kvstore.GenerationSchedule`.
3. **Push/pull** — the scheduler under test proposes push units; the PS
   mirrors each one back as a pull once BSP aggregation completes.  In the
   default shared-channel mode both directions serialize on one link
   (Constraint (8); ``u = t + 2E``), and the worker arbitrates pending
   pulls against the scheduler's proposed push: by gradient priority for
   priority schedulers, by arrival order for the MXNet FIFO engine.  In
   the full-duplex ablation pulls use a separate downlink.

Per-iteration compute jitter is a log-normal factor applied to both passes
(and to the generation schedule), independent per worker — this is what
desynchronizes workers and exercises BSP straggler effects.

**Fault mode.**  When the trainer wires a
:class:`~repro.faults.injector.FaultInjector`, the worker switches its
transport to a reliable-delivery protocol: every committed push becomes a
sequence-numbered :class:`~repro.cluster.messages.PushMessage`, delivery
and acknowledgement legs can each be dropped, and unacknowledged messages
retransmit under the plan's exponential-backoff
:class:`~repro.cluster.messages.RetryPolicy` (the PS applies each sequence
number at most once, so retries never double-credit bytes).  Crashes
suspend the worker: compute completions occurring during the outage are
deferred and replayed at restart, the in-flight transfer is aborted (its
bytes lost and later retransmitted), and queued pulls survive.  With no
injector every fault branch is behind a single ``is None`` check and the
event sequence is bit-identical to the fault-free build.
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from functools import partial
from heapq import heapify, heappop, heappush
from typing import Callable

import numpy as np

from repro.agg.kvstore import GenerationSchedule
from repro.cluster.messages import PullUnit, PushMessage
from repro.cluster.ps import ParameterServer
from repro.errors import SimulationError
from repro.metrics.timeline import Recorder
from repro.models.compute import ComputeProfile
from repro.models.gradients import gradient_table
from repro.net.link import Link
from repro.net.transport import LinkTransport, Transport
from repro.sched.base import CommScheduler, TransferUnit
from repro.sim.engine import Engine

__all__ = ["Worker", "ReliableDeliveryMixin"]

_TOL = 1e-9


def _ff_pull_heap_state(heap, ctx) -> tuple:
    """Canonical form of a pull heap for fast-forward fingerprints.

    Drain order is fully determined by the sorted key order (keys are
    unique: each carries a fresh insertion counter), so the canonical form
    is the sorted entry list with absolute times re-based and the raw
    counters dropped — two boundary snapshots one period apart then
    compare equal even though the counters kept climbing.
    """
    entries = sorted(heap, key=lambda e: e[0])
    return tuple((ctx.rel(arrival), ctx.pull(pull)) for _, pull, arrival in entries)


def _ff_shift_pull_heap(heap, shift, by_priority: bool) -> list:
    """Translate every heap entry by ``shift``.  Adding one constant to
    the time component of each key is order-preserving, so the heap
    invariant survives without re-heapifying."""
    dt = shift.dt
    if by_priority:
        return [
            ((k[0], k[1] + dt, k[2]), shift.pull(p), a + dt)
            for k, p, a in heap
        ]
    return [
        ((k[0] + dt, k[1]), shift.pull(p), a + dt)
        for k, p, a in heap
    ]


class ReliableDeliveryMixin:
    """Sequence-numbered reliable push/pull delivery (fault mode only).

    Shared by the single-PS :class:`Worker` and the sharded tier's
    per-shard ``_ShardPort`` agents: each host owns one ``channel`` towards
    one ``ps`` and runs the same protocol — every committed push becomes a
    :class:`~repro.cluster.messages.PushMessage` with a per-host sequence
    number, the delivery and acknowledgement legs can each be dropped (or
    lost wholesale while the PS is inside a
    :class:`~repro.faults.plan.ServerCrash` outage), and unacknowledged
    messages retransmit under the plan's exponential-backoff
    :class:`~repro.cluster.messages.RetryPolicy`.  Lost pull responses
    re-enter the host's pull queue after the same backoff.

    Hosts provide: ``engine``, ``worker_id``, ``channel``, ``ps``,
    ``downlink``, ``_faults``, ``_done``, ``_schedule_after``, ``_pump``,
    ``_pump_downlink``, ``_enqueue_pull_item``, ``_unit_sync_time`` and
    ``_account_push`` (the host-specific first-delivery bookkeeping), plus
    the state initialised by :meth:`_init_reliable_state`.
    """

    def enqueue_pulls(self, pulls: list[PullUnit]) -> None:
        """Batched PS release: one engine wakeup delivering several pulls.

        Replays the exact per-unit ``enqueue_pull`` sequence (enqueue,
        then pump) in release order, so the observable behaviour — which
        pull wins the channel, what the batch coalescer sees in the heap
        at each pump — is bit-identical to one engine event per unit.
        """
        for pull in pulls:
            self.enqueue_pull(pull)

    def _init_reliable_state(self) -> None:
        """Per-host delivery state (unused — but cheap — without faults)."""
        self._push_seq = itertools.count()
        self._outstanding: dict[int, PushMessage] = {}
        self._retry_queue: deque[PushMessage] = deque()
        self._retry_timers: dict[int, object] = {}
        self._inflight_push: PushMessage | None = None
        self._inflight_pulls: dict[Link, list[PullUnit]] = {}
        self._pull_attempts: dict[PullUnit, int] = {}
        self._push_desc: dict[int, dict[str, object] | None] = {}

    # ------------------------------------------------------------------
    # Reliable push delivery
    # ------------------------------------------------------------------
    def _transmit_next_retry(self) -> bool:
        """Pop and retransmit the oldest pending retry.  Returns whether a
        transmission was started (the channel is now busy)."""
        while self._retry_queue:
            msg = self._retry_queue.popleft()
            if msg.acked:
                continue
            self._transmit_push(msg)
            return True
        return False

    def _transmit_push(self, msg: PushMessage) -> None:
        msg.attempts += 1
        self._inflight_push = msg
        start = self.engine.now
        self.channel.send(
            msg.unit.total_bytes,
            tag=("push", msg.iteration),
            on_complete=partial(self._push_attempt_done, msg, start),
            extra_time=self._unit_sync_time(),
        )

    def _push_attempt_done(self, msg: PushMessage, start: float) -> None:
        """One transmission finished occupying the link: roll the delivery
        and acknowledgement legs, apply at most once, arm retries."""
        self._inflight_push = None
        assert self._faults is not None
        if self.ps.down:
            # ServerCrash outage: the message reaches a dead endpoint and
            # is lost wholesale; the retransmit finds the warm standby.
            self._faults.count("lost_pushes")
            self._arm_retry(msg)
            return
        if self._faults.roll_drop("push", self.worker_id):
            self._arm_retry(msg)
            return
        applied = self.ps.deliver_push(
            self.worker_id, msg.iteration, msg.unit, msg.seq
        )
        if applied:
            msg.delivered = True
            self._account_push(msg, start)
        else:
            self._faults.count("duplicate_pushes")
        if self._faults.roll_drop("ack", self.worker_id):
            # Delivered but unacknowledged: the retransmission will reach
            # the PS as a duplicate and exercise the at-most-once filter.
            self._arm_retry(msg)
        else:
            self._schedule_after(self.channel.tcp.rtt, self._push_acked, msg)

    def _push_acked(self, msg: PushMessage) -> None:
        if msg.acked:
            return
        msg.acked = True
        self._outstanding.pop(msg.seq, None)
        self._push_desc.pop(msg.seq, None)
        timer = self._retry_timers.pop(msg.seq, None)
        if timer is not None:
            timer.cancel()

    def _arm_retry(self, msg: PushMessage) -> None:
        assert self._faults is not None
        policy = self._faults.retry
        if msg.attempts > policy.max_retries:
            raise SimulationError(
                f"worker {self.worker_id} push seq {msg.seq} exhausted "
                f"{policy.max_retries} retries (iteration {msg.iteration})"
            )
        delay = policy.timeout_for(msg.attempts - 1)
        self._retry_timers[msg.seq] = self.engine.schedule_after(
            delay, self._retry_timeout, msg
        )

    def _retry_timeout(self, msg: PushMessage) -> None:
        self._retry_timers.pop(msg.seq, None)
        if msg.acked or self._done:
            return
        assert self._faults is not None
        self._faults.count("push_retries")
        self._retry_queue.append(msg)
        self._pump()

    # ------------------------------------------------------------------
    # Reliable pull delivery
    # ------------------------------------------------------------------
    def _schedule_pull_retry(self, batch: list[PullUnit]) -> None:
        """A pull response was lost: re-request the whole batch after the
        policy's backoff (the PS already released it; nothing re-credits)."""
        assert self._faults is not None
        policy = self._faults.retry
        self._faults.count("pull_retries")
        attempt = 1
        for pull in batch:
            n = self._pull_attempts.get(pull, 0) + 1
            if n > policy.max_retries:
                raise SimulationError(
                    f"worker {self.worker_id} pull for gradient "
                    f"{pull.segment.grad} (iteration {pull.iteration}) "
                    f"exhausted {policy.max_retries} retries"
                )
            self._pull_attempts[pull] = n
            attempt = max(attempt, n)
        delay = policy.timeout_for(attempt - 1)
        self.engine.schedule_after(delay, self._requeue_pulls, batch)

    def _requeue_pulls(self, batch: list[PullUnit]) -> None:
        if self._done:
            return
        now = self.engine.now
        for pull in batch:
            self._enqueue_pull_item(pull, now)
        if self.downlink is not None:
            self._pump_downlink()
        self._pump()


class Worker(ReliableDeliveryMixin):
    """One worker node of the training cluster."""

    #: Steady-state fast-forward detector (repro.sim.fastforward); class
    #: attribute so the fault-free hot path pays one attribute load.
    _ff = None

    def __init__(
        self,
        engine: Engine,
        worker_id: int,
        compute: ComputeProfile,
        gen_schedule: GenerationSchedule,
        scheduler: CommScheduler,
        channel: Link,
        downlink: Link | None,
        ps: ParameterServer,
        recorder: Recorder,
        n_iterations: int,
        jitter_rng: np.random.Generator,
        jitter_std: float = 0.0,
        compute_scale: float = 1.0,
        on_done: Callable[[int], None] | None = None,
        stall_timeout: float = 5e-3,
        faults=None,
        transport: Transport | None = None,
    ):
        self.engine = engine
        self.worker_id = worker_id
        self._quantum = engine._quantum
        self._inv_quantum = engine._inv_quantum
        self.compute = compute
        self.gen_schedule = gen_schedule
        self.scheduler = scheduler
        self.channel = channel
        # Committed push units leave through the transport abstraction;
        # the default wraps the shared channel and is a pure pass-through
        # (bit-identical to calling ``channel.send`` directly).
        self.transport: Transport = (
            transport if transport is not None else LinkTransport(channel)
        )
        self.downlink = downlink
        self.ps = ps
        self.recorder = recorder
        self.n_iterations = n_iterations
        self._jitter_rng = jitter_rng
        self._jitter_std = jitter_std
        self._compute_scale = compute_scale
        self._on_done = on_done

        grads = gradient_table(compute.model)
        self._n_grads = len(grads)
        self._layer_of = [g.layer_index for g in grads]
        self._layer_tensor_counts = [0] * len(compute.model.layers)
        for g in grads:
            self._layer_tensor_counts[g.layer_index] += 1
        self._total_tensor_count = sum(self._layer_tensor_counts)
        self._sizes = [float(s) for s in gen_schedule.sizes]

        # Channel pumps re-enter via engine callbacks; wire link idleness.
        self.channel.on_idle = self._pump
        if self.downlink is not None:
            self.downlink.on_idle = self._pump_downlink

        # Per-iteration state (set in _begin_forward/_begin_backward).
        self._iter = -1
        self._comm_iter = -1
        self._factor = 1.0
        self._fwd_layer = 0
        self._fwd_chunk_pending = False
        self._fwd_start_times: list[float] = []
        self._layer_pending = [0] * len(self._layer_tensor_counts)
        self._pending_updates = 0
        self._pulled = [0.0] * self._n_grads
        self._pushed = [0.0] * self._n_grads
        self._ready_time: list[float | None] = [None] * self._n_grads
        self._iter_rec = None
        # Heap of (key, pull, arrival).  The key replicates the old linear
        # ``min``/stable-``sorted`` selection exactly: priority order with
        # arrival and an insertion counter as tie-breakers, except in the
        # shared-channel FIFO mode where arrival order rules.  (A duplex
        # downlink always drains by priority, whatever the scheduler.)
        self._pull_heap: list[tuple[tuple, PullUnit, float]] = []
        self._pull_seq = itertools.count()
        self._pull_by_priority = (downlink is not None) or not scheduler.fifo_channel
        self._compute_done = False
        self._done = False
        self._stall_timeout = stall_timeout
        self._stall_timer = None

        # Fault-mode transport state (all unused when faults is None; the
        # fault-free event sequence must stay bit-identical).
        self._faults = faults
        self._suspended = False
        self._deferred: list[tuple[Callable, tuple]] = []
        self._init_reliable_state()

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """All iterations computed and the final parameters pulled."""
        return self._done

    @property
    def fwd_start_times(self) -> list[float]:
        """Forward-start timestamps (iteration boundaries)."""
        return list(self._fwd_start_times)

    def start(self) -> None:
        """Kick off iteration 0 at the current simulation time."""
        self.engine.schedule(self.engine.now, self._begin_forward, 0)

    # ------------------------------------------------------------------
    # Scheduler fan-out hooks.  The single-PS worker drives exactly one
    # scheduler over one channel; the sharded worker
    # (:class:`~repro.cluster.sharded.ShardedWorker`) overrides these to
    # fan every compute-side event out to its per-shard comm agents.
    # ------------------------------------------------------------------
    def _sched_begin_iteration(self, iteration: int, sched, now: float) -> None:
        self.scheduler.begin_iteration(iteration, sched, now)

    def _sched_end_iteration(self, iteration: int, span: float, now: float) -> None:
        self.scheduler.end_iteration(iteration, span, now)

    def _sched_gradient_ready(self, grad: int, now: float) -> None:
        self.scheduler.gradient_ready(grad, now)

    def _pump_all(self) -> None:
        self._pump()

    def _clear_pull_attempts(self) -> None:
        """Reset per-pull retry counters at an iteration boundary (fault
        mode).  The sharded worker fans this out to its ports."""
        self._pull_attempts.clear()

    # ------------------------------------------------------------------
    # Fault handling: crash/restart and deferred-event plumbing
    # ------------------------------------------------------------------
    def _schedule_at(self, time: float, fn: Callable[..., None], *args):
        """Engine schedule that respects crash suspension in fault mode."""
        if self._faults is None:
            return self.engine.schedule(time, fn, *args)
        return self.engine.schedule(time, self._guarded, fn, *args)

    def _snap(self, duration: float) -> float:
        """Round a compute/flush duration onto the engine's time-quantum
        grid (identity when no quantum is configured).  Workers snap
        durations *once* and use the snapped value for both the recorded
        interval and the scheduled completion, so recorded timelines stay
        translation-invariant under fast-forward."""
        inv = self._inv_quantum
        if inv:
            return round(duration * inv) * self._quantum
        return duration

    def _schedule_after(self, delay: float, fn: Callable[..., None], *args):
        if self._faults is None:
            return self.engine.schedule_after(delay, fn, *args)
        return self.engine.schedule_after(delay, self._guarded, fn, *args)

    def _guarded(self, fn: Callable[..., None], *args) -> None:
        """During an outage, completions queue up and replay at restart."""
        if self._suspended:
            self._deferred.append((fn, args))
        else:
            fn(*args)

    def crash(self) -> None:
        """Crash the worker: abort in-flight traffic, freeze compute.

        The in-flight push's bytes are lost (the PS never credits a
        partial message) and the message re-enters the retry queue; an
        in-flight pull batch is re-queued for redelivery.  Compute events
        that complete during the outage are deferred by :meth:`_guarded`
        and replayed, in order, at :meth:`restart`.
        """
        self._suspended = True
        if self._stall_timer is not None:
            self._stall_timer.cancel()
            self._stall_timer = None
        for link in (self.channel, self.downlink):
            if link is None:
                continue
            tag = link.abort()
            if tag is None:
                continue
            kind = tag[0] if isinstance(tag, tuple) else None
            if kind == "push" and self._inflight_push is not None:
                self._retry_queue.append(self._inflight_push)
                self._inflight_push = None
            elif kind == "pull":
                batch = self._inflight_pulls.pop(link, None)
                if batch:
                    now = self.engine.now
                    for pull in batch:
                        self._enqueue_pull_item(pull, now)

    def restart(self) -> None:
        """Return from an outage: replay deferred completions, resume
        communication (retransmits first)."""
        self._suspended = False
        deferred, self._deferred = self._deferred, []
        for fn, args in deferred:
            fn(*args)
        if self.downlink is not None:
            self._pump_downlink()
        self._pump()

    # ------------------------------------------------------------------
    # Forward propagation
    # ------------------------------------------------------------------
    def _begin_forward(self, iteration: int) -> None:
        now = self.engine.now
        if iteration > 0:
            span = now - self._fwd_start_times[-1]
            self._sched_end_iteration(iteration - 1, span, now)
        self._iter = iteration
        self._fwd_start_times.append(now)
        self._factor = self._compute_scale * math.exp(
            self._jitter_std * float(self._jitter_rng.standard_normal())
        )
        self._iter_rec = self.recorder.iteration_record(self.worker_id, iteration)
        self.recorder.iter_field(self._iter_rec, "fwd_start", now)
        self._fwd_layer = 0
        self._advance_forward()

    def _advance_forward(self) -> None:
        """Run consecutive layers whose parameters are ready; else wait."""
        if self._fwd_chunk_pending:
            return
        n_layers = len(self.compute.fwd_times)
        start = self._fwd_layer
        if start >= n_layers:
            return
        end = start
        while end < n_layers and self._layer_pending[end] == 0:
            end += 1
        if end == start:
            return  # GPU idles until the gating pull completes
        duration = self._snap(float(self.compute.fwd_times[start:end].sum()) * self._factor)
        now = self.engine.now
        self.recorder.gpu_busy(self.worker_id, self._iter, "fwd", now, now + duration)
        self._fwd_chunk_pending = True
        self._schedule_after(duration, self._forward_chunk_done, end)

    def _forward_chunk_done(self, next_layer: int) -> None:
        self._fwd_chunk_pending = False
        self._fwd_layer = next_layer
        if next_layer >= len(self.compute.fwd_times):
            self._begin_backward()
        else:
            self._advance_forward()

    # ------------------------------------------------------------------
    # Backward propagation
    # ------------------------------------------------------------------
    def _begin_backward(self) -> None:
        now = self.engine.now
        iteration = self._iter
        assert self._iter_rec is not None
        self.recorder.iter_field(self._iter_rec, "fwd_end", now)

        sched = self.gen_schedule.scaled(self._factor)
        self._comm_iter = iteration
        # Reset pull gating for the *next* forward pass.
        self._layer_pending = list(self._layer_tensor_counts)
        self._pending_updates = self._total_tensor_count
        self._pulled = [0.0] * self._n_grads
        self._pushed = [0.0] * self._n_grads
        self._ready_time = [None] * self._n_grads

        self._sched_begin_iteration(iteration, sched, now)
        backward_time = self._snap(sched.backward_time)
        self.recorder.gpu_busy(
            self.worker_id, iteration, "bwd", now, now + backward_time
        )
        if self._faults is not None:
            self._clear_pull_attempts()  # previous iteration fully applied
        for bucket in sched.buckets:
            flush_time = self._snap(float(sched.c[bucket[0]]))
            self._schedule_after(flush_time, self._bucket_ready, iteration, bucket)
        self._schedule_after(backward_time, self._backward_done, iteration)
        ff = self._ff
        if ff is not None:
            ff.iteration_boundary(iteration)

    def _bucket_ready(self, iteration: int, bucket: tuple[int, ...]) -> None:
        now = self.engine.now
        trace = self.engine.trace
        if trace.enabled:
            trace.instant(
                f"flush g{bucket[0]}" if len(bucket) == 1 else f"flush g{bucket[0]}+",
                "kv",
                now,
                f"worker{self.worker_id}/assembly",
                {"iteration": iteration, "grads": list(bucket)},
            )
        for grad in bucket:
            self._sched_gradient_ready(grad, now)
            self._ready_time[grad] = now
            self.recorder.mark_ready(self.worker_id, iteration, grad, now)
        self._pump_all()

    def _backward_done(self, iteration: int) -> None:
        assert self._iter_rec is not None
        self.recorder.iter_field(self._iter_rec, "bwd_end", self.engine.now)
        if iteration + 1 < self.n_iterations:
            self._begin_forward(iteration + 1)
        else:
            span = self.engine.now - self._fwd_start_times[-1]
            self._sched_end_iteration(iteration, span, self.engine.now)
            self._compute_done = True
            self._check_done()

    # ------------------------------------------------------------------
    # Communication: shared channel (pushes + pulls) or duplex
    # ------------------------------------------------------------------
    def enqueue_pull(self, pull: PullUnit) -> None:
        """The PS released updated parameters for this worker."""
        self._enqueue_pull_item(pull, self.engine.now)
        if self.downlink is not None:
            self._pump_downlink()
        else:
            self._pump()

    def _enqueue_pull_item(self, pull: PullUnit, arrival: float) -> None:
        if self._pull_by_priority:
            key = (pull.priority, arrival, next(self._pull_seq))
        else:
            key = (arrival, next(self._pull_seq))
        heappush(self._pull_heap, (key, pull, arrival))

    def _pick_pull(self) -> tuple[PullUnit, float] | None:
        if not self._pull_heap:
            return None
        entry = self._pull_heap[0]
        return entry[1], entry[2]

    def _push_arrival(self, unit: TransferUnit) -> float:
        """Arrival time of a proposed push = when its head gradient flushed."""
        ready = self._ready_time[unit.segments[0].grad]
        return ready if ready is not None else self.engine.now

    def _pump(self) -> None:
        """Drive the (shared) channel: arbitrate pulls vs the proposed push."""
        if self._done or self.channel.busy:
            return
        if self._faults is not None:
            if self._suspended:
                return
            # Retransmissions go first: they carry the oldest committed
            # bytes, which every BSP peer is already gated on.
            if self._transmit_next_retry():
                return
        now = self.engine.now
        pull_item = self._pick_pull() if self.downlink is None else None
        push = self.scheduler.propose_unit(now)

        choose_pull = False
        if pull_item is not None and push is None:
            choose_pull = True
        elif pull_item is not None and push is not None:
            if self.scheduler.fifo_channel:
                choose_pull = pull_item[1] <= self._push_arrival(push)
            else:
                choose_pull = pull_item[0].priority <= push.priority

        if choose_pull:
            assert pull_item is not None
            self._send_pull_batch(self.channel)
        elif push is not None:
            self._send_push(push)
        elif self.scheduler.pending_bytes > 0:
            # Idle with unsent gradients and nothing to receive: arm the
            # stall timer so window-based flow control cannot wedge the
            # whole BSP ring (see CommScheduler.grant_probe).
            self._arm_stall_timer()

    def _arm_stall_timer(self) -> None:
        if self._stall_timer is not None and self._stall_timer.alive:
            return
        self._stall_timer = self.engine.schedule_after(
            self._stall_timeout, self._stall_check
        )

    def _stall_check(self) -> None:
        self._stall_timer = None
        if (
            self._done
            or self._suspended
            or self.channel.busy
            or self._pull_heap
            or self.scheduler.pending_bytes <= 0
        ):
            return
        trace = self.engine.trace
        if trace.enabled:
            trace.instant(
                "stall.probe",
                "sched",
                self.engine.now,
                f"worker{self.worker_id}/comm",
                {"pending_bytes": self.scheduler.pending_bytes},
            )
        self.scheduler.grant_probe(self.engine.now)
        self._pump()

    def _pump_downlink(self) -> None:
        """Duplex ablation: pulls on their own link, by priority."""
        assert self.downlink is not None
        if self._done or self._suspended or self.downlink.busy or not self._pull_heap:
            return
        self._send_pull_batch(self.downlink)

    def _send_pull_batch(self, link: Link) -> None:
        """Send the head pull (the heap front), coalescing more pending
        pulls if the strategy batches responses (``pull_batch_limit``)."""
        _, head_pull, _ = heappop(self._pull_heap)
        batch = [head_pull]
        total = head_pull.total_bytes
        limit = self.scheduler.pull_batch_limit(self.engine.now)
        if limit is not None and self._pull_heap:
            # Strict priority prefix: stop at the first unit that does not
            # fit, so no lower-priority parameter overtakes a pending one.
            if self._pull_by_priority:
                heap = self._pull_heap
                while heap:
                    pull = heap[0][1]
                    if total + pull.total_bytes > limit:
                        break
                    heappop(heap)
                    batch.append(pull)
                    total += pull.total_bytes
            else:
                # Arrival-keyed queue asked to batch by priority: no
                # shipped scheduler hits this (FIFO engines never batch),
                # but the contract is kept via a sorted snapshot.
                candidates = sorted(
                    self._pull_heap, key=lambda e: (e[1].priority, e[2], e[0])
                )
                taken: set = set()
                for entry in candidates:
                    pull = entry[1]
                    if total + pull.total_bytes > limit:
                        break
                    batch.append(pull)
                    total += pull.total_bytes
                    taken.add(entry)
                if taken:
                    self._pull_heap = [
                        e for e in self._pull_heap if e not in taken
                    ]
                    heapify(self._pull_heap)
        if self._faults is not None:
            self._inflight_pulls[link] = batch
        link.send(
            total,
            tag=("pull", batch[0].iteration),
            on_complete=partial(self._pulls_done, link, batch, self.engine.now),
            extra_time=self._unit_sync_time(),
        )

    def _unit_sync_time(self) -> float:
        """Strategy-level blocking sync per message (see CommScheduler)."""
        return self.scheduler.unit_sync_rtts * self.channel.tcp.rtt

    def _send_push(self, unit: TransferUnit) -> None:
        now = self.engine.now
        self.scheduler.commit_unit(unit, now)
        for seg in unit.segments:
            if seg.offset <= _TOL:
                self.recorder.mark_push_start(
                    self.worker_id, self._comm_iter, seg.grad, now
                )
        desc: dict[str, object] | None = None
        if self.engine.trace.enabled:
            desc = self.scheduler.describe_unit(unit)
            self._trace_push_spans(unit, desc, now)
        if self._faults is None:
            self.transport.send_unit(
                unit.total_bytes,
                tag=("push", self._comm_iter),
                on_complete=partial(self._push_done, self._comm_iter, unit, now, desc),
                extra_time=self._unit_sync_time(),
            )
            return
        msg = PushMessage(seq=next(self._push_seq), iteration=self._comm_iter, unit=unit)
        self._outstanding[msg.seq] = msg
        self._push_desc[msg.seq] = desc
        self._transmit_push(msg)

    def _account_push(self, msg: PushMessage, start: float) -> None:
        """First delivery of a push: the fault-free completion bookkeeping.

        BSP/ASP/SSP all gate forward ``k+1`` on iteration-``k`` pulls, which
        require this delivery — so the first delivery always happens while
        ``_comm_iter == msg.iteration`` and the per-gradient accounting
        below matches the fault-free path exactly.
        """
        now = self.engine.now
        if msg.iteration == self._comm_iter:
            for seg in msg.unit.segments:
                self._pushed[seg.grad] += seg.nbytes
                if self._pushed[seg.grad] >= self._sizes[seg.grad] - _TOL:
                    self.recorder.mark_push_end(
                        self.worker_id, msg.iteration, seg.grad, now
                    )
        trace = self.engine.trace
        if trace.enabled:
            desc = self._push_desc.get(msg.seq)
            trace.complete(
                f"push i{msg.iteration}",
                "comm",
                start,
                now,
                f"worker{self.worker_id}/comm",
                desc if desc is not None else {},
            )
        self.scheduler.unit_sent(msg.unit, now)

    def _trace_push_spans(
        self, unit: TransferUnit, desc: dict[str, object], now: float
    ) -> None:
        """Block-assembly and per-gradient queue-wait spans for one push.

        The assembly span stretches from the first flush of any gradient in
        the unit to the send — the window the scheduler spent packing (or
        deliberately idling, for Prophet).  Each gradient entering the
        channel for the first time additionally gets a wait span (the
        paper's ``t(i) − c(i)``, Fig. 11's wait time) on its own track.
        """
        trace = self.engine.trace
        prefix = f"worker{self.worker_id}"
        readies = [
            self._ready_time[seg.grad]
            for seg in unit.segments
            if self._ready_time[seg.grad] is not None
        ]
        trace.complete(
            f"assemble p{unit.priority}",
            "assembly",
            min(readies) if readies else now,
            now,
            f"{prefix}/assembly",
            desc,
        )
        for seg in unit.segments:
            if seg.offset > _TOL:
                continue
            ready = self._ready_time[seg.grad]
            if ready is not None and now > ready:
                trace.complete(
                    f"wait g{seg.grad}",
                    "wait",
                    ready,
                    now,
                    f"{prefix}/wait",
                    {"grad": seg.grad, "iteration": self._comm_iter},
                )

    def _push_done(
        self,
        iteration: int,
        unit: TransferUnit,
        start: float,
        desc: dict[str, object] | None,
    ) -> None:
        now = self.engine.now
        for seg in unit.segments:
            self._pushed[seg.grad] += seg.nbytes
            if self._pushed[seg.grad] >= self._sizes[seg.grad] - _TOL:
                self.recorder.mark_push_end(self.worker_id, iteration, seg.grad, now)
        trace = self.engine.trace
        if trace.enabled:
            trace.complete(
                f"push i{iteration}",
                "comm",
                start,
                now,
                f"worker{self.worker_id}/comm",
                desc if desc is not None else {},
            )
        self.scheduler.unit_sent(unit, now)
        self.ps.receive_push(self.worker_id, iteration, unit)
        # Link on_idle already re-pumps; nothing else to do here.

    def _pulls_done(self, link: Link, batch: list[PullUnit], start: float) -> None:
        now = self.engine.now
        if self._faults is not None:
            self._inflight_pulls.pop(link, None)
            if self._faults.roll_drop("pull", self.worker_id):
                self._schedule_pull_retry(batch)
                return
        forward_was_blocked = (
            self._fwd_layer < len(self.compute.fwd_times)
            and not self._fwd_chunk_pending
        )
        for pull in batch:
            if pull.iteration != self._comm_iter:
                raise SimulationError(
                    f"worker {self.worker_id} pulled iteration {pull.iteration} "
                    f"while communicating iteration {self._comm_iter}"
                )
            seg = pull.segment
            self.scheduler.pull_completed(seg.grad, seg.nbytes, now)
            self._pulled[seg.grad] += seg.nbytes
            if self._pulled[seg.grad] >= self._sizes[seg.grad] - _TOL:
                self.recorder.mark_pull_end(
                    self.worker_id, pull.iteration, seg.grad, now
                )
                layer = self._layer_of[seg.grad]
                self._layer_pending[layer] -= 1
                self._pending_updates -= 1
                if self._layer_pending[layer] < 0:
                    raise SimulationError(
                        f"worker {self.worker_id}: layer {layer} over-updated"
                    )
        trace = self.engine.trace
        if trace.enabled:
            trace.complete(
                f"pull i{batch[0].iteration}",
                "comm",
                start,
                now,
                f"worker{self.worker_id}/comm",
                {
                    "grads": [p.segment.grad for p in batch],
                    "nbytes": sum(p.total_bytes for p in batch),
                    "unblocked_forward": forward_was_blocked,
                },
            )
        if forward_was_blocked and self._iter == self._comm_iter + 1:
            self._advance_forward()
        self._check_done()
        # Link on_idle already re-pumps the channel.

    # ------------------------------------------------------------------
    def _check_done(self) -> None:
        if self._done or not self._compute_done:
            return
        if self._pending_updates == 0:
            self._done = True
            if self._on_done is not None:
                self._on_done(self.worker_id)

    # ------------------------------------------------------------------
    # Steady-state fast-forward protocol (repro.sim.fastforward)
    # ------------------------------------------------------------------
    def _ff_compute_state(self, ctx) -> tuple:
        """Canonical snapshot of the compute pipeline (shared with the
        sharded subclass).  Absolute times become offsets from the
        boundary timestamp and iteration labels offsets from the boundary
        iteration."""
        return (
            ctx.rel_iter(self._iter),
            ctx.rel_iter(self._comm_iter),
            self._factor,
            self._fwd_layer,
            self._fwd_chunk_pending,
            None if not self._fwd_start_times else ctx.rel(self._fwd_start_times[-1]),
            tuple(self._layer_pending),
            self._pending_updates,
            tuple(self._pulled),
            tuple(self._pushed),
            tuple(ctx.rel_opt(t) for t in self._ready_time),
            self._compute_done,
            self._done,
        )

    def _ff_shift_compute(self, shift) -> None:
        """Translate the compute pipeline by ``shift.dt`` seconds /
        ``shift.diter`` iterations.  ``_fwd_start_times`` needs no
        translation: the journal replay already appended the skipped
        cycles' (shifted) forward-start values, and entries before the
        replay window are real history."""
        dt = shift.dt
        self._iter += shift.diter
        self._comm_iter += shift.diter
        self._ready_time = [
            None if t is None else t + dt for t in self._ready_time
        ]

    def ff_state(self, ctx) -> tuple:
        """Canonical time-relative snapshot of all behaviour-bearing state."""
        return self._ff_compute_state(ctx) + (
            _ff_pull_heap_state(self._pull_heap, ctx),
        )

    def ff_shift(self, shift) -> None:
        self._ff_shift_compute(shift)
        if self._pull_heap:
            self._pull_heap = _ff_shift_pull_heap(
                self._pull_heap, shift, self._pull_by_priority
            )
