"""Collective worker tier: one negotiated scheduler drives the ring.

In the PS backend every worker owns a scheduler instance and its private
uplink — decisions are local.  A collective operation is inherently
global: one allreduce occupies *every* worker's link for the same span,
and it can only start once **all** workers have produced the gradients it
carries.  Real collective engines solve this with a coordinator
negotiation (Horovod's controller, ByteScheduler's rank-0 Core): workers
announce readiness, the coordinator decides the launch order, everybody
executes the same sequence.

This module mirrors that shape.  A :class:`CollectiveController` owns the
single :class:`~repro.sched.base.CommScheduler` instance for the job and
the collective executor (the :class:`~repro.net.transport.Transport`).
:class:`CollectiveWorker` reuses the entire compute path of
:class:`~repro.cluster.worker.Worker` (forward gating, bucket flushes,
iteration bookkeeping — the same inheritance trick as
:class:`~repro.cluster.sharded.ShardedWorker`) but overrides the four
scheduler fan-out hooks to *report* to the controller instead of driving
a private scheduler:

* ``begin_iteration(k)`` fires on the scheduler when the **last** worker
  enters backward ``k`` (the negotiated backward start);
* ``gradient_ready(g)`` fires when the **last** worker flushes ``g``
  (the negotiated generation time — the max over workers, which is what
  the allreduce must wait for anyway);
* a completed operation credits push **and** pull bytes on every worker
  simultaneously (each worker both contributed its chunk and received
  the reduced result), unblocking their next forward passes together.

Because the scheduler still speaks propose/commit against a transport, it
cannot tell the backends apart — FIFO, P3, ByteScheduler, MG-WFBP and
Prophet all run unchanged, which is the point of the topology/scheduler
split.  ``pull_completed`` fires per segment at operation completion so
credit-based flow control (ByteScheduler) replenishes exactly as on the
PS path, where the PS mirrors every pushed byte back as a pull.

**Fault mode.**  With a :class:`~repro.faults.injector.FaultInjector`
wired, a worker crash triggers an *elastic shrink* — the collective
analogue of Horovod Elastic: the in-flight operation is aborted, the
executor rebuilds its ring over the survivors
(:meth:`~repro.net.collective._StepExecutor.remove_worker`), the
scheduler's effective-bandwidth view rescales to the shrunk ring's
``2(k-1)/k`` cost, and the aborted operation resends over the new ring.
Negotiation switches from plain counters to report *sets* so a rank that
dies mid-negotiation cannot wedge the barrier — its removal recounts
every pending negotiation and fires any that the dead rank was the last
holdout of.  A crashed rank never rejoins (ring rebuild is a one-way
door; the restart event logs ``collective.rejoin_refused``), mirroring
how elastic collectives fold a recovered host back in only at the next
job-level rendezvous.  Sustained bandwidth collapse needs no new
machinery: the monitor-fed view sinks, and Prophet's own degradation
ladder (``prophet.fallback`` trace instants) drops the plan back to
PS-star-style FIFO ordering.  Without an injector every fault branch is
behind an ``is None`` check and the event sequence is bit-identical.
"""

from __future__ import annotations

from functools import partial
from typing import Callable

import numpy as np

from repro.agg.kvstore import GenerationSchedule
from repro.cluster.messages import PullUnit
from repro.cluster.worker import Worker
from repro.errors import SimulationError
from repro.metrics.timeline import Recorder
from repro.models.compute import ComputeProfile
from repro.models.gradients import gradient_table
from repro.net.transport import Transport
from repro.sched.base import CommScheduler, TransferUnit
from repro.sim.engine import Engine

__all__ = ["CollectiveController", "CollectiveWorker", "EffectiveBandwidthView"]

_TOL = 1e-9


class EffectiveBandwidthView:
    """Monitor proxy scaling samples by the collective's per-byte cost.

    A flat ring serializes ``2(N-1)/N`` bytes on each link per payload
    byte, so a scheduler that predicts transfer times as ``S / B``
    (Prophet's planner) must see ``B / factor`` — the rate at which
    *payload* actually clears the collective.  Duck-types the subset of
    :class:`~repro.net.monitor.BandwidthMonitor` that scheduler factories
    consume.
    """

    def __init__(self, monitor, factor: float):
        self._monitor = monitor
        self._factor = factor if factor > 0 else 1.0

    def set_factor(self, factor: float) -> None:
        """Rescale after an elastic shrink changed the collective's
        per-byte cost (``2(k-1)/k`` over ``k`` survivors)."""
        self._factor = factor if factor > 0 else 1.0

    @property
    def bandwidth(self) -> float:
        return self._monitor.bandwidth / self._factor

    @property
    def last_sample_time(self) -> float:
        return self._monitor.last_sample_time

    def sample_age(self) -> float:
        return self._monitor.sample_age()


class CollectiveController:
    """Coordinator: negotiates worker readiness, drives the one scheduler.

    The controller is the collective analogue of the worker's channel
    pump: whenever the executor goes idle (or new gradients become ready
    cluster-wide) it asks the scheduler for the next unit and launches it
    as one allreduce operation.
    """

    def __init__(
        self,
        engine: Engine,
        scheduler: CommScheduler,
        executor: Transport,
        recorder: Recorder,
        n_workers: int,
        stall_timeout: float = 5e-3,
        faults=None,
        view: "EffectiveBandwidthView | None" = None,
    ):
        self.engine = engine
        self.scheduler = scheduler
        self.executor = executor
        self.recorder = recorder
        self.n_workers = n_workers
        self.workers: list[CollectiveWorker] = []
        self._stall_timeout = stall_timeout
        self._stall_timer = None
        self._iteration = -1
        self._begin_count = 0
        self._end_count = 0
        self._end_span = 0.0
        self._ready_counts: dict[int, int] = {}
        # Fault mode: negotiation by report *sets* over the active
        # membership (a dead rank's removal recounts pending barriers),
        # plus in-flight-operation tracking for abort-and-resend.
        self._faults = faults
        self._view = view
        self._active: set[int] = set(range(n_workers))
        self._begin_reports: set[int] = set()
        self._pending_begin: tuple[int, GenerationSchedule] | None = None
        self._end_reports: set[int] = set()
        self._pending_end: int | None = None
        self._ready_sets: dict[int, set[int]] = {}
        self._inflight: tuple[int, TransferUnit, dict | None] | None = None

    def attach_workers(self, workers: list["CollectiveWorker"]) -> None:
        if len(workers) != self.n_workers:
            raise SimulationError(
                f"controller wired for {self.n_workers} workers, "
                f"got {len(workers)}"
            )
        self.workers = list(workers)

    # ------------------------------------------------------------------
    # Negotiation: worker reports → scheduler hooks at the Nth report
    # ------------------------------------------------------------------
    def worker_begin_iteration(
        self, worker_id: int, iteration: int, sched: GenerationSchedule, now: float
    ) -> None:
        """A worker entered backward ``iteration``.

        BSP guarantees report order: every worker's iteration-``k`` report
        precedes any iteration-``k+1`` report (forward ``k+1`` gates on
        the last ``k`` operation completing), so a plain counter suffices.
        The scheduler sees the *last* reporter's scaled schedule — the
        negotiated backward start, which is when cluster-wide generation
        actually begins.
        """
        if iteration != self._iteration + 1:
            raise SimulationError(
                f"worker {worker_id} reported backward {iteration} while the "
                f"collective is negotiating iteration {self._iteration + 1}"
            )
        if self._faults is None:
            self._begin_count += 1
            if self._begin_count == self.n_workers:
                self._begin_count = 0
                self._iteration = iteration
                self.scheduler.begin_iteration(iteration, sched, now)
            return
        self._begin_reports.add(worker_id)
        self._pending_begin = (iteration, sched)
        self._maybe_fire_begin(now)

    def _maybe_fire_begin(self, now: float) -> None:
        if self._pending_begin is None or not self._begin_reports >= self._active:
            return
        iteration, sched = self._pending_begin
        self._pending_begin = None
        self._begin_reports.clear()
        self._iteration = iteration
        self.scheduler.begin_iteration(iteration, sched, now)

    def worker_end_iteration(
        self, worker_id: int, iteration: int, span: float, now: float
    ) -> None:
        """A worker crossed its iteration boundary; the scheduler hears the
        slowest span once all have (the BSP-binding iteration time)."""
        if self._faults is None:
            self._end_count += 1
            self._end_span = max(self._end_span, span)
            if self._end_count == self.n_workers:
                span, self._end_span = self._end_span, 0.0
                self._end_count = 0
                self.scheduler.end_iteration(iteration, span, now)
            return
        self._end_reports.add(worker_id)
        self._end_span = max(self._end_span, span)
        self._pending_end = iteration
        self._maybe_fire_end(now)

    def _maybe_fire_end(self, now: float) -> None:
        if self._pending_end is None or not self._end_reports >= self._active:
            return
        iteration = self._pending_end
        self._pending_end = None
        span, self._end_span = self._end_span, 0.0
        self._end_reports.clear()
        self.scheduler.end_iteration(iteration, span, now)

    def worker_gradient_ready(self, worker_id: int, grad: int, now: float) -> None:
        """A worker flushed ``grad``; it is collectively ready (and hence
        schedulable) once every worker has."""
        if self._faults is None:
            count = self._ready_counts.get(grad, 0) + 1
            if count < self.n_workers:
                self._ready_counts[grad] = count
                return
            self._ready_counts[grad] = 0
            self.scheduler.gradient_ready(grad, now)
            for worker in self.workers:
                self.recorder.mark_ready(worker.worker_id, self._iteration, grad, now)
            self.pump()
            return
        self._ready_sets.setdefault(grad, set()).add(worker_id)
        self._maybe_fire_ready(grad, now)

    def _maybe_fire_ready(self, grad: int, now: float) -> None:
        ready = self._ready_sets.get(grad)
        if ready is None or not ready >= self._active:
            return
        del self._ready_sets[grad]
        self.scheduler.gradient_ready(grad, now)
        for worker in self.workers:
            if worker.worker_id not in self._active:
                continue
            self.recorder.mark_ready(worker.worker_id, self._iteration, grad, now)
        self.pump()

    # ------------------------------------------------------------------
    # Elastic shrink (fault mode): a rank crashed and leaves for good
    # ------------------------------------------------------------------
    def worker_crashed(self, worker_id: int) -> None:
        """Remove a crashed rank from the collective.

        Aborts the in-flight operation (its chunks are lost), rebuilds
        the executor's ring over the survivors, rescales the scheduler's
        effective-bandwidth view, recounts every pending negotiation
        barrier the dead rank may have been the last holdout of, and
        resends the aborted operation on the shrunk ring.
        """
        faults = self._faults
        assert faults is not None
        if worker_id not in self._active:
            raise SimulationError(
                f"worker {worker_id} crashed but is not an active member"
            )
        resume: tuple[int, TransferUnit, dict | None] | None = None
        if self.executor.busy and self._inflight is not None:
            resume = self._inflight
            self._inflight = None
            self.executor.abort()
        self.executor.remove_worker(worker_id)
        self._active.discard(worker_id)
        if self._view is not None:
            self._view.set_factor(self.executor.efficiency_factor)
        faults.count("shrinks")
        faults.record(
            "collective.shrink",
            "collective/faults",
            {
                "worker": worker_id,
                "active": sorted(self._active),
                "factor": self.executor.efficiency_factor,
            },
        )
        now = self.engine.now
        # Resend the aborted (already-committed) operation over the shrunk
        # ring *before* recounting barriers — a recount may pump, and the
        # committed unit owns the executor's next slot.
        if resume is not None:
            iteration, unit, desc = resume
            self._launch_unit(iteration, unit, desc, now)
            faults.record(
                "collective.resumed",
                "collective/faults",
                {"iteration": iteration, "nbytes": unit.total_bytes},
            )
        self._maybe_fire_begin(now)
        for grad in sorted(self._ready_sets):
            self._maybe_fire_ready(grad, now)
        self._maybe_fire_end(now)
        self.pump()

    # ------------------------------------------------------------------
    # Driving the executor
    # ------------------------------------------------------------------
    def pump(self) -> None:
        if self.executor.busy or self._all_done():
            return
        now = self.engine.now
        unit = self.scheduler.propose_unit(now)
        if unit is not None:
            self._send_unit(unit, now)
        elif self.scheduler.pending_bytes > 0:
            self._arm_stall_timer()

    def _all_done(self) -> bool:
        return bool(self.workers) and all(w.done for w in self.workers)

    def _arm_stall_timer(self) -> None:
        if self._stall_timer is not None and self._stall_timer.alive:
            return
        self._stall_timer = self.engine.schedule_after(
            self._stall_timeout, self._stall_check
        )

    def _stall_check(self) -> None:
        self._stall_timer = None
        if (
            self._all_done()
            or self.executor.busy
            or self.scheduler.pending_bytes <= 0
        ):
            return
        trace = self.engine.trace
        if trace.enabled:
            trace.instant(
                "stall.probe",
                "sched",
                self.engine.now,
                "collective/comm",
                {"pending_bytes": self.scheduler.pending_bytes},
            )
        self.scheduler.grant_probe(self.engine.now)
        self.pump()

    def _send_unit(self, unit: TransferUnit, now: float) -> None:
        self.scheduler.commit_unit(unit, now)
        iteration = self._iteration
        for seg in unit.segments:
            if seg.offset <= _TOL:
                for worker in self.workers:
                    if self._faults is not None and worker.worker_id not in self._active:
                        continue
                    self.recorder.mark_push_start(
                        worker.worker_id, iteration, seg.grad, now
                    )
        desc: dict[str, object] | None = None
        if self.engine.trace.enabled:
            desc = self.scheduler.describe_unit(unit)
        self._launch_unit(iteration, unit, desc, now)

    def _launch_unit(
        self,
        iteration: int,
        unit: TransferUnit,
        desc: dict[str, object] | None,
        now: float,
    ) -> None:
        if self._faults is not None:
            self._inflight = (iteration, unit, desc)
        self.executor.send_unit(
            unit.total_bytes,
            tag=("allreduce", iteration),
            on_complete=partial(self._op_done, iteration, unit, now, desc),
            extra_time=self.scheduler.unit_sync_rtts * self.executor.tcp.rtt,
        )

    # ------------------------------------------------------------------
    # Steady-state fast-forward protocol (repro.sim.fastforward)
    # ------------------------------------------------------------------
    def ff_state(self, ctx) -> tuple:
        """Canonical snapshot of the negotiation barriers (the scheduler
        and the executor snapshot themselves)."""
        return (
            ctx.rel_iter(self._iteration),
            self._begin_count,
            self._end_count,
            self._end_span,
            tuple(sorted(self._ready_counts.items())),
        )

    def ff_shift(self, shift) -> None:
        self._iteration += shift.diter

    def _op_done(
        self,
        iteration: int,
        unit: TransferUnit,
        start: float,
        desc: dict[str, object] | None,
    ) -> None:
        now = self.engine.now
        self._inflight = None
        trace = self.engine.trace
        if trace.enabled:
            trace.complete(
                f"allreduce i{iteration}",
                "comm",
                start,
                now,
                "collective/comm",
                desc if desc is not None else {},
            )
        self.scheduler.unit_sent(unit, now)
        # The reduced result is now resident on every worker: the unit's
        # bytes count as both pushed and pulled, and credit-based flow
        # control replenishes as if the PS had mirrored the bytes back.
        for seg in unit.segments:
            self.scheduler.pull_completed(seg.grad, seg.nbytes, now)
        for worker in self.workers:
            if self._faults is not None and worker.worker_id not in self._active:
                continue
            worker._collective_credit(unit, iteration, now)
        self.pump()


class CollectiveWorker(Worker):
    """Worker whose communication is a negotiated collective (no PS)."""

    def __init__(
        self,
        engine: Engine,
        worker_id: int,
        compute: ComputeProfile,
        gen_schedule: GenerationSchedule,
        controller: CollectiveController,
        recorder: Recorder,
        n_iterations: int,
        jitter_rng: np.random.Generator,
        jitter_std: float = 0.0,
        compute_scale: float = 1.0,
        on_done: Callable[[int], None] | None = None,
        faults=None,
    ):
        # Deliberately does NOT call Worker.__init__ (same pattern as
        # ShardedWorker): the base constructor wires a private channel,
        # scheduler and PS, none of which exist here.  Only the compute-
        # path state the inherited methods read is set up.
        self.engine = engine
        self.worker_id = worker_id
        self._quantum = engine._quantum
        self._inv_quantum = engine._inv_quantum
        self.compute = compute
        self.gen_schedule = gen_schedule
        self.controller = controller
        self.recorder = recorder
        self.n_iterations = n_iterations
        self._jitter_rng = jitter_rng
        self._jitter_std = jitter_std
        self._compute_scale = compute_scale
        self._on_done = on_done

        grads = gradient_table(compute.model)
        self._n_grads = len(grads)
        self._layer_of = [g.layer_index for g in grads]
        self._layer_tensor_counts = [0] * len(compute.model.layers)
        for g in grads:
            self._layer_tensor_counts[g.layer_index] += 1
        self._total_tensor_count = sum(self._layer_tensor_counts)
        self._sizes = [float(s) for s in gen_schedule.sizes]

        self._iter = -1
        self._comm_iter = -1
        self._factor = 1.0
        self._fwd_layer = 0
        self._fwd_chunk_pending = False
        self._fwd_start_times: list[float] = []
        self._layer_pending = [0] * len(self._layer_tensor_counts)
        self._pending_updates = 0
        self._pulled = [0.0] * self._n_grads
        self._pushed = [0.0] * self._n_grads
        self._ready_time: list[float | None] = [None] * self._n_grads
        self._iter_rec = None
        self._compute_done = False
        self._done = False
        # ``None`` keeps the inherited ``_schedule_at``/``_schedule_after``
        # on the ``is None`` fast path; with an injector wired the
        # compute-event guards enable crash suspension.
        self._faults = faults
        self._suspended = False
        self._deferred: list = []

        # Base-class aliases for shared helpers and debuggers.
        self.scheduler = controller.scheduler
        self.channel = None
        self.downlink = None
        self.ps = None

    # ------------------------------------------------------------------
    # Scheduler fan-out hooks (see Worker): report to the controller
    # ------------------------------------------------------------------
    def _sched_begin_iteration(self, iteration: int, sched, now: float) -> None:
        self.controller.worker_begin_iteration(self.worker_id, iteration, sched, now)

    def _sched_end_iteration(self, iteration: int, span: float, now: float) -> None:
        self.controller.worker_end_iteration(self.worker_id, iteration, span, now)

    def _sched_gradient_ready(self, grad: int, now: float) -> None:
        self.controller.worker_gradient_ready(self.worker_id, grad, now)

    def _pump_all(self) -> None:
        self.controller.pump()

    def _clear_pull_attempts(self) -> None:
        """No per-pull retry state: collective ops carry pushes and pulls
        in one operation, retried at the chunk level by the executor."""

    # ------------------------------------------------------------------
    # Operation-completion credit (called by the controller)
    # ------------------------------------------------------------------
    def _collective_credit(
        self, unit: TransferUnit, iteration: int, now: float
    ) -> None:
        if iteration != self._comm_iter:
            raise SimulationError(
                f"worker {self.worker_id} credited for iteration {iteration} "
                f"while communicating iteration {self._comm_iter}"
            )
        forward_was_blocked = (
            self._fwd_layer < len(self.compute.fwd_times)
            and not self._fwd_chunk_pending
        )
        for seg in unit.segments:
            self._pushed[seg.grad] += seg.nbytes
            self._pulled[seg.grad] += seg.nbytes
            if self._pulled[seg.grad] >= self._sizes[seg.grad] - _TOL:
                self.recorder.mark_push_end(self.worker_id, iteration, seg.grad, now)
                self.recorder.mark_pull_end(self.worker_id, iteration, seg.grad, now)
                layer = self._layer_of[seg.grad]
                self._layer_pending[layer] -= 1
                self._pending_updates -= 1
                if self._layer_pending[layer] < 0:
                    raise SimulationError(
                        f"worker {self.worker_id}: layer {layer} over-updated"
                    )
        if forward_was_blocked and self._iter == self._comm_iter + 1:
            self._advance_forward()
        self._check_done()

    # ------------------------------------------------------------------
    # Steady-state fast-forward protocol (repro.sim.fastforward)
    # ------------------------------------------------------------------
    def ff_state(self, ctx) -> tuple:
        # No private pull queue: the controller snapshots the shared
        # communication state, only the compute pipeline lives here.
        return self._ff_compute_state(ctx)

    def ff_shift(self, shift) -> None:
        self._ff_shift_compute(shift)

    # ------------------------------------------------------------------
    # Entry points that must not be reached in collective mode
    # ------------------------------------------------------------------
    def enqueue_pull(self, pull: PullUnit) -> None:  # pragma: no cover
        raise SimulationError(
            "CollectiveWorker has no parameter server to pull from"
        )

    def crash(self) -> None:
        """A crashed rank leaves the collective permanently.

        Ring membership is a one-way door here (rejoin would need a
        job-level rendezvous — re-splitting chunks, re-warming every
        link): the controller shrinks the ring over the survivors, this
        rank's pending compute events are dropped, and the rank counts as
        done so the surviving BSP group can finish without it.
        """
        if self._faults is None:  # pragma: no cover - wiring guard
            raise SimulationError(
                "CollectiveWorker.crash() without a fault injector"
            )
        if self._done:
            return
        self._suspended = True
        self._deferred.clear()
        self._done = True
        self.controller.worker_crashed(self.worker_id)
        if self._on_done is not None:
            self._on_done(self.worker_id)

    def restart(self) -> None:
        """Rejoin is refused: the ring already rebuilt without this rank
        (see :meth:`crash`); the restart event is logged and ignored."""
        if self._faults is not None:
            self._faults.record(
                "collective.rejoin_refused",
                f"worker{self.worker_id}/faults",
                {"worker": self.worker_id},
            )
