"""Training-run results: the read API the experiment harnesses consume.

All of the paper's reported quantities are methods here:

* training rate in samples/second per worker (Figs. 8, 12; Tables 2, 3),
* GPU utilization, average and over time (Figs. 2, 9, 13),
* network throughput, average and over time (Figs. 2, 10),
* per-gradient wait/transfer times (Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.agg.kvstore import GenerationSchedule
from repro.config import TrainingConfig
from repro.errors import ConfigurationError
from repro.metrics.throughput import windowed_throughput
from repro.metrics.timeline import GradientRecord, Recorder
from repro.metrics.utilization import mean_utilization, windowed_utilization
from repro.models.compute import ComputeProfile
from repro.net.collective import HierarchicalTopology, RingTopology
from repro.net.link import TransferRecord
from repro.net.topology import ShardedTopology, StarTopology
from repro.trace.export import summarize_trace, write_chrome_trace, write_trace_jsonl
from repro.trace.recorder import NULL_RECORDER, NullRecorder, TraceRecorder

__all__ = ["TrainingResult", "GradientCommStats"]


@dataclass(frozen=True)
class GradientCommStats:
    """Aggregate per-gradient communication statistics (Fig. 11 numbers)."""

    mean_wait: float
    mean_transfer: float
    p95_wait: float
    p95_transfer: float
    count: int


@dataclass
class TrainingResult:
    """Everything recorded during one training run."""

    config: TrainingConfig
    recorder: Recorder
    topology: StarTopology | ShardedTopology | RingTopology | HierarchicalTopology
    schedulers: list
    gen_schedule: GenerationSchedule
    compute: ComputeProfile
    end_time: float
    #: Structured trace of the run (the no-op recorder when tracing was
    #: off — check ``trace.enabled`` before expecting events).
    trace: TraceRecorder | NullRecorder = NULL_RECORDER
    #: Fault/recovery counters from the run's
    #: :class:`~repro.faults.injector.FaultInjector` (``None`` for a
    #: fault-free run — the injector was never instantiated).
    fault_stats: dict[str, int] | None = None
    #: ``(time, kind, detail)`` log of every discrete fault event.
    fault_log: list[tuple[float, str, dict]] | None = None
    #: Steady-state fast-forward outcome (:mod:`repro.sim.fastforward`):
    #: ``None`` when the run was ineligible, else a dict with
    #: ``engaged``/``period``/``cycles_skipped``/``iterations_skipped``/
    #: ``fallbacks``/``boundaries_seen``/``disabled_reason``.
    fastforward_stats: dict | None = None

    # ------------------------------------------------------------------
    # Iteration timing and rates
    # ------------------------------------------------------------------
    def iteration_spans(self, worker: int = 0, skip: int = 2) -> np.ndarray:
        """Iteration durations (fwd-start to fwd-start), skipping warmup."""
        recs = self.recorder.worker_iterations(worker)
        starts = np.array([r.fwd_start for r in recs], dtype=float)
        spans = np.diff(starts)
        if skip >= len(spans):
            raise ConfigurationError(
                f"skip={skip} leaves no iterations "
                f"(worker {worker} has {len(spans)} spans)"
            )
        return spans[skip:]

    def per_worker_rate(self, worker: int = 0, skip: int = 2) -> float:
        """Training rate of one worker in samples/second."""
        spans = self.iteration_spans(worker, skip)
        return self.config.batch_size / float(spans.mean())

    def training_rate(self, skip: int = 2) -> float:
        """Mean per-worker rate (the paper's reported samples/sec)."""
        rates = [
            self.per_worker_rate(w, skip) for w in range(self.config.n_workers)
        ]
        return float(np.mean(rates))

    def measurement_window(self, worker: int = 0, skip: int = 2) -> tuple[float, float]:
        """(start, end) of the post-warmup measurement span."""
        recs = self.recorder.worker_iterations(worker)
        starts = [r.fwd_start for r in recs]
        if skip >= len(starts) - 1:
            raise ConfigurationError("skip leaves no measurement window")
        return float(starts[skip]), float(starts[-1])

    # ------------------------------------------------------------------
    # GPU utilization
    # ------------------------------------------------------------------
    def mean_gpu_utilization(self, worker: int = 0, skip: int = 2) -> float:
        """Average GPU utilization over the measurement window."""
        start, end = self.measurement_window(worker, skip)
        return mean_utilization(self.recorder.gpu_busy_intervals(worker), start, end)

    def gpu_utilization_series(
        self,
        worker: int = 0,
        window: float = 0.5,
        resolution: float = 0.1,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(times, utilization) series, nvidia-smi style trailing window."""
        times = np.arange(resolution, self.end_time, resolution)
        util = windowed_utilization(
            self.recorder.gpu_busy_intervals(worker), times, window
        )
        return times, util

    # ------------------------------------------------------------------
    # Network throughput
    # ------------------------------------------------------------------
    def _channel_records(
        self, worker: int, direction: str = "both"
    ) -> list[TransferRecord]:
        if direction not in ("both", "push", "pull"):
            raise ConfigurationError(f"unknown direction {direction!r}")
        records: list[TransferRecord] = []
        for link in self.topology.worker_uplinks(worker):
            records += link.records
        if self.config.duplex:
            for link in self.topology.worker_downlinks(worker):
                records += link.records
        if direction == "both":
            return records
        return [r for r in records if isinstance(r.tag, tuple) and r.tag[0] == direction]

    def throughput_series(
        self,
        worker: int = 0,
        window: float = 0.5,
        resolution: float = 0.1,
        direction: str = "both",
    ) -> tuple[np.ndarray, np.ndarray]:
        """(times, bytes/s) series of a worker's channel."""
        times = np.arange(resolution, self.end_time, resolution)
        series = windowed_throughput(
            self._channel_records(worker, direction), times, window
        )
        return times, series

    def mean_throughput(
        self, worker: int = 0, skip: int = 2, direction: str = "both"
    ) -> float:
        """Average channel throughput (bytes/s) over the measurement window."""
        start, end = self.measurement_window(worker, skip)
        records = [
            r
            for r in self._channel_records(worker, direction)
            if r.end > start and r.start < end
        ]
        total = sum(r.nbytes for r in records)
        return total / (end - start)

    # ------------------------------------------------------------------
    # Per-gradient communication (Fig. 11)
    # ------------------------------------------------------------------
    def gradient_records(
        self, worker: int = 0, iteration: int | None = None
    ) -> list[GradientRecord]:
        return self.recorder.gradient_records(worker=worker, iteration=iteration)

    def gradient_comm_stats(
        self, worker: int = 0, skip: int = 2
    ) -> GradientCommStats:
        """Mean/95p wait and transfer times over post-warmup iterations."""
        recs = [
            r
            for r in self.recorder.gradient_records(worker=worker)
            if r.iteration >= skip
            and np.isfinite(r.push_start)
            and np.isfinite(r.push_end)
            and np.isfinite(r.ready)
        ]
        if not recs:
            raise ConfigurationError(
                "no complete gradient records (was record_gradients=False?)"
            )
        waits = np.array([r.wait_time for r in recs])
        transfers = np.array([r.transfer_time for r in recs])
        return GradientCommStats(
            mean_wait=float(waits.mean()),
            mean_transfer=float(transfers.mean()),
            p95_wait=float(np.percentile(waits, 95)),
            p95_transfer=float(np.percentile(transfers, 95)),
            count=len(recs),
        )

    # ------------------------------------------------------------------
    # Structured trace
    # ------------------------------------------------------------------
    def _trace_metadata(self) -> dict[str, object]:
        strategies = sorted({s.name for s in self.schedulers})
        return {
            "model": self.config.model,
            "batch_size": self.config.batch_size,
            "n_workers": self.config.n_workers,
            "n_iterations": self.config.n_iterations,
            "seed": self.config.seed,
            "strategy": strategies[0] if len(strategies) == 1 else strategies,
        }

    def write_chrome_trace(self, path: str | Path) -> Path:
        """Export the run's trace as Chrome trace-event JSON.

        The file loads directly in Perfetto (https://ui.perfetto.dev) or
        ``chrome://tracing``.  Raises if the run was not traced.
        """
        self._require_trace()
        return write_chrome_trace(self.trace, path, metadata=self._trace_metadata())

    def write_trace_jsonl(self, path: str | Path) -> Path:
        """Export the run's trace as compact JSONL (one event per line)."""
        self._require_trace()
        return write_trace_jsonl(self.trace, path)

    def trace_summary(self) -> dict[str, object]:
        """Aggregate trace statistics (span totals, counters, tracks)."""
        self._require_trace()
        return summarize_trace(self.trace)

    def _require_trace(self) -> None:
        if not self.trace.enabled:
            raise ConfigurationError(
                "this run was not traced (set TrainingConfig.trace=True)"
            )

    # ------------------------------------------------------------------
    def summary(self, skip: int = 2) -> dict[str, float]:
        """Headline numbers as a plain dict (handy for harness printing)."""
        return {
            "training_rate": self.training_rate(skip),
            "mean_iteration_s": float(self.iteration_spans(0, skip).mean()),
            "gpu_utilization": self.mean_gpu_utilization(0, skip),
            "throughput_bytes_per_s": self.mean_throughput(0, skip),
        }
