"""PS-architecture training-cluster simulation.

Event-driven model of the paper's testbed: N workers, one parameter
server, BSP synchronization.  Each worker runs the forward → backward →
push → (PS aggregation) → pull dataflow; the communication scheduler under
test decides the composition and order of the messages on the worker's
channel.  The :class:`~repro.cluster.trainer.Trainer` wires everything up
from a :class:`~repro.config.TrainingConfig` and returns a
:class:`~repro.cluster.result.TrainingResult` with the recorded timelines.
"""

from repro.cluster.messages import PullUnit
from repro.cluster.ps import ParameterServer
from repro.cluster.worker import Worker
from repro.cluster.trainer import Trainer, run_training
from repro.cluster.result import TrainingResult

__all__ = [
    "PullUnit",
    "ParameterServer",
    "Worker",
    "Trainer",
    "run_training",
    "TrainingResult",
]
