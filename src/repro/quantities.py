"""Unit helpers.

Internally the library uses SI base units everywhere: **seconds** for time,
**bytes** for data sizes, and **bytes/second** for bandwidth.  The helpers
here convert the units that the paper (and networking practice) use —
milliseconds, megabytes, gigabits per second — into base units, and format
base-unit values back for reports.

Keeping unit conversion in a single module avoids the classic simulation bug
of mixing Mbps (network convention, powers of ten, *bits*) with MB/s
(storage convention, *bytes*).
"""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "GB",
    "ms",
    "us",
    "Kbps",
    "Mbps",
    "Gbps",
    "to_MB",
    "to_ms",
    "to_Gbps",
    "to_Mbps",
    "fmt_bytes",
    "fmt_seconds",
    "fmt_bandwidth",
]

# Data sizes use binary prefixes (tensor sizes are naturally powers of two).
KB: float = 1024.0
MB: float = 1024.0**2
GB: float = 1024.0**3

# Time.
ms: float = 1e-3
us: float = 1e-6

# Network bandwidth uses decimal prefixes and *bits*, per networking
# convention: 1 Gbps = 1e9 bits/s = 1.25e8 bytes/s.
Kbps: float = 1e3 / 8.0
Mbps: float = 1e6 / 8.0
Gbps: float = 1e9 / 8.0


def to_MB(num_bytes: float) -> float:
    """Convert bytes to mebibytes."""
    return num_bytes / MB


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds / ms


def to_Gbps(bytes_per_second: float) -> float:
    """Convert bytes/second to gigabits/second."""
    return bytes_per_second / Gbps


def to_Mbps(bytes_per_second: float) -> float:
    """Convert bytes/second to megabits/second."""
    return bytes_per_second / Mbps


def fmt_bytes(num_bytes: float) -> str:
    """Human-readable size, e.g. ``'9.8 MB'``."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{value:.0f} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_seconds(seconds: float) -> str:
    """Human-readable duration, e.g. ``'12.3 ms'``."""
    if seconds < 1e-3:
        return f"{seconds / us:.1f} us"
    if seconds < 1.0:
        return f"{seconds / ms:.1f} ms"
    return f"{seconds:.2f} s"


def fmt_bandwidth(bytes_per_second: float) -> str:
    """Human-readable bandwidth, e.g. ``'3.00 Gbps'``."""
    if bytes_per_second >= Gbps:
        return f"{to_Gbps(bytes_per_second):.2f} Gbps"
    return f"{to_Mbps(bytes_per_second):.1f} Mbps"
