"""Calibrated presets reproducing the paper's experimental setups.

Two kinds of knobs live here:

* **Calibration constants** — per-model achieved GPU efficiency on the
  g3.8xlarge node (two Tesla M60s).  These pin the compute-bound sample
  rates to the paper's saturation numbers (ResNet-50 bs64 ≈ 70 samples/s,
  ResNet-18 bs64 ≈ 220 samples/s at 10 Gbps).  Everything else — the
  bandwidth-dependent behaviour, the scheduler gaps — *emerges* from the
  simulation; only the compute ceiling is pinned.

* **Scheduler factories** — the four strategies with the paper's settings
  (P3 partition 4 MB, ByteScheduler default credit, Prophet profiling 50
  iterations or oracle profile for fast runs).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping

from repro.config import SchedulerFactory, TrainingConfig, WorkerContext
from repro.models.device import DeviceSpec, TESLA_M60
from repro.net.link import BandwidthSchedule
from repro.net.tcp import TCPParams
from repro.quantities import Gbps, MB
from repro.sched.base import CommScheduler
from repro.sched.bytescheduler import ByteSchedulerScheduler
from repro.sched.fifo import FIFOScheduler
from repro.sched.p3 import P3Scheduler
from repro.sched.mgwfbp import MGWFBPScheduler
from repro.sched.prophet_sched import ProphetScheduler

__all__ = [
    "PAPER_TCP",
    "MODEL_EFFICIENCY",
    "paper_device",
    "paper_config",
    "fifo_factory",
    "p3_factory",
    "bytescheduler_factory",
    "prophet_factory",
    "mgwfbp_factory",
    "STRATEGY_FACTORIES",
    "EXTENDED_FACTORIES",
]

#: Calibrated TCP path for the paper's EC2 testbed: sub-millisecond
#: same-AZ RTT, per-message request/response synchronization, and a
#: single-stream application goodput well below line rate (virtualized
#: NICs + PS-side serialization) — the factor that makes the paper's
#: communication as expensive as its Table 2 rates imply.
PAPER_TCP = TCPParams(
    rtt=0.2e-3, handshake_rtts=1.0, fixed_overhead=0.15e-3, goodput=0.60
)

#: Achieved fraction of node peak FLOPs per model (fp32 framework kernels
#: of the Tesla-M60 era).  Derived from the paper's compute-bound rates.
MODEL_EFFICIENCY: Mapping[str, float] = {
    "resnet18": 0.26,
    "resnet34": 0.24,
    "resnet50": 0.19,
    "resnet101": 0.19,
    "resnet152": 0.19,
    "inception_v3": 0.17,
    "vgg16": 0.26,
    "vgg19": 0.26,
    "alexnet": 0.15,
}


def paper_device(model: str) -> DeviceSpec:
    """The g3.8xlarge node with the model's calibrated efficiency."""
    return TESLA_M60.with_efficiency(MODEL_EFFICIENCY.get(model, 0.20))


def paper_config(
    model: str = "resnet50",
    batch_size: int = 64,
    bandwidth: float | BandwidthSchedule = 3 * Gbps,
    n_workers: int = 3,
    n_iterations: int = 30,
    seed: int = 0,
    **overrides,
) -> TrainingConfig:
    """A :class:`TrainingConfig` with the paper's testbed calibration."""
    config = TrainingConfig(
        model=model,
        batch_size=batch_size,
        bandwidth=bandwidth,
        n_workers=n_workers,
        n_iterations=n_iterations,
        seed=seed,
        device=paper_device(model),
        tcp=PAPER_TCP,
    )
    if overrides:
        config = replace(config, **overrides)
    return config


# ----------------------------------------------------------------------
# Scheduler factories
# ----------------------------------------------------------------------
def fifo_factory() -> SchedulerFactory:
    """Default MXNet: whole tensors, FIFO order."""

    def factory(ctx: WorkerContext) -> CommScheduler:
        return FIFOScheduler()

    return factory


def p3_factory(partition_size: float = 4 * MB) -> SchedulerFactory:
    """P3 with the paper's 4 MB partitions (Sec. 5.1)."""

    def factory(ctx: WorkerContext) -> CommScheduler:
        return P3Scheduler(partition_size=partition_size)

    return factory


def bytescheduler_factory(
    credit: float = 12 * MB,
    partition_size: float = 4 * MB,
    auto_tune: bool = False,
    tune_every: int = 5,
) -> SchedulerFactory:
    """ByteScheduler with its default credit (auto-tuning off, Sec. 5.1).

    Defaults follow the paper's description of the baseline: BytePS's 4 MB
    partitions and "the credit size as an empirical value (i.e., 3 times
    partition size in Fig. 5)" — a fixed 12 MB credit that is *not* adapted
    to the available bandwidth, which is exactly the weakness Prophet's
    interval-sized blocks fix.  Pass ``auto_tune=True`` for the Fig. 3(b)
    fluctuation reproduction.
    """

    def factory(ctx: WorkerContext) -> CommScheduler:
        return ByteSchedulerScheduler(
            credit=credit,
            partition_size=partition_size,
            auto_tune=auto_tune,
            tune_every=tune_every,
            rng=ctx.rng,
        )

    return factory


def prophet_factory(
    oracle_profile: bool = True,
    profile_iterations: int = 50,
    guard: float = 0.0,
    forward_block_bytes: float = 4 * MB,
    round_trip_factor: float = 1.0,
    slice_bytes: float = 1 * MB,
    stale_tolerance: float | None = 0.5,
    stale_patience: int = 2,
    collapse_factor: float = 0.1,
    on_stale: str = "reprofile",
) -> SchedulerFactory:
    """Prophet wired to each worker's bandwidth monitor.

    ``oracle_profile=True`` (default) hands Prophet the converged stepwise
    profile immediately — equivalent to (and much faster than) simulating
    the paper's 50 warmup iterations.  Set it ``False`` to simulate the
    full online profiling phase (used by the Fig. 13 overhead experiment).

    ``round_trip_factor`` and ``slice_bytes`` expose the design-choice
    knobs the ablation suite sweeps (round-trip packing, slicing
    granularity); defaults match :class:`ProphetScheduler`'s own.

    The degradation knobs (``stale_tolerance``/``stale_patience``/
    ``collapse_factor``/``on_stale``) govern when the scheduler abandons a
    rotten plan; each detection is recorded as a ``fault``-category trace
    instant on the worker's scheduler track.
    """

    def factory(ctx: WorkerContext) -> CommScheduler:
        monitor = ctx.monitor
        engine = ctx.engine
        track = f"worker{ctx.worker_id}/sched"

        def notify(event: str, detail: dict) -> None:
            if engine is None:
                return
            trace = engine.trace
            if trace.enabled:
                trace.instant(event, "fault", engine.now, track, detail)

        return ProphetScheduler(
            bandwidth_provider=lambda: monitor.bandwidth,
            profile=ctx.oracle_profile if oracle_profile else None,
            profile_iterations=profile_iterations,
            tcp=ctx.tcp,
            guard=guard,
            forward_block_bytes=forward_block_bytes,
            round_trip_factor=round_trip_factor,
            slice_bytes=slice_bytes,
            stale_tolerance=stale_tolerance,
            stale_patience=stale_patience,
            collapse_factor=collapse_factor,
            on_stale=on_stale,
            notify=notify,
        )

    return factory


def mgwfbp_factory(merge_bytes: float = 16 * MB) -> SchedulerFactory:
    """MG-WFBP (Shi et al., INFOCOM'19): merged-gradient wait-free
    backpropagation — the related-work baseline of the paper's Sec. 6.2."""

    def factory(ctx: WorkerContext) -> CommScheduler:
        return MGWFBPScheduler(merge_bytes=merge_bytes)

    return factory


#: Name → default factory, for sweep harnesses.
STRATEGY_FACTORIES: Mapping[str, SchedulerFactory] = {
    "mxnet-fifo": fifo_factory(),
    "p3": p3_factory(),
    "bytescheduler": bytescheduler_factory(),
    "prophet": prophet_factory(),
}

#: Extended set including related-work baselines beyond the paper's four.
EXTENDED_FACTORIES: Mapping[str, SchedulerFactory] = {
    **STRATEGY_FACTORIES,
    "mg-wfbp": mgwfbp_factory(),
}
