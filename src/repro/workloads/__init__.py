"""Workload presets matching the paper's experimental setups."""

from repro.workloads.presets import (
    MODEL_EFFICIENCY,
    paper_device,
    paper_config,
    fifo_factory,
    p3_factory,
    bytescheduler_factory,
    prophet_factory,
    STRATEGY_FACTORIES,
)

__all__ = [
    "MODEL_EFFICIENCY",
    "paper_device",
    "paper_config",
    "fifo_factory",
    "p3_factory",
    "bytescheduler_factory",
    "prophet_factory",
    "STRATEGY_FACTORIES",
]
