"""Micro-benchmarks of the tracing layer.

Two guarantees worth timing:

* disabled tracing is effectively free — the ``enabled`` guard plus the
  shared :data:`~repro.trace.recorder.NULL_RECORDER` add no measurable
  cost to a full training simulation (the zero-cost claim in README.md);
* enabled tracing stays cheap enough to leave on for any run you intend
  to look at (a bounded constant factor, not a blow-up).
"""

from repro.sim.engine import Engine
from repro.trace import NULL_RECORDER, TraceRecorder


def _chained_engine_run(n_events: int) -> Engine:
    eng = Engine()
    count = 0

    def tick():
        nonlocal count
        count += 1
        if count < n_events:
            eng.schedule_after(1e-6, tick)

    eng.schedule(0.0, tick)
    eng.run()
    return eng


def test_null_recorder_guard_overhead(benchmark):
    """The hot-path pattern: guard + (skipped) emission, 100k times."""
    trace = NULL_RECORDER

    def run():
        emitted = 0
        for i in range(100_000):
            if trace.enabled:
                trace.complete("x", "c", 0.0, 1.0, "t", {"i": i})
                emitted += 1
        return emitted

    assert benchmark(run) == 0


def test_live_recorder_emission_rate(benchmark):
    """Upper bound: 100k unconditional complete() emissions."""

    def run():
        trace = TraceRecorder()
        for i in range(100_000):
            trace.complete("x", "c", float(i), float(i) + 0.5, "t")
        return len(trace.events)

    assert benchmark(run) == 100_000


def test_engine_run_untraced_vs_disabled_trace(benchmark, show):
    """A full event loop with the null recorder attached (the default).

    Compared against ``bench_micro.py::test_engine_event_throughput``
    (identical workload) this pins the zero-cost-when-disabled claim: the
    engine's per-event trace check is one attribute load and branch.
    """
    eng = benchmark.pedantic(
        lambda: _chained_engine_run(10_000), rounds=5, iterations=1
    )
    assert eng.trace is NULL_RECORDER
    assert len(eng.trace.events) == 0
    show(
        "engine loop ran 10k events with the disabled recorder attached; "
        "compare mean against bench_micro.py::test_engine_event_throughput"
    )


def test_engine_run_with_tracing_enabled(benchmark, show):
    """The same loop with a live recorder: bounded, modest overhead."""

    def traced():
        eng = Engine(trace=TraceRecorder())
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                eng.schedule_after(1e-6, tick)

        eng.schedule(0.0, tick)
        eng.run()
        return eng

    eng = benchmark.pedantic(traced, rounds=5, iterations=1)
    # The engine samples its queue-depth counter on a stride, so a live
    # trace of the bare loop stays small.
    assert 0 < len(eng.trace.events) < 100
    show(f"live trace recorded {len(eng.trace.events)} counter samples")
