"""Fig. 13 — Prophet's profiling-phase overhead over time."""

from conftest import run_once

from repro.experiments import fig13
from repro.metrics.report import format_table


def test_fig13_profiling_overhead(benchmark, show):
    res = run_once(benchmark, lambda: fig13.run(profile_iterations=6, n_iterations=18))
    show(
        format_table(
            ["strategy", "util (profiling window)", "util (after)", "steady rate"],
            [
                ["prophet (online profiling)", f"{res.prophet_early * 100:.1f}%",
                 f"{res.prophet_late * 100:.1f}%", f"{res.prophet_rate:.1f}"],
                ["bytescheduler", f"{res.bytescheduler_early * 100:.1f}%",
                 f"{res.bytescheduler_late * 100:.1f}%",
                 f"{res.bytescheduler_rate:.1f}"],
            ],
            title=(
                "Fig. 13 — early-stage overhead (paper: Prophet slightly "
                "below ByteScheduler while profiling, ahead afterwards)"
            ),
        )
    )
    # During profiling Prophet runs FIFO: it must not beat ByteScheduler.
    assert res.prophet_early <= res.bytescheduler_early + 0.03
    # After activation Prophet catches up (or overtakes).
    assert res.prophet_late >= res.bytescheduler_late - 0.03
    assert res.prophet_rate >= res.bytescheduler_rate * 0.97
