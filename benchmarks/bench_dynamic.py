"""Dynamic network environments — the adaptivity claim of Sec. 1 / 5.3."""

from conftest import run_once

from repro.experiments import dynamic
from repro.metrics.report import format_table


def test_dynamic_bandwidth_adaptation(benchmark, show):
    res = run_once(benchmark, lambda: dynamic.run(n_iterations=20))
    show(
        format_table(
            ["strategy", "mean rate (samples/s)", "worst iteration (ms)"],
            [
                [name, f"{res.mean_rates[name]:.1f}",
                 f"{res.worst_iteration_ms[name]:.0f}"]
                for name in sorted(
                    res.mean_rates, key=res.mean_rates.get, reverse=True
                )
            ],
            title=(
                "Dynamic bandwidth (4 <-> 1.5 Gbps square wave) — Prophet "
                "re-plans from its monitor; static configurations cannot "
                "(the paper's Sec. 1 motivation)"
            ),
        )
    )
    # Prophet adapts; the static strategies trail.
    assert res.mean_rates["prophet"] >= res.mean_rates["bytescheduler"]
    assert res.mean_rates["prophet"] > res.mean_rates["p3"]
    assert res.mean_rates["prophet"] > res.mean_rates["mxnet-fifo"] * 1.1
