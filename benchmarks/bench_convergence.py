"""Time-to-accuracy under BSP/SSP/ASP (completes future-work item 1)."""

from conftest import run_once

from repro.experiments import convergence
from repro.metrics.report import format_table


def test_time_to_accuracy(benchmark, show):
    rows = run_once(
        benchmark, lambda: convergence.run(n_iterations=12, sgd_steps=3000)
    )
    show(
        format_table(
            ["sync", "s/iteration", "mean staleness", "iters to 1% loss",
             "time to 1% (s)"],
            [
                [
                    r.sync_mode,
                    f"{r.seconds_per_iteration * 1e3:.0f} ms",
                    f"{r.mean_staleness:.2f}",
                    "diverged" if r.iterations_to_target is None
                    else r.iterations_to_target,
                    "-" if r.time_to_target_s is None
                    else f"{r.time_to_target_s:.1f}",
                ]
                for r in rows
            ],
            title=(
                "Time-to-accuracy, Prophet-scheduled cluster with a 1.4x "
                "compute straggler: asynchrony's throughput win survives "
                "its (mild) staleness cost"
            ),
        )
    )
    by_mode = {r.sync_mode: r for r in rows}
    assert by_mode["bsp"].mean_staleness == 0.0
    assert by_mode["asp"].mean_staleness > 0.0
    assert (
        by_mode["asp"].seconds_per_iteration
        < by_mode["bsp"].seconds_per_iteration
    )
    # At this staleness level the statistical penalty is small enough that
    # asynchrony wins wall-clock time to the target.
    assert by_mode["asp"].time_to_target_s is not None
    assert by_mode["bsp"].time_to_target_s is not None
    assert by_mode["asp"].time_to_target_s <= by_mode["bsp"].time_to_target_s
