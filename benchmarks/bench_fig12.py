"""Fig. 12 — Prophet scalability in worker count."""

from conftest import run_once

from repro.experiments import fig12
from repro.metrics.report import format_table


def test_fig12_worker_scaling(benchmark, show):
    rows = run_once(benchmark, lambda: fig12.run(n_iterations=10))
    show(
        format_table(
            ["workers", "per-worker rate", "aggregate rate"],
            [[r.n_workers, f"{r.per_worker_rate:.2f}", f"{r.aggregate_rate:.1f}"]
             for r in rows],
            title=(
                "Fig. 12 — Prophet, ResNet-50 bs64 "
                "(paper: per-worker 69.94 -> 68.83 from 2 to 8 workers)"
            ),
        )
    )
    # Near-linear scaling: per-worker rate drops < 5% from 2 to 8 workers.
    assert rows[-1].per_worker_rate > rows[0].per_worker_rate * 0.95
    # Aggregate throughput grows with the cluster.
    aggregates = [r.aggregate_rate for r in rows]
    assert aggregates == sorted(aggregates)
