"""CI benchmark smoke test — reduced-mode scalars vs committed baselines.

Runs a cut-down Fig. 8 comparison, a chaos resilience run (crash + flap +
drops + PS stall), a collective-backend comparison (ring + hierarchical
allreduce), the chaos-collective resilience runs (elastic shrink on both
allreduce topologies plus the sharded tier), and the substrate
micro-benchmarks, and compares a handful of key scalars against
``benchmarks/baselines.json``:

* **Deterministic scalars** (simulated training rates) must match the
  baseline within a tight relative tolerance — the simulator is a seeded
  discrete-event system, so any drift here is a real behavioural change.
* **Timing scalars** (engine events/second over a plain chain and a
  cancellation-heavy churn, scalar TCP-model calls/second, and
  engine-driven link transfers/second) only enforce a loose floor — CI
  runners are noisy, so we only fail on order-of-magnitude regressions.

The fleet-shape timing scalars (64-worker star pump, 8-shard pump,
50%-cancel replan churn, 64-worker hierarchical collective) live in
their own ``--suite engine-perf`` so the engine-perf-smoke CI job can
gate them without re-running the simulation grid; ``--suite all``
includes them too, so ``--update`` regenerates every floor at once.
The suite also runs the 32-worker x 500-iteration long-horizon shape
with steady-state fast-forward engaged (``sim.longhorizon_*``): the
training rate and skip count gate deterministically, and the wall-time
floor is only reachable when fast-forward actually skips — an unrolled
run of that shape is an order of magnitude slower.

The multi-tenant fleet scalars live in ``--suite fleet`` (the
fleet-smoke CI job): a mixed-strategy 6-job fleet on an oversubscribed
shared core gates its goodput, p99 iteration time, Jain fairness, and
mean queueing delay deterministically, plus a ``fleet.jobs_per_s``
timing floor for end-to-end fleet throughput.

Timing floors can be loosened per-runner via the ``REPRO_TIMING_SLACK``
environment variable (default ``1.0``): the effective floor is
``baseline * TIMING_FLOOR_FRACTION / REPRO_TIMING_SLACK``, so ``2.0``
halves every floor.  Set it in the CI workflow for shared runners whose
steady-state throughput sits well below the machines that recorded the
baselines; it never tightens the deterministic tolerance.

The Fig. 8 runs go through :func:`repro.runner.run_grid` with the result
cache disabled — the smoke test must gate on *fresh* simulation, and the
grid doubles as an integration check of the parallel fan-out path (CI
sets ``REPRO_JOBS=2`` / ``--jobs 2``; parallel results are bit-identical
to serial, so the baselines don't depend on the job count).

Usage::

    PYTHONPATH=src python benchmarks/ci_smoke.py           # check
    PYTHONPATH=src python benchmarks/ci_smoke.py --jobs 2  # parallel grid
    PYTHONPATH=src python benchmarks/ci_smoke.py --update  # rewrite baselines
    PYTHONPATH=src python benchmarks/ci_smoke.py --suite collective
    PYTHONPATH=src python benchmarks/ci_smoke.py --suite engine-perf
    PYTHONPATH=src python benchmarks/ci_smoke.py --report /tmp/report.json

Regenerate baselines (and commit the diff) whenever an intentional change
shifts simulation results; see EXPERIMENTS.md for the workflow.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "baselines.json"

#: Relative tolerance for deterministic simulation scalars.
DETERMINISTIC_RTOL = 0.02
#: Timing scalars may be this much slower than baseline before failing.
TIMING_FLOOR_FRACTION = 0.15

#: Reduced Fig. 8 workloads: one compute-bound and one comm-bound point.
SMOKE_WORKLOADS = (("resnet18", 32), ("resnet50", 64))
SMOKE_ITERATIONS = 8

#: Chaos smoke: a compressed fault cocktail on the fast workload.  The
#: resilience scalars (goodput retained, recovery time) are deterministic
#: under the seed, so they gate like any other simulation scalar.
CHAOS_MODEL = ("resnet18", 64)
CHAOS_ITERATIONS = 8

#: Sharded-PS smoke: the fast workload under a PS-side NIC cap, once on
#: the single-PS star and once over a 4-way key-sharded tier.  Gates both
#: the water-filled PS cap and the sharded routing end to end.
SHARDED_MODEL = ("resnet18", 32)
SHARDED_ITERATIONS = 8
SHARDED_SERVERS = 4

#: Collective smoke: the fast workload over the allreduce backend — one
#: ring run per strategy family plus one hierarchical Prophet run.  Gates
#: the topology/scheduler split end to end (controller negotiation, ring
#: step pipelining, effective-bandwidth planning, MG-WFBP fusion).
COLLECTIVE_MODEL = ("resnet18", 32)
COLLECTIVE_ITERATIONS = 8
COLLECTIVE_WORKERS = 4
COLLECTIVE_STRATEGIES = ("mxnet-fifo", "mg-wfbp", "prophet")

#: Chaos-collective smoke: the fault cocktail on the allreduce backend
#: (ring + hierarchical) plus the sharded PS tier.  Gates the elastic
#: shrink, the straggler watchdog, and per-shard fault delivery: goodput
#: retained, recovery time and stall amplification are all deterministic
#: under the seed.
CHAOS_COLLECTIVE_MODEL = ("resnet18", 32)
CHAOS_COLLECTIVE_ITERATIONS = 8
CHAOS_COLLECTIVE_WORKERS = 4

#: Fleet smoke: a mixed-strategy multi-tenant fleet on an oversubscribed
#: shared core under the fair-share policy.  The fleet scalars (goodput,
#: tail iteration time, Jain fairness, queueing delay) are deterministic
#: under the seed; the timing floor gates end-to-end fleet throughput
#: (placement ticks + water-filled fabric re-leveling + N concurrent
#: trainers on one engine).
FLEET_SMOKE_JOBS = 6
FLEET_SMOKE_ITERATIONS = 3


def _fleet_smoke_spec():
    from repro.fleet import FleetSpec
    from repro.quantities import Gbps

    return FleetSpec(
        n_jobs=FLEET_SMOKE_JOBS,
        policy="fair",
        n_hosts=4,
        slots_per_host=2,
        core_bandwidth=10 * Gbps,
        nic_bandwidth=3 * Gbps,
        model="resnet18",
        batch_size=32,
        n_workers=2,
        n_iterations=FLEET_SMOKE_ITERATIONS,
        strategies=("prophet", "mxnet-fifo", "mg-wfbp"),
        mean_interarrival_s=0.05,
        seed=0,
    )


def _measure_fleet() -> tuple[dict[str, float], dict[str, float]]:
    """Multi-tenant fleet scalars: deterministic metrics + fleet timing."""
    from repro.fleet import run_fleet

    spec = _fleet_smoke_spec()
    durations = []
    for _ in range(3):
        start = time.perf_counter()
        result = run_fleet(spec)
        durations.append(time.perf_counter() - start)
    summary = result.summary()
    deterministic = {
        "fleet.goodput_samples_per_s": summary["goodput_samples_per_s"],
        "fleet.p99_iteration_s": summary["p99_iteration_s"],
        "fleet.jain_fairness": summary["jain_fairness"],
        "fleet.mean_queueing_delay_s": summary["mean_queueing_delay_s"],
    }
    timing = {"fleet.jobs_per_s": FLEET_SMOKE_JOBS / min(durations[1:])}
    return deterministic, timing


def _measure_chaos_collective() -> tuple[dict[str, float], dict[str, float]]:
    """Resilience scalars beyond the single-PS star (no timing scalars)."""
    from repro.experiments import chaos
    from repro.workloads.presets import STRATEGY_FACTORIES

    deterministic: dict[str, float] = {}
    model, batch = CHAOS_COLLECTIVE_MODEL
    allreduce_plan = chaos.default_plan(
        crash_at=1.0,
        restart_after=0.3,
        flap_at=2.0,
        flap_duration=0.5,
        backend="allreduce",
    )
    for collective, strategies in (
        ("ring", ("prophet", "mxnet-fifo")),
        ("hierarchical", ("prophet",)),
    ):
        res = chaos.run(
            model=model,
            batch_size=batch,
            n_iterations=CHAOS_COLLECTIVE_ITERATIONS,
            seed=0,
            plan=allreduce_plan,
            strategies={s: STRATEGY_FACTORIES[s] for s in strategies},
            backend="allreduce",
            collective=collective,
            group_size=2,
            n_workers=CHAOS_COLLECTIVE_WORKERS,
        )
        for s in strategies:
            key = f"chaos.{collective}.{s}"
            deterministic[f"{key}.goodput_retained"] = res.goodput_retained[s]
            deterministic[f"{key}.recovery_s"] = res.recovery_time[s]
            deterministic[f"{key}.stall_amplification"] = (
                res.stall_amplification[s]
            )

    sharded_res = chaos.run(
        model=model,
        batch_size=batch,
        n_iterations=CHAOS_COLLECTIVE_ITERATIONS,
        seed=0,
        plan=chaos.default_plan(
            crash_at=1.0,
            restart_after=0.3,
            flap_at=2.0,
            flap_duration=0.5,
            stall_at=3.0,
            stall_duration=0.2,
        ),
        strategies={"prophet": STRATEGY_FACTORIES["prophet"]},
        n_servers=2,
    )
    deterministic["chaos.sharded.prophet.goodput_retained"] = (
        sharded_res.goodput_retained["prophet"]
    )
    deterministic["chaos.sharded.prophet.recovery_s"] = (
        sharded_res.recovery_time["prophet"]
    )
    return deterministic, {}


def _measure_collective() -> tuple[dict[str, float], dict[str, float]]:
    """Collective-backend scalars: deterministic rates + ring-step timing."""
    from repro.agg.fusion import MGWFBPFusionPolicy
    from repro.cluster.trainer import run_training
    from repro.net.collective import RingExecutor, RingTopology
    from repro.quantities import Gbps
    from repro.sim.engine import Engine
    from repro.workloads.presets import EXTENDED_FACTORIES, PAPER_TCP, paper_config

    deterministic: dict[str, float] = {}
    model, batch = COLLECTIVE_MODEL
    n = COLLECTIVE_WORKERS
    bandwidth = 3 * Gbps
    ring_factor = 2.0 * (n - 1) / n
    fusion = MGWFBPFusionPolicy(tcp=PAPER_TCP, bandwidth=bandwidth / ring_factor)

    for collective, strategies in (
        ("ring", COLLECTIVE_STRATEGIES),
        ("hierarchical", ("prophet",)),
    ):
        for strategy in strategies:
            overrides = {"agg_policy": fusion} if strategy == "mg-wfbp" else {}
            config = paper_config(
                model,
                batch,
                bandwidth=bandwidth,
                n_workers=n,
                n_iterations=COLLECTIVE_ITERATIONS,
                seed=0,
                record_gradients=False,
                backend="allreduce",
                collective=collective,
                collective_group_size=2,
                **overrides,
            )
            rate = run_training(
                config, EXTENDED_FACTORIES[strategy]
            ).training_rate()
            deterministic[
                f"collective.{model}.bs{batch}.{collective}.{strategy}_rate"
            ] = rate

    # Ring-step throughput: back-to-back allreduce operations through the
    # step executor — the collective backend's end-to-end per-step cost
    # (N chunk sends per step through the event loop, barrier bookkeeping,
    # op completion).  2(N-1) steps per operation.
    n_ops = 400
    steps_per_op = 2 * (n - 1)

    def ring_ops() -> int:
        eng = Engine()
        topo = RingTopology(eng, n_workers=n, bandwidth=bandwidth)
        executor = RingExecutor(topo)
        count = 0

        def pump() -> None:
            nonlocal count
            if count < n_ops:
                count += 1
                executor.send_unit(1e6, tag=("allreduce", count), on_complete=pump)

        eng.schedule(0.0, pump)
        eng.run()
        return executor.steps_completed

    total_steps = ring_ops()  # warmup (also validates the step count)
    assert total_steps == n_ops * steps_per_op, total_steps
    best = min(_timed(ring_ops) for _ in range(3))
    timing = {"collective.ring_steps_per_s": n_ops * steps_per_op / best}
    return deterministic, timing


#: Fleet-shape workloads for the engine-perf suite: sized so the whole
#: suite stays under ~10 s on a CI runner while each shape still runs
#: long enough for min-of-3 timing to be stable.
FLEET_STAR_LINKS = 64
FLEET_STAR_TRANSFERS = 6_400  # 100 per uplink
FLEET_SHARD_LINKS = 8
FLEET_SHARD_TRANSFERS = 10_000
CHURN50_TICKS = 4_000
CHURN50_BATCH = 8
FLEET_HIER_WORKERS = 64
FLEET_HIER_GROUP = 8
FLEET_HIER_OPS = 40

#: Long-horizon fleet shape: 32 workers x 500 iterations with the
#: steady-state fast-forward engaged (quantized, jitter-free BSP).  The
#: training rate and skip count are deterministic scalars; the wall-time
#: floor is sized so only the fast-forward path can meet it — an
#: unrolled 32x500 run is an order of magnitude below the baseline.
LONGHORIZON_MODEL = ("resnet18", 32)
LONGHORIZON_WORKERS = 32
LONGHORIZON_ITERATIONS = 500
LONGHORIZON_QUANTUM = 2.0**-24


def _measure_longhorizon() -> tuple[dict[str, float], dict[str, float]]:
    """Fast-forwarded long-horizon scalars (deterministic + timing)."""
    from repro.cluster.trainer import run_training
    from repro.quantities import Gbps
    from repro.workloads.presets import EXTENDED_FACTORIES, paper_config

    model, batch = LONGHORIZON_MODEL
    config = paper_config(
        model,
        batch,
        bandwidth=3 * Gbps,
        n_workers=LONGHORIZON_WORKERS,
        n_iterations=LONGHORIZON_ITERATIONS,
        seed=0,
        jitter_std=0.0,
        time_quantum=LONGHORIZON_QUANTUM,
        record_gradients=False,
    )
    factory = EXTENDED_FACTORIES["prophet"]
    durations = []
    for _ in range(2):
        start = time.perf_counter()
        result = run_training(config, factory)
        durations.append(time.perf_counter() - start)
    stats = result.fastforward_stats
    assert stats is not None and stats["engaged"], stats
    deterministic = {
        "sim.longhorizon.prophet_rate": result.training_rate(),
        "sim.longhorizon.iterations_skipped": float(stats["iterations_skipped"]),
    }
    timing = {
        "sim.longhorizon_iterations_per_s": (
            LONGHORIZON_ITERATIONS / min(durations)
        )
    }
    return deterministic, timing


def _measure_engine_perf() -> tuple[dict[str, float], dict[str, float]]:
    """Fleet-shape timing scalars (no deterministic scalars).

    These are the shapes the calendar-queue engine and the batched
    same-timestamp pumps were built for: many identical links landing
    their completion waves on the same instant, and replanning churn
    interleaving live and tombstoned events 1:1.
    """
    from repro.net.collective import HierarchicalExecutor, HierarchicalTopology
    from repro.net.link import BandwidthSchedule, Link
    from repro.net.tcp import TCPParams
    from repro.quantities import Gbps
    from repro.sim.engine import Engine

    params = TCPParams()
    bandwidth = 3 * Gbps
    timing: dict[str, float] = {}

    # 64-worker star pump: every uplink of a 64-worker star pumps
    # back-to-back sends through the shared event loop.  All links start
    # at t=0 with identical timing, so every completion wave lands 64
    # events on one timestamp — the same-bucket batch the calendar
    # queue drains without re-sorting.
    def fleet_star_transfers() -> None:
        eng = Engine()
        links = [
            Link(eng, BandwidthSchedule.constant(bandwidth), params)
            for _ in range(FLEET_STAR_LINKS)
        ]
        counts = [0] * FLEET_STAR_LINKS
        per_link = FLEET_STAR_TRANSFERS // FLEET_STAR_LINKS

        def make_pump(idx: int):
            def pump() -> None:
                if counts[idx] < per_link:
                    counts[idx] += 1
                    links[idx].send(64_000.0, tag=("push", idx, counts[idx]))

            return pump

        for idx, link in enumerate(links):
            link.on_idle = make_pump(idx)
            eng.schedule(0.0, link.on_idle)
        eng.run()

    fleet_star_transfers()  # warmup
    best = min(_timed(fleet_star_transfers) for _ in range(3))
    timing["sim.fleet_star_transfers_per_s"] = FLEET_STAR_TRANSFERS / best

    # 8-shard pump: the ShardedTopology data-path shape at fleet shard
    # count — per-(worker, shard) streams interleaved in one loop.
    def fleet_shard_transfers() -> None:
        eng = Engine()
        links = [
            Link(eng, BandwidthSchedule.constant(bandwidth), params)
            for _ in range(FLEET_SHARD_LINKS)
        ]
        counts = [0] * FLEET_SHARD_LINKS
        per_link = FLEET_SHARD_TRANSFERS // FLEET_SHARD_LINKS

        def make_pump(idx: int):
            def pump() -> None:
                if counts[idx] < per_link:
                    counts[idx] += 1
                    links[idx].send(64_000.0, tag=("push", idx, counts[idx]))

            return pump

        for idx, link in enumerate(links):
            link.on_idle = make_pump(idx)
            eng.schedule(0.0, link.on_idle)
        eng.run()

    fleet_shard_transfers()  # warmup
    best = min(_timed(fleet_shard_transfers) for _ in range(3))
    timing["sim.fleet_shard_transfers_per_s"] = FLEET_SHARD_TRANSFERS / best

    # Replanning churn: every tick schedules a batch of future events
    # and cancels exactly half before they fire (a Prophet per-block
    # replan cadence), so live and tombstoned events interleave 1:1 —
    # the lazy-compaction worst case short of the 10:1 churn suite.
    churn50_ops = CHURN50_TICKS * (CHURN50_BATCH + 1)

    def churn50() -> None:
        eng = Engine()
        count = 0

        def noop() -> None:
            pass

        def tick() -> None:
            nonlocal count
            count += 1
            if count < CHURN50_TICKS:
                evs = [
                    eng.schedule_after(5e-6, noop) for _ in range(CHURN50_BATCH)
                ]
                for ev in evs[::2]:
                    ev.cancel()
                eng.schedule_after(1e-5, tick)

        eng.schedule(0.0, tick)
        eng.run()

    churn50()  # warmup
    best = min(_timed(churn50) for _ in range(3))
    timing["engine.churn50_events_per_s"] = churn50_ops / best

    # Hierarchical ring at fleet scale: 64 workers in 8 groups of 8.
    # Each intra-group step launches 64 same-instant chunk sends — the
    # barrier shape send_batch coalesces into one drain event.
    hier_steps_per_op = 2 * (FLEET_HIER_GROUP - 1) + 2 * (
        FLEET_HIER_WORKERS // FLEET_HIER_GROUP - 1
    )

    def hier_ops() -> int:
        eng = Engine()
        topo = HierarchicalTopology(
            eng,
            n_workers=FLEET_HIER_WORKERS,
            group_size=FLEET_HIER_GROUP,
            bandwidth=bandwidth,
        )
        executor = HierarchicalExecutor(topo)
        count = 0

        def pump() -> None:
            nonlocal count
            if count < FLEET_HIER_OPS:
                count += 1
                executor.send_unit(1e6, tag=("allreduce", count), on_complete=pump)

        eng.schedule(0.0, pump)
        eng.run()
        return executor.steps_completed

    total_steps = hier_ops()  # warmup (also validates the step count)
    assert total_steps == FLEET_HIER_OPS * hier_steps_per_op, total_steps
    best = min(_timed(hier_ops) for _ in range(3))
    timing["collective.fleet_hier_steps_per_s"] = (
        FLEET_HIER_OPS * hier_steps_per_op / best
    )

    deterministic, longhorizon_timing = _measure_longhorizon()
    timing.update(longhorizon_timing)
    return deterministic, timing


def measure(
    jobs: int | None = None, suite: str = "all"
) -> tuple[dict[str, float], dict[str, float]]:
    """Return (deterministic scalars, timing scalars) for ``suite``."""
    if suite == "collective":
        return _measure_collective()
    if suite == "chaos-collective":
        return _measure_chaos_collective()
    if suite == "engine-perf":
        return _measure_engine_perf()
    if suite == "fleet":
        return _measure_fleet()

    from repro.experiments import fig8
    from repro.quantities import Gbps
    from repro.sim.engine import Engine

    deterministic: dict[str, float] = {}

    # cache=False: the smoke test gates on fresh simulation, never on a
    # stale cache entry from an earlier revision.
    rows = fig8.run(
        workloads=SMOKE_WORKLOADS,
        bandwidth=3 * Gbps,
        n_iterations=SMOKE_ITERATIONS,
        seed=0,
        jobs=jobs,
        cache=False,
    )
    for row in rows:
        key = f"fig8.{row.model}.bs{row.batch_size}"
        deterministic[f"{key}.prophet_rate"] = row.prophet_rate
        deterministic[f"{key}.bytescheduler_rate"] = row.bytescheduler_rate

    from repro.experiments import chaos

    model, batch = CHAOS_MODEL
    chaos_res = chaos.run(
        model=model,
        batch_size=batch,
        n_iterations=CHAOS_ITERATIONS,
        seed=0,
        plan=chaos.default_plan(
            crash_at=1.0,
            restart_after=0.3,
            flap_at=2.0,
            flap_duration=0.5,
            stall_at=3.0,
            stall_duration=0.2,
        ),
    )
    for name in sorted(chaos_res.goodput_retained):
        deterministic[f"chaos.{name}.goodput_retained"] = (
            chaos_res.goodput_retained[name]
        )
        deterministic[f"chaos.{name}.recovery_s"] = chaos_res.recovery_time[name]

    from repro.cluster.trainer import run_training
    from repro.workloads.presets import EXTENDED_FACTORIES, paper_config

    model, batch = SHARDED_MODEL
    for n_servers in (1, SHARDED_SERVERS):
        sharded_config = paper_config(
            model,
            batch,
            bandwidth=10 * Gbps,
            n_iterations=SHARDED_ITERATIONS,
            seed=0,
            record_gradients=False,
            ps_bandwidth=3 * Gbps,
            n_servers=n_servers,
        )
        rate = run_training(
            sharded_config, EXTENDED_FACTORIES["prophet"]
        ).training_rate()
        deterministic[
            f"scalability.{model}.bs{batch}.s{n_servers}.prophet_rate"
        ] = rate

    timing: dict[str, float] = {}
    n_events = 50_000

    def chain() -> None:
        eng = Engine()
        count = 0

        def tick() -> None:
            nonlocal count
            count += 1
            if count < n_events:
                eng.schedule_after(1e-6, tick)

        eng.schedule(0.0, tick)
        eng.run()

    chain()  # warmup
    best = min(_timed(chain) for _ in range(3))
    timing["engine.events_per_s"] = n_events / best

    # Cancellation-heavy churn: every tick cancels its predecessor batch,
    # so ~10/11 of all scheduled events die as tombstones.  Guards the
    # lazy-compaction path — without it this workload's heap (and its
    # per-pop cost) grows with the cancel count instead of staying flat.
    n_ticks = 4_000
    batch = 10
    churn_ops = n_ticks * (batch + 1)

    def churn() -> None:
        eng = Engine()
        count = 0
        pending: list = []

        def noop() -> None:
            pass

        def tick() -> None:
            nonlocal count
            count += 1
            for ev in pending:
                ev.cancel()
            pending.clear()
            if count < n_ticks:
                for _ in range(batch):
                    pending.append(eng.schedule_after(1.0, noop))
                eng.schedule_after(1e-6, tick)

        eng.schedule(0.0, tick)
        eng.run()

    churn()  # warmup
    best = min(_timed(churn) for _ in range(3))
    timing["engine.cancel_events_per_s"] = churn_ops / best

    # Scalar TCP-model throughput: the per-message hot call.  Guards the
    # memoized slow-start fast path — falling back to the numpy loop is
    # a >10x regression here.
    from repro.net.tcp import TCPParams, transfer_time
    from repro.quantities import Gbps as _Gbps

    params = TCPParams()
    bandwidth = 3 * _Gbps
    tcp_sizes = (1e3, 32e3, 1e6, 64e6)
    n_tcp_reps = 25_000
    n_tcp_calls = n_tcp_reps * len(tcp_sizes)

    def tcp_calls() -> None:
        for _ in range(n_tcp_reps):
            for size in tcp_sizes:
                transfer_time(size, bandwidth, params)

    tcp_calls()  # warmup (also primes the memo table)
    best = min(_timed(tcp_calls) for _ in range(3))
    timing["tcp.transfer_time_calls_per_s"] = n_tcp_calls / best

    # Engine-driven transfers: back-to-back sends on one Link, completing
    # through the event loop.  End-to-end per-message cost (schedule
    # lookup, scalar TCP time, in-flight bookkeeping, record, idle
    # callback) — the composite the simulator pays per network message.
    from repro.net.link import BandwidthSchedule, Link

    n_transfers = 10_000

    def transfers() -> None:
        eng = Engine()
        link = Link(eng, BandwidthSchedule.constant(bandwidth), params)
        count = 0

        def pump() -> None:
            nonlocal count
            if count < n_transfers:
                count += 1
                link.send(64_000.0, tag=("push", count))

        link.on_idle = pump
        eng.schedule(0.0, pump)
        eng.run()

    transfers()  # warmup
    best = min(_timed(transfers) for _ in range(3))
    timing["sim.transfers_per_s"] = n_transfers / best

    # Multi-shard pump: the same end-to-end per-message cost over 4
    # concurrent shard links (the ShardedTopology data path) — each link
    # pumps its own stream through the shared event loop.
    n_shard_links = 4
    n_shard_transfers = 10_000  # total across the tier

    def sharded_transfers() -> None:
        eng = Engine()
        links = [
            Link(eng, BandwidthSchedule.constant(bandwidth), params)
            for _ in range(n_shard_links)
        ]
        counts = [0] * n_shard_links
        per_link = n_shard_transfers // n_shard_links

        def make_pump(idx: int):
            def pump() -> None:
                if counts[idx] < per_link:
                    counts[idx] += 1
                    links[idx].send(64_000.0, tag=("push", idx, counts[idx]))

            return pump

        for idx, link in enumerate(links):
            link.on_idle = make_pump(idx)
            eng.schedule(0.0, link.on_idle)
        eng.run()

    sharded_transfers()  # warmup
    best = min(_timed(sharded_transfers) for _ in range(3))
    timing["sim.sharded_transfers_per_s"] = n_shard_transfers / best

    collective_det, collective_timing = _measure_collective()
    deterministic.update(collective_det)
    timing.update(collective_timing)

    chaos_collective_det, _ = _measure_chaos_collective()
    deterministic.update(chaos_collective_det)

    perf_det, perf_timing = _measure_engine_perf()
    deterministic.update(perf_det)
    timing.update(perf_timing)

    fleet_det, fleet_timing = _measure_fleet()
    deterministic.update(fleet_det)
    timing.update(fleet_timing)

    return deterministic, timing


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def compare(
    baseline: dict[str, dict[str, float]],
    deterministic: dict[str, float],
    timing: dict[str, float],
    complete: bool = True,
) -> list[str]:
    """Return a list of human-readable failures (empty == pass).

    ``complete=False`` (a partial ``--suite``) skips the check that every
    baseline key was measured — only the measured subset gates.
    """
    failures: list[str] = []

    base_det = baseline.get("deterministic", {})
    for key, value in deterministic.items():
        if key not in base_det:
            failures.append(f"{key}: no baseline (run with --update)")
            continue
        ref = base_det[key]
        rel = abs(value - ref) / abs(ref) if ref else abs(value)
        status = "ok" if rel <= DETERMINISTIC_RTOL else "FAIL"
        print(f"  {status:4s} {key}: {value:.3f} vs baseline {ref:.3f} "
              f"({rel * 100:+.2f}%)")
        if rel > DETERMINISTIC_RTOL:
            failures.append(
                f"{key}: {value:.3f} deviates {rel * 100:.2f}% from "
                f"baseline {ref:.3f} (tolerance {DETERMINISTIC_RTOL * 100:.0f}%)"
            )
    if complete:
        for key in base_det:
            if key not in deterministic:
                failures.append(f"{key}: in baseline but not measured")

    base_timing = baseline.get("timing", {})
    slack = float(os.environ.get("REPRO_TIMING_SLACK", "1.0"))
    if slack <= 0:
        raise ValueError(f"REPRO_TIMING_SLACK must be positive, got {slack}")
    for key, value in timing.items():
        if key not in base_timing:
            failures.append(f"{key}: no baseline (run with --update)")
            continue
        ref = base_timing[key]
        floor = ref * TIMING_FLOOR_FRACTION / slack
        status = "ok" if value >= floor else "FAIL"
        print(f"  {status:4s} {key}: {value:,.0f} vs baseline {ref:,.0f} "
              f"(floor {floor:,.0f})")
        if value < floor:
            slack_note = f" (slack {slack:g})" if slack != 1.0 else ""
            failures.append(
                f"{key}: {value:,.0f} is below {TIMING_FLOOR_FRACTION:.0%} "
                f"of baseline {ref:,.0f}{slack_note}"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite baselines.json with freshly measured scalars",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="parallel processes for the fig8 grid (default: REPRO_JOBS "
        "or serial); results are identical either way",
    )
    parser.add_argument(
        "--suite", default="all",
        choices=("all", "collective", "chaos-collective", "engine-perf", "fleet"),
        help="'all' (default) measures everything; 'collective' gates "
        "only the allreduce-backend scalars (the allreduce-smoke CI "
        "job); 'chaos-collective' gates only the resilience scalars "
        "beyond the single-PS star (the chaos-collective-smoke CI job); "
        "'engine-perf' gates only the fleet-shape timing floors (the "
        "engine-perf-smoke CI job); 'fleet' gates only the multi-tenant "
        "fleet scalars (the fleet-smoke CI job)",
    )
    parser.add_argument(
        "--report",
        metavar="OUT.json",
        help="also write the measured scalars and failures as JSON here "
        "(uploaded as a CI artifact on failure)",
    )
    args = parser.parse_args(argv)

    if args.update and args.suite != "all":
        print("error: --update requires --suite all", file=sys.stderr)
        return 2

    jobs_note = args.jobs if args.jobs is not None else "REPRO_JOBS/serial"
    print(f"measuring smoke scalars (suite={args.suite}, jobs={jobs_note})...")
    deterministic, timing = measure(jobs=args.jobs, suite=args.suite)

    if args.update:
        payload = {
            "_comment": (
                "CI benchmark-smoke baselines. Regenerate with "
                "`PYTHONPATH=src python benchmarks/ci_smoke.py --update` "
                "and commit the diff when a change intentionally shifts "
                "simulation results."
            ),
            "deterministic": {k: round(v, 6) for k, v in sorted(deterministic.items())},
            "timing": {k: round(v, 1) for k, v in sorted(timing.items())},
        }
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"baselines written to {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(f"error: {BASELINE_PATH} missing; run with --update", file=sys.stderr)
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())

    failures = compare(
        baseline, deterministic, timing, complete=args.suite == "all"
    )
    if args.report:
        report = {
            "suite": args.suite,
            "deterministic": {k: v for k, v in sorted(deterministic.items())},
            "timing": {k: v for k, v in sorted(timing.items())},
            "failures": failures,
        }
        Path(args.report).write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {args.report}")
    if failures:
        print(f"\nbenchmark smoke FAILED ({len(failures)} regressions):",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
