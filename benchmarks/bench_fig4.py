"""Fig. 4 — stepwise pattern of gradient generation times."""

from conftest import run_once

from repro.experiments import fig4
from repro.metrics.report import format_table


def test_fig4_stepwise_pattern(benchmark, show):
    res = run_once(benchmark, fig4.run)
    for label, summary, paper_note in (
        ("ResNet-50", res.resnet50_summary,
         "staircase over ~160 gradients (paper: blocks like {144-156}, {134-143})"),
        ("VGG-19", res.vgg19_summary,
         "paper: 4 blocks {28-37}, {14-27}, {2-13}, {0-1}"),
    ):
        rows = [
            [i, size, f"{t * 1e3:.1f}"]
            for i, (size, t) in enumerate(
                zip(summary.block_sizes, summary.block_times)
            )
        ]
        show(
            format_table(
                ["block", "#gradients", "flush time (ms)"],
                rows,
                title=f"Fig. 4 — {label} stepwise pattern ({paper_note})",
            )
        )
    assert res.vgg19_summary.num_blocks == 4
    assert res.resnet50_summary.num_blocks >= 10
