"""Fig. 3 — P3's partition overhead and ByteScheduler's tuning jitter."""

from conftest import run_once

from repro.experiments import fig3
from repro.metrics.report import format_table


def test_fig3a_p3_partition_sweep(benchmark, show):
    res = run_once(benchmark, lambda: fig3.run_partition_sweep(n_iterations=10))
    show(
        format_table(
            ["partition (MB)", "rate (samples/s)"],
            list(zip(res.partition_mb, (f"{r:.1f}" for r in res.rates))),
            title="Fig. 3(a) — P3 rate vs partition size (ResNet-50 bs64, 3 Gbps)",
        )
    )
    # Paper: small partitions dramatically decrease the training rate.
    assert res.rates[0] < max(res.rates) * 0.9
    assert res.best_partition_mb >= 1.0


def test_fig3b_bytescheduler_autotune(benchmark, show):
    res = run_once(benchmark, lambda: fig3.run_autotune(n_iterations=32, tune_every=2))
    rows = [
        [i, f"{r:.1f}", f"{c:.1f}"]
        for i, r, c in zip(res.iterations, res.rates, res.credits_mb)
    ]
    show(
        format_table(
            ["iteration", "rate (samples/s)", "credit (MB)"],
            rows,
            title=(
                "Fig. 3(b) — ByteScheduler auto-tuning "
                f"(rate band {min(res.rates):.1f}-{max(res.rates):.1f}; "
                "paper: 44-56 samples/s, credit 3-13 MB)"
            ),
        )
    )
    # Exploration produces a visible fluctuation band.
    assert res.rate_spread > 0.05 * max(res.rates)
