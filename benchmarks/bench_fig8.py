"""Fig. 8 — Prophet vs ByteScheduler across models and batch sizes."""

from conftest import run_once

from repro.experiments import fig8
from repro.metrics.report import format_table


def test_fig8_training_rate_comparison(benchmark, show):
    rows = run_once(benchmark, lambda: fig8.run(n_iterations=10))
    show(
        format_table(
            ["model", "batch", "Prophet", "ByteScheduler", "improvement"],
            [
                [r.model, r.batch_size, f"{r.prophet_rate:.1f}",
                 f"{r.bytescheduler_rate:.1f}", f"{r.improvement * 100:+.1f}%"]
                for r in rows
            ],
            title=(
                "Fig. 8 — training rate at 3 Gbps "
                "(paper: Prophet +10-40% across these workloads)"
            ),
        )
    )
    # Prophet wins at the compute/comm crossover workloads and stays
    # within noise of ByteScheduler on fully saturated ones (see
    # EXPERIMENTS.md: the paper's uniform +10-40% reflects baseline
    # implementation overheads our substrate does not impose).
    assert all(r.improvement > -0.05 for r in rows)
    by_key = {(r.model, r.batch_size): r.improvement for r in rows}
    assert by_key[("resnet50", 64)] > 0.02
