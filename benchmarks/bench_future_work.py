"""Sec. 7 future work — ASP/SSP synchronization and p3/p4-class GPUs."""

from conftest import run_once

from repro.experiments import asp, devices
from repro.metrics.report import format_table


def test_asp_ssp_synchronization(benchmark, show):
    rows = run_once(benchmark, lambda: asp.run(n_iterations=10))
    show(
        format_table(
            ["sync", "Prophet", "ByteScheduler", "P3", "MXNet", "P vs BS"],
            [
                [r.sync_mode, f"{r.rates['prophet']:.1f}",
                 f"{r.rates['bytescheduler']:.1f}", f"{r.rates['p3']:.1f}",
                 f"{r.rates['mxnet-fifo']:.1f}",
                 f"{r.prophet_vs_bytescheduler * 100:+.1f}%"]
                for r in rows
            ],
            title=(
                "Future work (1) — ResNet-50 bs64, 3 Gbps, 5% jitter: the "
                "stepwise pattern survives ASP and Prophet still schedules it"
            ),
        )
    )
    by_mode = {r.sync_mode: r for r in rows}
    # Relaxed synchronization never hurts, and Prophet keeps (or grows)
    # its margin without the BSP barrier.
    assert by_mode["asp"].rates["prophet"] >= by_mode["bsp"].rates["prophet"] * 0.99
    assert by_mode["asp"].prophet_vs_bytescheduler >= (
        by_mode["bsp"].prophet_vs_bytescheduler - 0.02
    )


def test_gpu_generations(benchmark, show):
    rows = run_once(benchmark, lambda: devices.run(n_iterations=10))
    show(
        format_table(
            ["device", "compute (ms)", "Prophet", "ByteScheduler", "MXNet",
             "P vs MXNet"],
            [
                [r.device, f"{r.compute_s * 1e3:.0f}", f"{r.rates['prophet']:.1f}",
                 f"{r.rates['bytescheduler']:.1f}", f"{r.rates['mxnet-fifo']:.1f}",
                 f"{r.prophet_vs_mxnet * 100:+.1f}%"]
                for r in rows
            ],
            title=(
                "Future work (2) — GPU generations at 10 Gbps: faster compute "
                "pushes the job communication-bound, where scheduling matters "
                "again (and Prophet's narrow intervals stop paying vs credit "
                "batching — see EXPERIMENTS.md)"
            ),
        )
    )
    m60, v100 = rows[0], rows[1]
    # M60 at 10 Gbps is compute-bound: schedulers tie.
    assert abs(m60.prophet_vs_mxnet) < 0.05
    # V100 at the same bandwidth is comm-bound: priority scheduling pays.
    assert v100.prophet_vs_mxnet > 0.15
    assert v100.rates["prophet"] > 2 * m60.rates["prophet"]
