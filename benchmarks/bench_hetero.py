"""Sec. 5.3 — heterogeneous cluster (one worker capped at 500 Mbps)."""

from conftest import run_once

from repro.experiments import hetero
from repro.metrics.report import format_table


def test_hetero_slow_worker(benchmark, show):
    res = run_once(benchmark, lambda: hetero.run(n_iterations=10))
    show(
        format_table(
            ["strategy", "rate (samples/s)", "paper"],
            [
                ["prophet", f"{res.rates.rates['prophet']:.1f}", "26.4"],
                ["bytescheduler", f"{res.rates.rates['bytescheduler']:.1f}", "25.8"],
                ["mxnet-fifo", f"{res.rates.rates['mxnet-fifo']:.1f}", "15.09"],
                ["p3", f"{res.rates.rates['p3']:.1f}", "-"],
            ],
            title=(
                "Sec. 5.3 — one worker at 500 Mbps "
                f"(Prophet vs BS: {res.prophet_vs_bytescheduler * 100:+.1f}%, "
                "paper +2.3%)"
            ),
        )
    )
    # The optimization space collapses: Prophet ~ ByteScheduler.
    assert abs(res.prophet_vs_bytescheduler) < 0.10
    # Absolute rates land in the paper's band for the priority schedulers.
    assert 20 < res.rates.rates["prophet"] < 32
