"""Fig. 5 — illustrative 4-strategy example on a 3-gradient toy job."""

from conftest import run_once

from repro.experiments import fig5
from repro.metrics.report import format_table


def test_fig5_illustrative_example(benchmark, show):
    res = run_once(benchmark, fig5.run)
    rows = res.by_strategy()
    show(
        format_table(
            ["strategy", "grad0 wait (ms)", "grad0 update (ms)", "iteration (ms)"],
            [
                [r.strategy, f"{r.grad0_wait_ms:.2f}", f"{r.grad0_update_ms:.1f}",
                 f"{r.iteration_ms:.1f}"]
                for r in res.rows
            ],
            title=(
                "Fig. 5 — toy example: MXNet blocks gradient 0 behind "
                "gradient 1; Prophet sends exactly what fits the interval"
            ),
        )
    )
    assert rows["prophet"].grad0_wait_ms < rows["bytescheduler"].grad0_wait_ms + 1e-6
    assert rows["mxnet-fifo"].grad0_wait_ms == max(
        r.grad0_wait_ms for r in res.rows
    )
