"""Fig. 2 — GPU utilization / network throughput under default MXNet."""

from conftest import run_once

from repro.experiments import fig2
from repro.metrics.report import format_table


def test_fig2_mxnet_gpu_starvation(benchmark, show):
    res = run_once(benchmark, lambda: fig2.run(n_iterations=10))
    show(
        format_table(
            ["metric", "value", "paper"],
            [
                ["mean GPU utilization", f"{res.mean_utilization * 100:.1f}%",
                 "<50% during pulls"],
                ["time near-idle (<10% util)", f"{res.idle_fraction * 100:.1f}%",
                 "util drops to zero each pull phase"],
                ["training rate (samples/s/worker)", f"{res.training_rate:.1f}", "-"],
            ],
            title="Fig. 2 — default MXNet, ResNet-152 bs32, 1 PS + 3 workers",
        )
    )
    # The motivating pathology: substantial idle time under FIFO.
    assert res.idle_fraction > 0.05
    assert res.mean_utilization < 0.85
