"""Sec. 5.4 — Prophet's profiling and planning overheads."""

from conftest import run_once

from repro.experiments import overhead
from repro.metrics.report import format_table


def test_profiling_overhead(benchmark, show):
    # 10 profiled iterations, extrapolated x5 to the paper's 50 (profiling
    # cost is linear in iterations).
    rows = run_once(
        benchmark, lambda: overhead.run_profiling_overhead(profile_iterations=10)
    )
    show(
        format_table(
            ["model (batch)", "profiling 10 iters (s)", "extrapolated 50 (s)",
             "paper 50 (s)"],
            [
                [f"{r.model} ({r.batch_size})", f"{r.profiling_seconds:.1f}",
                 f"{r.profiling_seconds * 5:.1f}", f"{r.paper_seconds:.1f}"]
                for r in rows
            ],
            title=(
                "Sec. 5.4 — job-profiling overhead (we account the full "
                "warmup wall time; the paper counts instrumentation only, "
                "hence our larger but same-ordered values)"
            ),
        )
    )
    # Same ordering as the paper (Inception-v3 < ResNet-50 < ResNet-152),
    # and still negligible against thousands of training iterations.
    assert rows[0].profiling_seconds < rows[1].profiling_seconds
    assert rows[1].profiling_seconds < rows[2].profiling_seconds
    assert all(r.profiling_seconds * 5 < 120.0 for r in rows)


def test_algorithm1_planning_pass(benchmark, show):
    """Real CPU time of one Algorithm 1 planning pass (ResNet-50)."""
    from repro.agg.kvstore import KVStore
    from repro.core.algorithm import plan_schedule
    from repro.core.profiler import JobProfile
    from repro.models.compute import build_compute_profile
    from repro.models.registry import get_model
    from repro.quantities import Gbps
    from repro.workloads.presets import paper_device

    model = get_model("resnet50")
    compute = build_compute_profile(model, paper_device("resnet50"), 64)
    profile = JobProfile.from_generation_schedule(
        KVStore().generation_schedule(compute)
    )
    plan = benchmark(lambda: plan_schedule(profile, 3 * Gbps))
    show(
        "Algorithm 1 planning pass (ResNet-50, 161 gradients): "
        f"median {benchmark.stats['median'] * 1e3:.2f} ms CPU — negligible "
        "against ~1 s iterations, consistent with Fig. 12's linear scaling."
    )
    assert plan.num_gradients == 161
    assert benchmark.stats["median"] < 0.05
