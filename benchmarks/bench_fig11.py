"""Fig. 11 — per-gradient transfer start/end times for three strategies."""

from conftest import run_once

from repro.experiments import fig11
from repro.metrics.report import format_table


def test_fig11_gradient_timings(benchmark, show):
    res = run_once(benchmark, lambda: fig11.run(n_iterations=10))
    rows = res.by_strategy()
    show(
        format_table(
            ["strategy", "mean wait (ms)", "mean transfer (ms)",
             "wait grads 0-80 (ms)"],
            [
                [r.strategy, f"{r.mean_wait_ms:.1f}", f"{r.mean_transfer_ms:.1f}",
                 f"{r.high_priority_mean_wait_ms():.1f}"]
                for r in res.rows
            ],
            title=(
                "Fig. 11 — per-gradient timings, ResNet-50 bs64 "
                "(paper: wait 26 ms Prophet vs 67 ms BS; "
                "transfer 125/135/446 ms for Prophet/BS/MXNet)"
            ),
        )
    )
    # The paper's orderings: Prophet waits least, MXNet transfers longest
    # and (FIFO) makes high-priority gradients wait the most.
    assert rows["prophet"].mean_wait_ms <= rows["bytescheduler"].mean_wait_ms + 1.0
    assert (
        rows["mxnet-fifo"].high_priority_mean_wait_ms()
        > rows["prophet"].high_priority_mean_wait_ms()
    )
