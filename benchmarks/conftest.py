"""Shared helpers for the benchmark harnesses.

Every paper artifact (figure or table) has one ``bench_*.py`` module.
Each benchmark runs the corresponding experiment once under
``pytest-benchmark`` (wall-clock of the full regeneration) and prints the
same rows/series the paper reports, bypassing pytest's capture so that

    pytest benchmarks/ --benchmark-only | tee bench_output.txt

produces a readable reproduction report.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show(capfd):
    """Print ``text`` to the real terminal, outside pytest capture."""

    def _show(text: str) -> None:
        with capfd.disabled():
            print()
            print(text)

    return _show


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
