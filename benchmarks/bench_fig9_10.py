"""Figs. 9 & 10 — GPU utilization and network throughput over time."""

from conftest import run_once

from repro.experiments import fig9_10
from repro.metrics.report import format_table


def test_fig9_10_utilization_and_throughput(benchmark, show):
    res = run_once(benchmark, lambda: fig9_10.run(n_iterations=10))
    show(
        format_table(
            ["strategy", "mean GPU util", "mean throughput (MB/s)", "rate"],
            [
                [t.strategy, f"{t.mean_utilization * 100:.1f}%",
                 f"{t.mean_throughput_mb_s:.1f}", f"{t.training_rate:.1f}"]
                for t in (res.prophet, res.bytescheduler)
            ],
            title=(
                "Figs. 9 & 10 — ResNet-50 bs64, 3 Gbps "
                "(paper: util 91.15% vs 67.85%; throughput +37.3%)"
            ),
        )
    )
    # Prophet's utilization and throughput are at least ByteScheduler's.
    assert res.utilization_gain > -0.02
    assert res.throughput_gain > -0.02
    # Both series show the periodic per-iteration dip the paper notes.
    assert res.prophet.gpu_utilization.min() < 0.9
