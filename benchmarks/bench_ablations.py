"""Design-choice ablations (DESIGN.md): channel model, packing, slicing,
aggregation policy."""

from conftest import run_once

from repro.experiments import ablations
from repro.metrics.report import format_table


def test_design_ablations(benchmark, show):
    rows = run_once(benchmark, lambda: ablations.run(n_iterations=10))
    show(
        format_table(
            ["variant", "Prophet rate (samples/s)"],
            [[r.name, f"{r.rate:.1f}"] for r in rows],
            title="Ablations — ResNet-50 bs64 at 3 Gbps",
        )
    )
    by_name = {r.name: r.rate for r in rows}
    base = by_name["baseline (shared channel)"]
    # Full duplex can only help (two links instead of one).
    assert by_name["full-duplex links"] >= base * 0.98
    # Reserving round-trip time idles the channel: never better than base.
    assert by_name["round-trip packing (2E)"] <= base * 1.02
    # Disabling slicing wastes interval tails: never better than base.
    assert by_name["no gradient slicing"] <= base * 1.02
