"""Micro-benchmarks of the substrate itself (engine, TCP model, GP).

These are true pytest-benchmark timing targets (many rounds) guarding the
simulator's own performance: the experiment harnesses run thousands of
events per simulated second, so regressions here multiply into every
figure regeneration.
"""

import numpy as np

from repro.bayesopt.gp import GaussianProcess
from repro.net.tcp import TCPParams, transfer_time
from repro.quantities import Gbps
from repro.sim.engine import Engine


def test_engine_event_throughput(benchmark):
    """Schedule + fire 10k chained events."""

    def run():
        eng = Engine()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                eng.schedule_after(1e-6, tick)

        eng.schedule(0.0, tick)
        eng.run()
        return count

    assert benchmark(run) == 10_000


def test_tcp_transfer_time_vectorized(benchmark):
    """Vectorized f(s, B) over 10k sizes."""
    sizes = np.logspace(2, 9, 10_000)
    params = TCPParams()
    out = benchmark(lambda: transfer_time(sizes, 3 * Gbps, params))
    assert len(out) == 10_000


def test_tcp_transfer_time_scalar_cold(benchmark):
    """Scalar fast path, cold start — the per-message hot call.

    This is the call the simulator makes for every network message;
    it must stay a table lookup plus a handful of float ops, not a
    numpy broadcast.
    """
    params = TCPParams()
    bandwidth = 3 * Gbps
    transfer_time(1e6, bandwidth, params)  # prime the memo table

    def run():
        total = 0.0
        for size in (1e3, 32e3, 1e6, 64e6):
            total += transfer_time(size, bandwidth, params)
        return total

    assert benchmark(run) > 0


def test_tcp_transfer_time_scalar_warm(benchmark):
    """Scalar fast path, warm window (slow-start rounds skipped)."""
    params = TCPParams()
    bandwidth = 3 * Gbps
    transfer_time(1e6, bandwidth, params, warm=True)

    def run():
        total = 0.0
        for size in (1e3, 32e3, 1e6, 64e6):
            total += transfer_time(size, bandwidth, params, warm=True)
        return total

    assert benchmark(run) > 0


def test_link_transfer_pump(benchmark):
    """Engine-driven back-to-back sends on one Link (4k transfers).

    End-to-end per-message cost: schedule lookup, scalar TCP time,
    in-flight bookkeeping, completion record, idle callback.
    """
    from repro.net.link import BandwidthSchedule, Link

    n_transfers = 4_000

    def run():
        eng = Engine()
        link = Link(eng, BandwidthSchedule.constant(3 * Gbps), TCPParams())
        count = 0

        def pump():
            nonlocal count
            if count < n_transfers:
                count += 1
                link.send(64_000.0, tag=("push", count))

        link.on_idle = pump
        eng.schedule(0.0, pump)
        eng.run()
        return count

    assert benchmark(run) == n_transfers


def test_sharded_link_transfer_pump(benchmark):
    """Engine-driven sends over 4 concurrent shard links (4k transfers).

    The ShardedTopology data path: each (worker, shard) link pumps its own
    stream, all interleaved through one event loop — measures how the
    per-message cost composes when the tier multiplies the link count.
    """
    from repro.net.link import BandwidthSchedule, Link

    n_links = 4
    per_link = 1_000

    def run():
        eng = Engine()
        links = [
            Link(eng, BandwidthSchedule.constant(3 * Gbps), TCPParams())
            for _ in range(n_links)
        ]
        counts = [0] * n_links

        def make_pump(idx):
            def pump():
                if counts[idx] < per_link:
                    counts[idx] += 1
                    links[idx].send(64_000.0, tag=("push", idx, counts[idx]))

            return pump

        for idx, link in enumerate(links):
            link.on_idle = make_pump(idx)
            eng.schedule(0.0, link.on_idle)
        eng.run()
        return sum(counts)

    assert benchmark(run) == n_links * per_link


def test_fleet_star_transfer_pump(benchmark):
    """64-worker star pump: every uplink streams through one event loop.

    All links start at t=0 with identical timing, so every completion
    wave lands 64 events on one timestamp — the same-bucket batch the
    calendar-queue engine drains without re-sorting.  This is the fleet
    shape the tombstone heap paid an O(log n) sift per event for.
    """
    from repro.net.link import BandwidthSchedule, Link

    n_links = 64
    per_link = 50

    def run():
        eng = Engine()
        links = [
            Link(eng, BandwidthSchedule.constant(3 * Gbps), TCPParams())
            for _ in range(n_links)
        ]
        counts = [0] * n_links

        def make_pump(idx):
            def pump():
                if counts[idx] < per_link:
                    counts[idx] += 1
                    links[idx].send(64_000.0, tag=("push", idx, counts[idx]))

            return pump

        for idx, link in enumerate(links):
            link.on_idle = make_pump(idx)
            eng.schedule(0.0, link.on_idle)
        eng.run()
        return sum(counts)

    assert benchmark(run) == n_links * per_link


def test_engine_replan_churn_50pct(benchmark):
    """Replanning churn: half of each scheduled batch is cancelled.

    A Prophet per-block replan cadence — live and tombstoned events
    interleave 1:1, stressing lazy compaction at a milder ratio than
    the 10:1 cancellation churn in bench_engine.
    """
    n_ticks = 1_000
    batch = 8

    def run():
        eng = Engine()
        count = 0

        def noop():
            pass

        def tick():
            nonlocal count
            count += 1
            if count < n_ticks:
                evs = [eng.schedule_after(5e-6, noop) for _ in range(batch)]
                for ev in evs[::2]:
                    ev.cancel()
                eng.schedule_after(1e-5, tick)

        eng.schedule(0.0, tick)
        eng.run()
        return count

    assert benchmark(run) == n_ticks


def test_hierarchical_allreduce_fleet_pump(benchmark):
    """64-worker hierarchical allreduce (8 groups of 8), 10 operations.

    Each intra-group step launches 64 same-instant chunk sends — the
    barrier shape ``send_batch`` coalesces into one drain event.
    """
    from repro.net.collective import HierarchicalExecutor, HierarchicalTopology

    n_workers = 64
    group_size = 8
    n_ops = 10
    steps_per_op = 2 * (group_size - 1) + 2 * (n_workers // group_size - 1)

    def run():
        eng = Engine()
        topo = HierarchicalTopology(
            eng, n_workers=n_workers, group_size=group_size, bandwidth=3 * Gbps
        )
        executor = HierarchicalExecutor(topo)
        count = 0

        def pump():
            nonlocal count
            if count < n_ops:
                count += 1
                executor.send_unit(1e6, tag=("allreduce", count), on_complete=pump)

        eng.schedule(0.0, pump)
        eng.run()
        return executor.steps_completed

    assert benchmark(run) == n_ops * steps_per_op


def test_ring_allreduce_step_pump(benchmark):
    """Engine-driven back-to-back ring allreduce operations (100 ops).

    The collective backend's end-to-end per-step cost: N chunk sends per
    step through the event loop, step-barrier bookkeeping, and operation
    completion — 2(N-1) steps per operation on a 4-worker ring.
    """
    from repro.net.collective import RingExecutor, RingTopology

    n_workers = 4
    n_ops = 100
    steps_per_op = 2 * (n_workers - 1)

    def run():
        eng = Engine()
        topo = RingTopology(eng, n_workers=n_workers, bandwidth=3 * Gbps)
        executor = RingExecutor(topo)
        count = 0

        def pump():
            nonlocal count
            if count < n_ops:
                count += 1
                executor.send_unit(1e6, tag=("allreduce", count), on_complete=pump)

        eng.schedule(0.0, pump)
        eng.run()
        return executor.steps_completed

    assert benchmark(run) == n_ops * steps_per_op


def test_fastforward_detect_overhead(benchmark):
    """Per-boundary fingerprint cost when steady state is never reached.

    ``detect_only`` keeps the detector hashing every iteration boundary
    without ever journaling or engaging — the pure overhead an
    eligible-but-never-periodic run would pay.  ``_boundary`` is
    instrumented directly (a wall-clock A/B ratio drowns a sub-percent
    signal in runner noise): after the two-tier cheap key, the detector
    spends ~25 µs per boundary, well under 1 % of the run; the assertion
    allows 2 %.
    """
    import time as _time
    from dataclasses import replace

    from repro.cluster.trainer import Trainer
    from repro.sim.fastforward import FastForwardDetector
    from repro.workloads.presets import paper_config, prophet_factory

    config = paper_config(
        "resnet18",
        32,
        n_workers=2,
        n_iterations=30,
        jitter_std=0.0,
        time_quantum=2.0**-24,
        record_gradients=False,
    )

    def run_detect_only():
        trainer = Trainer(config, prophet_factory())
        trainer.fastforward.detect_only = True
        return trainer.run()

    def run_off():
        return Trainer(
            replace(config, fastforward=False), prophet_factory()
        ).run()

    detect_result = run_detect_only()  # warmup (memo tables, qualname cache)
    off_result = run_off()
    stats = detect_result.fastforward_stats
    assert stats["boundaries_seen"] >= config.n_iterations - 2
    assert not stats["engaged"]
    assert repr(detect_result.end_time) == repr(off_result.end_time)

    orig_boundary = FastForwardDetector._boundary
    spent = [0.0]

    def timed_boundary(self, k):
        start = _time.perf_counter()
        orig_boundary(self, k)
        spent[0] += _time.perf_counter() - start

    FastForwardDetector._boundary = timed_boundary
    try:
        fractions = []
        for _ in range(5):
            spent[0] = 0.0
            start = _time.perf_counter()
            run_detect_only()
            wall = _time.perf_counter() - start
            fractions.append(spent[0] / wall)
    finally:
        FastForwardDetector._boundary = orig_boundary

    overhead = min(fractions)
    assert overhead < 0.02, f"fingerprint overhead {overhead:.2%} of run"

    benchmark.pedantic(run_detect_only, rounds=3, iterations=1)


def test_gp_fit_predict(benchmark):
    """GP fit + predict at ByteScheduler's tuning scale (30 points)."""
    rng = np.random.default_rng(0)
    x = rng.uniform(0, 1, 30)
    y = np.sin(x * 6) + 0.1 * rng.standard_normal(30)
    grid = np.linspace(0, 1, 256)

    def run():
        gp = GaussianProcess().fit(x, y)
        return gp.predict(grid)

    mean, std = benchmark(run)
    assert len(mean) == 256 and len(std) == 256


def test_full_training_simulation_rate(benchmark):
    """End-to-end: one 6-iteration tiny-cluster simulation."""
    from repro.cluster.trainer import run_training
    from repro.config import TrainingConfig
    from repro.quantities import Gbps as _Gbps
    from repro.workloads.presets import prophet_factory

    config = TrainingConfig(
        model="resnet18",
        batch_size=16,
        n_workers=2,
        n_iterations=6,
        bandwidth=2 * _Gbps,
        record_gradients=False,
    )
    result = benchmark.pedantic(
        lambda: run_training(config, prophet_factory()), rounds=3, iterations=1
    )
    assert result.training_rate(skip=1) > 0
