"""Micro-benchmarks of the substrate itself (engine, TCP model, GP).

These are true pytest-benchmark timing targets (many rounds) guarding the
simulator's own performance: the experiment harnesses run thousands of
events per simulated second, so regressions here multiply into every
figure regeneration.
"""

import numpy as np

from repro.bayesopt.gp import GaussianProcess
from repro.net.tcp import TCPParams, transfer_time
from repro.quantities import Gbps
from repro.sim.engine import Engine


def test_engine_event_throughput(benchmark):
    """Schedule + fire 10k chained events."""

    def run():
        eng = Engine()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                eng.schedule_after(1e-6, tick)

        eng.schedule(0.0, tick)
        eng.run()
        return count

    assert benchmark(run) == 10_000


def test_tcp_transfer_time_vectorized(benchmark):
    """Vectorized f(s, B) over 10k sizes."""
    sizes = np.logspace(2, 9, 10_000)
    params = TCPParams()
    out = benchmark(lambda: transfer_time(sizes, 3 * Gbps, params))
    assert len(out) == 10_000


def test_gp_fit_predict(benchmark):
    """GP fit + predict at ByteScheduler's tuning scale (30 points)."""
    rng = np.random.default_rng(0)
    x = rng.uniform(0, 1, 30)
    y = np.sin(x * 6) + 0.1 * rng.standard_normal(30)
    grid = np.linspace(0, 1, 256)

    def run():
        gp = GaussianProcess().fit(x, y)
        return gp.predict(grid)

    mean, std = benchmark(run)
    assert len(mean) == 256 and len(std) == 256


def test_full_training_simulation_rate(benchmark):
    """End-to-end: one 6-iteration tiny-cluster simulation."""
    from repro.cluster.trainer import run_training
    from repro.config import TrainingConfig
    from repro.quantities import Gbps as _Gbps
    from repro.workloads.presets import prophet_factory

    config = TrainingConfig(
        model="resnet18",
        batch_size=16,
        n_workers=2,
        n_iterations=6,
        bandwidth=2 * _Gbps,
        record_gradients=False,
    )
    result = benchmark.pedantic(
        lambda: run_training(config, prophet_factory()), rounds=3, iterations=1
    )
    assert result.training_rate(skip=1) > 0
