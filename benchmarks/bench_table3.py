"""Table 3 — batch-size sensitivity of Prophet's improvement."""

from conftest import run_once

from repro.experiments import table3
from repro.metrics.report import format_table

#: The paper's Table 3 improvements for each (model, batch).
PAPER_IMPROVEMENT = {
    ("resnet18", 16): "+11.6%",
    ("resnet18", 64): "+33%",
    ("resnet50", 16): "+1.5%",
    ("resnet50", 32): "+22%",
    ("resnet50", 64): "+36%",
}


def test_table3_batch_sensitivity(benchmark, show):
    rows = run_once(benchmark, lambda: table3.run(n_iterations=10))
    show(
        format_table(
            ["model (batch)", "Prophet", "ByteScheduler", "improvement",
             "paper"],
            [
                [f"{r.model} ({r.batch_size})", f"{r.prophet_rate:.2f}",
                 f"{r.bytescheduler_rate:.2f}", f"{r.improvement * 100:+.1f}%",
                 PAPER_IMPROVEMENT[(r.model, r.batch_size)]]
                for r in rows
            ],
            title="Table 3 — batch-size sensitivity at 3 Gbps",
        )
    )
    by_key = {(r.model, r.batch_size): r for r in rows}
    # The trend the paper reports: larger batch -> larger Prophet gain
    # (longer backward passes widen the stepwise intervals).
    assert (
        by_key[("resnet50", 64)].improvement
        > by_key[("resnet50", 16)].improvement
    )
    assert (
        by_key[("resnet18", 64)].improvement
        > by_key[("resnet18", 16)].improvement
    )
    # At the paper's headline workload Prophet clearly wins.
    assert by_key[("resnet50", 64)].improvement > 0.0
