"""Table 2 — training rate under worker bandwidth limits."""

from conftest import run_once

from repro.experiments import table2
from repro.metrics.report import format_table

#: The paper's Table 2 (ResNet-50 bs64): Prophet / ByteScheduler / P3.
PAPER_TABLE2 = {
    1.0: (27.7, 25.9, 25.16),
    2.0: (47.9, 39.09, 37.69),
    3.0: (60.0, 44.0, 51.22),
    4.0: (67.06, 50.5, 64.34),
    4.5: (69.29, 54.14, 67.83),
    6.0: (69.5, 70.0, 68.93),
    10.0: (70.6, 71.1, 72.83),
}


def test_table2_bandwidth_sweep(benchmark, show):
    res = run_once(benchmark, lambda: table2.run(n_iterations=10))
    rows = []
    for gbps, row in zip(res.bandwidths_gbps, res.rows):
        paper = PAPER_TABLE2[gbps]
        rows.append(
            [
                f"{gbps:g}",
                f"{row.rates['prophet']:.1f} ({paper[0]:g})",
                f"{row.rates['bytescheduler']:.1f} ({paper[1]:g})",
                f"{row.rates['p3']:.1f} ({paper[2]:g})",
                f"{row.rates['mxnet-fifo']:.1f}",
            ]
        )
    show(
        format_table(
            ["Gbps", "Prophet (paper)", "ByteScheduler (paper)", "P3 (paper)",
             "MXNet"],
            rows,
            title="Table 2 — ResNet-50 bs64 samples/s vs worker bandwidth limit",
        )
    )
    by_bw = dict(zip(res.bandwidths_gbps, res.rows))
    # Shape assertions (see EXPERIMENTS.md for the full comparison):
    # 1. rates grow with bandwidth and saturate at the top.
    assert by_bw[1.0].rates["prophet"] < by_bw[3.0].rates["prophet"]
    assert by_bw[6.0].rates["prophet"] > 0.95 * by_bw[10.0].rates["prophet"]
    # 2. Prophet leads mid-band.
    assert by_bw[3.0].improvement(over="bytescheduler") > 0.0
    assert by_bw[3.0].improvement(over="p3") > 0.10
    # 3. P3 recovers by 4.5 Gbps (paper: 67.83 vs 69.29).
    assert by_bw[4.5].rates["p3"] > 0.95 * by_bw[4.5].rates["prophet"]
    # 4. everything converges at 10 Gbps.
    high = by_bw[10.0].rates
    assert max(high.values()) / min(high.values()) < 1.05
