"""Engine hot-path micro-benchmarks (run-loop, cancellation, pending).

These pin the simulator's calendar-queue optimizations:

* the tightened ``run()`` loop (hoisted attribute loads, no per-event
  trace branch when tracing is off) — guarded by the chained-event
  throughput benchmark;
* lazy tombstone compaction — the cancellation-heavy churn would
  otherwise grow the calendar (and per-pop cost) linearly in the number
  of cancels; the benchmark also asserts the queue stays bounded;
* O(1) ``Engine.pending()`` — previously an O(n) scan per call, which
  made queue-depth trace counters quadratic over a run.

The CI-gated events/second floors live in ``benchmarks/baselines.json``
(see ``ci_smoke.py``); these pytest-benchmark targets give the detailed
local view.
"""

from repro.sim.engine import Engine


def test_engine_chain_throughput(benchmark):
    """Schedule + fire 50k chained events (pure run-loop cost)."""
    n_events = 50_000

    def run():
        eng = Engine()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < n_events:
                eng.schedule_after(1e-6, tick)

        eng.schedule(0.0, tick)
        eng.run()
        return count

    assert benchmark(run) == n_events


def test_engine_cancellation_churn(benchmark):
    """Cancel-dominated workload: ~10/11 of scheduled events die.

    Exercises lazy compaction; the post-run assertion pins the bound —
    the live queue must stay O(batch), not O(total cancellations).
    """
    n_ticks = 2_000
    batch = 10

    def queued(eng):
        return sum(len(b) for b in eng._buckets.values()) + (
            len(eng._active) if eng._active is not None else 0
        )

    def run():
        eng = Engine()
        count = 0
        pending = []
        peak_queued = 0

        def noop():
            pass

        def tick():
            nonlocal count, peak_queued
            count += 1
            for ev in pending:
                ev.cancel()
            pending.clear()
            peak_queued = max(peak_queued, queued(eng))
            if count < n_ticks:
                for _ in range(batch):
                    pending.append(eng.schedule_after(1.0, noop))
                eng.schedule_after(1e-6, tick)

        eng.schedule(0.0, tick)
        eng.run()
        return count, peak_queued

    count, peak_queued = benchmark(run)
    assert count == n_ticks
    # _COMPACT_MIN_DEAD (64) dead entries may linger between compactions,
    # plus the live batch; anywhere near n_ticks * batch means the
    # tombstones piled up and compaction is broken.
    assert peak_queued <= 2 * (64 + batch + 1)


def test_engine_pending_is_cheap(benchmark):
    """10k ``pending()`` calls against a 10k-event calendar.

    With the O(n) scan this is 100M element visits; the live-counter
    implementation makes it constant per call.
    """
    eng = Engine()

    def noop():
        pass

    events = [eng.schedule(float(i), noop) for i in range(10_000)]
    for ev in events[::2]:
        ev.cancel()

    def probe():
        total = 0
        for _ in range(10_000):
            total += eng.pending()
        return total

    total = benchmark(probe)
    assert total == 10_000 * eng.pending()
    assert eng.pending() == len([ev for ev in events if ev.alive])
