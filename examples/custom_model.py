#!/usr/bin/env python3
"""Bring your own model: define, register, and schedule a custom DNN.

Shows the full public API surface a downstream user needs to study a new
architecture: build a :class:`ModelSpec` from layer constructors, register
it, pick an aggregation policy, and compare schedulers on a simulated
cluster — no framework hooks required.

The example model is a small transformer-ish MLP stack with a deliberately
huge embedding tensor at the *front* of the model: its gradient is
priority 0..1-adjacent but generated last, the worst case for FIFO and the
best case for priority scheduling.

Run:  python examples/custom_model.py
"""

from repro import TrainingConfig, run_training
from repro.agg.policies import LayerCountPolicy
from repro.metrics.report import format_table
from repro.models.device import DeviceSpec
from repro.models.layers import LayerSpec, ModelSpec, ParamTensor, linear
from repro.models.registry import available_models, get_model, register_model
from repro.quantities import Gbps, fmt_bytes
from repro.workloads.presets import PAPER_TCP, STRATEGY_FACTORIES

MODEL_NAME = "demo-embed-mlp"


def build_demo_model() -> ModelSpec:
    layers: list[LayerSpec] = [
        # A 50k x 512 embedding: one 100 MB gradient at priority ~0.
        LayerSpec(
            name="embedding",
            kind="fc",
            params=(ParamTensor("embedding.weight", (50_000, 512)),),
            fwd_flops=2.0 * 50_000 * 512 * 0.01,  # sparse lookup, cheap
        )
    ]
    width = 512
    for i in range(12):
        layers.append(linear(f"mlp.{i}.up", width, 4 * width))
        layers.append(linear(f"mlp.{i}.down", 4 * width, width))
    layers.append(linear("head", width, 10_000))
    return ModelSpec(name=MODEL_NAME, input_size=1, layers=tuple(layers))


def main() -> None:
    if MODEL_NAME not in available_models():
        register_model(MODEL_NAME, build_demo_model)
    model = get_model(MODEL_NAME)
    print(
        f"{model.name}: {len(model.layers)} layers, {model.num_tensors} "
        f"tensors, {fmt_bytes(model.param_bytes())} of parameters "
        f"(embedding alone: {fmt_bytes(model.layers[0].num_params * 4)})\n"
    )

    config = TrainingConfig(
        model=MODEL_NAME,
        batch_size=64,
        n_workers=3,
        n_iterations=12,
        bandwidth=2 * Gbps,
        tcp=PAPER_TCP,
        device=DeviceSpec(name="demo-gpu", peak_flops=9.6e12, efficiency=0.3),
        agg_policy=LayerCountPolicy(2),  # flush every 2 layers
        record_gradients=True,
    )
    rows = []
    for name, factory in STRATEGY_FACTORIES.items():
        result = run_training(config, factory)
        recs = {r.grad: r for r in result.gradient_records(0, iteration=10)}
        embed = recs[0]  # the embedding's gradient
        rows.append(
            [
                name,
                f"{result.training_rate():.1f}",
                f"{embed.wait_time * 1e3:.1f}",
            ]
        )
    print(
        format_table(
            ["strategy", "rate (samples/s)", "embedding-grad wait (ms)"],
            rows,
            title="Custom model @ 2 Gbps — the front-heavy tensor stresses FIFO",
        )
    )


if __name__ == "__main__":
    main()
