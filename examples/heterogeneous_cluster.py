#!/usr/bin/env python3
"""Heterogeneous cluster: slow links and compute stragglers under BSP.

Reproduces the paper's Sec. 5.3 heterogeneity experiment and extends it:
besides capping one worker's bandwidth to 500 Mbps (the paper's setup),
it also makes one worker's *compute* 1.5x slower, showing how BSP drags
every worker down to the straggler's pace and how much scheduling can
(and cannot) recover.

Run:  python examples/heterogeneous_cluster.py
"""

from dataclasses import replace

from repro import paper_config, run_training
from repro.metrics.report import format_table
from repro.quantities import Gbps, Mbps
from repro.workloads.presets import STRATEGY_FACTORIES


def rates_for(config):
    return {
        name: run_training(config, factory).training_rate()
        for name, factory in STRATEGY_FACTORIES.items()
    }


def main() -> None:
    base = paper_config(
        model="resnet18",
        batch_size=64,
        bandwidth=3 * Gbps,
        n_workers=3,
        n_iterations=12,
        record_gradients=False,
    )
    scenarios = [
        ("homogeneous (3 Gbps)", base),
        (
            "worker 0 at 500 Mbps (paper Sec. 5.3)",
            replace(base, worker_bandwidth={0: 500 * Mbps}),
        ),
        (
            "worker 1 compute 1.5x slower",
            replace(base, worker_compute_scale={1: 1.5}),
        ),
        (
            "both: slow link + straggler",
            replace(
                base,
                worker_bandwidth={0: 500 * Mbps},
                worker_compute_scale={1: 1.5},
            ),
        ),
    ]
    rows = []
    for label, config in scenarios:
        rates = rates_for(config)
        rows.append(
            [
                label,
                f"{rates['prophet']:.1f}",
                f"{rates['bytescheduler']:.1f}",
                f"{rates['mxnet-fifo']:.1f}",
            ]
        )
    print(
        format_table(
            ["scenario", "Prophet", "ByteScheduler", "MXNet"],
            rows,
            title="ResNet-18 bs64 — heterogeneity (samples/s per worker)",
        )
    )
    print(
        "\nThe slow link gates BSP aggregation for everyone: the scheduling "
        "optimization space collapses and Prophet ~ ByteScheduler, matching "
        "the paper's +2.3% observation."
    )


if __name__ == "__main__":
    main()
