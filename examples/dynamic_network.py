#!/usr/bin/env python3
"""Dynamic network conditions: Prophet adapting through its monitor.

The paper motivates Prophet with "dynamic network environments": static
partition/credit sizes cannot track changing bandwidth, while Prophet
re-plans every iteration from its periodically sampled monitor.  This
example drives the cluster with a piecewise bandwidth schedule
(3 Gbps → 1.5 Gbps → 4 Gbps), compares Prophet against ByteScheduler, and
prints the bandwidth the monitor observed over time.

Run:  python examples/dynamic_network.py
"""

from repro import paper_config, run_training
from repro.metrics.report import format_table
from repro.net.link import BandwidthSchedule
from repro.quantities import Gbps, to_Gbps
from repro.workloads.presets import bytescheduler_factory, prophet_factory


def main() -> None:
    schedule = BandwidthSchedule(
        [(0.0, 3 * Gbps), (6.0, 1.5 * Gbps), (12.0, 4 * Gbps)]
    )
    config = paper_config(
        model="resnet50",
        batch_size=64,
        bandwidth=schedule,
        n_workers=3,
        n_iterations=20,
        monitor_interval=2.0,  # sample faster than the default 5 s
    )
    print("Bandwidth schedule: 3 Gbps (0-6s) -> 1.5 Gbps (6-12s) -> 4 Gbps\n")

    rows = []
    monitor_history = None
    for name, factory in (
        ("prophet", prophet_factory()),
        ("bytescheduler", bytescheduler_factory()),
    ):
        trainer_result = run_training(config, factory)
        spans = trainer_result.iteration_spans(0, skip=2)
        rows.append(
            [
                name,
                f"{trainer_result.training_rate():.1f}",
                f"{spans.min() * 1e3:.0f} - {spans.max() * 1e3:.0f}",
            ]
        )
        if name == "prophet":
            # The monitor every Prophet instance reads (worker 0's).
            monitor_history = trainer_result  # keep for the table below

    print(
        format_table(
            ["strategy", "rate (samples/s)", "iteration range (ms)"],
            rows,
            title="ResNet-50 bs64 under time-varying bandwidth",
        )
    )

    # What the bandwidth monitor saw (Prophet's planning input).
    # Monitors live on the trainer; re-run one briefly to show samples.
    from repro.cluster.trainer import Trainer

    trainer = Trainer(config, prophet_factory())
    trainer.run()
    samples = trainer.monitors[0].history
    print()
    print(
        format_table(
            ["sample time (s)", "observed bandwidth (Gbps)"],
            [[f"{t:.0f}", f"{to_Gbps(b):.2f}"] for t, b in samples],
            title="Worker 0's bandwidth monitor (Prophet's planning input)",
        )
    )
    assert monitor_history is not None


if __name__ == "__main__":
    main()
