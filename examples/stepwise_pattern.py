#!/usr/bin/env python3
"""Inspect the stepwise pattern and Prophet's plan for any zoo model.

Reproduces the paper's Fig. 4 analysis end-to-end, in memory:

1. build the layer-accurate model and its compute profile,
2. run the KV-store aggregation to get per-gradient generation times,
3. detect the staircase (blocks + inter-block intervals),
4. run Algorithm 1 against a chosen bandwidth and show the gradient
   blocks it assembles,
5. evaluate the plan under the Sec. 3 performance model (T_wait).

Run:  python examples/stepwise_pattern.py [model] [batch] [gbps]
e.g.  python examples/stepwise_pattern.py resnet50 64 3
"""

import sys

from repro.agg import KVStore, block_summary
from repro.core import (
    JobProfile,
    PerfModelInputs,
    evaluate_schedule,
    per_gradient_fwd_times,
    plan_schedule,
)
from repro.metrics.report import format_table
from repro.models import build_compute_profile, get_model
from repro.quantities import Gbps, fmt_bytes, to_ms
from repro.workloads.presets import PAPER_TCP, paper_device


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "resnet50"
    batch = int(sys.argv[2]) if len(sys.argv) > 2 else 64
    gbps = float(sys.argv[3]) if len(sys.argv) > 3 else 3.0

    model = get_model(model_name)
    print(
        f"{model.name}: {model.num_tensors} gradient tensors, "
        f"{fmt_bytes(model.param_bytes())} of parameters\n"
    )

    compute = build_compute_profile(model, paper_device(model_name), batch)
    schedule = KVStore().generation_schedule(compute)
    summary = block_summary(schedule.c)
    print(
        format_table(
            ["block", "#gradients", "flush (ms)", "bytes"],
            [
                [i, size, f"{to_ms(t):.1f}",
                 fmt_bytes(sum(schedule.sizes[g] for g in members))]
                for i, (size, t, members) in enumerate(
                    zip(summary.block_sizes, summary.block_times,
                        schedule.buckets)
                )
            ],
            title=f"Stepwise pattern (Fig. 4): {summary.num_blocks} generation "
            f"blocks, mean interval {to_ms(summary.mean_interval):.1f} ms",
        )
    )

    profile = JobProfile.from_generation_schedule(schedule)
    plan = plan_schedule(profile, gbps * Gbps, PAPER_TCP)
    print()
    print(
        format_table(
            ["phase", "#blocks", "gradients", "bytes"],
            [
                [
                    phase,
                    len(blocks),
                    sum(len(b.grads) for b in blocks),
                    fmt_bytes(sum(b.nbytes for b in blocks)),
                ]
                for phase, blocks in (
                    ("backward (interval-packed)", plan.backward_blocks()),
                    ("critical + forward drain", plan.forward_blocks()),
                )
            ],
            title=f"Algorithm 1 plan at {gbps:g} Gbps",
        )
    )

    inputs = PerfModelInputs(
        c=profile.c,
        t=plan.start_times,
        e=plan.durations,
        fp=per_gradient_fwd_times(compute),
        total_bwd=compute.total_bwd,
    )
    ev = evaluate_schedule(inputs)
    print(
        f"\nSec. 3 performance model: T_wait = {to_ms(ev.t_wait):.1f} ms, "
        f"iteration = {to_ms(ev.iteration_time):.1f} ms "
        f"({batch / ev.iteration_time:.1f} samples/s)"
    )


if __name__ == "__main__":
    main()
