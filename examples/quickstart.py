#!/usr/bin/env python3
"""Quickstart: compare the four communication schedulers on one workload.

Trains ResNet-50 (batch 64) on a simulated 1 PS + 3 worker cluster at
3 Gbps — the paper's mid-band setting where scheduling matters most — and
prints training rate, GPU utilization, and channel throughput for default
MXNet FIFO, P3, ByteScheduler, and Prophet.

Run:  python examples/quickstart.py
"""

from repro import paper_config, run_training
from repro.metrics.report import format_table
from repro.quantities import Gbps, to_MB
from repro.workloads.presets import STRATEGY_FACTORIES


def main() -> None:
    config = paper_config(
        model="resnet50",
        batch_size=64,
        bandwidth=3 * Gbps,
        n_workers=3,
        n_iterations=15,
    )
    print(
        f"Simulating {config.model} (batch {config.batch_size}) on "
        f"{config.n_workers} workers at 3 Gbps, {config.n_iterations} "
        "iterations per strategy...\n"
    )
    rows = []
    for name, factory in STRATEGY_FACTORIES.items():
        result = run_training(config, factory)
        summary = result.summary()
        rows.append(
            [
                name,
                f"{summary['training_rate']:.1f}",
                f"{summary['mean_iteration_s'] * 1e3:.0f}",
                f"{summary['gpu_utilization'] * 100:.1f}%",
                f"{to_MB(summary['throughput_bytes_per_s']):.0f}",
            ]
        )
    print(
        format_table(
            ["strategy", "rate (samples/s)", "iteration (ms)", "GPU util",
             "channel MB/s"],
            rows,
            title="ResNet-50 bs64 @ 3 Gbps — scheduler comparison",
        )
    )
    print(
        "\nProphet schedules gradient blocks against the stepwise pattern "
        "(paper Alg. 1); see examples/stepwise_pattern.py for the pattern "
        "itself."
    )


if __name__ == "__main__":
    main()
