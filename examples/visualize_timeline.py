#!/usr/bin/env python3
"""Terminal visualization of the transfer schedule (Fig. 5 / Fig. 11 style).

Renders, for one steady-state iteration of each strategy:

* the channel-occupancy Gantt (push vs pull vs idle over time), and
* the gradient waterfall (generation → wait → push → parameter return),

plus a CSV/JSON export of the same data for external analysis.

Run:  python examples/visualize_timeline.py [strategy]
e.g.  python examples/visualize_timeline.py prophet
"""

import sys
import tempfile
from pathlib import Path

from repro import paper_config, run_training
from repro.metrics import (
    gradient_records_rows,
    render_channel_timeline,
    render_gradient_waterfall,
    result_summary_dict,
    write_csv,
    write_json,
)
from repro.quantities import Gbps
from repro.workloads.presets import STRATEGY_FACTORIES


def main() -> None:
    which = sys.argv[1] if len(sys.argv) > 1 else None
    strategies = (
        {which: STRATEGY_FACTORIES[which]} if which else STRATEGY_FACTORIES
    )
    config = paper_config(
        "resnet50", 64, bandwidth=3 * Gbps, n_workers=3, n_iterations=10
    )
    iteration = 7  # a steady-state iteration
    outdir = Path(tempfile.mkdtemp(prefix="repro-timeline-"))

    for name, factory in strategies.items():
        result = run_training(config, factory)
        iters = {r.iteration: r for r in result.recorder.worker_iterations(0)}
        start = iters[iteration].fwd_start
        end = iters[iteration + 1].fwd_start
        print(f"\n=== {name} — iteration {iteration} "
              f"({(end - start) * 1e3:.0f} ms) ===")
        print(render_channel_timeline(
            result.topology.uplink(0).records, start, end))
        print()
        print(render_gradient_waterfall(
            result.gradient_records(worker=0, iteration=iteration)))

        csv_path = write_csv(
            gradient_records_rows(result, worker=0, iteration=iteration),
            outdir / f"{name}-gradients.csv",
        )
        json_path = write_json(
            result_summary_dict(result), outdir / f"{name}-summary.json"
        )
        print(f"\nexported: {csv_path.name}, {json_path.name} -> {outdir}")


if __name__ == "__main__":
    main()
