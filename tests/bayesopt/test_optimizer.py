"""Unit tests for the expected-improvement Bayesian optimizer."""

import numpy as np
import pytest

from repro.bayesopt.optimizer import BayesianOptimizer
from repro.errors import ConfigurationError
from repro.quantities import MB


def test_initial_suggestions_span_the_space():
    opt = BayesianOptimizer(low=1 * MB, high=16 * MB, n_init=4)
    suggestions = []
    for _ in range(4):
        s = opt.suggest()
        suggestions.append(s)
        opt.observe(s, 1.0)
    assert all(1 * MB <= s <= 16 * MB * (1 + 1e-9) for s in suggestions)
    # Van der Corput sweep: distinct, spread out in log space.
    logs = np.log(suggestions)
    assert len(set(np.round(logs, 6))) == 4
    assert logs.max() - logs.min() > 0.5 * (np.log(16 * MB) - np.log(1 * MB))


def test_converges_to_minimum_of_smooth_objective():
    rng = np.random.default_rng(0)
    opt = BayesianOptimizer(low=1.0, high=100.0, n_init=4, rng=rng)
    target = 20.0

    def objective(x: float) -> float:
        return (np.log(x) - np.log(target)) ** 2

    for _ in range(25):
        x = opt.suggest()
        opt.observe(x, objective(x))
    best_x, best_y = opt.best
    assert best_y < 0.05
    assert 10.0 < best_x < 40.0


def test_best_tracks_minimum():
    opt = BayesianOptimizer(low=1.0, high=10.0)
    opt.observe(2.0, 5.0)
    opt.observe(4.0, 1.0)
    opt.observe(8.0, 3.0)
    best_x, best_y = opt.best
    assert best_y == 1.0
    assert best_x == pytest.approx(4.0, rel=1e-6)


def test_best_none_without_observations():
    assert BayesianOptimizer(low=1.0, high=2.0).best is None


def test_observe_out_of_bounds_raises():
    opt = BayesianOptimizer(low=1.0, high=2.0)
    with pytest.raises(ConfigurationError):
        opt.observe(5.0, 1.0)


def test_observe_non_finite_raises():
    opt = BayesianOptimizer(low=1.0, high=2.0)
    with pytest.raises(ConfigurationError):
        opt.observe(1.5, float("nan"))


def test_invalid_bounds_raise():
    with pytest.raises(ConfigurationError):
        BayesianOptimizer(low=0.0, high=1.0)
    with pytest.raises(ConfigurationError):
        BayesianOptimizer(low=2.0, high=1.0)
    with pytest.raises(ConfigurationError):
        BayesianOptimizer(low=1.0, high=2.0, n_init=0)


def test_deterministic_under_seed():
    def run(seed):
        opt = BayesianOptimizer(low=1.0, high=10.0, rng=np.random.default_rng(seed))
        xs = []
        for _ in range(8):
            x = opt.suggest()
            xs.append(x)
            opt.observe(x, (x - 3.0) ** 2)
        return xs

    assert run(1) == run(1)
