"""Unit tests for Gaussian-process regression."""

import numpy as np
import pytest

from repro.bayesopt.gp import GaussianProcess, RBFKernel
from repro.errors import ConfigurationError


class TestRBFKernel:
    def test_diagonal_is_variance(self):
        k = RBFKernel(length_scale=0.3, variance=2.0)
        x = np.array([0.1, 0.5, 0.9])
        gram = k(x, x)
        assert np.allclose(np.diag(gram), 2.0)

    def test_decays_with_distance(self):
        k = RBFKernel(length_scale=0.2)
        assert k(np.array([0.0]), np.array([1.0]))[0, 0] < k(
            np.array([0.0]), np.array([0.1])
        )[0, 0]

    def test_symmetric(self):
        k = RBFKernel()
        x = np.array([0.0, 0.3, 0.7])
        gram = k(x, x)
        assert np.allclose(gram, gram.T)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            RBFKernel(length_scale=0.0)
        with pytest.raises(ConfigurationError):
            RBFKernel(variance=-1.0)


class TestGaussianProcess:
    def test_interpolates_training_points(self):
        x = np.array([0.0, 0.25, 0.5, 0.75, 1.0])
        y = np.sin(2 * np.pi * x)
        gp = GaussianProcess(noise=1e-8).fit(x, y)
        mean, std = gp.predict(x)
        assert np.allclose(mean, y, atol=1e-3)
        assert np.all(std < 0.05)

    def test_uncertainty_grows_away_from_data(self):
        gp = GaussianProcess().fit(np.array([0.4, 0.5]), np.array([1.0, 1.2]))
        _, std_near = gp.predict(np.array([0.45]))
        _, std_far = gp.predict(np.array([0.0]))
        assert std_far > std_near

    def test_prediction_in_original_scale(self):
        x = np.array([0.0, 0.5, 1.0])
        y = np.array([100.0, 200.0, 300.0])
        gp = GaussianProcess(noise=1e-6).fit(x, y)
        mean, _ = gp.predict(np.array([0.5]))
        assert mean[0] == pytest.approx(200.0, rel=0.05)

    def test_single_observation(self):
        gp = GaussianProcess().fit(np.array([0.5]), np.array([3.0]))
        mean, std = gp.predict(np.array([0.5]))
        assert mean[0] == pytest.approx(3.0, abs=0.2)

    def test_predict_before_fit_raises(self):
        with pytest.raises(ConfigurationError):
            GaussianProcess().predict(np.array([0.5]))

    def test_mismatched_fit_raises(self):
        with pytest.raises(ConfigurationError):
            GaussianProcess().fit(np.zeros(3), np.zeros(2))

    def test_empty_fit_raises(self):
        with pytest.raises(ConfigurationError):
            GaussianProcess().fit(np.zeros(0), np.zeros(0))

    def test_negative_noise_raises(self):
        with pytest.raises(ConfigurationError):
            GaussianProcess(noise=-1e-3)
