"""A 1-job fleet is bit-identical to running the job directly.

This is the fleet's acceptance invariant: wrapping a single training job
in the multi-tenant machinery (shared engine, cluster fabric, scheduler
ticks) must not perturb a single float of the simulation — on any
backend (star PS, sharded PS tier, collective allreduce) and under any
scheduling strategy or placement policy.  The property test sweeps the
cross product plus seeds/worker counts; equality is exact (``==`` on the
scalar projections), not approximate.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.trainer import Trainer
from repro.fleet import FleetSimulator
from repro.fleet.job import FleetJob
from repro.quantities import Gbps
from repro.runner import build_factory
from repro.runner.spec import RunResult
from repro.workloads.presets import paper_config

STRATEGIES = ("prophet", "mxnet-fifo", "mg-wfbp")
BACKENDS = ("star", "sharded", "ring")


def _config(backend, n_workers, seed):
    overrides = {}
    if backend == "sharded":
        overrides["n_servers"] = 2
    elif backend == "ring":
        overrides["backend"] = "allreduce"
    return paper_config(
        "resnet18",
        16,
        bandwidth=3 * Gbps,
        n_workers=n_workers,
        n_iterations=3,
        seed=seed,
        **overrides,
    )


@given(
    strategy=st.sampled_from(STRATEGIES),
    backend=st.sampled_from(BACKENDS),
    policy=st.sampled_from(("fifo", "fair", "gang")),
    n_workers=st.integers(2, 3),
    seed=st.integers(0, 5),
)
@settings(max_examples=40, deadline=None)
def test_one_job_fleet_is_bit_identical(strategy, backend, policy, n_workers, seed):
    config = _config(backend, n_workers, seed)

    direct = Trainer(config, build_factory(strategy)).run()

    simulator = FleetSimulator(
        [FleetJob(name="solo", config=config, strategy=strategy)],
        core_bandwidth=20 * Gbps,  # > n_workers x NIC: never contended
        n_hosts=n_workers,
        slots_per_host=1,
        policy=policy,
    )
    fleet = simulator.run()

    handle = simulator.handles[0]
    assert RunResult.from_training(handle.result, skip=1) == RunResult.from_training(
        direct, skip=1
    )
    assert handle.result.end_time == direct.end_time
    record = fleet.records[0]
    assert record.queueing_delay == 0.0
    assert record.finished_at == direct.end_time
