"""Unit tests for the fleet scheduler tick and its placement policies."""

import pytest

from repro.errors import ConfigurationError
from repro.fleet.cluster import HostPool
from repro.fleet.job import FINISHED, QUEUED, RUNNING, FleetJob, JobHandle
from repro.fleet.scheduler import (
    POLICIES,
    FairSharePolicy,
    FIFOPolicy,
    FleetScheduler,
    GangPolicy,
)
from repro.net.topology import ClusterFabric
from repro.quantities import Gbps
from repro.sim.engine import Engine
from repro.workloads.presets import paper_config


def _handle(name, n_workers=1, arrival=0.0, user=""):
    config = paper_config(
        "resnet18", 32, bandwidth=1 * Gbps, n_workers=n_workers, n_iterations=2
    )
    return JobHandle(
        FleetJob(name=name, config=config, strategy="prophet", arrival=arrival, user=user)
    )


class TestPolicies:
    def test_registry(self):
        assert POLICIES == {
            "fifo": FIFOPolicy,
            "fair": FairSharePolicy,
            "gang": GangPolicy,
        }

    def test_fifo_orders_by_arrival_then_name(self):
        handles = [_handle("b", arrival=1.0), _handle("c", arrival=0.5),
                   _handle("a", arrival=1.0)]
        ordered = FIFOPolicy().order(handles, {})
        assert [h.job.name for h in ordered] == ["c", "a", "b"]
        assert FIFOPolicy.head_of_line and not FIFOPolicy.whole_hosts

    def test_fair_share_prefers_underserved_tenants(self):
        early = _handle("a", arrival=0.0, user="greedy")
        late = _handle("b", arrival=1.0, user="starved")
        ordered = FairSharePolicy().order([early, late], {"greedy": 3, "starved": 0})
        assert [h.job.name for h in ordered] == ["b", "a"]
        assert not FairSharePolicy.head_of_line

    def test_gang_is_fifo_over_whole_hosts(self):
        assert GangPolicy.whole_hosts and GangPolicy.head_of_line

    def test_unknown_policy_raises(self):
        with pytest.raises(ConfigurationError):
            FleetScheduler(
                Engine(), HostPool(1, 1), ClusterFabric(1 * Gbps), "lottery",
                spawn=lambda h, now: None,
            )


class _Harness:
    """A FleetScheduler wired to a spawn stub that only admits the fabric."""

    def __init__(self, policy, n_hosts=2, slots_per_host=2):
        self.engine = Engine()
        self.pool = HostPool(n_hosts, slots_per_host)
        self.fabric = ClusterFabric(10 * Gbps)
        self.spawned = []
        self.scheduler = FleetScheduler(
            self.engine, self.pool, self.fabric, policy, spawn=self._spawn
        )

    def _spawn(self, handle, now):
        self.fabric.admit(handle.job.name, handle.job.n_slots, 1 * Gbps, now)
        self.spawned.append((handle.job.name, now))

    def submit_at_arrival(self, handles):
        for handle in handles:
            self.engine.schedule(handle.job.arrival, self.scheduler.submit, handle)

    def finish(self, handle, at):
        self.engine.schedule(at, self.scheduler.job_finished, handle)


class TestFleetScheduler:
    def test_arrival_places_immediately_when_capacity_fits(self):
        fleet = _Harness("fifo")
        handle = _handle("job0", n_workers=2, arrival=0.25)
        fleet.submit_at_arrival([handle])
        fleet.engine.run()
        assert handle.state == RUNNING
        assert handle.placed_at == 0.25
        assert handle.queueing_delay == 0.0
        assert fleet.spawned == [("job0", 0.25)]
        assert fleet.pool.free_slots == 2

    def test_fifo_head_of_line_blocks_backfill(self):
        fleet = _Harness("fifo", n_hosts=1, slots_per_host=2)
        big = _handle("a-big", n_workers=2, arrival=0.0)
        bigger = _handle("b-big", n_workers=2, arrival=0.1)
        small = _handle("c-small", n_workers=1, arrival=0.2)
        fleet.submit_at_arrival([big, bigger, small])
        fleet.engine.run()
        # The 2-slot head job holds all capacity; FIFO refuses to leapfrog
        # the queued 2-slot job with the later 1-slot one.
        assert big.state == RUNNING
        assert bigger.state == QUEUED and small.state == QUEUED
        assert [name for name, _ in fleet.spawned] == ["a-big"]

    def test_fair_share_backfills_past_oversized_jobs(self):
        fleet = _Harness("fair", n_hosts=1, slots_per_host=2)
        big = _handle("a-big", n_workers=2, arrival=0.0, user="u1")
        bigger = _handle("b-big", n_workers=2, arrival=0.1, user="u1")
        small = _handle("c-small", n_workers=1, arrival=0.2, user="u2")
        fleet.submit_at_arrival([big, bigger, small])
        fleet.engine.run()
        assert big.state == RUNNING
        assert bigger.state == QUEUED
        # No room for 2 slots, but the 1-slot job jumps the non-fitting head.
        assert small.state == QUEUED
        fleet.finish(big, at=1.0)
        fleet.engine.run()
        # After reclaim the fair policy places the underserved tenant's
        # small job alongside nothing else fitting.
        assert bigger.state == RUNNING  # u1 count reset to 0; earlier arrival wins
        assert small.state == QUEUED

    def test_completion_tick_reclaims_and_places_same_instant(self):
        fleet = _Harness("fifo", n_hosts=1, slots_per_host=2)
        first = _handle("a", n_workers=2, arrival=0.0)
        second = _handle("b", n_workers=2, arrival=0.1)
        fleet.submit_at_arrival([first, second])
        fleet.finish(first, at=2.0)
        fleet.engine.run()
        assert first.state == FINISHED
        assert first.finished_at == 2.0
        assert second.state == RUNNING
        assert second.placed_at == 2.0  # freed and re-placed in one tick
        assert fleet.scheduler.finished == [first]
        assert "a" not in fleet.fabric.tenants  # tenancy reclaimed
        assert fleet.fabric.tenants == ("b",)

    def test_gang_waits_for_fully_free_hosts(self):
        fleet = _Harness("gang", n_hosts=2, slots_per_host=2)
        first = _handle("a", n_workers=1, arrival=0.0)
        gang = _handle("b", n_workers=3, arrival=0.1)
        fleet.submit_at_arrival([first, gang])
        fleet.engine.run()
        # Host 0 holds first's slot exclusively (gang allocs whole hosts),
        # leaving one fully free host — not the two the 3-slot gang needs.
        assert gang.state == QUEUED
        fleet.finish(first, at=1.5)
        fleet.engine.run()
        assert gang.state == RUNNING
        assert gang.allocation == {0: 2, 1: 2}
