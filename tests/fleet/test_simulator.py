"""Fleet simulator end-to-end: lifecycle, validation, and determinism."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan, WorkerCrash
from repro.fleet import FleetSimulator, FleetSpec, build_fleet_jobs, run_fleet
from repro.fleet.job import FleetJob
from repro.net.link import BandwidthSchedule
from repro.quantities import Gbps
from repro.workloads.presets import paper_config


def _job(name, arrival=0.0, strategy="prophet", **overrides):
    overrides.setdefault("bandwidth", 3 * Gbps)
    overrides.setdefault("n_workers", 2)
    overrides.setdefault("n_iterations", 3)
    config = paper_config("resnet18", 16, **overrides)
    return FleetJob(name=name, config=config, strategy=strategy, arrival=arrival)


def _spec(**overrides):
    defaults = dict(
        n_jobs=4,
        policy="fair",
        n_hosts=2,
        slots_per_host=2,
        core_bandwidth=8 * Gbps,
        nic_bandwidth=3 * Gbps,
        model="resnet18",
        batch_size=16,
        n_workers=2,
        n_iterations=3,
        strategies=("prophet", "mxnet-fifo"),
        mean_interarrival_s=0.05,
        seed=0,
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


class TestValidation:
    def test_empty_fleet_raises(self):
        with pytest.raises(ConfigurationError):
            FleetSimulator([], core_bandwidth=1 * Gbps, n_hosts=1, slots_per_host=1)

    def test_duplicate_names_raise(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            FleetSimulator(
                [_job("a"), _job("a")],
                core_bandwidth=10 * Gbps, n_hosts=2, slots_per_host=2,
            )

    def test_schedule_bandwidth_rejected(self):
        job = _job("a", bandwidth=BandwidthSchedule.constant(1 * Gbps))
        with pytest.raises(ConfigurationError, match="flat NIC bandwidth"):
            FleetSimulator(
                [job], core_bandwidth=10 * Gbps, n_hosts=2, slots_per_host=2
            )

    def test_fault_plans_rejected(self):
        plan = FaultPlan(crashes=(WorkerCrash(worker=0, at=0.5, restart_after=0.1),))
        with pytest.raises(ConfigurationError, match="fault injection"):
            FleetSimulator(
                [_job("a", faults=plan)],
                core_bandwidth=10 * Gbps, n_hosts=2, slots_per_host=2,
            )

    def test_oversized_job_rejected(self):
        with pytest.raises(ConfigurationError, match="slots"):
            FleetSimulator(
                [_job("a", n_workers=4)],
                core_bandwidth=10 * Gbps, n_hosts=1, slots_per_host=2,
            )

    def test_mixed_time_quantum_rejected(self):
        jobs = [_job("a"), _job("b", time_quantum=2**-20)]
        with pytest.raises(ConfigurationError, match="time_quantum"):
            FleetSimulator(
                jobs, core_bandwidth=10 * Gbps, n_hosts=2, slots_per_host=2
            )

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            _spec(policy="lottery")
        with pytest.raises(ConfigurationError):
            _spec(strategies=())
        with pytest.raises(ConfigurationError):
            _spec(n_workers=8)  # exceeds 2x2 slots


class TestLifecycle:
    def test_all_jobs_finish_with_ordered_records(self):
        result = run_fleet(_spec())
        assert result.policy == "fair"
        names = [r.name for r in result.records]
        assert names == sorted(names) and len(names) == 4
        for record in result.records:
            assert record.finished_at > record.placed_at >= record.arrival
            assert record.queueing_delay >= 0.0
            assert record.samples == 16 * 3 * 2
            assert record.iteration_s  # post-warmup spans survive the clamp
        summary = result.summary()
        assert summary["n_jobs"] == 4
        assert 0.0 < summary["jain_fairness"] <= 1.0
        assert summary["goodput_samples_per_s"] > 0

    def test_contention_queues_late_jobs(self):
        # 4 concurrent 2-worker jobs on 2x2 slots: only two fit at a time,
        # so at least one job must wait for a completion tick.
        result = run_fleet(_spec(mean_interarrival_s=0.0))
        delays = [r.queueing_delay for r in result.records]
        assert max(delays) > 0.0
        assert min(delays) == 0.0

    def test_build_fleet_jobs_rotates_strategies_and_tenants(self):
        jobs = build_fleet_jobs(_spec(n_jobs=5))
        assert [j.strategy for j in jobs] == [
            "prophet", "mxnet-fifo", "prophet", "mxnet-fifo", "prophet",
        ]
        assert all(j.user == j.strategy for j in jobs)
        arrivals = [j.arrival for j in jobs]
        assert arrivals == sorted(arrivals) and arrivals[0] == 0.0
        assert [j.config.seed for j in jobs] == [0, 1, 2, 3, 4]


class TestDeterminism:
    def test_same_spec_is_bit_identical(self):
        first = run_fleet(_spec())
        second = run_fleet(_spec())
        assert first.records == second.records
        assert first.events_processed == second.events_processed

    def test_seed_changes_the_fleet(self):
        base = run_fleet(_spec())
        reseeded = run_fleet(_spec(seed=7))
        assert base.records != reseeded.records

    def test_grid_parallel_matches_serial_and_hits_cache(self, tmp_path):
        from repro.runner import run_fleet_grid

        specs = [_spec(), _spec(seed=1)]
        serial = run_fleet_grid(specs, jobs=1, cache_dir=tmp_path / "a")
        parallel = run_fleet_grid(specs, jobs=2, cache_dir=tmp_path / "b")
        assert serial == parallel
        cached = run_fleet_grid(specs, jobs=1, cache_dir=tmp_path / "a")
        assert cached == serial
        # The cached round-trip went through JSON: same payloads, same values.
        assert [r.to_payload() for r in cached] == [r.to_payload() for r in serial]

    def test_policy_changes_only_placement_not_job_math(self):
        # Uncontended fleet (capacity for everything): fifo and fair place
        # identically, so the records agree bit for bit.
        spec = _spec(n_jobs=2, n_hosts=4, core_bandwidth=20 * Gbps)
        fifo = run_fleet(dataclasses.replace(spec, policy="fifo"))
        fair = run_fleet(dataclasses.replace(spec, policy="fair"))
        assert fifo.records == fair.records
