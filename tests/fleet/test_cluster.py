"""Unit tests for the GPU host pool (slot accounting and gang placement)."""

import pytest

from repro.errors import ConfigurationError
from repro.fleet.cluster import HostPool


class TestHostPool:
    def test_capacity(self):
        pool = HostPool(n_hosts=3, slots_per_host=4)
        assert pool.total_slots == 12
        assert pool.free_slots == 12
        assert pool.free_on(1) == 4

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            HostPool(0, 2)
        with pytest.raises(ConfigurationError):
            HostPool(2, 0)

    def test_first_fit_spans_hosts_in_index_order(self):
        pool = HostPool(n_hosts=3, slots_per_host=2)
        assert pool.alloc(3) == {0: 2, 1: 1}
        assert pool.alloc(3) == {1: 1, 2: 2}
        assert pool.free_slots == 0

    def test_alloc_none_when_full(self):
        pool = HostPool(n_hosts=1, slots_per_host=2)
        assert pool.alloc(2) == {0: 2}
        assert pool.alloc(1) is None
        assert not pool.fits(1)

    def test_alloc_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            HostPool(1, 2).alloc(0)

    def test_release_returns_slots(self):
        pool = HostPool(n_hosts=2, slots_per_host=2)
        allocation = pool.alloc(3)
        pool.release(allocation)
        assert pool.free_slots == 4

    def test_over_release_raises(self):
        pool = HostPool(n_hosts=1, slots_per_host=2)
        with pytest.raises(ConfigurationError):
            pool.release({0: 1})

    def test_gang_takes_whole_hosts_exclusively(self):
        pool = HostPool(n_hosts=3, slots_per_host=2)
        # 3 slots gang -> ceil(3/2) = 2 fully free hosts, taken in full.
        allocation = pool.alloc(3, whole_hosts=True)
        assert allocation == {0: 2, 1: 2}
        assert pool.free_on(0) == 0 and pool.free_on(1) == 0
        assert pool.free_on(2) == 2

    def test_gang_skips_partially_occupied_hosts(self):
        pool = HostPool(n_hosts=3, slots_per_host=2)
        assert pool.alloc(1) == {0: 1}  # host 0 now partially busy
        assert pool.alloc(3, whole_hosts=True) == {1: 2, 2: 2}

    def test_gang_refuses_without_enough_free_hosts(self):
        pool = HostPool(n_hosts=2, slots_per_host=2)
        pool.alloc(1)  # fragments host 0
        # 3 free slots remain, but only one fully free host.
        assert pool.free_slots == 3
        assert not pool.fits(3, whole_hosts=True)
        assert pool.alloc(3, whole_hosts=True) is None
