"""Unit tests for compute profiles, devices, and gradient tables."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models.compute import build_compute_profile
from repro.models.device import DeviceSpec, TESLA_M60
from repro.models.gradients import gradient_sizes, gradient_table
from repro.models.registry import get_model


class TestDeviceSpec:
    def test_effective_flops(self):
        dev = DeviceSpec(name="d", peak_flops=1e12, efficiency=0.5)
        assert dev.effective_flops == 0.5e12

    def test_with_efficiency_returns_copy(self):
        dev = TESLA_M60.with_efficiency(0.3)
        assert dev.efficiency == 0.3
        assert TESLA_M60.efficiency != 0.3
        assert dev.peak_flops == TESLA_M60.peak_flops

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(peak_flops=0.0),
            dict(efficiency=0.0),
            dict(efficiency=1.5),
            dict(layer_overhead=-1.0),
            dict(bwd_fwd_ratio=0.0),
        ],
    )
    def test_invalid_fields_raise(self, kwargs):
        base = dict(name="d", peak_flops=1e12)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            DeviceSpec(**base)


class TestComputeProfile:
    def test_backward_is_ratio_times_forward(self, tiny_model, tiny_device):
        prof = build_compute_profile(tiny_model, tiny_device, batch_size=8)
        flops = np.array([layer.fwd_flops for layer in tiny_model.layers])
        expected_fwd = 8 * flops / tiny_device.effective_flops + tiny_device.layer_overhead
        assert np.allclose(prof.fwd_times, expected_fwd)
        compute_part = prof.bwd_times - tiny_device.layer_overhead
        fwd_part = prof.fwd_times - tiny_device.layer_overhead
        assert np.allclose(compute_part, tiny_device.bwd_fwd_ratio * fwd_part)

    def test_totals(self, tiny_model, tiny_device):
        prof = build_compute_profile(tiny_model, tiny_device, batch_size=4)
        assert prof.total_fwd == pytest.approx(prof.fwd_times.sum())
        assert prof.total_bwd == pytest.approx(prof.bwd_times.sum())
        assert prof.compute_time == pytest.approx(prof.total_fwd + prof.total_bwd)

    def test_times_scale_with_batch(self, tiny_model, tiny_device):
        p1 = build_compute_profile(tiny_model, tiny_device, batch_size=1)
        p8 = build_compute_profile(tiny_model, tiny_device, batch_size=8)
        assert p8.total_fwd > p1.total_fwd

    def test_bwd_completion_times_decrease_with_layer(self, tiny_model, tiny_device):
        prof = build_compute_profile(tiny_model, tiny_device, batch_size=8)
        completions = prof.bwd_completion_times()
        # Backward runs last layer first: later layers complete earlier.
        assert np.all(np.diff(completions) < 0)
        assert completions[0] == pytest.approx(prof.total_bwd)
        assert completions[-1] == pytest.approx(prof.bwd_times[-1])

    def test_invalid_batch_raises(self, tiny_model, tiny_device):
        with pytest.raises(ConfigurationError):
            build_compute_profile(tiny_model, tiny_device, batch_size=0)


class TestGradientTable:
    def test_indices_are_priorities(self, tiny_model):
        grads = gradient_table(tiny_model)
        assert [g.index for g in grads] == list(range(8))
        assert grads[0].layer_index == 0
        assert grads[-1].layer_index == 3

    def test_sizes_match_tensors(self, tiny_model):
        sizes = gradient_sizes(tiny_model)
        assert len(sizes) == 8
        assert sizes.sum() == pytest.approx(tiny_model.param_bytes())

    def test_dtype_bytes_scales_sizes(self, tiny_model):
        fp32 = gradient_sizes(tiny_model, dtype_bytes=4)
        fp16 = gradient_sizes(tiny_model, dtype_bytes=2)
        assert np.allclose(fp32, 2 * fp16)

    def test_real_model_layer_mapping(self):
        grads = gradient_table(get_model("resnet18"))
        model = get_model("resnet18")
        for g in grads[:10]:
            layer = model.layers[g.layer_index]
            assert any(t.name == g.name for t in layer.params)
