"""Unit tests for model-description primitives."""

import pytest

from repro.errors import ConfigurationError
from repro.models.layers import (
    LayerSpec,
    ModelSpec,
    ParamTensor,
    batchnorm,
    conv2d,
    conv_out_size,
    linear,
)


class TestParamTensor:
    def test_num_params(self):
        t = ParamTensor("w", (64, 3, 7, 7))
        assert t.num_params == 64 * 3 * 7 * 7

    def test_nbytes_fp32(self):
        assert ParamTensor("b", (128,)).nbytes() == 512

    def test_nbytes_fp16(self):
        assert ParamTensor("b", (128,)).nbytes(dtype_bytes=2) == 256


class TestConvOutSize:
    @pytest.mark.parametrize(
        "in_size,k,s,p,expected",
        [
            (224, 7, 2, 3, 112),
            (224, 3, 1, 1, 224),
            (56, 1, 1, 0, 56),
            (56, 3, 2, 1, 28),
            (299, 3, 2, 0, 149),
        ],
    )
    def test_standard_cases(self, in_size, k, s, p, expected):
        assert conv_out_size(in_size, k, s, p) == expected


class TestConv2d:
    def test_param_count_no_bias(self):
        layer, out = conv2d("c", 3, 64, 7, 224, stride=2, padding=3)
        assert layer.num_params == 64 * 3 * 7 * 7
        assert out == 112
        assert len(layer.params) == 1

    def test_bias_adds_tensor(self):
        layer, _ = conv2d("c", 3, 64, 3, 32, padding=1, bias=True)
        assert len(layer.params) == 2
        assert layer.num_params == 64 * 3 * 9 + 64

    def test_flops_are_2_mac(self):
        layer, out = conv2d("c", 8, 16, 3, 10, padding=1)
        assert out == 10
        assert layer.fwd_flops == 2.0 * 9 * 8 * 16 * 100

    def test_rectangular_kernel(self):
        layer, out = conv2d("c", 32, 32, (1, 7), 17, padding=3)
        assert out == 17  # 'same' padding on the long dimension
        assert layer.num_params == 32 * 32 * 1 * 7


class TestBatchnormAndLinear:
    def test_batchnorm_two_tensors(self):
        layer = batchnorm("bn", 64, 56)
        assert [p.name for p in layer.params] == ["bn.weight", "bn.bias"]
        assert layer.num_params == 128

    def test_linear(self):
        layer = linear("fc", 2048, 1000)
        assert layer.num_params == 2048 * 1000 + 1000
        assert layer.fwd_flops == 2.0 * 2048 * 1000

    def test_linear_no_bias(self):
        layer = linear("fc", 10, 10, bias=False)
        assert layer.num_params == 100


class TestModelSpec:
    def test_aggregates(self):
        layers = (
            linear("a", 4, 8),
            LayerSpec("pool", "pool"),
            linear("b", 8, 2),
        )
        model = ModelSpec(name="m", input_size=4, layers=layers)
        assert model.num_params == (4 * 8 + 8) + (8 * 2 + 2)
        assert model.num_tensors == 4
        assert model.param_bytes() == model.num_params * 4
        assert model.parameterized_layers() == [0, 2]

    def test_duplicate_layer_names_raise(self):
        with pytest.raises(ConfigurationError):
            ModelSpec(name="m", input_size=4, layers=(linear("a", 2, 2), linear("a", 2, 2)))

    def test_fwd_flops_sum(self):
        model = ModelSpec(name="m", input_size=4, layers=(linear("a", 4, 4),))
        assert model.fwd_flops == 32.0
