"""Architecture-accuracy tests: tensor counts and parameter totals match
the torchvision reference implementations."""

import pytest

from repro.errors import ConfigurationError
from repro.models.gradients import gradient_table
from repro.models.registry import available_models, get_model, register_model
from repro.models.resnet import build_resnet
from repro.models.vgg import build_vgg

# (model, reference #tensors, reference #params)
REFERENCE = [
    ("resnet18", 62, 11_689_512),
    ("resnet34", 110, 21_797_672),
    ("resnet50", 161, 25_557_032),
    ("resnet101", 314, 44_549_160),
    ("resnet152", 467, 60_192_808),
    ("vgg11", 22, 132_863_336),
    ("vgg16", 32, 138_357_544),
    ("vgg19", 38, 143_667_240),
    ("alexnet", 16, 61_100_840),
]


@pytest.mark.parametrize("name,tensors,params", REFERENCE)
def test_reference_tensor_and_param_counts(name, tensors, params):
    model = get_model(name)
    assert model.num_tensors == tensors
    assert model.num_params == params


def test_inception_v3_structure():
    model = get_model("inception_v3")
    # 94 BasicConv2d (conv + affine BN) + fc weight/bias.
    convs = [layer for layer in model.layers if layer.kind == "conv"]
    bns = [layer for layer in model.layers if layer.kind == "bn"]
    assert len(convs) == 94
    assert len(bns) == 94
    assert model.num_tensors == 94 * 3 + 2
    # Torchvision inception_v3(aux_logits=False) has 23.8 M params.
    assert model.num_params == pytest.approx(23.8e6, rel=0.01)
    assert model.input_size == 299


@pytest.mark.parametrize(
    "name,gflops",
    [
        ("resnet18", 3.6),
        ("resnet50", 8.2),
        ("resnet152", 23.1),
        ("vgg16", 30.9),
        ("vgg19", 39.3),
    ],
)
def test_forward_flops_near_reference(name, gflops):
    """2*MAC forward FLOP counts at 224x224 match published numbers."""
    model = get_model(name)
    assert model.fwd_flops == pytest.approx(gflops * 1e9, rel=0.03)


def test_resnet50_gradient_priorities_follow_forward_order():
    grads = gradient_table(get_model("resnet50"))
    assert grads[0].name == "conv1.weight"
    assert grads[-1].name == "fc.bias"
    assert [g.index for g in grads] == list(range(len(grads)))


def test_vgg19_has_38_gradients_matching_fig4_index_space():
    grads = gradient_table(get_model("vgg19"))
    assert len(grads) == 38
    assert grads[37].name == "classifier.6.bias"


def test_unknown_resnet_depth_raises():
    with pytest.raises(ValueError):
        build_resnet(42)


def test_unknown_vgg_depth_raises():
    with pytest.raises(ValueError):
        build_vgg(13)


def test_registry_unknown_model_raises():
    with pytest.raises(ConfigurationError):
        get_model("not-a-model")


def test_registry_caches_instances():
    assert get_model("resnet18") is get_model("resnet18")


def test_register_duplicate_raises():
    with pytest.raises(ConfigurationError):
        register_model("resnet18", lambda: get_model("resnet18"))


def test_available_models_sorted():
    models = available_models()
    assert models == sorted(models)
    assert "resnet50" in models
