"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


def test_events_fire_in_time_order():
    eng = Engine()
    fired = []
    eng.schedule(2.0, fired.append, "b")
    eng.schedule(1.0, fired.append, "a")
    eng.schedule(3.0, fired.append, "c")
    eng.run()
    assert fired == ["a", "b", "c"]
    assert eng.now == 3.0


def test_same_time_events_fire_in_insertion_order():
    eng = Engine()
    fired = []
    for tag in range(5):
        eng.schedule(1.0, fired.append, tag)
    eng.run()
    assert fired == [0, 1, 2, 3, 4]


def test_schedule_after_uses_relative_delay():
    eng = Engine()
    seen = []
    eng.schedule(1.0, lambda: eng.schedule_after(0.5, lambda: seen.append(eng.now)))
    eng.run()
    assert seen == [1.5]


def test_schedule_in_past_raises():
    eng = Engine()
    eng.schedule(1.0, lambda: None)
    eng.run()
    with pytest.raises(SimulationError):
        eng.schedule(0.5, lambda: None)


def test_negative_delay_raises():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule_after(-0.1, lambda: None)


def test_cancelled_events_do_not_fire():
    eng = Engine()
    fired = []
    ev = eng.schedule(1.0, fired.append, "cancelled")
    eng.schedule(2.0, fired.append, "kept")
    ev.cancel()
    eng.run()
    assert fired == ["kept"]


def test_cancel_is_idempotent():
    eng = Engine()
    ev = eng.schedule(1.0, lambda: None)
    ev.cancel()
    ev.cancel()
    eng.run()
    assert eng.events_processed == 0


def test_run_until_is_inclusive_and_advances_clock():
    eng = Engine()
    fired = []
    eng.schedule(1.0, fired.append, 1)
    eng.schedule(2.0, fired.append, 2)
    eng.schedule(5.0, fired.append, 5)
    eng.run(until=2.0)
    assert fired == [1, 2]
    assert eng.now == 2.0
    eng.run()
    assert fired == [1, 2, 5]


def test_run_until_beyond_queue_advances_to_horizon():
    eng = Engine()
    eng.schedule(1.0, lambda: None)
    eng.run(until=10.0)
    assert eng.now == 10.0


def test_max_events_guard_raises():
    eng = Engine()

    def reschedule():
        eng.schedule_after(1.0, reschedule)

    eng.schedule(0.0, reschedule)
    with pytest.raises(SimulationError, match="budget"):
        eng.run(max_events=100)


def test_step_fires_single_event():
    eng = Engine()
    fired = []
    eng.schedule(1.0, fired.append, "a")
    eng.schedule(2.0, fired.append, "b")
    assert eng.step() is True
    assert fired == ["a"]
    assert eng.step() is True
    assert eng.step() is False


def test_peek_time_skips_cancelled():
    eng = Engine()
    ev = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    ev.cancel()
    assert eng.peek_time() == 2.0


def test_pending_counts_live_events():
    eng = Engine()
    ev = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    assert eng.pending() == 2
    ev.cancel()
    assert eng.pending() == 1


def test_run_not_reentrant():
    eng = Engine()
    errors = []

    def nested():
        try:
            eng.run()
        except SimulationError as exc:
            errors.append(exc)

    eng.schedule(1.0, nested)
    eng.run()
    assert len(errors) == 1


def test_events_scheduled_at_now_fire_in_same_run():
    eng = Engine()
    fired = []
    eng.schedule(1.0, lambda: eng.schedule(eng.now, fired.append, "same-time"))
    eng.run()
    assert fired == ["same-time"]


# ----------------------------------------------------------------------
# Tombstone compaction / O(1) pending
# ----------------------------------------------------------------------
def _queued_events(eng: Engine) -> int:
    """Physical event count across the calendar (incl. tombstones)."""
    return sum(len(b) for b in eng._buckets.values()) + (
        len(eng._active) if eng._active is not None else 0
    )


def test_mass_cancellation_compacts_queue():
    eng = Engine()
    events = [eng.schedule(1.0 + i, lambda: None) for i in range(1_000)]
    keeper = eng.schedule(0.5, lambda: None)
    for ev in events:
        ev.cancel()
    # Far more than _COMPACT_MIN_DEAD tombstones were cancelled, so the
    # calendar must have been swept down to the live events.
    assert _queued_events(eng) < 100
    assert eng.pending() == 1
    assert keeper.alive


def test_pending_stays_correct_through_compaction():
    eng = Engine()
    live = [eng.schedule(10.0 + i, lambda: None) for i in range(10)]
    doomed = [eng.schedule(1.0 + i, lambda: None) for i in range(500)]
    for ev in doomed:
        ev.cancel()
        alive_doomed = sum(1 for e in doomed if e.alive)
        assert eng.pending() == len(live) + alive_doomed
    assert eng.pending() == 10
    eng.run()
    assert eng.events_processed == 10


def test_compaction_preserves_firing_order():
    eng = Engine()
    fired = []
    survivors = []
    for i in range(300):
        ev = eng.schedule(float(i + 1), fired.append, i)
        if i % 5 == 0:
            survivors.append(i)
        else:
            ev.cancel()
    eng.run()
    assert fired == survivors


def test_cancellation_during_run_keeps_queue_bounded():
    """The simulator's own pattern: timeouts armed then cancelled."""
    eng = Engine()
    peak = 0
    count = 0
    pending = []

    def tick():
        nonlocal count, peak
        count += 1
        for ev in pending:
            ev.cancel()
        pending.clear()
        peak = max(peak, _queued_events(eng))
        if count < 500:
            for _ in range(10):
                pending.append(eng.schedule_after(100.0, lambda: None))
            eng.schedule_after(0.01, tick)

    eng.schedule(0.0, tick)
    eng.run()
    # 5000 total cancellations; without compaction the peak would be
    # ~5000 — with it, tombstones are capped near _COMPACT_MIN_DEAD.
    assert peak < 200


def test_cancel_then_pop_keeps_counter_consistent():
    eng = Engine()
    ev = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    ev.cancel()
    assert eng.pending() == 1
    eng.run()
    assert eng.pending() == 0
    # More schedule/cancel cycles after a run keep the count exact.
    ev2 = eng.schedule(3.0, lambda: None)
    assert eng.pending() == 1
    ev2.cancel()
    assert eng.pending() == 0
