"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


def test_events_fire_in_time_order():
    eng = Engine()
    fired = []
    eng.schedule(2.0, fired.append, "b")
    eng.schedule(1.0, fired.append, "a")
    eng.schedule(3.0, fired.append, "c")
    eng.run()
    assert fired == ["a", "b", "c"]
    assert eng.now == 3.0


def test_same_time_events_fire_in_insertion_order():
    eng = Engine()
    fired = []
    for tag in range(5):
        eng.schedule(1.0, fired.append, tag)
    eng.run()
    assert fired == [0, 1, 2, 3, 4]


def test_schedule_after_uses_relative_delay():
    eng = Engine()
    seen = []
    eng.schedule(1.0, lambda: eng.schedule_after(0.5, lambda: seen.append(eng.now)))
    eng.run()
    assert seen == [1.5]


def test_schedule_in_past_raises():
    eng = Engine()
    eng.schedule(1.0, lambda: None)
    eng.run()
    with pytest.raises(SimulationError):
        eng.schedule(0.5, lambda: None)


def test_negative_delay_raises():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule_after(-0.1, lambda: None)


def test_cancelled_events_do_not_fire():
    eng = Engine()
    fired = []
    ev = eng.schedule(1.0, fired.append, "cancelled")
    eng.schedule(2.0, fired.append, "kept")
    ev.cancel()
    eng.run()
    assert fired == ["kept"]


def test_cancel_is_idempotent():
    eng = Engine()
    ev = eng.schedule(1.0, lambda: None)
    ev.cancel()
    ev.cancel()
    eng.run()
    assert eng.events_processed == 0


def test_run_until_is_inclusive_and_advances_clock():
    eng = Engine()
    fired = []
    eng.schedule(1.0, fired.append, 1)
    eng.schedule(2.0, fired.append, 2)
    eng.schedule(5.0, fired.append, 5)
    eng.run(until=2.0)
    assert fired == [1, 2]
    assert eng.now == 2.0
    eng.run()
    assert fired == [1, 2, 5]


def test_run_until_beyond_queue_advances_to_horizon():
    eng = Engine()
    eng.schedule(1.0, lambda: None)
    eng.run(until=10.0)
    assert eng.now == 10.0


def test_max_events_guard_raises():
    eng = Engine()

    def reschedule():
        eng.schedule_after(1.0, reschedule)

    eng.schedule(0.0, reschedule)
    with pytest.raises(SimulationError, match="budget"):
        eng.run(max_events=100)


def test_step_fires_single_event():
    eng = Engine()
    fired = []
    eng.schedule(1.0, fired.append, "a")
    eng.schedule(2.0, fired.append, "b")
    assert eng.step() is True
    assert fired == ["a"]
    assert eng.step() is True
    assert eng.step() is False


def test_peek_time_skips_cancelled():
    eng = Engine()
    ev = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    ev.cancel()
    assert eng.peek_time() == 2.0


def test_pending_counts_live_events():
    eng = Engine()
    ev = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    assert eng.pending() == 2
    ev.cancel()
    assert eng.pending() == 1


def test_run_not_reentrant():
    eng = Engine()
    errors = []

    def nested():
        try:
            eng.run()
        except SimulationError as exc:
            errors.append(exc)

    eng.schedule(1.0, nested)
    eng.run()
    assert len(errors) == 1


def test_events_scheduled_at_now_fire_in_same_run():
    eng = Engine()
    fired = []
    eng.schedule(1.0, lambda: eng.schedule(eng.now, fired.append, "same-time"))
    eng.run()
    assert fired == ["same-time"]
