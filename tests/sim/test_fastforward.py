"""Unit tests for the steady-state fast-forward subsystem.

Covers the three behaviors the exactness property tests cannot:

* **gating** — every source of aperiodicity (faults, jitter, noise,
  dynamic bandwidth, non-BSP sync, opted-out schedulers, the env-var
  kill-switch, a missing time quantum) must keep the detector off;
* **fallback** — a fingerprint that fails re-verification after one
  recorded period must discard the journal and leave the run exact;
* **config validation and cache identity** — ``time_quantum`` rejects
  non-power-of-two grids, and the runner's cache fingerprint separates
  fast-forwarded from unrolled specs.
"""

from dataclasses import replace

import pytest

from repro.cluster.trainer import Trainer, run_training
from repro.config import TrainingConfig
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan, MessageDrops
from repro.net.link import BandwidthSchedule
from repro.quantities import Gbps
from repro.runner.fingerprint import fingerprint
from repro.runner.spec import RunSpec
from repro.sim.fastforward import NO_FASTFORWARD_ENV
from repro.workloads.presets import (
    EXTENDED_FACTORIES,
    bytescheduler_factory,
    paper_config,
    prophet_factory,
)

QUANTUM = 2.0**-24


def base_config(**overrides) -> TrainingConfig:
    defaults = dict(
        n_workers=2,
        n_iterations=8,
        jitter_std=0.0,
        time_quantum=QUANTUM,
        record_gradients=False,
    )
    defaults.update(overrides)
    return paper_config("resnet18", 32, **defaults)


def _canon(result) -> tuple:
    rows = [
        tuple(repr(r) for r in result.recorder.worker_iterations(w))
        for w in range(result.config.n_workers)
    ]
    return (repr(result.end_time), rows, {k: repr(v) for k, v in result.summary().items()})


# ----------------------------------------------------------------------
# Engagement and diagnostics
# ----------------------------------------------------------------------
def test_engages_and_reports_stats():
    result = run_training(base_config(), prophet_factory())
    stats = result.fastforward_stats
    assert stats is not None and stats["engaged"]
    assert stats["period"] >= 1
    assert stats["cycles_skipped"] >= 1
    assert stats["iterations_skipped"] == stats["period"] * stats["cycles_skipped"]
    assert stats["fallbacks"] == 0
    assert stats["disabled_reason"] is None


def test_single_iteration_run_never_engages():
    result = run_training(base_config(n_iterations=1), prophet_factory())
    stats = result.fastforward_stats
    assert stats is not None and not stats["engaged"]


# ----------------------------------------------------------------------
# Gating: every aperiodicity source keeps the detector off
# ----------------------------------------------------------------------
GATED_CONFIGS = {
    "no-quantum": dict(time_quantum=None),
    "config-flag": dict(fastforward=False),
    "jitter": dict(jitter_std=0.02),
    "bandwidth-noise": dict(bandwidth_noise_std=0.01),
    "asp": dict(sync_mode="asp"),
    "dynamic-bandwidth": dict(
        bandwidth=BandwidthSchedule([(0.0, 3 * Gbps), (1.0, 1 * Gbps)])
    ),
    "faults": dict(faults=FaultPlan(drops=[MessageDrops(push=0.01)])),
}


@pytest.mark.parametrize("reason", sorted(GATED_CONFIGS))
def test_ineligible_configs_run_unrolled(reason):
    result = run_training(base_config(**GATED_CONFIGS[reason]), prophet_factory())
    assert result.fastforward_stats is None


def test_opted_out_scheduler_runs_unrolled():
    # ByteScheduler's credit feedback loop reads live link state; it
    # declares ff_supported=False and must gate the whole run.
    result = run_training(base_config(), bytescheduler_factory())
    assert result.fastforward_stats is None


def test_env_var_kill_switch(monkeypatch):
    monkeypatch.setenv(NO_FASTFORWARD_ENV, "1")
    result = run_training(base_config(), prophet_factory())
    assert result.fastforward_stats is None


def test_eligibility_reason_is_reported():
    trainer = Trainer(base_config(time_quantum=None), prophet_factory())
    assert trainer.fastforward is None
    assert "time_quantum" in trainer.fastforward_reason


# ----------------------------------------------------------------------
# Conservative fallback on failed re-verification
# ----------------------------------------------------------------------
def test_fingerprint_mismatch_falls_back_exactly():
    factory = EXTENDED_FACTORIES["prophet"]
    trainer = Trainer(base_config(), factory)
    detector = trainer.fastforward
    assert detector is not None
    original = detector._fingerprint
    calls = {"n": 0}

    def lying_fingerprint(ctx):
        # Fake an immediate period-1 match on the first two boundaries;
        # the verification boundary then sees the true fingerprint and
        # must fall back instead of replaying a bogus cycle.
        calls["n"] += 1
        if calls["n"] <= 2:
            return ("forced-collision",)
        return original(ctx)

    detector._fingerprint = lying_fingerprint
    result = trainer.run()
    stats = result.fastforward_stats
    assert stats["fallbacks"] >= 1
    # Detection restarts from genuine fingerprints after the fallback,
    # and the run stays bit-identical to the unrolled path.
    unrolled = run_training(
        replace(base_config(), fastforward=False), EXTENDED_FACTORIES["prophet"]
    )
    assert _canon(result) == _canon(unrolled)


def test_detect_only_mode_never_engages():
    trainer = Trainer(base_config(), prophet_factory())
    trainer.fastforward.detect_only = True
    result = trainer.run()
    stats = result.fastforward_stats
    assert not stats["engaged"]
    assert stats["boundaries_seen"] >= 2
    unrolled = run_training(
        replace(base_config(), fastforward=False), prophet_factory()
    )
    assert _canon(result) == _canon(unrolled)


# ----------------------------------------------------------------------
# time_quantum validation and cache-key identity
# ----------------------------------------------------------------------
def test_time_quantum_must_be_power_of_two():
    with pytest.raises(ConfigurationError, match="power of two"):
        base_config(time_quantum=1e-6)


@pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
def test_time_quantum_must_be_positive_finite(bad):
    with pytest.raises(ConfigurationError):
        base_config(time_quantum=bad)


def test_time_quantum_powers_of_two_accepted():
    for exp in (-30, -24, -10, 0, 3):
        assert base_config(time_quantum=2.0**exp).time_quantum == 2.0**exp


def test_cache_fingerprint_separates_fastforward_specs():
    spec = RunSpec(config=base_config(), strategy="prophet")
    no_ff = RunSpec(config=base_config(fastforward=False), strategy="prophet")
    no_quantum = RunSpec(config=base_config(time_quantum=None), strategy="prophet")
    fps = {fingerprint(spec), fingerprint(no_ff), fingerprint(no_quantum)}
    assert len(fps) == 3
