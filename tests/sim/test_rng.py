"""Unit tests for seeded RNG streams."""

import numpy as np

from repro.sim.rng import make_rng, spawn_rng


def test_make_rng_reproducible():
    a = make_rng(42).random(5)
    b = make_rng(42).random(5)
    assert np.array_equal(a, b)


def test_spawn_rng_stable_across_calls():
    a = spawn_rng(7, "worker", 3).random(8)
    b = spawn_rng(7, "worker", 3).random(8)
    assert np.array_equal(a, b)


def test_spawn_rng_streams_are_independent():
    a = spawn_rng(7, "worker", 0).random(8)
    b = spawn_rng(7, "worker", 1).random(8)
    assert not np.array_equal(a, b)


def test_spawn_rng_label_matters():
    a = spawn_rng(7, "jitter", 0).random(8)
    b = spawn_rng(7, "link", 0).random(8)
    assert not np.array_equal(a, b)


def test_spawn_rng_seed_matters():
    a = spawn_rng(1, "x").random(4)
    b = spawn_rng(2, "x").random(4)
    assert not np.array_equal(a, b)


def test_spawn_rng_accepts_none_seed():
    a = spawn_rng(None, "x").random(4)
    b = spawn_rng(None, "x").random(4)
    assert np.array_equal(a, b)  # None maps to a fixed seed, still stable
