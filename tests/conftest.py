"""Shared fixtures: tiny models and fast cluster configs.

Unit and integration tests run against a 4-layer synthetic model (8
gradients) so full training simulations complete in milliseconds; the
experiment-shape tests use the real model zoo with reduced iteration
counts.
"""

from __future__ import annotations

import pytest

from repro.agg.policies import ExplicitGroupsPolicy
from repro.config import TrainingConfig
from repro.models.device import DeviceSpec
from repro.models.layers import LayerSpec, ModelSpec, ParamTensor
from repro.models.registry import available_models, register_model
from repro.net.tcp import TCPParams
from repro.quantities import Gbps, MB

TINY_MODEL_NAME = "tiny-test-model"

#: Per-layer (name, tensor sizes in bytes, per-sample forward FLOPs).
_TINY_LAYERS = (
    ("l0", (2 * MB, 8 * 1024), 4e9),
    ("l1", (6 * MB,), 6e9),
    ("l2", (3 * MB, 64 * 1024), 5e9),
    ("l3", (8 * MB, 4 * 1024, 4 * 1024), 8e9),
)


def _build_tiny_model() -> ModelSpec:
    layers = []
    for name, sizes, flops in _TINY_LAYERS:
        params = tuple(
            ParamTensor(f"{name}.p{i}", (int(size // 4),))
            for i, size in enumerate(sizes)
        )
        layers.append(LayerSpec(name=name, kind="conv", params=params, fwd_flops=flops))
    return ModelSpec(name=TINY_MODEL_NAME, input_size=32, layers=tuple(layers))


if TINY_MODEL_NAME not in available_models():
    register_model(TINY_MODEL_NAME, _build_tiny_model)


@pytest.fixture
def tiny_model() -> ModelSpec:
    from repro.models.registry import get_model

    return get_model(TINY_MODEL_NAME)


@pytest.fixture
def tiny_device() -> DeviceSpec:
    return DeviceSpec(name="test-gpu", peak_flops=4e12, efficiency=0.25)


@pytest.fixture
def fast_tcp() -> TCPParams:
    return TCPParams(rtt=0.2e-3, fixed_overhead=0.1e-3, goodput=0.8)


@pytest.fixture
def tiny_config(tiny_device, fast_tcp) -> TrainingConfig:
    """A full-cluster config that simulates in well under a second."""
    return TrainingConfig(
        model=TINY_MODEL_NAME,
        batch_size=8,
        n_workers=2,
        n_iterations=6,
        bandwidth=1 * Gbps,
        tcp=fast_tcp,
        device=tiny_device,
        agg_policy=ExplicitGroupsPolicy(((5, 6, 7), (3, 4), (2,), (0, 1))),
        seed=7,
        jitter_std=0.01,
    )
